#include "runtime/engine.h"

#include <gtest/gtest.h>

#include "iomodel/cache.h"
#include "sdf/min_buffer.h"
#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::runtime {
namespace {

using iomodel::CacheConfig;
using iomodel::LruCache;
using sdf::NodeId;
using sdf::SdfGraph;

SdfGraph two_stage() {
  SdfGraph g;
  const NodeId a = g.add_node("a", 16);
  const NodeId b = g.add_node("b", 16);
  g.add_edge(a, b, 2, 2);
  return g;
}

TEST(Engine, FiringMovesTokens) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  EXPECT_TRUE(engine.can_fire(0));
  EXPECT_FALSE(engine.can_fire(1));  // no input tokens yet
  engine.fire(0);
  EXPECT_EQ(engine.tokens(0), 2);
  EXPECT_TRUE(engine.can_fire(1));
  engine.fire(1);
  EXPECT_EQ(engine.tokens(0), 0);
  EXPECT_TRUE(engine.drained());
}

TEST(Engine, UnderflowThrowsWithoutSideEffects) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  EXPECT_THROW(engine.fire(1), ScheduleError);
  EXPECT_EQ(engine.tokens(0), 0);
  EXPECT_EQ(engine.fired(1), 0);
}

TEST(Engine, OverflowThrowsWithoutSideEffects) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {2}, cache);
  engine.fire(0);  // buffer now full (2/2)
  EXPECT_THROW(engine.fire(0), ScheduleError);
  EXPECT_EQ(engine.tokens(0), 2);
  EXPECT_EQ(engine.fired(0), 1);
}

TEST(Engine, StateScanCostsStateOverBlockMisses) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 64);
  const NodeId b = g.add_node("b", 8);
  g.add_edge(a, b, 1, 1);
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.model_external_io = false;
  Engine engine(g, {1}, cache, opts);
  engine.fire(0);
  // 64-word state = 8 blocks + 1 block of output buffer writes.
  EXPECT_EQ(cache.stats().misses, 8 + 1);
}

TEST(Engine, RepeatedFiringReusesCachedState) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 64);
  const NodeId b = g.add_node("b", 8);
  g.add_edge(a, b, 1, 1);
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.model_external_io = false;
  Engine engine(g, {4}, cache, opts);
  engine.fire(0);
  const auto first = cache.stats().misses;
  engine.fire(0);  // everything resident
  EXPECT_EQ(cache.stats().misses, first);
}

TEST(Engine, ExternalIoCostsOneMissPerBlockOfFirings)
{
  SdfGraph g;
  const NodeId a = g.add_node("a", 8);
  const NodeId b = g.add_node("b", 8);
  g.add_edge(a, b, 1, 1);
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {1}, cache);  // external IO on by default
  std::vector<NodeId> seq;
  for (int i = 0; i < 16; ++i) {
    seq.push_back(0);
    seq.push_back(1);
  }
  const RunResult r = engine.run(seq);
  // Source reads 16 external words (2 blocks), sink writes 16 (2 blocks);
  // states (2 blocks) + channel ring (1 block) are cold-missed once.
  EXPECT_EQ(r.cache.misses, 2 + 2 + 2 + 1);
  EXPECT_EQ(r.source_firings, 16);
  EXPECT_EQ(r.sink_firings, 16);
}

TEST(Engine, RunReturnsDeltasBetweenCalls) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  const std::vector<NodeId> seq{0, 1};
  const RunResult r1 = engine.run(seq);
  const RunResult r2 = engine.run(seq);
  EXPECT_EQ(r1.firings, 2);
  EXPECT_EQ(r2.firings, 2);
  // Second run hits cache: strictly fewer misses.
  EXPECT_LT(r2.cache.misses, r1.cache.misses);
}

TEST(Engine, PerNodeAttributionSumsToTotal) {
  const auto g = ccs::workloads::uniform_pipeline(4, 32);
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, sdf::feasible_buffers(g), cache);
  std::vector<NodeId> seq;
  for (int iter = 0; iter < 3; ++iter) {
    for (NodeId v = 0; v < 4; ++v) seq.push_back(v);
  }
  const RunResult r = engine.run(seq);
  std::int64_t attributed = 0;
  for (const auto m : r.node_misses) attributed += m;
  EXPECT_EQ(attributed, r.cache.misses);
}

TEST(Engine, MissesPerInputAndOutput) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  const std::vector<NodeId> seq{0, 1};
  const RunResult r = engine.run(seq);
  EXPECT_GT(r.misses_per_input(), 0.0);
  EXPECT_GT(r.misses_per_output(), 0.0);
  EXPECT_DOUBLE_EQ(r.misses_per_input(), static_cast<double>(r.cache.misses));
}

TEST(Engine, UndersizedBufferRejectedAtConstruction) {
  const auto g = two_stage();  // rates (2,2) need capacity >= 2
  LruCache cache(CacheConfig{1024, 8});
  EXPECT_THROW(Engine(g, {1}, cache), ScheduleError);
}

TEST(Engine, ResetTokensDrainsWithoutTraffic) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  engine.fire(0);
  const auto accesses = cache.stats().accesses;
  engine.reset_tokens();
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.fired(0), 0);
  EXPECT_EQ(cache.stats().accesses, accesses);
}

TEST(Engine, StateFootprintReported) {
  const auto g = ccs::workloads::uniform_pipeline(5, 100);
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, sdf::feasible_buffers(g), cache);
  EXPECT_EQ(engine.state_footprint(), 500);
}

TEST(Engine, RebindCacheReproducesAFreshEngineExactly) {
  // The pool-reuse hook: after rebind_cache to a cold cache, a reused
  // engine must be indistinguishable counter-for-counter from a newly
  // constructed one. The pipeline's state (500 words) overflows the
  // 256-word cache so the sequence has nontrivial miss structure.
  const auto g = ccs::workloads::uniform_pipeline(5, 100);
  const auto caps = sdf::feasible_buffers(g);
  std::vector<NodeId> seq;
  for (int round = 0; round < 4; ++round) {
    for (NodeId v = 0; v < g.node_count(); ++v) seq.push_back(v);
  }

  LruCache first_cache(CacheConfig{256, 8});
  Engine engine(g, caps, first_cache);
  const RunResult fresh = engine.run(seq);
  EXPECT_GT(fresh.cache.misses, 0);

  LruCache second_cache(CacheConfig{256, 8});
  engine.rebind_cache(second_cache);
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.fired(0), 0);
  const RunResult reused = engine.run(seq);

  // Named fields first for readable failures, then the exhaustive
  // defaulted operator== (covers counters added later too).
  EXPECT_EQ(reused.cache.misses, fresh.cache.misses);
  EXPECT_EQ(reused.cache.writebacks, fresh.cache.writebacks);
  EXPECT_EQ(reused.state_misses, fresh.state_misses);
  EXPECT_EQ(reused.node_misses, fresh.node_misses);
  EXPECT_TRUE(reused == fresh);
}

TEST(Engine, RebindCacheRequiresMatchingBlockSize) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  LruCache other_block(CacheConfig{1024, 16});
  EXPECT_THROW(engine.rebind_cache(other_block), ContractViolation);
}

}  // namespace
}  // namespace ccs::runtime
