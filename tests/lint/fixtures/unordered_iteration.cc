// Fixture: iterating unordered containers must be flagged; point lookups and
// ordered-container iteration must not.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

long bad_walks() {
  std::unordered_map<int, long> weights;
  std::unordered_set<int> members;
  long sum = 0;
  for (const auto& [k, v] : weights) sum += v;  // LINT-EXPECT(unordered-iteration)
  for (const int m : members) sum += m;         // LINT-EXPECT(unordered-iteration)
  sum += std::count(members.begin(), members.end(), 3);  // LINT-EXPECT(unordered-iteration)
  return sum;
}

long good_uses() {
  std::unordered_map<int, long> weights;
  std::map<int, long> ordered;
  std::vector<int> dense;
  long sum = weights.count(7) != 0 ? weights.at(7) : 0;  // point lookup: fine
  for (const auto& [k, v] : ordered) sum += v;           // ordered walk: fine
  for (const int d : dense) sum += d;                    // vector walk: fine
  return sum;
}
