// Shared mechanics for the library's string-keyed strategy registries.
//
// The public API resolves partitioners, baseline schedulers, and workload
// factories by name (partition::Registry, schedule::Registry,
// workloads::Registry). All three need the same behaviour: registration of
// built-ins and user strategies under unique keys, recoverable errors for
// unknown or duplicate keys that spell out the valid alternatives, and
// lookups that are safe from the sweep driver's worker threads. This
// template is that behaviour; each layer instantiates it with its own entry
// type and registers its built-ins into the process-wide instance.
//
// Thread safety: add/contains/find/keys serialize on an internal mutex, so
// concurrent lookups (Experiment workers) and registrations never race.
// Entries are returned by value; invoking a retrieved strategy does not hold
// the lock, so strategies may themselves consult the registry. The mutex is
// an annotated ccs::Mutex, so clang's -Wthread-safety proves every touch of
// the entry map happens under the lock.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccs {

/// String-keyed registry of `Entry` values. `kind` names the entry family
/// ("partitioner", "scheduler", "workload") in error messages.
template <typename Entry>
class NamedRegistry {
 public:
  /// `plural` defaults to kind + "s"; pass it explicitly for irregular
  /// nouns ("policy" -> "policies").
  explicit NamedRegistry(std::string kind, std::string plural = {})
      : kind_(std::move(kind)),
        plural_(plural.empty() ? kind_ + "s" : std::move(plural)) {}

  NamedRegistry(const NamedRegistry&) = delete;
  NamedRegistry& operator=(const NamedRegistry&) = delete;

  /// Registers `entry` under `name`. Throws ccs::Error for an empty name or
  /// a key that is already taken (re-registering is almost always a linking
  /// or initialization bug; callers wanting replacement must pick new keys).
  void add(const std::string& name, Entry entry) {
    if (name.empty()) throw Error("cannot register a " + kind_ + " with an empty name");
    const MutexLock lock(mutex_);
    if (entries_.count(name) > 0) {
      throw Error(kind_ + " '" + name + "' is already registered" + known_keys_suffix());
    }
    entries_.emplace(name, std::move(entry));
  }

  /// True iff `name` is registered.
  bool contains(const std::string& name) const {
    const MutexLock lock(mutex_);
    return entries_.count(name) > 0;
  }

  /// Returns the entry registered under `name`. Throws ccs::Error listing
  /// every valid key when the name is unknown, so callers (CLI flags, sweep
  /// specs) can surface an actionable message verbatim.
  Entry find(const std::string& name) const {
    const MutexLock lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw Error("unknown " + kind_ + " '" + name + "'" + known_keys_suffix());
    }
    return it->second;
  }

  /// All registered keys in sorted order.
  std::vector<std::string> keys() const {
    const MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;
  }

  /// Number of registered entries.
  std::size_t size() const {
    const MutexLock lock(mutex_);
    return entries_.size();
  }

 private:
  std::string known_keys_suffix() const CCS_REQUIRES(mutex_) {
    if (entries_.empty()) return "; no " + plural_ + " are registered";
    std::string out = "; valid " + plural_ + ":";
    for (const auto& [name, entry] : entries_) out += " " + name;
    return out;
  }

  std::string kind_;
  std::string plural_;
  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ CCS_GUARDED_BY(mutex_);
};

}  // namespace ccs
