#!/usr/bin/env python3
"""Determinism lint for the ccs source tree.

The repo's differential tests (bulk-vs-scalar cache equivalence, threads-vs-
sequential cluster determinism, swap round-trips) all rest on one property:
given the same inputs, every simulator component produces bit-identical
output.  This lint statically rejects the usual ways that property rots:

  wall-clock          reading clocks (steady/system/high_resolution ::now,
                      time(), gettimeofday, clock_gettime) in simulator code
  raw-rand            std::rand / srand / rand() -- unseedable global state
  random-device       std::random_device -- fresh entropy per run
  unordered-iteration iterating an unordered_{map,set} (range-for or
                      explicit .begin()) -- bucket order varies across
                      libstdc++ versions and hash seeds, so any output
                      derived from the walk is unstable
  pointer-order       ordering or hashing by pointer value (std::less<T*>,
                      std::hash<T*>, reinterpret_cast<[u]intptr_t>) --
                      allocator-dependent
  uninit-serialized   a scalar member of a serialized struct (doc comment
                      mentioning pack/serialize/codec) with no initializer --
                      the packed image would leak indeterminate bytes
  float-accumulation  float/double in the latency layer (src/latency/ by
                      path, or any file declaring namespace ccs::latency) --
                      histogram and cost accumulation must be exact integer
                      arithmetic or percentiles drift across fold orders

Findings print as `path:line: [rule] message`; the exit status is the number
of findings (0 == clean).  A finding is suppressed by an allowlist marker on
the same line or the line directly above:

    // ccs-lint: allow(wall-clock)        one rule
    // ccs-lint: allow(wall-clock, raw-rand)

Usage:
    python3 tools/determinism_lint.py [paths...]       # default: src/
    python3 tools/determinism_lint.py --list-rules
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"ccs-lint:\s*allow\(([^)]*)\)")

# Simple per-line pattern rules: (rule, regex, message).
LINE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"(steady_clock|system_clock|high_resolution_clock)\s*::\s*now"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|std::time\s*\("
            r"|\bstd::clock\s*\("
        ),
        "reads a wall clock; simulator output must not depend on real time",
    ),
    (
        "raw-rand",
        re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:])rand\s*\(\s*\)"),
        "std::rand/srand is unseedable global state; use util::Rng",
    ),
    (
        "random-device",
        re.compile(r"\bstd::random_device\b"),
        "std::random_device draws fresh entropy per run; use a fixed seed",
    ),
    (
        "pointer-order",
        re.compile(
            r"std::less\s*<[^<>]*\*\s*>"
            r"|std::hash\s*<[^<>]*\*\s*>"
            r"|reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"
        ),
        "orders or hashes by pointer value, which is allocator-dependent",
    ),
]

# Rules with bespoke logic below (not LINE_RULES); shared with the self-test
# so the inventory stays in sync when a rule is added.
EXTRA_RULES = ["unordered-iteration", "uninit-serialized", "float-accumulation"]

# float-accumulation applies to the latency layer only: by path, or by
# namespace for code (fixtures, vendored copies) living elsewhere.
LATENCY_PATH_RE = re.compile(r"(?:^|[/\\])src[/\\]latency[/\\]")
LATENCY_NS_RE = re.compile(r"namespace\s+ccs::latency\b")
FLOAT_RE = re.compile(r"\b(?:float|double)\b")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:)]*:\s*(\w+)\s*\)")
BEGIN_ITER_RE = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin)\s*\(\s*\)")

SERIALIZED_DOC_RE = re.compile(r"\bpack|\bserializ|\bcodec|\bbyte image", re.IGNORECASE)
STRUCT_RE = re.compile(r"^\s*struct\s+(\w+)\s*(?:final\s*)?{")
SCALAR_MEMBER_RE = re.compile(
    r"^\s*(?:std::)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t|int|long|short|unsigned"
    r"|float|double|bool|char)\b[\w\s:]*\s(\w+)\s*;"
)


def strip_comment(line: str) -> str:
    """Drop // comments so patterns never fire on prose (string literals with
    // would be mis-stripped, but simulator code has none worth linting)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Allowlist markers on this line or the line directly above."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: pathlib.Path) -> list[tuple[pathlib.Path, int, str, str]]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"warning: cannot read {path}: {err}", file=sys.stderr)
        return []
    lines = text.splitlines()
    findings = []

    def report(idx: int, rule: str, message: str) -> None:
        if rule not in allowed_rules(lines, idx):
            findings.append((path, idx + 1, rule, message))

    # Pass 1: names of unordered containers declared anywhere in this file.
    unordered_names = set()
    for line in lines:
        code = strip_comment(line)
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    # Pass 2: line rules + unordered iteration + latency-layer floats.
    latency_layer = bool(
        LATENCY_PATH_RE.search(str(path)) or LATENCY_NS_RE.search(text)
    )
    for i, line in enumerate(lines):
        code = strip_comment(line)
        for rule, pattern, message in LINE_RULES:
            if pattern.search(code):
                report(i, rule, message)
        if latency_layer and FLOAT_RE.search(code):
            report(
                i,
                "float-accumulation",
                "float/double in the latency layer; histogram and cost "
                "accumulation must be exact integer arithmetic",
            )
        for pattern in (RANGE_FOR_RE, BEGIN_ITER_RE):
            for m in pattern.finditer(code):
                if m.group(1) in unordered_names:
                    report(
                        i,
                        "unordered-iteration",
                        f"iterates unordered container '{m.group(1)}'; bucket "
                        "order is not deterministic across stdlib versions",
                    )

    # Pass 3: uninitialized scalar members of serialized structs.  A struct
    # counts as serialized when the contiguous comment block directly above
    # its definition mentions packing/serialization.
    i = 0
    while i < len(lines):
        m = STRUCT_RE.match(lines[i])
        if not m:
            i += 1
            continue
        doc_start = i
        while doc_start > 0 and lines[doc_start - 1].lstrip().startswith("//"):
            doc_start -= 1
        doc = "\n".join(lines[doc_start:i])
        serialized = bool(SERIALIZED_DOC_RE.search(doc))
        depth = 0
        j = i
        while j < len(lines):
            code = strip_comment(lines[j])
            depth += code.count("{") - code.count("}")
            if serialized and depth == 1 and j > i:
                member = SCALAR_MEMBER_RE.match(code)
                if member and "=" not in code and "(" not in code:
                    report(
                        j,
                        "uninit-serialized",
                        f"scalar member '{member.group(1)}' of serialized "
                        f"struct '{m.group(1)}' has no initializer; packed "
                        "images would carry indeterminate bytes",
                    )
            j += 1
            if depth == 0 and j > i:
                break
        i = j if j > i else i + 1
    return findings


def collect_files(paths: list[str]) -> list[pathlib.Path]:
    files = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)
        else:
            print(f"warning: skipping non-source path {p}", file=sys.stderr)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--list-rules", action="store_true", help="print rule names and exit")
    args = parser.parse_args(argv)

    rule_names = [r for r, _, _ in LINE_RULES] + EXTRA_RULES
    if args.list_rules:
        print("\n".join(rule_names))
        return 0

    findings = []
    for path in collect_files(args.paths or ["src"]):
        findings.extend(lint_file(path))
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} determinism finding(s)", file=sys.stderr)
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
