#include "analysis/profile.h"

#include <sstream>

#include "util/contracts.h"
#include "util/table.h"

namespace ccs::analysis {

std::vector<ComponentProfile> profile_components(const sdf::SdfGraph& g,
                                                 const partition::Partition& p,
                                                 const runtime::RunResult& result) {
  CCS_EXPECTS(result.node_misses.size() == static_cast<std::size_t>(g.node_count()),
              "run result lacks per-node attribution");
  CCS_EXPECTS(p.assignment.size() == static_cast<std::size_t>(g.node_count()),
              "partition does not match graph");
  std::vector<ComponentProfile> profiles(static_cast<std::size_t>(p.num_components));
  std::int64_t total_misses = 0;
  for (std::int32_t c = 0; c < p.num_components; ++c) {
    profiles[static_cast<std::size_t>(c)].component = c;
  }
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    auto& prof = profiles[static_cast<std::size_t>(p.comp(v))];
    prof.state_words += g.node(v).state;
    prof.modules += 1;
    prof.misses += result.node_misses[static_cast<std::size_t>(v)];
    total_misses += result.node_misses[static_cast<std::size_t>(v)];
  }
  for (auto& prof : profiles) {
    prof.miss_share = total_misses > 0 ? static_cast<double>(prof.misses) /
                                             static_cast<double>(total_misses)
                                       : 0.0;
  }
  return profiles;
}

std::string format_profiles(const std::vector<ComponentProfile>& profiles) {
  Table t("per-component profile");
  t.set_header({"component", "modules", "state", "misses", "share"});
  for (const auto& prof : profiles) {
    t.add_row({Table::num(static_cast<std::int64_t>(prof.component)),
               Table::num(static_cast<std::int64_t>(prof.modules)),
               Table::num(prof.state_words), Table::num(prof.misses),
               Table::num(100.0 * prof.miss_share, 1) + "%"});
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

}  // namespace ccs::analysis
