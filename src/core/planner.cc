#include "core/planner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/lower_bound.h"
#include "schedule/partitioned.h"
#include "sdf/validate.h"
#include "util/error.h"

namespace ccs::core {

void validate_cache_geometry(const iomodel::CacheConfig& cache) {
  if (cache.block_words <= 0) {
    throw MemoryError("cache block size must be positive");
  }
  if (cache.capacity_words < cache.block_words) {
    throw MemoryError("cache must hold at least one block (capacity " +
                      std::to_string(cache.capacity_words) + " words, block " +
                      std::to_string(cache.block_words) + " words)");
  }
}

namespace {

// Runs the session's one-time validation (cache geometry, then the paper's
// model assumptions) and hands the graph on to the GainMap member, so a
// Planner that constructed successfully needs no further checks.
const sdf::SdfGraph& validate_session(const sdf::SdfGraph& g, const PlannerOptions& options) {
  validate_cache_geometry(options.cache);
  sdf::ValidationOptions validation;
  validation.max_module_state = options.cache.capacity_words;
  sdf::validate_or_throw(g, validation);
  return g;
}

}  // namespace

Planner::Planner(sdf::SdfGraph graph, PlannerOptions options,
                 const partition::Registry* registry)
    : graph_(std::move(graph)),
      options_(std::move(options)),
      registry_(registry != nullptr ? registry : &partition::Registry::global()),
      gains_(validate_session(graph_, options_)) {}

partition::StrategyContext Planner::strategy_context() const {
  partition::StrategyContext ctx;
  ctx.cache_words = options_.cache.capacity_words;
  ctx.state_bound = static_cast<std::int64_t>(
      options_.c_bound * static_cast<double>(options_.cache.capacity_words));
  ctx.exact_max_nodes = options_.exact_max_nodes;
  ctx.seed = options_.seed;
  return ctx;
}

std::string Planner::resolve_auto() const {
  if (graph_.is_pipeline()) return "pipeline-dp";
  if (graph_.node_count() <= options_.exact_max_nodes) return "exact";
  return "dag-refined";
}

Plan Planner::plan() const { return plan(options_.partitioner); }

Plan Planner::plan(const std::string& partitioner) const {
  const std::string name = partitioner == "auto" ? resolve_auto() : partitioner;

  Plan out;
  out.partition = registry_->build(name, graph_, strategy_context());
  out.partitioner_name = name;

  schedule::PartitionedOptions sched;
  sched.m = options_.cache.capacity_words;
  sched.t_multiplier = options_.t_multiplier;
  out.batch_t = schedule::compute_batch_t(graph_, sched);
  out.schedule = schedule::partitioned_schedule(graph_, out.partition, sched);
  out.schedule.name = "partitioned/" + out.partitioner_name;

  out.partition_bandwidth = partition::bandwidth(graph_, gains_, out.partition);
  out.predicted = analysis::predict_partitioned_cost(graph_, out.partition, out.batch_t,
                                                     options_.cache.block_words);
  return out;
}

std::vector<Plan> Planner::plan_all() const {
  std::vector<Plan> out;
  for (const std::string& name : registry_->applicable_keys(graph_, strategy_context())) {
    out.push_back(plan(name));
  }
  return out;
}

std::optional<Rational> Planner::lower_bound_bandwidth() const {
  const MutexLock lock(lower_bound_mutex_);
  if (!lower_bound_computed_) {
    // Theorem 3 for pipelines / Theorems 7 and 10 for dags, both expressed
    // as a minimum bandwidth: every schedule pays Omega((T/B) * bw). For
    // pipelines the DP is polynomial; for dags the exact solver bails out
    // (nullopt) above the node budget rather than going exponential.
    lower_bound_bw_ = analysis::dag_min_bandwidth_3m(graph_, options_.cache.capacity_words,
                                                     options_.exact_max_nodes);
    lower_bound_computed_ = true;
  }
  return lower_bound_bw_;
}

std::vector<StrategyComparison> Planner::compare() const {
  const std::optional<Rational> bound = lower_bound_bandwidth();
  std::vector<StrategyComparison> out;
  std::vector<Plan> plans = plan_all();
  for (Plan& plan : plans) {
    StrategyComparison row;
    row.partitioner = plan.partitioner_name;
    row.predicted_misses_per_input = plan.predicted.misses_per_input;
    if (bound.has_value()) {
      row.has_lower_bound = true;
      // Per input: (T/B * bw) / T = bw / B.
      row.lower_bound_misses_per_input =
          bound->to_double() / static_cast<double>(options_.cache.block_words);
    }
    row.plan = std::move(plan);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const StrategyComparison& a, const StrategyComparison& b) {
    return a.predicted_misses_per_input < b.predicted_misses_per_input ||
           (a.predicted_misses_per_input == b.predicted_misses_per_input &&
            a.partitioner < b.partitioner);
  });
  return out;
}

std::string explain(const sdf::SdfGraph& g, const Plan& plan) {
  std::ostringstream os;
  os << "plan for " << g << "\n"
     << "  partitioner : " << plan.partitioner_name << "\n"
     << "  components  : " << plan.partition.num_components << " (bandwidth "
     << plan.partition_bandwidth << ")\n"
     << "  batch T     : " << plan.batch_t << " source firings per component load\n"
     << "  period      : " << plan.schedule.period.size() << " firings, "
     << plan.schedule.outputs_per_period << " outputs\n"
     << "  buffers     : " << plan.schedule.total_buffer_words() << " words total\n"
     << "  predicted   : " << plan.predicted.misses_per_input
     << " misses/input (state " << plan.predicted.state_term << " + buffers "
     << plan.predicted.buffer_term << " + cross " << plan.predicted.cross_term
     << " per batch)\n";
  const auto states = partition::component_states(g, plan.partition);
  const auto comps = plan.partition.components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    os << "  V" << c << " (" << states[c] << " words):";
    for (const sdf::NodeId v : comps[c]) os << " " << g.node(v).name;
    os << "\n";
  }
  return os.str();
}

}  // namespace ccs::core
