// Fixture: scalar members of serialized structs need initializers.
#include <cstdint>
#include <vector>

// Packed into a compact byte image by the swap-tier codec (serialized).
struct BadSnapshot {
  std::vector<std::int64_t> counts;  // containers default-construct: fine
  std::int64_t steps;       // LINT-EXPECT(uninit-serialized)
  double rate;              // LINT-EXPECT(uninit-serialized)
  bool live = false;        // initialized: fine
};

// Same shape but purely in-memory scratch state; must NOT be flagged.
struct ScratchState {
  std::int64_t cursor;
  double weight;
};
