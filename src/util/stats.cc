#include "util/stats.h"

#include <algorithm>

#include "util/contracts.h"

namespace ccs {

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    CCS_EXPECTS(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(values.begin(),
                                      values.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

double busy_imbalance(const std::vector<std::int64_t>& busy) {
  if (busy.empty()) return 0.0;
  std::int64_t total = 0;
  std::int64_t worst = 0;
  for (const std::int64_t b : busy) {
    total += b;
    worst = std::max(worst, b);
  }
  if (total == 0) return 0.0;
  const double average = static_cast<double>(total) / static_cast<double>(busy.size());
  return static_cast<double>(worst) / average;
}

}  // namespace ccs
