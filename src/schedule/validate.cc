#include "schedule/validate.h"

#include "schedule/token_sim.h"
#include "util/error.h"

namespace ccs::schedule {

ScheduleReport check_schedule(const sdf::SdfGraph& g, const Schedule& s,
                              std::int32_t repeats) {
  ScheduleReport report;
  if (s.period.empty()) {
    report.problem = "empty period";
    return report;
  }
  if (s.buffer_caps.size() != static_cast<std::size_t>(g.edge_count())) {
    report.problem = "buffer capacity vector does not match edge count";
    return report;
  }
  try {
    TokenSim sim(g, s.buffer_caps);
    std::int64_t prev_source = 0;
    std::int64_t prev_sink = 0;
    const sdf::NodeId source = g.sources().front();
    const sdf::NodeId sink = g.sinks().front();
    for (std::int32_t r = 0; r < repeats; ++r) {
      for (const sdf::NodeId v : s.period) sim.fire(v, 1);
      if (!sim.drained()) {
        report.problem = "channels not drained at end of period " + std::to_string(r + 1);
        return report;
      }
      const std::int64_t src_delta = sim.fired(source) - prev_source;
      const std::int64_t sink_delta = sim.fired(sink) - prev_sink;
      if (src_delta != s.inputs_per_period) {
        report.problem = "declared " + std::to_string(s.inputs_per_period) +
                         " inputs per period, replay consumed " + std::to_string(src_delta);
        return report;
      }
      if (sink_delta != s.outputs_per_period) {
        report.problem = "declared " + std::to_string(s.outputs_per_period) +
                         " outputs per period, replay produced " + std::to_string(sink_delta);
        return report;
      }
      prev_source = sim.fired(source);
      prev_sink = sim.fired(sink);
    }
    report.peak.resize(static_cast<std::size_t>(g.edge_count()));
    for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
      report.peak[static_cast<std::size_t>(e)] = sim.peak(e);
    }
    report.source_firings = s.inputs_per_period;
    report.sink_firings = s.outputs_per_period;
    report.ok = true;
  } catch (const Error& e) {
    report.problem = e.what();
  }
  return report;
}

}  // namespace ccs::schedule
