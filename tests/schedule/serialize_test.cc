#include "schedule/serialize.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "schedule/naive.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

TEST(ScheduleSerialize, RoundTripPreservesEverything) {
  const auto g = ccs::workloads::fm_radio(4);
  const auto original = naive_minimal_buffer_schedule(g);
  const auto parsed = from_text(g, to_text(g, original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.period, original.period);
  EXPECT_EQ(parsed.buffer_caps, original.buffer_caps);
  EXPECT_EQ(parsed.inputs_per_period, original.inputs_per_period);
  EXPECT_EQ(parsed.outputs_per_period, original.outputs_per_period);
}

TEST(ScheduleSerialize, RoundTrippedScheduleStillValidates) {
  const auto g = ccs::workloads::filter_bank(4);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 1024;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const auto parsed = from_text(g, to_text(g, plan.schedule));
  EXPECT_TRUE(check_schedule(g, parsed).ok);
}

TEST(ScheduleSerialize, UnknownModuleRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  const auto s = naive_minimal_buffer_schedule(g);
  auto text = to_text(g, s);
  // Parse against a *different* graph whose names don't match.
  const auto other = ccs::workloads::des(2);
  EXPECT_THROW(from_text(other, text), Error);
}

TEST(ScheduleSerialize, BufferArityMismatchRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g,
                         "schedule x\ninputs 1\noutputs 1\nbuffers 1 2\nperiod AtoD\n"),
               Error);
}

TEST(ScheduleSerialize, MissingPeriodRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g, "schedule x\ninputs 1\noutputs 1\n"), ParseError);
}

TEST(ScheduleSerialize, GarbageLineRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g, "bogus\n"), ParseError);
}

TEST(ParallelJson, CarriesEveryCounterLosslessly) {
  ParallelResult r;
  r.workers = 2;
  r.makespan = 62848;
  r.total_misses = 68461;
  r.total_firings = 109568;
  r.outputs = 4096;
  r.worker_misses = {36290, 32171};
  r.worker_busy = {62976, 46592};
  r.worker_batches = {132, 131};
  r.llc.accesses = 68461;
  r.llc.hits = 66985;
  r.llc.misses = 1476;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"workers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\": 62848"), std::string::npos);
  EXPECT_NE(json.find("\"total_misses\": 68461"), std::string::npos);
  EXPECT_NE(json.find("\"worker_misses\": [36290, 32171]"), std::string::npos);
  EXPECT_NE(json.find("\"worker_busy\": [62976, 46592]"), std::string::npos);
  EXPECT_NE(json.find("\"worker_batches\": [132, 131]"), std::string::npos);
  EXPECT_NE(json.find("\"llc\": {\"accesses\": 68461, \"hits\": 66985, "
                      "\"misses\": 1476, \"writebacks\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"imbalance\": "), std::string::npos);
}

TEST(ParallelJson, IsRepeatRunStableForIdenticalResults) {
  // The CI determinism job diffs these byte-for-byte: identical results
  // must serialize identically, and distinct results must not.
  ParallelResult a;
  a.workers = 1;
  a.worker_busy = {10};
  a.worker_misses = {3};
  a.worker_batches = {1};
  ParallelResult b = a;
  EXPECT_EQ(to_json(a), to_json(b));
  b.worker_misses = {4};
  EXPECT_NE(to_json(a), to_json(b));
}

}  // namespace
}  // namespace ccs::schedule
