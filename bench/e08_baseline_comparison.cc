// E8 -- head-to-head with the literature baselines (Section 6).
//
// Schedulers: naive steady state, Sermulins-style execution scaling [25],
// Kohli-style greedy [15] (pipelines only), and this paper's partitioned
// scheduler. Per app, the cache is set to a quarter of total state so the
// working set never fits. Expected shape: partitioned wins everywhere;
// >=4x over naive on the cache-hostile apps reproduces the magnitude Moonen
// et al. [21] report for cache-aware scheduling on real workloads.

#include "bench/common.h"
#include "schedule/kohli.h"
#include "schedule/naive.h"
#include "schedule/scaled.h"
#include "util/stats.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t b = 8;
  const std::int64_t outputs = 1024;

  Table t("E8: baselines vs partitioned on StreamIt-style apps (M=state/4, B=8, sim 4M)");
  t.set_header({"app", "M", "naive", "scaled", "kohli", "partitioned", "naive/part"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight});
  std::vector<double> reductions;
  for (const auto& app : workloads::streamit_suite()) {
    const auto& g = app.graph;
    const std::int64_t m = std::max(g.total_state() / 4, g.max_state());
    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const auto r_naive =
        bench::run(g, schedule::naive_minimal_buffer_schedule(g), 4 * m, b, outputs);
    const auto r_scaled = bench::run(g, schedule::scaled_schedule(g, m), 4 * m, b, outputs);
    std::string kohli_cell = "-";
    if (g.is_pipeline()) {
      const auto r_kohli = bench::run(g, schedule::kohli_schedule(g, m), 4 * m, b, outputs);
      kohli_cell = Table::num(r_kohli.misses_per_output(), 2);
    }
    const auto r_part = bench::run(g, plan.schedule, 4 * m, b, outputs);
    const double reduction = r_part.misses_per_output() > 0
                                 ? r_naive.misses_per_output() / r_part.misses_per_output()
                                 : 0.0;
    if (reduction > 0) reductions.push_back(reduction);
    t.add_row({app.name, Table::num(m), Table::num(r_naive.misses_per_output(), 2),
               Table::num(r_scaled.misses_per_output(), 2), kohli_cell,
               Table::num(r_part.misses_per_output(), 2), Table::ratio(reduction, 1)});
  }
  bench::emit(t, argc, argv);
  std::cout << "geometric-mean miss reduction vs naive: "
            << Table::ratio(geometric_mean(reductions), 2) << "\n";
  return 0;
}
