#include "workloads/registry.h"

#include <gtest/gtest.h>

#include "sdf/validate.h"
#include "util/error.h"

namespace ccs::workloads {
namespace {

TEST(WorkloadRegistry, EveryBuiltinBuildsAValidGraph) {
  auto& r = Registry::global();
  EXPECT_GE(r.keys().size(), 17u);  // 12 suite apps + 5 parametric families
  for (const auto& name : r.keys()) {
    const auto g = r.build(name);
    EXPECT_GT(g.node_count(), 0) << name;
    EXPECT_TRUE(sdf::validate(g, sdf::ValidationOptions{}).empty()) << name;
  }
}

TEST(WorkloadRegistry, FactoriesAreDeterministic) {
  auto& r = Registry::global();
  // Randomized generators are registered with fixed seeds: two builds of
  // the same key must be structurally identical (sweep reproducibility
  // depends on this).
  for (const std::string name : {"layered-dag", "series-parallel-dag", "FMRadio"}) {
    const auto a = r.build(name);
    const auto b = r.build(name);
    ASSERT_EQ(a.node_count(), b.node_count()) << name;
    ASSERT_EQ(a.edge_count(), b.edge_count()) << name;
    for (sdf::NodeId v = 0; v < a.node_count(); ++v) {
      EXPECT_EQ(a.node(v).state, b.node(v).state) << name;
      EXPECT_EQ(a.node(v).name, b.node(v).name) << name;
    }
    for (sdf::EdgeId e = 0; e < a.edge_count(); ++e) {
      EXPECT_EQ(a.edge(e).src, b.edge(e).src) << name;
      EXPECT_EQ(a.edge(e).dst, b.edge(e).dst) << name;
      EXPECT_EQ(a.edge(e).out_rate, b.edge(e).out_rate) << name;
      EXPECT_EQ(a.edge(e).in_rate, b.edge(e).in_rate) << name;
    }
  }
}

TEST(WorkloadRegistry, UnknownKeyErrorListsValidKeys) {
  try {
    Registry::global().build("NoSuchApp");
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown workload 'NoSuchApp'"), std::string::npos) << what;
    EXPECT_NE(what.find("FMRadio"), std::string::npos) << what;
    EXPECT_NE(what.find("uniform-pipeline"), std::string::npos) << what;
  }
}

TEST(WorkloadRegistry, CustomFactoryRoundTrips) {
  Registry r;
  register_builtin_workloads(r);
  r.add("two-stage", {[] {
                        sdf::SdfGraph g;
                        const auto a = g.add_node("a", 16);
                        const auto b = g.add_node("b", 16);
                        g.add_edge(a, b, 1, 1);
                        return g;
                      },
                      "minimal custom app"});
  const auto g = r.build("two-stage");
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_THROW(r.add("two-stage", {nullptr, "dup"}), Error);
  EXPECT_FALSE(Registry::global().contains("two-stage"));
}

}  // namespace
}  // namespace ccs::workloads
