// Multicore serving cluster: Stream sessions sharded over private worker
// caches with affinity-aware placement.
//
//   $ ./cluster_server [--workers=2] [--tenants=4] [--placement=affinity]
//                      [--l1-words=4096] [--llc-words=32768] [--llc-shards=0]
//                      [--ticks=64] [--arrival=bursty-64]
//                      [--rebalance-every=8] [--mode=both]
//                      [--cost-model=uniform] [--slo-p99=0]
//                      [--max-live-sessions=0] [--swap]
//                      [--churn=0] [--churn-max-live=8]
//                      [--no-auto-migrate] [--json]
//
// Demonstrates: core::Cluster admitting sessions onto a runtime::WorkerPool
// (per-worker private L1 over a shared LLC), the four built-in placement
// policies (including "adaptive", which watches footprints and migrates on
// its own), periodic rebalancing (migration pays real reload misses), and
// the two execution modes -- deterministic virtual time and real
// std::thread workers -- whose per-tenant counters must agree (--mode=both
// verifies this and exits nonzero on a mismatch). --no-auto-migrate pins
// adaptive placement to its never-fire baseline, which must reproduce
// --placement=affinity exactly.
//
// Session lifecycle: --max-live-sessions=N switches admission to
// "bounded-live" with budget N; --swap enables the idle-session swap tier.
// --churn=N replaces the steady tick loop with a deterministic
// open/push/close trace of N logical sessions (at most --churn-max-live
// open at once; virtual time only): sessions are admitted, served in
// bursts, and closed forever, so the report's `retired` aggregate carries
// the work and `lifecycle` records peak_live -- run it at N in the
// thousands to watch memory stay O(live). With --swap the churn loop sheds
// every idle session at each quiescent point (aggressive eviction), and the
// report -- minus the one-line "lifecycle" accounting -- must be
// byte-identical to the swap-off run (the CI churn gate).

#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"
#include "core/planner.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace {

struct TenantSpec {
  std::string name;
  ccs::sdf::SdfGraph graph;
  ccs::partition::Partition partition;
};

/// Runs a churn lifecycle trace (open / bursty push / close) in virtual
/// time. Logical session s runs the shape at s % specs.size(); with the
/// swap tier on, every quiescent point evicts all idle sessions so each
/// later burst pays (and verifies) a rehydration.
ccs::core::ClusterReport serve_churn(const std::vector<TenantSpec>& specs,
                                     const ccs::core::ClusterOptions& opts,
                                     std::int64_t m, std::int64_t sessions,
                                     std::int64_t max_live) {
  using namespace ccs;
  core::Cluster cluster(opts);
  workloads::ChurnOptions churn;
  churn.sessions = sessions;
  churn.max_concurrent = max_live;
  std::unordered_map<std::int64_t, core::TenantId> live;
  for (const workloads::SessionEvent& e : workloads::churn_trace(churn)) {
    switch (e.kind) {
      case workloads::SessionEvent::Kind::kOpen: {
        const TenantSpec& spec =
            specs[static_cast<std::size_t>(e.session) % specs.size()];
        const core::TenantId id =
            cluster.admit("sess-" + std::to_string(e.session), spec.graph,
                          spec.partition, {}, m);
        if (id == core::kNoTenant) {
          throw Error("admission rejected churn session " +
                      std::to_string(e.session) +
                      "; raise --max-live-sessions or add --swap");
        }
        live.emplace(e.session, id);
        break;
      }
      case workloads::SessionEvent::Kind::kPush:
        cluster.push(live.at(e.session), e.items);
        cluster.run_until_idle();
        if (opts.swap) cluster.swap_out_idle();
        break;
      case workloads::SessionEvent::Kind::kClose:
        cluster.close(live.at(e.session));
        live.erase(e.session);
        break;
    }
  }
  cluster.drain_all();
  return cluster.report();
}

/// Runs the whole serving scenario in one execution mode.
ccs::core::ClusterReport serve(const std::vector<TenantSpec>& specs,
                               const ccs::core::ClusterOptions& opts, std::int64_t m,
                               const ccs::workloads::ArrivalPattern& arrival,
                               std::int64_t ticks, std::int64_t rebalance_every,
                               std::int64_t stagger, bool threads) {
  using namespace ccs;
  core::Cluster cluster(opts);
  // Staggering shifts tenant i's arrivals by i*stagger ticks, so bursts
  // land out of phase and different workers overlap different tenants.
  std::vector<workloads::ArrivalPattern> patterns;
  for (const TenantSpec& spec : specs) {
    cluster.admit(spec.name, spec.graph, spec.partition, {}, m);
    patterns.push_back(workloads::phase_shift_arrivals(
        arrival, stagger * static_cast<std::int64_t>(patterns.size())));
  }
  for (std::int64_t tick = 0; tick < ticks; ++tick) {
    for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, patterns[static_cast<std::size_t>(t)](tick));
    }
    if (rebalance_every > 0 && tick % rebalance_every == 0) cluster.rebalance();
    if (threads) {
      cluster.run_threads();
    } else {
      cluster.run_until_idle();
    }
  }
  cluster.drain_all();
  return cluster.report();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("cluster_server", "multicore serving over sharded worker caches");
  args.add_int("workers", 2, "worker (core) count");
  args.add_int("tenants", 4, "streaming sessions to admit (max 16)");
  args.add_string("placement", "round-robin",
                  "placement policy (round-robin, least-loaded, affinity, adaptive)");
  args.add_int("l1-words", 4096, "per-worker private cache size in words");
  args.add_int("llc-words", 32768, "shared LLC size in words (0 = none)");
  args.add_int("llc-shards", 0,
               "LLC lock stripes (power of two; 0 = single-mutex flat LLC)");
  args.add_int("plan-words", 1024, "cache share M each tenant plans for");
  args.add_int("ticks", 64, "arrival ticks to serve");
  args.add_string("arrival", "bursty-64", "arrival pattern (ArrivalRegistry key)");
  args.add_int("stagger", 0, "per-tenant arrival phase shift (tenant i waits i*stagger ticks)");
  args.add_int("rebalance-every", 8, "ticks between placement rebalances (0 = never)");
  args.add_string("mode", "both", "virtual, threads, or both (verify agreement)");
  args.add_string("cost-model", "uniform",
                  "latency cost model (CostModelRegistry key: uniform, "
                  "two-level, llc-shared)");
  args.add_int("slo-p99", 0,
               "per-step p99 latency target in modeled cycles (0 = no SLO); "
               "reports per-tenant attainment");
  args.add_int("max-live-sessions", 0,
               "bounded-live admission budget (0 = unbounded admission)");
  args.add_flag("swap", "enable the idle-session swap tier (serialize idle "
                        "sessions; rehydrate transparently on the next push)");
  args.add_int("churn", 0,
               "churn mode: serve this many logical open/push/close sessions "
               "instead of the steady tick loop (virtual time only)");
  args.add_int("churn-max-live", 8, "concurrent-open bound of the churn trace");
  args.add_flag("no-auto-migrate",
                "disable adaptive placement's automatic migration triggers "
                "(the never-fire differential baseline)");
  args.add_flag("json", "emit the deterministic virtual-time report as JSON");
  try {
    if (!args.parse(argc, argv)) return 0;
    const std::string mode = args.get_string("mode");
    if (mode != "virtual" && mode != "threads" && mode != "both") {
      throw Error("unknown --mode '" + mode + "'; valid modes: virtual threads both");
    }
    core::ClusterOptions opts;
    opts.workers = static_cast<std::int32_t>(args.get_int("workers"));
    opts.l1 = {args.get_int("l1-words"), 8};
    opts.llc_words = args.get_int("llc-words");
    opts.llc_shards = static_cast<std::int32_t>(args.get_int("llc-shards"));
    opts.placement = args.get_string("placement");
    opts.cost_model = args.get_string("cost-model");
    opts.slo_p99 = args.get_int("slo-p99");
    if (args.get_flag("no-auto-migrate")) {
      opts.adaptive = placement::never_fire_adaptive();
    }
    if (args.get_int("max-live-sessions") > 0) {
      opts.admission = "bounded-live";
      opts.budget.max_live_sessions = args.get_int("max-live-sessions");
    }
    opts.swap = args.get_flag("swap");
    const std::int64_t m = args.get_int("plan-words");
    const std::int64_t ticks = args.get_int("ticks");
    const std::int64_t rebalance_every = args.get_int("rebalance-every");
    const auto arrival =
        workloads::ArrivalRegistry::global().build(args.get_string("arrival"));

    // Tenants cycle through three pipeline shapes: deep uniform, heavy
    // tailed, short and fat -- different working sets for placement to keep
    // (or fail to keep) cache-resident.
    core::PlannerOptions popts;
    popts.cache.capacity_words = m;
    popts.cache.block_words = 8;
    const std::vector<std::pair<std::string, sdf::SdfGraph>> shapes = {
        {"deep-uniform", workloads::uniform_pipeline(20, 150)},
        {"heavy-tail", workloads::heavy_tail_pipeline(16, 48, 500, 4)},
        {"short-fat", workloads::uniform_pipeline(6, 600)}};
    std::vector<TenantSpec> specs;
    const auto tenants = args.get_int("tenants");
    for (std::int64_t i = 0; i < tenants; ++i) {
      const auto& [shape, graph] = shapes[static_cast<std::size_t>(i) % shapes.size()];
      const core::Planner planner(graph, popts);
      specs.push_back({shape + "-" + std::to_string(i), graph,
                       planner.plan("pipeline-dp").partition});
    }

    core::ClusterReport report;  // the one printed below
    const std::int64_t churn = args.get_int("churn");
    if (churn > 0) {
      report = serve_churn(specs, opts, m, churn, args.get_int("churn-max-live"));
      if (args.get_flag("json")) {
        report.write_json(std::cout);
      } else {
        const auto& life = report.lifecycle;
        std::cout << churn << " logical sessions over " << opts.workers
                  << " workers (" << opts.placement << ", admission "
                  << opts.admission << (opts.swap ? ", swap tier on" : "")
                  << ")\n"
                  << "opened " << life.sessions_opened << ", closed "
                  << life.sessions_closed << ", peak live " << life.peak_live
                  << " (peak resident " << life.peak_resident_words
                  << " words), " << life.swap_outs << " swap-outs / "
                  << life.swap_ins << " swap-ins\n"
                  << "retired aggregate: " << report.retired.cache.misses
                  << " misses / " << report.retired.cache.accesses
                  << " accesses, " << report.retired.sink_firings
                  << " outputs -- memory stays O(live) while the work of "
                  << "every closed session survives in `retired`.\n";
      }
      return 0;
    }
    if (mode == "virtual" || mode == "both") {
      report = serve(specs, opts, m, arrival, ticks, rebalance_every,
                     args.get_int("stagger"), false);
    }
    if (mode == "threads" || mode == "both") {
      const core::ClusterReport threaded =
          serve(specs, opts, m, arrival, ticks, rebalance_every,
                args.get_int("stagger"), true);
      if (mode == "threads") {
        report = threaded;
      } else {
        // The determinism contract: per-tenant counters (private-L1 level)
        // are bit-identical across modes, so their sums agree too. Only the
        // shared-LLC hit/miss split may differ under real interleaving.
        for (std::size_t i = 0; i < report.tenants.size(); ++i) {
          if (threaded.tenants[i].totals != report.tenants[i].totals ||
              threaded.tenants[i].worker != report.tenants[i].worker) {
            std::cerr << "error: thread-mode counters for tenant '"
                      << report.tenants[i].name
                      << "' diverged from virtual time\n";
            return 1;
          }
        }
        if (threaded.aggregate != report.aggregate) {
          std::cerr << "error: thread-mode aggregate diverged from virtual time\n";
          return 1;
        }
      }
    }

    if (args.get_flag("json")) {
      report.write_json(std::cout);
      return 0;
    }

    Table tenants_table(std::to_string(specs.size()) + " tenants on " +
                        std::to_string(opts.workers) + " workers (" + opts.placement +
                        ", " + args.get_string("arrival") + ", " + mode + " mode)");
    tenants_table.set_header({"tenant", "worker", "migr", "steps", "outputs", "misses",
                              "miss/out", "p99"});
    tenants_table.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                             Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (const auto& row : report.tenants) {
      tenants_table.add_row(
          {row.name, Table::num(static_cast<std::int64_t>(row.worker)),
           Table::num(row.migrations), Table::num(row.steps), Table::num(row.outputs),
           Table::num(row.totals.cache.misses),
           Table::num(row.totals.misses_per_output(), 3),
           Table::num(row.totals.latency.p99())});
    }
    tenants_table.print(std::cout);

    Table workers_table("per-worker occupancy");
    workers_table.set_header({"worker", "tenants", "busy", "steps", "L1 misses"});
    for (std::size_t w = 0; w < report.workers.size(); ++w) {
      const auto& row = report.workers[w];
      workers_table.add_row({Table::num(static_cast<std::int64_t>(w)),
                             Table::num(static_cast<std::int64_t>(row.tenants)),
                             Table::num(row.busy), Table::num(row.steps),
                             Table::num(row.l1.misses)});
    }
    std::cout << "\n";
    workers_table.print(std::cout);

    std::cout << "\nlatency (" << report.cost_model << " model): p50 "
              << report.aggregate.latency.p50() << " / p95 "
              << report.aggregate.latency.p95() << " / p99 "
              << report.aggregate.latency.p99() << " / max "
              << report.aggregate.latency.max() << " modeled cycles per step\n";
    if (report.slo_p99 > 0) {
      std::int64_t within = 0;
      std::vector<std::string> violators;
      for (const auto& row : report.tenants) {
        if (row.totals.latency.p99() <= report.slo_p99) {
          ++within;
        } else {
          violators.push_back(row.name);
        }
      }
      std::cout << "SLO p99 <= " << report.slo_p99 << ": " << within << "/"
                << report.tenants.size() << " tenants within target";
      if (!violators.empty()) {
        std::cout << " (violated by";
        for (const std::string& name : violators) std::cout << " " << name;
        std::cout << ")";
      }
      std::cout << "\n";
    }
    std::cout << "\nmakespan " << report.makespan() << " (imbalance "
              << Table::num(report.imbalance(), 2) << "), " << report.migrations
              << " migrations (" << report.auto_migrations
              << " adaptive-triggered), LLC " << report.llc.misses << " misses / "
              << report.llc.accesses << " accesses\n"
              << "Placement decides which private L1 a session's working set lives\n"
                 "in: affinity keeps it warm, least-loaded chases busy-time balance\n"
                 "and pays reload misses on every move (the paper's §7 trade);\n"
                 "adaptive watches live footprints and sheds hot sessions when a\n"
                 "worker's L1 is oversubscribed.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
