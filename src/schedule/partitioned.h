// The paper's two-level partitioned scheduler (Section 3).
//
// Given a well-ordered partition whose components fit in cache, schedule at
// batch granularity T (source firings per batch):
//  * T is chosen so that for every edge, T*gain(e) is integral, divisible
//    by both endpoint rates, and at least M -- then all progeny of the T
//    source firings can flow through the whole dag and drain completely;
//  * every cross edge gets a buffer of exactly T*gain(e) tokens;
//  * every internal edge keeps its minimal feasible buffer;
//  * the high level loads each component exactly once per batch, in
//    topological order; the low level runs the component's own steady-state
//    iterations back to back until its share of the batch is done.
//
// For homogeneous graphs this degenerates to the paper's simple form: T = M,
// unit internal buffers, and each component's low level is "fire each module
// once in topological order, M times over".
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Knobs for the partitioned scheduler.
struct PartitionedOptions {
  std::int64_t m = 64 * 1024;     ///< Cache size (words); sets the batch floor.
  std::int64_t t_multiplier = 1;  ///< Scale the batch beyond the minimum legal T.
};

/// Builds the batch schedule. The partition must be well ordered; it is
/// renumbered topologically internally. Throws ccs::Error on infeasible
/// inputs and DeadlockError if a component cannot complete its share (which
/// would indicate an invalid partition/buffer combination).
Schedule partitioned_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                              const PartitionedOptions& options);

/// The batch granularity the scheduler would use (exposed for tests and the
/// E7 sweep).
std::int64_t compute_batch_t(const sdf::SdfGraph& g, const PartitionedOptions& options);

}  // namespace ccs::schedule
