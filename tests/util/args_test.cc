#include "util/args.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ccs {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test parser");
  p.add_int("n", 10, "count");
  p.add_double("ratio", 0.5, "fraction");
  p.add_string("name", "default", "label");
  p.add_flag("verbose", "chatty");
  return p;
}

TEST(Args, DefaultsApplyWithoutFlags) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(Args, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=42", "--ratio=0.25", "--name=xyz", "--verbose"};
  EXPECT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.25);
  EXPECT_EQ(p.get_string("name"), "xyz");
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(Args, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n", "7"};
  EXPECT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("n"), 7);
}

TEST(Args, UnknownFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(Args, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(Args, NonNumericValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(Args, FlagWithValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(Args, PositionalArgumentThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(Args, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Args, UsageListsAllFlags) {
  auto p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("--ratio"), std::string::npos);
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace ccs
