// The constructive partition of Theorem 5.
//
// Walk the pipeline from source to sink accreting segments W1, W2, ... of
// total state just above 2M (appending the tail to the last segment if less
// than 2M remains). Within each Wi, cut at the *gain-minimizing* edge.
// The induced partition {Vi} has components of state at most 8M, and the
// paper proves its bandwidth lower-bounds every schedule's cost (Theorem 3
// applied to the Wi) while a partitioned schedule achieves it (Lemma 4) --
// the heart of the pipeline optimality result.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::partition {

/// One accreted segment [first, last] (inclusive positions in chain order).
struct ChainSegment {
  std::int32_t first = 0;
  std::int32_t last = 0;
};

/// Output of the Theorem 5 construction: the partition, the 2M-segments it
/// was built from (these witness the lower bound), and the cut edges (the
/// gain-minimizing edge of each segment).
struct PipelineGreedyResult {
  Partition partition;
  std::vector<ChainSegment> segments;   ///< the Wi, in chain positions
  std::vector<sdf::EdgeId> cut_edges;   ///< gainMin(Wi) for each cut
};

/// Runs the construction with cache size M. Requires a pipeline whose
/// modules each have state <= M (the paper's standing assumption); throws
/// GraphError / ccs::Error otherwise.
PipelineGreedyResult pipeline_greedy_partition(const sdf::SdfGraph& g, std::int64_t m);

}  // namespace ccs::partition
