// latency::Histogram exactness properties: integer-only accumulation,
// associative/commutative merge, boundary-exact quantiles, and the
// from_state validation the swap codec relies on.

#include "latency/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.h"
#include "util/error.h"
#include "util/rng.h"

namespace ccs::latency {
namespace {

TEST(Histogram, BucketOfMatchesLog2Boundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  // Bucket k >= 1 spans [2^(k-1), 2^k - 1]; its floor is its first value.
  for (std::int32_t k = 1; k < Histogram::kBucketCount; ++k) {
    const std::int64_t lo = Histogram::bucket_floor(k);
    EXPECT_EQ(Histogram::bucket_of(lo), k) << k;
    EXPECT_EQ(Histogram::bucket_of(lo - 1), k - 1) << k;
  }
  EXPECT_EQ(Histogram::bucket_floor(0), 0);
}

TEST(Histogram, EmptyReportsZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.quantile_permille(1000), 0);
}

TEST(Histogram, RecordTracksCountSumMax) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(1024);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 1029);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(h.bucket(0), 1);                         // the 0 sample
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 1);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(1024)), 1);
}

TEST(Histogram, QuantilesAreExactAtBucketBoundaries) {
  // 100 samples, all exactly at bucket floors: every quantile must report
  // the recorded value itself, not an approximation.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(64);    // bucket floor 64
  for (int i = 0; i < 45; ++i) h.record(256);   // bucket floor 256
  for (int i = 0; i < 5; ++i) h.record(4096);   // bucket floor 4096
  EXPECT_EQ(h.p50(), 64);     // rank 50 falls in the 64-bucket
  EXPECT_EQ(h.p95(), 256);    // rank 95 falls in the 256-bucket
  EXPECT_EQ(h.p99(), 4096);   // rank 99 falls in the topmost bucket
  EXPECT_EQ(h.quantile_permille(1000), 4096);
}

TEST(Histogram, TopmostBucketReportsTheExactMax) {
  // 4100 is NOT a bucket floor; the topmost occupied bucket reports the
  // exact tracked maximum instead of the floor, so the upper tail is exact.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(8);
  h.record(4100);
  EXPECT_EQ(h.p50(), 8);
  EXPECT_EQ(h.quantile_permille(1000), 4100);
  EXPECT_EQ(h.max(), 4100);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Three histograms of deterministic pseudo-random samples: merging in any
  // order and grouping must produce bit-identical state (the property that
  // lets per-tenant histograms fold into the aggregate in any order).
  Rng rng(7);
  std::vector<Histogram> parts(3);
  for (Histogram& h : parts) {
    for (int i = 0; i < 200; ++i) h.record(rng.uniform(0, 1 << 20));
  }
  const Histogram ab_c = (parts[0] + parts[1]) + parts[2];
  const Histogram a_bc = parts[0] + (parts[1] + parts[2]);
  const Histogram cba = parts[2] + parts[1] + parts[0];
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);
  Histogram accum;
  accum += parts[1];
  accum += parts[2];
  accum += parts[0];
  EXPECT_EQ(accum, ab_c);
}

TEST(Histogram, PerTenantHistogramsSumToTheAggregate) {
  // Interleave samples across tenants exactly as a serving loop would, and
  // record every sample into a reference aggregate too: folding the tenant
  // histograms must reproduce the reference exactly.
  Rng rng(11);
  std::vector<Histogram> tenants(5);
  Histogram reference;
  for (int i = 0; i < 1000; ++i) {
    const auto t = static_cast<std::size_t>(rng.uniform(0, 4));
    const std::int64_t sample = rng.uniform(0, 1 << 16);
    tenants[t].record(sample);
    reference.record(sample);
  }
  Histogram folded;
  for (const Histogram& t : tenants) folded += t;
  EXPECT_EQ(folded, reference);
  EXPECT_EQ(folded.count(), 1000);
  EXPECT_EQ(folded.p99(), reference.p99());
}

TEST(Histogram, FromStateRoundTripsRecordedState) {
  Rng rng(3);
  Histogram h;
  for (int i = 0; i < 300; ++i) h.record(rng.uniform(0, 1 << 12));
  const Histogram back = Histogram::from_state(h.buckets(), h.max(), h.sum());
  EXPECT_EQ(back, h);
  // An empty histogram round-trips too.
  const Histogram empty;
  EXPECT_EQ(Histogram::from_state(empty.buckets(), 0, 0), empty);
}

TEST(Histogram, FromStateRejectsImpossibleState) {
  Histogram h;
  h.record(100);
  auto buckets = h.buckets();
  // Max outside the topmost occupied bucket.
  EXPECT_THROW(Histogram::from_state(buckets, 9999, h.sum()), Error);
  // Negative bucket count.
  buckets[3] = -1;
  EXPECT_THROW(Histogram::from_state(buckets, h.max(), h.sum()), Error);
  // Empty buckets with nonzero max/sum.
  const Histogram empty;
  EXPECT_THROW(Histogram::from_state(empty.buckets(), 1, 0), Error);
  EXPECT_THROW(Histogram::from_state(empty.buckets(), 0, 1), Error);
  // Negative max or sum.
  EXPECT_THROW(Histogram::from_state(h.buckets(), -1, h.sum()), Error);
  EXPECT_THROW(Histogram::from_state(h.buckets(), h.max(), -1), Error);
}

TEST(Histogram, RejectsNegativeSamplesAndBadRanks) {
  Histogram h;
  EXPECT_THROW(h.record(-1), ContractViolation);
  EXPECT_THROW(h.quantile_permille(-1), ContractViolation);
  EXPECT_THROW(h.quantile_permille(1001), ContractViolation);
}

}  // namespace
}  // namespace ccs::latency
