// Core types of the external-memory (I/O) model [Aggarwal & Vitter 1988].
//
// The paper analyzes schedules in this model: a fast cache of M words, an
// arbitrarily large slow memory, and transfers in blocks of B words. Cost is
// the number of block transfers (cache misses). All sizes in this library
// are in *words*; one streaming token occupies one word.
#pragma once

#include <cstdint>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::iomodel {

/// Word address in the simulated flat address space.
using Addr = std::int64_t;

/// Block index = Addr / block_words.
using BlockId = std::int64_t;

/// Read or write; writes mark the cached block dirty (write-back,
/// write-allocate policy, matching how real caches treat streaming stores).
enum class AccessMode : std::uint8_t { kRead, kWrite };

/// Cache geometry.
struct CacheConfig {
  std::int64_t capacity_words = 64 * 1024;  ///< M.
  std::int64_t block_words = 8;             ///< B.

  std::int64_t capacity_blocks() const {
    CCS_EXPECTS(block_words > 0, "block size must be positive");
    CCS_EXPECTS(capacity_words >= block_words, "cache smaller than one block");
    return capacity_words / block_words;
  }
};

/// Transfer counters. `misses` counts fetches from slow memory;
/// `writebacks` counts dirty evictions (also block transfers in the model,
/// tracked separately because the paper's bounds are stated in fetches).
struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t writebacks = 0;

  double miss_rate() const {
    return accesses > 0 ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
  /// Total block transfers in the I/O model (fetches + dirty evictions).
  std::int64_t transfers() const { return misses + writebacks; }

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// Integer cycle coefficients over the CacheStats counters -- the collapsed
/// form of a latency::CostModel, attachable to a CacheSim so its bulk calls
/// (access_blocks / access_span) return the modeled cost of exactly that
/// call. Pricing is linear, so summing per-call prices equals pricing a
/// whole window's counter delta, exactly, in integers.
struct AccessCosts {
  std::int64_t access = 0;     ///< Per access (the level's lookup cycles).
  std::int64_t hit = 0;        ///< Per hit.
  std::int64_t miss = 0;       ///< Per miss (including modeled deeper levels).
  std::int64_t writeback = 0;  ///< Per dirty eviction.

  /// True when any coefficient is nonzero (the all-zero default prices
  /// every call at 0, keeping the bulk hot path delta-free).
  bool any() const noexcept {
    return (access | hit | miss | writeback) != 0;
  }

  /// Price of a counter delta.
  std::int64_t price(const CacheStats& delta) const noexcept {
    return access * delta.accesses + hit * delta.hits + miss * delta.misses +
           writeback * delta.writebacks;
  }

  friend bool operator==(const AccessCosts&, const AccessCosts&) = default;
};

}  // namespace ccs::iomodel
