// E15 -- ablation: packed vs block-aligned channel buffers.
//
// The paper assumes sum(minBuf) = O(component state) so internal buffers
// ride along with the state in cache. That assumption is about *tokens*;
// a runtime that block-aligns every one-word channel silently multiplies
// the footprint by B and can push components out of cache. This ablation
// measures exactly that design decision on the FFT butterfly (many unit
// channels). Expected shape: aligned buffers inflate misses by an order of
// magnitude at tight cache sizes; packed buffers match the cost model.

#include "bench/common.h"
#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t b = 8;
  const std::int64_t outputs = 1024;
  const auto g = workloads::fft(4);
  const std::int64_t m = std::max(g.total_state() / 6, g.max_state());

  core::PlannerOptions opts;
  opts.cache.capacity_words = m;
  opts.cache.block_words = b;
  const auto plan = core::plan(g, opts);

  Table t("E15: buffer layout ablation on FFT (M=" + std::to_string(m) +
          ", B=8, sim 4M)");
  t.set_header({"buffer layout", "misses/output", "state misses", "channel misses"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const bool aligned : {false, true}) {
    iomodel::LruCache cache(iomodel::CacheConfig{4 * m, b});
    runtime::EngineOptions eopts;
    eopts.block_align_buffers = aligned;
    runtime::Engine engine(g, plan.schedule.buffer_caps, cache, eopts);
    runtime::RunResult total;
    const auto rounds = schedule::periods_for_outputs(plan.schedule, outputs);
    for (std::int64_t i = 0; i < rounds; ++i) {
      total += engine.run(plan.schedule.period);
    }
    t.add_row({aligned ? "block-aligned" : "packed (default)",
               Table::num(total.misses_per_output(), 3), Table::num(total.state_misses),
               Table::num(total.channel_misses)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
