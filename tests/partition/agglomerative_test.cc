#include "partition/agglomerative.h"

#include <gtest/gtest.h>

#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "sdf/gain.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::partition {
namespace {

TEST(Agglomerative, ValidOnEveryStreamItApp) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    const auto& g = app.graph;
    const std::int64_t bound = std::max<std::int64_t>(g.total_state() / 3, g.max_state());
    const auto p = agglomerative_partition(g, bound);
    EXPECT_TRUE(validate_partition(g, p).empty()) << app.name;
    EXPECT_TRUE(is_well_ordered(g, p)) << app.name;
    EXPECT_TRUE(is_bounded(g, p, bound)) << app.name;
  }
}

TEST(Agglomerative, KeepsHeaviestEdgesInternal) {
  // Chain with one high-gain hot edge: the cluster must absorb it first.
  sdf::SdfGraph g;
  for (int i = 0; i < 6; ++i) g.add_node("m" + std::to_string(i), 50);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 8, 1);   // gain 8 -- hottest edge
  g.add_edge(2, 3, 1, 8);   // gain 8 too (8 tokens cross per source firing)
  g.add_edge(3, 4, 1, 1);
  g.add_edge(4, 5, 1, 1);
  const auto p = agglomerative_partition(g, 150);  // 3 modules max
  // Modules 1,2,3 carry the hot edges; they must share a component.
  EXPECT_EQ(p.comp(1), p.comp(2));
  EXPECT_EQ(p.comp(2), p.comp(3));
}

TEST(Agglomerative, CompetitiveWithGreedyAcrossSeeds) {
  Rng rng(808);
  int wins = 0;
  int rounds = 0;
  for (int trial = 0; trial < 8; ++trial) {
    ccs::workloads::SeriesParallelSpec spec;
    spec.target_nodes = 26;
    const auto g = ccs::workloads::series_parallel_dag(spec, rng);
    const sdf::GainMap gains(g);
    const std::int64_t bound = 700;
    const auto agg = agglomerative_partition(g, bound);
    const auto greedy = dag_greedy_gain_partition(g, bound);
    ++rounds;
    if (!(bandwidth(g, gains, greedy) < bandwidth(g, gains, agg))) ++wins;
  }
  // Clustering should at least match the packing greedy most of the time.
  EXPECT_GE(wins * 2, rounds);
}

TEST(Agglomerative, NearExactOnSmallDags) {
  Rng rng(809);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 60;
  spec.state_hi = 140;
  const auto g = ccs::workloads::layered_homogeneous_dag(spec, rng);
  const sdf::GainMap gains(g);
  const std::int64_t bound = 420;
  ExactOptions eopts;
  eopts.state_bound = bound;
  const auto exact = dag_exact_partition(g, eopts);
  ASSERT_TRUE(exact.has_value());
  const auto agg = agglomerative_partition(g, bound);
  EXPECT_LE(bandwidth(g, gains, agg).to_double(),
            2.0 * exact->bandwidth.to_double() + 1e-9);
}

TEST(Agglomerative, SingleComponentWhenEverythingFits) {
  const auto g = ccs::workloads::uniform_pipeline(6, 10);
  const auto p = agglomerative_partition(g, 1000);
  EXPECT_EQ(p.num_components, 1);
}

TEST(Agglomerative, InfeasibleModuleThrows) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  EXPECT_THROW(agglomerative_partition(g, 50), Error);
}

TEST(Agglomerative, RespectsWellOrderingOverGain) {
  // Diamond where merging the source and sink would keep the hottest pair
  // of edges internal but create a contracted cycle: the clustering must
  // refuse it and stay acyclic.
  sdf::SdfGraph g;
  const auto s = g.add_node("s", 50);
  const auto x = g.add_node("x", 200);
  const auto y = g.add_node("y", 200);
  const auto t = g.add_node("t", 50);
  g.add_edge(s, x, 1, 1);
  g.add_edge(s, y, 8, 8);
  g.add_edge(x, t, 1, 1);
  g.add_edge(y, t, 8, 8);
  const auto p = agglomerative_partition(g, 250);
  EXPECT_TRUE(is_well_ordered(g, p));
  EXPECT_TRUE(is_bounded(g, p, 250));
}

}  // namespace
}  // namespace ccs::partition
