#include "util/format.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace ccs {

std::string format_count(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out += ',';
      run = 0;
    }
    out += *it;
    ++run;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string format_words(std::int64_t words) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const double w = static_cast<double>(words);
  if (words < 1024) os << words << " w";
  else if (w < 1024.0 * 1024.0) os << w / 1024.0 << " Kw";
  else os << w / (1024.0 * 1024.0) << " Mw";
  return os.str();
}

}  // namespace ccs
