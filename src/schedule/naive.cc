#include "schedule/naive.h"

#include "schedule/steady_state.h"
#include "sdf/min_buffer.h"
#include "sdf/repetition.h"

namespace ccs::schedule {

namespace {

void fill_period_counts(const sdf::SdfGraph& g, Schedule& s) {
  const sdf::RepetitionVector reps(g);
  s.inputs_per_period = reps.count(g.sources().front());
  s.outputs_per_period = reps.count(g.sinks().front());
}

}  // namespace

Schedule naive_minimal_buffer_schedule(const sdf::SdfGraph& g) {
  Schedule s;
  s.name = "naive-minbuf";
  s.buffer_caps = sdf::feasible_buffers(g);
  s.period = demand_driven_iteration(g, s.buffer_caps);
  fill_period_counts(g, s);
  return s;
}

Schedule naive_single_appearance_schedule(const sdf::SdfGraph& g) {
  Schedule s;
  s.name = "naive-sas";
  s.period = single_appearance_iteration(g, &s.buffer_caps);
  fill_period_counts(g, s);
  return s;
}

}  // namespace ccs::schedule
