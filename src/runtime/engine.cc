#include "runtime/engine.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::runtime {

namespace {

// External streams live far above anything MemoryLayout hands out, so they
// can grow without bound and never collide with state/buffer regions.
constexpr iomodel::Addr kExternalInBase = iomodel::Addr{1} << 40;
constexpr iomodel::Addr kExternalOutBase = iomodel::Addr{1} << 41;

}  // namespace

Engine::Engine(const sdf::SdfGraph& g, std::vector<std::int64_t> buffer_caps,
               iomodel::CacheSim& cache, EngineOptions options)
    : graph_(&g),
      cache_(&cache),
      options_(options),
      layout_(cache.config().block_words) {
  CCS_EXPECTS(g.node_count() > 0, "cannot build an engine for an empty graph");
  CCS_EXPECTS(buffer_caps.size() == static_cast<std::size_t>(g.edge_count()),
              "one buffer capacity per edge required");

  state_.reserve(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    state_.push_back(layout_.allocate(g.node(v).state, "state:" + g.node(v).name));
    state_words_ += g.node(v).state;
  }
  channels_.reserve(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    const std::int64_t cap = buffer_caps[static_cast<std::size_t>(e)];
    if (cap < std::max(edge.out_rate, edge.in_rate)) {
      throw ScheduleError("buffer on " + g.node(edge.src).name + " -> " +
                          g.node(edge.dst).name + " (capacity " + std::to_string(cap) +
                          ") cannot hold one burst");
    }
    // Buffers are packed (not block-aligned) by default: dozens of one-word
    // minimal channels must not consume a cache block each, or the paper's
    // sum(minBuf) = O(state) assumption silently becomes O(edges * B).
    channels_.emplace_back(
        layout_.allocate(cap, "buf:" + g.node(edge.src).name + ">" + g.node(edge.dst).name,
                         options_.block_align_buffers),
        cap);
  }
  fired_.assign(static_cast<std::size_t>(g.node_count()), 0);
  node_miss_base_.assign(static_cast<std::size_t>(g.node_count()), 0);

  const auto sources = g.sources();
  const auto sinks = g.sinks();
  if (sources.size() == 1) source_ = sources.front();
  if (sinks.size() == 1) sink_ = sinks.front();
  external_in_ = iomodel::Region{kExternalInBase, 0};
  external_out_ = iomodel::Region{kExternalOutBase, 0};
}

bool Engine::can_fire(sdf::NodeId v) const {
  for (const sdf::EdgeId e : graph_->in_edges(v)) {
    if (tokens(e) < graph_->edge(e).in_rate) return false;
  }
  for (const sdf::EdgeId e : graph_->out_edges(v)) {
    if (space(e) < graph_->edge(e).out_rate) return false;
  }
  return true;
}

void Engine::touch_state(sdf::NodeId v) {
  const iomodel::Region& region = state_[static_cast<std::size_t>(v)];
  const std::int64_t block = cache_->config().block_words;
  // State regions are block-aligned; touching the first word of each block
  // yields the same misses and recency order as scanning every word.
  for (iomodel::Addr a = region.base; a < region.end(); a += block) {
    cache_->access(a, iomodel::AccessMode::kRead);
  }
}

void Engine::fire(sdf::NodeId v) {
  CCS_EXPECTS(v >= 0 && v < graph_->node_count(), "node id out of range");
  // Validate both directions before any memory traffic so a throwing fire
  // leaves token counts unchanged.
  for (const sdf::EdgeId e : graph_->in_edges(v)) {
    if (tokens(e) < graph_->edge(e).in_rate) {
      throw ScheduleError("firing '" + graph_->node(v).name + "' would underflow channel " +
                          std::to_string(e));
    }
  }
  for (const sdf::EdgeId e : graph_->out_edges(v)) {
    if (space(e) < graph_->edge(e).out_rate) {
      throw ScheduleError("firing '" + graph_->node(v).name + "' would overflow channel " +
                          std::to_string(e));
    }
  }

  const std::int64_t miss_before = cache_->stats().misses;

  // Consume inputs, then execute (scan state), then produce outputs --
  // the natural data flow of a filter body. Phase boundaries snapshot the
  // miss counter so RunResult can break misses down by cause.
  for (const sdf::EdgeId e : graph_->in_edges(v)) {
    channels_[static_cast<std::size_t>(e)].pop(graph_->edge(e).in_rate, *cache_);
  }
  const std::int64_t after_pops = cache_->stats().misses;
  if (options_.model_external_io && v == source_) {
    cache_->access(kExternalInBase + external_in_cursor_++, iomodel::AccessMode::kRead);
  }
  const std::int64_t after_in = cache_->stats().misses;
  touch_state(v);
  const std::int64_t after_state = cache_->stats().misses;
  for (const sdf::EdgeId e : graph_->out_edges(v)) {
    channels_[static_cast<std::size_t>(e)].push(graph_->edge(e).out_rate, *cache_);
  }
  const std::int64_t after_pushes = cache_->stats().misses;
  if (options_.model_external_io && v == sink_) {
    cache_->access(kExternalOutBase + external_out_cursor_++, iomodel::AccessMode::kWrite);
  }
  channel_misses_ += (after_pops - miss_before) + (after_pushes - after_state);
  io_misses_ += (after_in - after_pops) + (cache_->stats().misses - after_pushes);
  state_misses_ += after_state - after_in;

  ++fired_[static_cast<std::size_t>(v)];
  ++total_firings_;
  if (v == source_) ++source_firings_;
  if (v == sink_) ++sink_firings_;
  if (options_.per_node_attribution) {
    node_miss_base_[static_cast<std::size_t>(v)] += cache_->stats().misses - miss_before;
  }
}

RunResult Engine::run(std::span<const sdf::NodeId> firings) {
  for (const sdf::NodeId v : firings) fire(v);

  RunResult result;
  const iomodel::CacheStats& now = cache_->stats();
  result.cache.accesses = now.accesses - last_stats_.accesses;
  result.cache.hits = now.hits - last_stats_.hits;
  result.cache.misses = now.misses - last_stats_.misses;
  result.cache.writebacks = now.writebacks - last_stats_.writebacks;
  result.firings = total_firings_ - last_firings_;
  result.source_firings = source_firings_ - last_source_firings_;
  result.sink_firings = sink_firings_ - last_sink_firings_;
  result.state_misses = state_misses_ - last_state_misses_;
  result.channel_misses = channel_misses_ - last_channel_misses_;
  result.io_misses = io_misses_ - last_io_misses_;
  last_state_misses_ = state_misses_;
  last_channel_misses_ = channel_misses_;
  last_io_misses_ = io_misses_;
  if (options_.per_node_attribution) {
    result.node_misses = node_miss_base_;
    node_miss_base_.assign(node_miss_base_.size(), 0);
  }

  last_stats_ = now;
  last_firings_ = total_firings_;
  last_source_firings_ = source_firings_;
  last_sink_firings_ = sink_firings_;
  return result;
}

bool Engine::drained() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const Channel& c) { return c.empty(); });
}

void Engine::reset_tokens() {
  for (Channel& c : channels_) c.reset();
  fired_.assign(fired_.size(), 0);
}

}  // namespace ccs::runtime
