#include "schedule/token_sim.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::schedule {
namespace {

using sdf::NodeId;
using sdf::SdfGraph;

SdfGraph two_rate() {
  SdfGraph g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 3, 2);
  return g;
}

TEST(TokenSim, FireMovesTokens) {
  const auto g = two_rate();
  const std::int64_t caps[] = {6};
  TokenSim sim(g, caps);
  EXPECT_TRUE(sim.can_fire(0));
  EXPECT_FALSE(sim.can_fire(1));
  sim.fire(0);
  EXPECT_EQ(sim.tokens(0), 3);
  EXPECT_TRUE(sim.can_fire(1));
  sim.fire(1);
  EXPECT_EQ(sim.tokens(0), 1);
}

TEST(TokenSim, MaxBatchRespectsBothEnds) {
  const auto g = two_rate();
  const std::int64_t caps[] = {6};
  TokenSim sim(g, caps);
  EXPECT_EQ(sim.max_batch(0, 100), 2);  // 6 capacity / 3 per firing
  sim.fire(0, 2);
  EXPECT_EQ(sim.max_batch(0, 100), 0);
  EXPECT_EQ(sim.max_batch(1, 100), 3);  // 6 tokens / 2 per firing
}

TEST(TokenSim, BatchFire) {
  const auto g = two_rate();
  const std::int64_t caps[] = {12};
  TokenSim sim(g, caps);
  sim.fire(0, 4);
  EXPECT_EQ(sim.tokens(0), 12);
  EXPECT_EQ(sim.fired(0), 4);
  sim.fire(1, 6);
  EXPECT_TRUE(sim.drained());
}

TEST(TokenSim, OverflowAndUnderflowThrow) {
  const auto g = two_rate();
  const std::int64_t caps[] = {3};
  TokenSim sim(g, caps);
  sim.fire(0);
  EXPECT_THROW(sim.fire(0), ScheduleError);
  sim.fire(1);
  EXPECT_THROW(sim.fire(1), ScheduleError);  // only 1 token left, needs 2
}

TEST(TokenSim, PeakTracksHighWaterMark) {
  const auto g = two_rate();
  const std::int64_t caps[] = {9};
  TokenSim sim(g, caps);
  sim.fire(0, 3);
  sim.fire(1, 4);
  EXPECT_EQ(sim.peak(0), 9);
  EXPECT_EQ(sim.tokens(0), 1);
}

TEST(TokenSim, TooSmallCapacityRejected) {
  const auto g = two_rate();
  const std::int64_t caps[] = {2};  // out_rate 3 cannot fit
  EXPECT_THROW(TokenSim(g, caps), ScheduleError);
}

}  // namespace
}  // namespace ccs::schedule
