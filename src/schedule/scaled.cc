#include "schedule/scaled.h"

#include <algorithm>

#include "sdf/repetition.h"
#include "sdf/topology.h"
#include "util/contracts.h"
#include "util/int_math.h"

namespace ccs::schedule {

std::int64_t choose_scale_factor(const sdf::SdfGraph& g, std::int64_t m,
                                 std::int64_t max_scale) {
  CCS_EXPECTS(m > 0, "cache size must be positive");
  const sdf::RepetitionVector reps(g);
  // Per unit of scale, module v's working set grows by the one-iteration
  // traffic of its incident edges; its fixed part is its state.
  std::int64_t best = max_scale;
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    std::int64_t per_scale = 0;
    for (const sdf::EdgeId e : g.in_edges(v)) per_scale += reps.edge_tokens(e);
    for (const sdf::EdgeId e : g.out_edges(v)) per_scale += reps.edge_tokens(e);
    if (per_scale == 0) continue;
    const std::int64_t budget = m - g.node(v).state;
    best = std::min(best, std::max<std::int64_t>(budget / per_scale, 1));
  }
  // Global no-spill guard: the schedule cycles through every buffer each
  // period, so their combined footprint must also stay within (half) the
  // cache or the scaled buffers evict each other wholesale.
  std::int64_t total_tokens = 0;
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) total_tokens += reps.edge_tokens(e);
  if (total_tokens > 0) {
    best = std::min(best, std::max<std::int64_t>((m / 2) / total_tokens, 1));
  }
  return std::clamp<std::int64_t>(best, 1, max_scale);
}

Schedule scaled_schedule(const sdf::SdfGraph& g, std::int64_t m, std::int64_t max_scale) {
  const std::int64_t s = choose_scale_factor(g, m, max_scale);
  const sdf::RepetitionVector reps(g);
  const auto topo = sdf::topological_sort(g);

  Schedule out;
  out.name = "scaled-x" + std::to_string(s);
  out.buffer_caps.resize(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    out.buffer_caps[static_cast<std::size_t>(e)] = checked_mul(s, reps.edge_tokens(e));
  }
  out.period.reserve(static_cast<std::size_t>(checked_mul(s, reps.total_firings())));
  for (const sdf::NodeId v : topo) {
    out.period.insert(out.period.end(), static_cast<std::size_t>(s * reps.count(v)), v);
  }
  out.inputs_per_period = s * reps.count(g.sources().front());
  out.outputs_per_period = s * reps.count(g.sinks().front());
  return out;
}

}  // namespace ccs::schedule
