#include "sdf/min_buffer.h"

#include <gtest/gtest.h>

#include "sdf/repetition.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(MinBuffer, SingleEdgeFormula) {
  EXPECT_EQ(edge_min_buffer(1, 1), 1);        // homogeneous: one slot
  EXPECT_EQ(edge_min_buffer(2, 3), 4);        // 2 + 3 - gcd = 4
  EXPECT_EQ(edge_min_buffer(4, 2), 4);        // 4 + 2 - 2
  EXPECT_EQ(edge_min_buffer(6, 4), 8);        // 6 + 4 - 2
  EXPECT_EQ(edge_min_buffer(5, 5), 5);        // equal rates: one burst
}

TEST(MinBuffer, RejectsBadRates) {
  EXPECT_THROW(edge_min_buffer(0, 1), ContractViolation);
  EXPECT_THROW(edge_min_buffer(1, -1), ContractViolation);
}

TEST(MinBuffer, HomogeneousPipelineGetsUnitBuffers) {
  const auto g = ccs::workloads::uniform_pipeline(6, 10);
  const auto caps = feasible_buffers(g);
  for (const auto c : caps) EXPECT_EQ(c, 1);
}

TEST(MinBuffer, CapsAreSufficientForSteadyState) {
  // feasible_buffers itself verifies completion by simulation; this test
  // additionally checks the caps never exceed one iteration's edge traffic.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = ccs::workloads::random_pipeline(12, 1, 100, 5, rng);
    const auto caps = feasible_buffers(g);
    const RepetitionVector reps(g);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_LE(caps[static_cast<std::size_t>(e)],
                std::max(reps.edge_tokens(e),
                         g.edge(e).out_rate + g.edge(e).in_rate));
      EXPECT_GE(caps[static_cast<std::size_t>(e)],
                std::max(g.edge(e).out_rate, g.edge(e).in_rate));
    }
  }
}

TEST(MinBuffer, StreamItSuiteFeasible) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    EXPECT_NO_THROW((void)feasible_buffers(app.graph)) << app.name;
  }
}

TEST(MinBuffer, SeriesParallelFeasible) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    ccs::workloads::SeriesParallelSpec spec;
    spec.target_nodes = 20;
    const auto g = ccs::workloads::series_parallel_dag(spec, rng);
    EXPECT_NO_THROW((void)feasible_buffers(g));
  }
}

TEST(MinBuffer, InternalBufferTotal) {
  const auto g = ccs::workloads::uniform_pipeline(4, 10);
  const auto caps = feasible_buffers(g);
  // Members {m1, m2}: only edge m1->m2 is internal.
  std::vector<bool> member{false, true, true, false};
  EXPECT_EQ(internal_buffer_total(g, member, caps), 1);
  // All members: every edge internal.
  member.assign(4, true);
  EXPECT_EQ(internal_buffer_total(g, member, caps), 3);
  // No members: nothing internal.
  member.assign(4, false);
  EXPECT_EQ(internal_buffer_total(g, member, caps), 0);
}

}  // namespace
}  // namespace ccs::sdf
