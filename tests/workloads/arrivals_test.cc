// Arrival-pattern generators: shapes, determinism, and the registry.

#include "workloads/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::workloads {
namespace {

TEST(Arrivals, SteadyIsConstant) {
  const ArrivalPattern p = steady_arrivals(7);
  for (std::int64_t t = 0; t < 50; ++t) EXPECT_EQ(p(t), 7);
  EXPECT_EQ(total_arrivals(p, 100), 700);
}

TEST(Arrivals, BurstyClumpsTheSameAverage) {
  const ArrivalPattern p = bursty_arrivals(64, 16);
  EXPECT_EQ(p(0), 64);
  for (std::int64_t t = 1; t < 16; ++t) EXPECT_EQ(p(t), 0) << t;
  EXPECT_EQ(p(16), 64);
  // Same average rate as steady(4) over whole periods.
  EXPECT_EQ(total_arrivals(p, 160), total_arrivals(steady_arrivals(4), 160));
}

TEST(Arrivals, OnOffDutyCycles) {
  const ArrivalPattern p = on_off_arrivals(8, 3, 5);
  // 3 on-ticks, 5 off-ticks, repeating.
  for (std::int64_t t = 0; t < 3; ++t) EXPECT_EQ(p(t), 8) << t;
  for (std::int64_t t = 3; t < 8; ++t) EXPECT_EQ(p(t), 0) << t;
  EXPECT_EQ(p(8), 8);
  EXPECT_EQ(total_arrivals(p, 16), 2 * 3 * 8);
}

TEST(Arrivals, PatternsArePureFunctionsOfTheTick) {
  // Same tick, same answer -- in any order, from any starting point.
  const ArrivalPattern p = on_off_arrivals(5, 4, 4);
  const std::int64_t at17 = p(17);
  total_arrivals(p, 40);  // evaluate a prefix in between
  EXPECT_EQ(p(17), at17);
  EXPECT_EQ(p(17 + 8), at17);  // one whole cycle later
}

TEST(Arrivals, RegistryBuildsBuiltinsAndRejectsUnknownKeys) {
  ArrivalRegistry r;
  register_builtin_arrivals(r);
  EXPECT_GE(r.size(), 6u);
  for (const std::string& key : r.keys()) {
    const ArrivalPattern p = r.build(key);
    EXPECT_GE(total_arrivals(p, 64), 0) << key;
    EXPECT_FALSE(r.find(key).description.empty()) << key;
  }
  try {
    r.build("bogus");
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("valid arrival patterns"), std::string::npos);
  }
}

TEST(Arrivals, GlobalRegistryIsSeeded) {
  EXPECT_TRUE(ArrivalRegistry::global().contains("steady-1"));
  EXPECT_TRUE(ArrivalRegistry::global().contains("bursty-64"));
  EXPECT_TRUE(ArrivalRegistry::global().contains("on-off-8x8"));
}

TEST(Arrivals, PhaseShiftDelaysTheBasePattern) {
  const ArrivalPattern shifted = phase_shift_arrivals(bursty_arrivals(64, 16), 8);
  for (std::int64_t t = 0; t < 8; ++t) EXPECT_EQ(shifted(t), 0) << t;
  EXPECT_EQ(shifted(8), 64);    // the base pattern's tick 0
  EXPECT_EQ(shifted(9), 0);
  EXPECT_EQ(shifted(24), 64);   // base tick 16, one period later
  // Same total mass as the base over any window covering whole periods
  // plus the shift.
  EXPECT_EQ(total_arrivals(shifted, 8 + 64), total_arrivals(bursty_arrivals(64, 16), 64));
  // Zero shift is the identity.
  const ArrivalPattern same = phase_shift_arrivals(steady_arrivals(3), 0);
  EXPECT_EQ(same(0), 3);
  EXPECT_EQ(same(41), 3);
  EXPECT_TRUE(ArrivalRegistry::global().contains("bursty-64-shift-8"));
}

TEST(Arrivals, RejectsDegenerateParameters) {
  EXPECT_THROW(bursty_arrivals(4, 0), ContractViolation);
  EXPECT_THROW(on_off_arrivals(4, 0, 4), ContractViolation);
  EXPECT_THROW(steady_arrivals(-1), ContractViolation);
  EXPECT_THROW(phase_shift_arrivals(steady_arrivals(1), -1), ContractViolation);
  EXPECT_THROW(phase_shift_arrivals(nullptr, 1), ContractViolation);
}

TEST(Arrivals, RejectsSilentPatternsWithClearErrors) {
  // A burst of zero items or a zero-length on-phase describes a pattern that
  // never delivers anything -- a silent misconfiguration, rejected with a
  // message naming the offending parameter.
  try {
    bursty_arrivals(0, 16);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("burst size"), std::string::npos);
  }
  try {
    on_off_arrivals(4, 0, 4);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("on-phase"), std::string::npos);
  }
  // Negative shapes are rejected by the same contracts, not just zero.
  EXPECT_THROW(bursty_arrivals(-1, 16), ContractViolation);
  EXPECT_THROW(on_off_arrivals(4, -2, 4), ContractViolation);
  // A deliberately idle tenant still has a spelling: steady at rate zero.
  EXPECT_EQ(total_arrivals(steady_arrivals(0), 32), 0);
}

TEST(ChurnTrace, EverySessionOpensPushesAndCloses) {
  ChurnOptions o;
  o.sessions = 100;
  o.max_concurrent = 5;
  o.pushes_per_session = 3;
  o.items_per_push = 16;
  const std::vector<SessionEvent> trace = churn_trace(o);

  std::int64_t opens = 0, pushes = 0, closes = 0;
  std::vector<std::int64_t> pushes_of(o.sessions, 0);
  std::vector<bool> is_open(o.sessions, false), ever(o.sessions, false);
  for (const SessionEvent& e : trace) {
    switch (e.kind) {
      case SessionEvent::Kind::kOpen:
        EXPECT_FALSE(ever[e.session]) << "session reopened";
        ever[e.session] = is_open[e.session] = true;
        ++opens;
        break;
      case SessionEvent::Kind::kPush:
        EXPECT_TRUE(is_open[e.session]);
        EXPECT_EQ(e.items, o.items_per_push);
        ++pushes_of[e.session];
        ++pushes;
        break;
      case SessionEvent::Kind::kClose:
        EXPECT_TRUE(is_open[e.session]);
        is_open[e.session] = false;
        ++closes;
        break;
    }
  }
  EXPECT_EQ(opens, o.sessions);
  EXPECT_EQ(closes, o.sessions);
  EXPECT_EQ(pushes, o.sessions * o.pushes_per_session);
  for (std::int64_t s = 0; s < o.sessions; ++s) {
    EXPECT_EQ(pushes_of[s], o.pushes_per_session) << s;
    EXPECT_FALSE(is_open[s]) << s;
  }
}

TEST(ChurnTrace, NeverExceedsTheConcurrencyBound) {
  ChurnOptions o;
  o.sessions = 400;
  o.max_concurrent = 7;
  const std::vector<SessionEvent> trace = churn_trace(o);
  std::int64_t open = 0, peak = 0;
  for (const SessionEvent& e : trace) {
    if (e.kind == SessionEvent::Kind::kOpen) peak = std::max(peak, ++open);
    if (e.kind == SessionEvent::Kind::kClose) --open;
  }
  EXPECT_LE(peak, o.max_concurrent);
  // With 400 sessions and a bound of 7, the trace should actually reach the
  // bound, not trivially satisfy it.
  EXPECT_EQ(peak, o.max_concurrent);
}

TEST(ChurnTrace, DeterministicPerSeed) {
  ChurnOptions o;
  o.sessions = 64;
  o.seed = 99;
  EXPECT_EQ(churn_trace(o), churn_trace(o));
  ChurnOptions other = o;
  other.seed = 100;
  EXPECT_NE(churn_trace(o), churn_trace(other));
}

TEST(ChurnTrace, RejectsDegenerateParameters) {
  ChurnOptions o;
  o.sessions = -1;
  EXPECT_THROW(churn_trace(o), ContractViolation);
  o = {};
  o.max_concurrent = 0;
  EXPECT_THROW(churn_trace(o), ContractViolation);
  o = {};
  o.pushes_per_session = 0;
  EXPECT_THROW(churn_trace(o), ContractViolation);
  o = {};
  o.items_per_push = 0;
  EXPECT_THROW(churn_trace(o), ContractViolation);
}

}  // namespace
}  // namespace ccs::workloads
