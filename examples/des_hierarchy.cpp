// DES through a two-level cache hierarchy, with per-cause miss breakdown.
//
//   $ ./des_hierarchy [--rounds=16] [--l1=256] [--l2=4096] [--outputs=2048]
//
// Demonstrates: the multi-level cache extension, plan explanation, the
// classified miss counters (state vs channel vs external IO), and schedule
// serialization (the plan's schedule is printed in its on-disk format when
// --dump-schedule is given).

#include <iostream>

#include "core/planner.h"
#include "iomodel/hierarchy.h"
#include "runtime/engine.h"
#include "schedule/registry.h"
#include "schedule/serialize.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("des_hierarchy", "DES cipher pipeline on an L1/L2 hierarchy");
  args.add_int("rounds", 16, "DES rounds");
  args.add_int("l1", 256, "L1 capacity in words");
  args.add_int("l2", 4096, "L2 capacity in words");
  args.add_int("outputs", 2048, "sink firings to simulate");
  args.add_flag("dump-schedule", "print the partitioned schedule's serialized form");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::des(static_cast<std::int32_t>(args.get_int("rounds")));
    const std::int64_t l1 = args.get_int("l1");
    const std::int64_t l2 = args.get_int("l2");
    const std::int64_t outputs = args.get_int("outputs");

    core::PlannerOptions opts;
    opts.cache.capacity_words = l2 / 4;  // partition to fit (a fraction of) L2
    opts.cache.block_words = 8;
    const core::Planner planner(g, opts);
    const auto plan = planner.plan();
    std::cout << core::explain(g, plan) << "\n";
    if (args.get_flag("dump-schedule")) {
      schedule::write_schedule(g, plan.schedule, std::cout);
      return 0;
    }

    const auto naive = schedule::Registry::global().build(
        "naive", g, {opts.cache.capacity_words, opts.cache.block_words});
    Table t("DES on L1=" + std::to_string(l1) + " / L2=" + std::to_string(l2) +
            " (B=8, " + std::to_string(outputs) + " outputs)");
    t.set_header({"scheduler", "L1 misses", "mem transfers", "state", "channel", "io"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                 Align::kRight});
    for (const auto* s : {&naive, &plan.schedule}) {
      iomodel::HierarchyCache cache({l1, l2}, 8);
      runtime::Engine engine(g, s->buffer_caps, cache);
      runtime::RunResult total;
      const auto rounds = schedule::periods_for_outputs(*s, outputs);
      for (std::int64_t i = 0; i < rounds; ++i) {
        total += engine.run(s->period);
      }
      t.add_row({s->name, Table::num(cache.level_stats(0).misses),
                 Table::num(cache.level_stats(1).misses), Table::num(total.state_misses),
                 Table::num(total.channel_misses), Table::num(total.io_misses)});
    }
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
