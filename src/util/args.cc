#include "util/args.h"

#include <iostream>
#include <sstream>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  CCS_EXPECTS(!specs_.count(name), "duplicate flag " + name);
  specs_[name] = Spec{Kind::kInt, help, std::to_string(default_value)};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  CCS_EXPECTS(!specs_.count(name), "duplicate flag " + name);
  std::ostringstream os;
  os << default_value;
  specs_[name] = Spec{Kind::kDouble, help, os.str()};
}

void ArgParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  CCS_EXPECTS(!specs_.count(name), "duplicate flag " + name);
  specs_[name] = Spec{Kind::kString, help, default_value};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  CCS_EXPECTS(!specs_.count(name), "duplicate flag " + name);
  specs_[name] = Spec{Kind::kFlag, help, "0"};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) throw Error("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) throw Error("unknown flag --" + name + "\n" + usage());
    Spec& spec = it->second;
    if (spec.kind == Kind::kFlag) {
      if (value.has_value()) throw Error("flag --" + name + " takes no value");
      spec.value = "1";
      continue;
    }
    if (!value.has_value()) {
      if (i + 1 >= argc) throw Error("flag --" + name + " needs a value");
      value = argv[++i];
    }
    // Validate numeric flags eagerly so errors point at the flag.
    try {
      if (spec.kind == Kind::kInt) (void)std::stoll(*value);
      if (spec.kind == Kind::kDouble) (void)std::stod(*value);
    } catch (const std::exception&) {
      throw Error("flag --" + name + " expects a number, got '" + *value + "'");
    }
    spec.value = *value;
  }
  return true;
}

const ArgParser::Spec& ArgParser::find(const std::string& name, Kind kind) const {
  const auto it = specs_.find(name);
  CCS_EXPECTS(it != specs_.end(), "flag " + name + " was never registered");
  CCS_EXPECTS(it->second.kind == kind, "flag " + name + " accessed with wrong type");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " -- " << description_ << "\nflags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    switch (spec.kind) {
      case Kind::kInt: os << "=<int>"; break;
      case Kind::kDouble: os << "=<float>"; break;
      case Kind::kString: os << "=<str>"; break;
      case Kind::kFlag: break;
    }
    os << "  " << spec.help << " (default: " << spec.value << ")\n";
  }
  return os.str();
}

}  // namespace ccs
