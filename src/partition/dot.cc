#include "partition/dot.h"

#include <ostream>
#include <sstream>

#include "util/error.h"

namespace ccs::partition {

namespace {

using sdf::Edge;
using sdf::EdgeId;
using sdf::NodeId;
using sdf::SdfGraph;

// Pastel fill colors cycled across components.
constexpr const char* kPalette[] = {"#cfe2ff", "#d1e7dd", "#fff3cd", "#f8d7da",
                                    "#e2d9f3", "#fde2ff", "#d2f4ea", "#ffe5d0"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

void write_edges(const SdfGraph& g, const Partition* p, std::ostream& os) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const bool cross = p != nullptr && p->comp(edge.src) != p->comp(edge.dst);
    os << "  \"" << g.node(edge.src).name << "\" -> \"" << g.node(edge.dst).name
       << "\" [label=\"" << edge.out_rate << ":" << edge.in_rate << "\"";
    if (cross) os << ", penwidth=2.5, color=\"#c0392b\"";
    os << "];\n";
  }
}

void write_node(const SdfGraph& g, NodeId v, std::ostream& os) {
  os << "    \"" << g.node(v).name << "\" [label=\"" << g.node(v).name << "\\n"
     << g.node(v).state << " w\"];\n";
}

}  // namespace

void write_dot(const SdfGraph& g, std::ostream& os) {
  os << "digraph stream {\n  rankdir=LR;\n  node [shape=box, style=rounded];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) write_node(g, v, os);
  write_edges(g, nullptr, os);
  os << "}\n";
}

void write_dot(const SdfGraph& g, const Partition& p, std::ostream& os) {
  const auto problems = validate_partition(g, p);
  if (!problems.empty()) throw Error("cannot render invalid partition: " + problems.front());
  os << "digraph stream {\n  rankdir=LR;\n  node [shape=box, style=\"rounded,filled\"];\n";
  const auto comps = p.components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    os << "  subgraph cluster_" << c << " {\n"
       << "    label=\"V" << c << "\";\n"
       << "    style=filled;\n"
       << "    color=\"" << kPalette[c % kPaletteSize] << "\";\n";
    for (const NodeId v : comps[c]) write_node(g, v, os);
    os << "  }\n";
  }
  write_edges(g, &p, os);
  os << "}\n";
}

std::string to_dot(const SdfGraph& g, const std::optional<Partition>& p) {
  std::ostringstream os;
  if (p.has_value()) write_dot(g, *p, os);
  else write_dot(g, os);
  return os.str();
}

}  // namespace ccs::partition
