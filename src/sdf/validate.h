// One-call structural + rate validation with aggregated error reporting.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.h"

namespace ccs::sdf {

/// What to require of a graph before scheduling it.
struct ValidationOptions {
  bool require_single_source = true;  ///< Paper's w.l.o.g. assumption.
  bool require_single_sink = true;    ///< Paper's w.l.o.g. assumption.
  bool require_rate_matched = true;   ///< Needed for bounded-buffer schedules.
  std::int64_t max_module_state = 0;  ///< If > 0, every s(v) must be <= this (the
                                      ///< paper requires s(v) <= M).
};

/// All problems found, empty when the graph is valid.
std::vector<std::string> validate(const SdfGraph& g, const ValidationOptions& opts);

/// Throws GraphError listing every problem; no-op when valid.
void validate_or_throw(const SdfGraph& g, const ValidationOptions& opts);

}  // namespace ccs::sdf
