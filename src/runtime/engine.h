// Streaming execution engine over the simulated cache.
//
// The engine owns the memory layout (state regions and channel ring buffers)
// and executes module firings against a CacheSim, enforcing SDF semantics:
// a firing consumes in(u,v) tokens from every input channel, scans the
// module's state, and produces out(v,w) tokens on every output channel.
// Underflow/overflow throw ScheduleError -- a schedule that violates buffer
// bounds is a scheduler bug, not a runtime condition.
//
// The source module additionally streams words from an unbounded external
// input region and the sink streams words to an external output region
// (the paper's "designated channels" into and out of the application);
// these sequential streams cost ~1/B misses per word for *every* scheduler
// and never interfere with partitioning decisions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iomodel/cache.h"
#include "iomodel/layout.h"
#include "runtime/channel.h"
#include "runtime/run_result.h"
#include "sdf/graph.h"

namespace ccs::runtime {

/// Engine knobs.
struct EngineOptions {
  /// Model external input/output streams of the source/sink (1 word per
  /// firing each). Disable to measure pure internal traffic.
  bool model_external_io = true;

  /// Attribute per-module miss deltas in RunResult::node_misses. Costs one
  /// stats snapshot per firing; disable for the biggest sweeps.
  bool per_node_attribution = true;

  /// Block-align every channel buffer instead of packing them. Packing is
  /// the default because the paper's sum(minBuf) = O(state) assumption is
  /// about tokens, not blocks; aligning one-word buffers inflates their
  /// footprint by a factor of B. Exposed for the E15 ablation.
  bool block_align_buffers = false;
};

/// Executes firing sequences for one graph + buffer-capacity assignment.
class Engine {
 public:
  /// `buffer_caps[e]` is the ring capacity (in tokens) of edge e; it must be
  /// at least max(out_rate, in_rate) of that edge. The engine lays out all
  /// state and buffers in the simulated address space. `cache` must outlive
  /// the engine.
  Engine(const sdf::SdfGraph& g, std::vector<std::int64_t> buffer_caps,
         iomodel::CacheSim& cache, EngineOptions options = {});

  /// True iff every input has enough tokens and every output enough space.
  bool can_fire(sdf::NodeId v) const;

  /// Executes one firing. Throws ScheduleError if v cannot fire.
  void fire(sdf::NodeId v);

  /// Fires the sequence in order, returning the counters accumulated since
  /// the previous run (or construction).
  RunResult run(std::span<const sdf::NodeId> firings);

  /// Tokens currently queued on edge e.
  std::int64_t tokens(sdf::EdgeId e) const {
    return channels_[static_cast<std::size_t>(e)].size();
  }

  /// Free slots on edge e.
  std::int64_t space(sdf::EdgeId e) const {
    return channels_[static_cast<std::size_t>(e)].space();
  }

  /// Lifetime firing count of module v.
  std::int64_t fired(sdf::NodeId v) const {
    return fired_[static_cast<std::size_t>(v)];
  }

  /// True iff every channel is empty.
  bool drained() const;

  /// Empties all channels without memory traffic and resets firing counters
  /// (cache contents and statistics are left untouched).
  void reset_tokens();

  const sdf::SdfGraph& graph() const noexcept { return *graph_; }
  iomodel::CacheSim& cache() noexcept { return *cache_; }
  std::int64_t state_footprint() const noexcept { return state_words_; }

 private:
  void touch_state(sdf::NodeId v);

  const sdf::SdfGraph* graph_;
  iomodel::CacheSim* cache_;
  EngineOptions options_;
  iomodel::MemoryLayout layout_;
  std::vector<iomodel::Region> state_;  // per node
  std::vector<Channel> channels_;       // per edge
  std::vector<std::int64_t> fired_;     // per node, lifetime
  std::int64_t state_words_ = 0;

  sdf::NodeId source_ = sdf::kInvalidNode;
  sdf::NodeId sink_ = sdf::kInvalidNode;
  iomodel::Addr external_in_cursor_ = 0;
  iomodel::Addr external_out_cursor_ = 0;
  iomodel::Region external_in_;
  iomodel::Region external_out_;

  // Baseline counters for delta reporting in run().
  iomodel::CacheStats last_stats_;
  std::int64_t last_firings_ = 0;
  std::int64_t last_source_firings_ = 0;
  std::int64_t last_sink_firings_ = 0;
  std::int64_t source_firings_ = 0;
  std::int64_t sink_firings_ = 0;
  std::int64_t total_firings_ = 0;
  std::vector<std::int64_t> node_miss_base_;

  // Classified miss counters (lifetime + last-run baselines).
  std::int64_t state_misses_ = 0;
  std::int64_t channel_misses_ = 0;
  std::int64_t io_misses_ = 0;
  std::int64_t last_state_misses_ = 0;
  std::int64_t last_channel_misses_ = 0;
  std::int64_t last_io_misses_ = 0;
};

}  // namespace ccs::runtime
