// core::Cluster -- a multicore serving cluster: sharded workers with
// affinity-aware placement over a shared cache hierarchy.
//
// Where core::Server timeshares many Stream sessions over ONE cache, a
// Cluster spreads them over a runtime::WorkerPool: N workers, each owning a
// private L1, all backed by an optional shared LLC. Placement -- which
// worker serves which session -- is the multicore question the paper's §7
// remark raises and the communication-affinity literature (Zaourar et al.,
// Kandemir & Chen) studies: keep a session's working set on the worker
// whose cache already holds it, because migration pays real reload misses.
// Placement is a pluggable, string-keyed PlacementRegistry rule:
//
//   * "round-robin"  -- static striping at admission; never migrates.
//   * "least-loaded" -- follow the busy-time balance; migrates freely and
//                       pays the reloads (the pure load-balance extreme).
//   * "affinity"     -- rank workers by how many of the session's blocks
//                       their private L1 holds; a session stays put while
//                       its working set is warm (the cache-conscious
//                       extreme; falls back to least-loaded when cold).
//   * "adaptive"     -- affinity, plus footprint-driven reaction: a
//                       placement::FootprintEstimator tracks each session's
//                       live working set (seeded from the gain-analysis
//                       layout, corrected by observed miss rates and
//                       residency), and when a worker's L1 is oversubscribed
//                       by hot footprints or its window miss rate signals
//                       thrash, the cluster consults placement *on its own*
//                       at the next quiescent run entry and sheds hot
//                       sessions to workers with headroom. With migration
//                       disabled (ClusterOptions::adaptive.migrate = false)
//                       it is decision-for-decision identical to "affinity"
//                       -- the differential-test baseline.
//
// Execution supports two modes through ONE code path (worker_step):
//
//   * Virtual time: workers advance in lockstep rounds, in worker-id order
//     (step_round / run_until_idle). Fully deterministic -- repeat runs are
//     counter-identical down to the shared-LLC statistics.
//   * Threads: run_threads() drives each worker's identical step loop on
//     its own std::thread. A worker's private counters depend only on its
//     own step sequence, which both modes share, so per-tenant RunResults
//     match virtual time exactly and sum to the same aggregates (the golden
//     gate in tests/core/cluster_test.cc); only the shared-LLC interleaving
//     (hence LLC hit/miss split) varies with real concurrency.
//
// Determinism contract: admissions, pushes, rebalance(), and drain_all()
// happen on the controlling thread while the cluster is quiescent; tenant
// sessions never communicate, and each is pinned to exactly one worker
// between rebalance points. Every tenant engine gets a disjoint address
// band (ClusterOptions::band_words, default 2^36), so sessions contend for
// cache blocks instead of aliasing, on whichever worker they land.
//
// Session lifecycle mirrors core::Server: admit() consults a
// session::AdmissionPolicy, close() retires a session forever (folding its
// totals into the report's `retired` aggregate and recycling its band), and
// with the swap tier enabled idle sessions serialize to compact
// session::SwapImages and rehydrate transparently on the next push --
// always back onto the worker that last served them, so placement
// decisions, per-tenant counters, and report JSON are bit-identical
// between swap-on and swap-off runs.
//
//   core::ClusterOptions copts;
//   copts.workers = 4;
//   copts.l1 = {4096, 8};
//   copts.llc_words = 64 * 1024;
//   copts.placement = "affinity";
//   core::Cluster cluster(copts);
//   const auto a = cluster.admit("radio", g1, plan1.partition);
//   const auto b = cluster.admit("sort", g2, plan2.partition);
//   cluster.push(a, 4096); cluster.push(b, 4096);
//   cluster.run_until_idle();          // or cluster.run_threads()
//   cluster.drain_all();
//   cluster.report().write_json(std::cout);
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/server.h"
#include "core/stream.h"
#include "latency/cost_model.h"
#include "latency/histogram.h"
#include "placement/footprint.h"
#include "runtime/run_result.h"
#include "runtime/worker_pool.h"
#include "schedule/parallel.h"
#include "util/registry.h"

namespace ccs::core {

/// Dense worker index within one Cluster. Valid ids are 0..worker_count()-1.
using WorkerId = std::int32_t;

inline constexpr WorkerId kNoWorker = -1;

/// What a placement policy may consult about one worker.
struct ClusterWorkerStatus {
  WorkerId id = kNoWorker;
  std::int64_t busy = 0;     ///< Modeled cycles executed on this worker so far
                             ///< (== firings under the "uniform" cost model).
  std::int64_t steps = 0;    ///< Tenant steps granted so far.
  std::int32_t tenants = 0;  ///< Sessions currently placed here.
  std::int64_t misses = 0;   ///< Private-L1 misses so far.
  std::int64_t l1_words = 0; ///< Private-cache capacity (the footprint budget).

  /// Summed estimated footprints of the *hot* sessions placed here -- the
  /// cache pressure adaptive placement compares against l1_words. Zero
  /// under static policies (nothing is ever classified hot).
  std::int64_t hot_words = 0;
};

/// One placement question: where should this session run?
struct PlacementRequest {
  TenantId tenant = kNoTenant;
  WorkerId current = kNoWorker;  ///< Present placement; kNoWorker at admission.
  std::int64_t state_words = 0;  ///< The session's module-state footprint.

  /// Per worker: blocks of the session's state/ring span resident in that
  /// worker's private L1 -- the affinity signal. All-zero for a new or cold
  /// session.
  std::vector<std::int64_t> resident_blocks;

  /// Estimated live working set in words (placement::FootprintEstimator);
  /// 0 when the cluster runs a non-adaptive policy.
  std::int64_t footprint_words = 0;

  /// True when the session is classified hot (recently active, cacheable).
  /// Always false when migration thresholds are disabled, which is what
  /// makes never-fire adaptive placement identical to "affinity".
  bool hot = false;
};

/// A placement rule. place() must return a valid worker id; policies may
/// keep state (a striping cursor) but must be deterministic -- the
/// cluster's repeat-run guarantee depends on it. Returning
/// `request.current` (when not kNoWorker) means "stay put"; anything else
/// migrates the session, which costs real reloads.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual WorkerId place(const PlacementRequest& request,
                         const std::vector<ClusterWorkerStatus>& workers) = 0;

  /// True for policies that want footprint signals filled in and the
  /// cluster's automatic trigger evaluation at quiescent run entries.
  virtual bool adaptive() const noexcept { return false; }
};

/// A named placement-policy factory.
struct PlacementEntry {
  std::function<std::unique_ptr<PlacementPolicy>()> build;
  std::string description;  ///< One-line description for listings.
};

/// String-keyed placement table ("round-robin", "least-loaded",
/// "affinity"). See util/registry.h for the shared add/find/keys semantics.
class PlacementRegistry : public NamedRegistry<PlacementEntry> {
 public:
  PlacementRegistry()
      : NamedRegistry<PlacementEntry>("placement policy", "placement policies") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static PlacementRegistry& global();
};

/// Registers the built-in placement policies into `r` (used by global();
/// exposed so tests can build isolated registries).
void register_builtin_placements(PlacementRegistry& r);

/// Cluster knobs.
struct ClusterOptions {
  std::int32_t workers = 2;                 ///< Worker (core) count.
  iomodel::CacheConfig l1{4096, 8};         ///< Per-worker private cache.
  std::int64_t llc_words = 0;               ///< Shared LLC; 0 = none.

  /// LLC lock strategy (runtime::WorkerPoolOptions::llc_shards): 0 = flat
  /// LruCache behind one mutex; >= 1 = address-striped ShardedLruCache with
  /// per-stripe locks (power of two). Model counters are unaffected at 1
  /// stripe and per-tenant counters are unaffected at any stripe count;
  /// wall-clock thread-mode throughput is what sharding buys at 8+ workers.
  std::int32_t llc_shards = 0;

  std::string placement = "round-robin";    ///< PlacementRegistry key.

  /// Automatic-migration triggers for adaptive placement keys; ignored by
  /// static policies. footprint.budget_words defaults to the L1 capacity.
  placement::AdaptiveOptions adaptive;

  /// session::AdmissionRegistry key governing admit() ("unbounded" keeps
  /// the pre-lifecycle behaviour), plus the budget it enforces.
  std::string admission = "unbounded";
  session::AdmissionBudget budget;

  /// Enable the idle-session swap tier (see core::Server::swap).
  bool swap = false;

  /// Simulated address-space words reserved per open session; must be a
  /// multiple of the L1 block size. 2^40 / band_words bands exist -- 16 at
  /// the default 2^36, ~1M at 2^20.
  std::int64_t band_words = std::int64_t{1} << 36;

  /// latency::CostModelRegistry key pricing every tenant step. The default
  /// "uniform" prices a step at its firing count, so virtual time, busy,
  /// and makespan are bit-identical to the pre-latency counters (the
  /// strict-extension gate); "two-level" / "llc-shared" spread step costs
  /// across the hierarchy's cycle model.
  std::string cost_model = "uniform";

  /// Target p99 step cost (modeled cycles) for SLO reporting; 0 disables.
  /// Purely observational -- attainment is reported per tenant in the
  /// latency block, scheduling is unaffected.
  std::int64_t slo_p99 = 0;
};

/// One tenant's slice of a ClusterReport.
struct ClusterTenantReport {
  TenantId id = kNoTenant;
  session::SessionState state = session::SessionState::kLive;
  std::string name;
  runtime::RunResult totals;      ///< Whole-session counters (private-L1 level).
  std::int64_t steps = 0;         ///< Component executions granted.
  std::int64_t outputs = 0;       ///< Sink firings produced.
  WorkerId worker = kNoWorker;    ///< Final placement.
  std::int64_t migrations = 0;    ///< Times this session changed workers.
};

/// One worker's slice of a ClusterReport.
struct ClusterWorkerReport {
  iomodel::CacheStats l1;     ///< The worker's private-cache counters.
  std::int64_t busy = 0;      ///< Modeled cycles executed here (== firings under "uniform").
  std::int64_t steps = 0;     ///< Tenant steps granted here.
  std::int32_t tenants = 0;   ///< Sessions placed here at report time.
  latency::Histogram latency; ///< Step costs executed here (stays on the worker
                              ///< across tenant migrations, unlike tenant totals).
};

/// Per-tenant, per-worker, and aggregate accounting of a cluster run.
struct ClusterReport {
  std::vector<ClusterTenantReport> tenants;  ///< Open sessions, in id order.
  std::vector<ClusterWorkerReport> workers;  ///< Worker-id order.
  runtime::RunResult aggregate;              ///< Sum over open tenants + retired.
  runtime::RunResult retired;                ///< Folded totals of closed sessions.
  std::int64_t retired_sessions = 0;         ///< Sessions closed so far.
  session::LifecycleCounters lifecycle;      ///< Residency + admission accounting.
  std::int64_t swap_stored_bytes = 0;        ///< Swap-tier footprint right now.
  std::int64_t swap_peak_stored_bytes = 0;
  iomodel::CacheStats llc;                   ///< Shared-LLC counters (zero when absent).
  std::int32_t llc_shards = 0;               ///< LLC stripes (0 = single-mutex backend).
  std::string placement;                     ///< Policy key the cluster ran.
  std::string cost_model;                    ///< Cost-model key pricing the steps.
  std::int64_t slo_p99 = 0;                  ///< Target p99 (0 = no SLO set).
  std::int64_t steps = 0;                    ///< Tenant steps across all workers.
  std::int64_t rounds = 0;                   ///< Virtual-time rounds advanced.
  std::int64_t migrations = 0;               ///< Total migrations performed.
  std::int64_t auto_migrations = 0;          ///< Subset triggered by adaptive placement.
  std::int64_t migration_noops = 0;          ///< migrate() calls to the current worker.

  /// Model completion time: tenants are independent and pinned, so each
  /// worker's schedule compresses back-to-back and the last worker to
  /// finish defines the makespan (max busy over workers).
  std::int64_t makespan() const;

  /// Busy-time balance, same definition as ParallelResult::imbalance
  /// (worst/average; 0.0 for an idle pool).
  double imbalance() const;

  /// One stable-keyed JSON object (counters lossless) so cluster runs can
  /// be diffed in CI like sweep CSVs. In thread mode the "llc" block
  /// depends on real interleaving; diff virtual-time reports.
  void write_json(std::ostream& os) const;
};

/// Multicore streaming cluster: a worker pool, many Stream sessions, one
/// placement rule. The controlling thread owns admission, pushes,
/// rebalancing, and draining; execution happens in virtual time (fully
/// deterministic) or on real worker threads (per-tenant deterministic).
class Cluster {
 public:
  /// Throws MemoryError for a degenerate L1 geometry and ccs::Error for bad
  /// worker/LLC parameters or an unknown placement key. `registry` defaults
  /// to PlacementRegistry::global(); it must outlive the cluster.
  explicit Cluster(ClusterOptions options, const PlacementRegistry* registry = nullptr);

  /// Admits a new session and places it via the placement policy. `m` is
  /// the cache size the session's Theta(M) buffers amortize against; 0 (the
  /// default) uses the private-L1 capacity -- a session plans for the
  /// worker cache it will actually run on. Returns kNoTenant when the
  /// admission policy refuses and no idle victim can be swapped out to make
  /// room; throws ccs::Error when the open-session count exhausts the
  /// address bands or the session's layout exceeds one band.
  TenantId admit(std::string name, const sdf::SdfGraph& g, const partition::Partition& p,
                 StreamOptions options = {}, std::int64_t m = 0);

  /// Retires session `id` forever (see Server::close): totals fold into
  /// the report's `retired` aggregate, the band returns to the free list,
  /// and the id is rejected from then on. Throws ccs::Error naming the live
  /// tenants for an unknown or already-closed id.
  void close(TenantId id);

  /// Convenience: admit a Planner plan (graph and partition from the plan's
  /// session).
  TenantId admit(std::string name, const Planner& planner, const Plan& plan,
                 StreamOptions options = {});

  std::int32_t tenant_count() const noexcept {
    return static_cast<std::int32_t>(tenants_.size());
  }
  std::int32_t worker_count() const noexcept { return pool_.size(); }

  /// The tenant's session (for pushes, polls, or direct stepping).
  /// Rehydrates a swapped session first; the const overload throws instead
  /// (a const cluster cannot rebuild the stream).
  Stream& stream(TenantId id);
  const Stream& stream(TenantId id) const;

  const std::string& tenant_name(TenantId id) const;

  /// Lifecycle state of an open session (kLive / kIdle / kSwapped).
  session::SessionState state_of(TenantId id) const;

  /// True iff the session is currently in the swap tier.
  bool swapped(TenantId id) const;

  /// Evicts one resident idle session (requires ClusterOptions::swap);
  /// throws for a non-idle, already-swapped, or unknown tenant.
  void swap_out(TenantId id);

  /// Evicts every resident idle session (requires ClusterOptions::swap);
  /// returns how many were evicted.
  std::int64_t swap_out_idle();

  /// Residency + admission counters (live view of the report's lifecycle).
  const session::LifecycleCounters& lifecycle() const noexcept { return lifecycle_; }

  /// Worker currently serving tenant `id`.
  WorkerId worker_of(TenantId id) const;

  /// Forwards arrivals to tenant `id`; returns how many were accepted.
  std::int64_t push(TenantId id, std::int64_t items);

  /// Virtual time: one lockstep round -- every worker, in id order, offers
  /// one step to its own tenants (rotating among them). Returns how many
  /// workers progressed (0 = the whole cluster is idle).
  std::int64_t step_round();

  /// Virtual time: rounds until every worker is idle; returns tenant steps
  /// executed. Under an adaptive placement policy, entry is a quiescent
  /// adaptation point: footprints are re-estimated and triggered migrations
  /// happen before the first round.
  std::int64_t run_until_idle();

  /// Thread mode: the identical per-worker step loop, one std::thread per
  /// worker, joined before returning; returns tenant steps executed.
  /// Per-tenant counters are bit-identical to virtual time (see the file
  /// comment); only shared-LLC statistics depend on real interleaving.
  /// Adaptive placement adapts at entry, on the controlling thread, exactly
  /// as run_until_idle does -- which is why the mode-equivalence gate holds
  /// for the "adaptive" key too.
  std::int64_t run_threads();

  /// Consults the placement policy for every tenant (admission order) while
  /// quiescent and migrates those told to move. Returns migrations made.
  std::int64_t rebalance();

  /// Adaptive placement's quiescent checkpoint (called automatically at
  /// run_until_idle/run_threads entry; exposed for drivers that step rounds
  /// by hand). Refreshes the footprint estimator from per-tenant counters
  /// and worker residency, evaluates the migration triggers
  /// (ClusterOptions::adaptive), and rebalances only when one fires.
  /// Returns migrations made; always 0 under a non-adaptive policy or with
  /// migration disabled.
  std::int64_t adapt();

  /// Moves tenant `id` to worker `target`. Moving a tenant to its current
  /// worker is a no-op, counted in ClusterReport::migration_noops and never
  /// in `migrations`. Throws ccs::Error naming the live tenants for an
  /// unknown `id`. The session's tokens and counters survive a real move;
  /// its working set must reload.
  void migrate(TenantId id, WorkerId target);

  /// Drains every tenant, in admission order (on the controlling thread;
  /// drain firings still execute against the tenant's worker cache).
  void drain_all();

  /// Per-tenant totals, per-worker occupancy, their sum, and the shared
  /// hierarchy's counters.
  ClusterReport report() const;

  runtime::WorkerPool& pool() noexcept { return pool_; }

 private:
  struct Tenant {
    std::string name;
    std::unique_ptr<Stream> stream;  ///< Null while swapped out.
    WorkerId worker = kNoWorker;
    bool idle = false;  ///< Known-blocked until new arrivals.
    std::int64_t migrations = 0;
    std::int64_t band = 0;          ///< Address-band index.
    std::int64_t layout_words = 0;  ///< Resident footprint (state + rings).

    // Rebuild inputs for rehydration (see Server::Tenant).
    sdf::SdfGraph graph;
    partition::Partition partition;
    StreamOptions stream_options;  ///< With engine.address_base baked in.
    std::int64_t m = 0;

    // Report summary cached at swap-out so report() never rehydrates.
    runtime::RunResult totals;
    std::int64_t steps = 0;
    std::int64_t outputs = 0;
  };

  /// Per-worker scheduling state. In thread mode each worker's struct is
  /// touched only by its own thread (tenants never span workers).
  struct Worker {
    std::vector<TenantId> tenants;  ///< Placement, in arrival-at-worker order.
    std::size_t cursor = 0;         ///< Rotation point into `tenants`.
    std::int64_t busy = 0;          ///< Modeled cycles executed here (the virtual clock).
    std::int64_t steps = 0;         ///< Tenant steps granted here.
    latency::Histogram latency;     ///< Step costs executed here.
  };

  /// THE shared code path of both execution modes: one multiplexing
  /// decision on worker `w` -- rotate to the next non-idle tenant placed
  /// here, step it, account the work. False when every tenant here is idle.
  bool worker_step(WorkerId w);

  Tenant& tenant(TenantId id);
  const Tenant& tenant(TenantId id) const;
  [[noreturn]] void throw_unknown_tenant(TenantId id) const;

  /// Serializes a resident tenant into the swap tier and frees its Stream.
  void swap_out_tenant(TenantId id, Tenant& t);

  /// Rebuilds a swapped tenant's Stream (on its pinned worker's cache).
  void rehydrate(TenantId id, Tenant& t);

  session::AdmissionLoad current_load() const;

  PlacementRequest request_for(TenantId id) const;
  std::vector<ClusterWorkerStatus> worker_statuses() const;
  WorkerId checked_placement(const PlacementRequest& request);

  /// True when footprint signals should be filled in and triggers can fire.
  bool adaptive_active() const noexcept {
    return policy_->adaptive() && options_.adaptive.migrate;
  }

  /// Feeds every tenant's attributed counters and residency to the
  /// estimator (one observation window per adaptation point).
  void observe_footprints();

  /// True iff some worker's hot footprints oversubscribe its L1 or its
  /// private-miss window signals thrash (the two adaptive triggers).
  bool migration_trigger_fired();

  ClusterOptions options_;
  runtime::WorkerPool pool_;
  latency::CostModel cost_model_;  ///< Prices every tenant step; streams point at it.
  std::unique_ptr<PlacementPolicy> policy_;
  std::unique_ptr<session::AdmissionPolicy> admission_;
  std::map<TenantId, Tenant> tenants_;  ///< Open sessions only, O(live+swapped).
  TenantId next_id_ = 0;                ///< Ids are never reused.
  std::set<std::int64_t> free_bands_;   ///< Bands returned by close().
  std::int64_t next_band_ = 0;
  session::SwapManager swap_;
  session::LifecycleCounters lifecycle_;
  runtime::RunResult retired_;          ///< Folded totals of closed sessions.
  std::vector<Worker> workers_;
  placement::FootprintEstimator estimator_;
  std::vector<iomodel::CacheStats> l1_window_base_;  ///< Per-worker thrash windows.
  std::int64_t rounds_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t auto_migrations_ = 0;
  std::int64_t migration_noops_ = 0;
};

/// schedule::simulate_parallel_homogeneous as a thin client of the cluster
/// subsystem: the pool's private worker L1s stand in for the simulator's
/// hand-rolled per-worker caches. Per-worker counters are bit-identical to
/// the flat-cache simulator on the same geometry (the golden gate in
/// tests/schedule/parallel_golden_test.cc); a pool with a shared LLC
/// additionally fills ParallelResult::llc with the shared-level traffic of
/// this run. The pool's caches are used as-is (pass a fresh pool for a
/// cold-cache measurement) and must match the graph's intended geometry.
schedule::ParallelResult simulate_parallel_on_pool(const sdf::SdfGraph& g,
                                                   const partition::Partition& p,
                                                   std::int64_t m,
                                                   runtime::WorkerPool& pool,
                                                   std::int64_t min_outputs);

}  // namespace ccs::core
