#include "iomodel/opt_cache.h"

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/contracts.h"

namespace ccs::iomodel {

std::int64_t opt_misses(const std::vector<BlockId>& block_trace,
                        std::int64_t capacity_blocks) {
  CCS_EXPECTS(capacity_blocks >= 1, "cache must hold at least one block");
  const std::size_t n = block_trace.size();

  // next_use[i] = next position after i touching the same block (n if none).
  std::vector<std::size_t> next_use(n);
  std::unordered_map<BlockId, std::size_t> last_seen;
  for (std::size_t i = n; i-- > 0;) {
    const auto it = last_seen.find(block_trace[i]);
    next_use[i] = it == last_seen.end() ? n : it->second;
    last_seen[block_trace[i]] = i;
  }

  // Max-heap of (next_use, block) for resident blocks; lazily invalidated.
  // Ties on next_use (only possible at the never-used-again sentinel n, since
  // real next-use positions are unique) are broken toward the LOWEST block id
  // -- the choice cannot change the miss count, but pinning it keeps the
  // eviction sequence reproducible across stdlib heap implementations.
  using Entry = std::pair<std::size_t, BlockId>;
  struct FurthestThenLowestBlock {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;  // reversed: top() prefers the lowest id
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, FurthestThenLowestBlock> heap;
  std::unordered_map<BlockId, std::size_t> resident;  // block -> its current next_use
  std::int64_t misses = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const BlockId b = block_trace[i];
    const auto it = resident.find(b);
    if (it != resident.end()) {
      it->second = next_use[i];
      heap.push(Entry{next_use[i], b});
      continue;
    }
    ++misses;
    if (static_cast<std::int64_t>(resident.size()) == capacity_blocks) {
      // Evict the block whose next use is furthest in the future, skipping
      // stale heap entries.
      while (true) {
        CCS_CHECK(!heap.empty(), "resident set non-empty implies heap entries");
        const auto [use, victim] = heap.top();
        heap.pop();
        const auto rit = resident.find(victim);
        if (rit != resident.end() && rit->second == use) {
          resident.erase(rit);
          break;
        }
      }
    }
    resident[b] = next_use[i];
    heap.push(Entry{next_use[i], b});
  }
  return misses;
}

std::vector<BlockId> to_block_trace(const std::vector<Addr>& addr_trace,
                                    std::int64_t block_words) {
  CCS_EXPECTS(block_words > 0, "block size must be positive");
  std::vector<BlockId> out;
  out.reserve(addr_trace.size());
  for (const Addr a : addr_trace) {
    CCS_EXPECTS(a >= 0, "negative address in trace");
    out.push_back(a / block_words);
  }
  return out;
}

}  // namespace ccs::iomodel
