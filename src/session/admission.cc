#include "session/admission.h"

namespace ccs::session {

namespace {

/// Always admit -- the pre-lifecycle behaviour, and the default.
class UnboundedPolicy final : public AdmissionPolicy {
 public:
  bool admits(const AdmissionLoad&, const AdmissionRequest&) const override {
    return true;
  }
  std::string name() const override { return "unbounded"; }
};

/// At most budget.max_live_sessions resident sessions (0 = unlimited).
class BoundedLivePolicy final : public AdmissionPolicy {
 public:
  explicit BoundedLivePolicy(const AdmissionBudget& budget) : budget_(budget) {}

  bool admits(const AdmissionLoad& load, const AdmissionRequest&) const override {
    return budget_.max_live_sessions <= 0 ||
           load.live_sessions < budget_.max_live_sessions;
  }
  std::string name() const override { return "bounded-live"; }

 private:
  AdmissionBudget budget_;
};

/// Resident layout words must stay within budget.max_resident_words after
/// the admit (0 = unlimited). A candidate bigger than the whole budget is
/// refused even on an empty endpoint -- no eviction sequence can fit it.
class BoundedMemoryPolicy final : public AdmissionPolicy {
 public:
  explicit BoundedMemoryPolicy(const AdmissionBudget& budget) : budget_(budget) {}

  bool admits(const AdmissionLoad& load, const AdmissionRequest& request) const override {
    return budget_.max_resident_words <= 0 ||
           load.resident_words + request.layout_words <= budget_.max_resident_words;
  }
  std::string name() const override { return "bounded-memory"; }

 private:
  AdmissionBudget budget_;
};

}  // namespace

void register_builtin_admission(AdmissionRegistry& r) {
  r.add("unbounded",
        AdmissionEntry{[](const AdmissionBudget&) -> std::unique_ptr<AdmissionPolicy> {
                         return std::make_unique<UnboundedPolicy>();
                       },
                       "always admit (memory grows with ever-admitted sessions)"});
  r.add("bounded-live",
        AdmissionEntry{[](const AdmissionBudget& b) -> std::unique_ptr<AdmissionPolicy> {
                         return std::make_unique<BoundedLivePolicy>(b);
                       },
                       "cap resident sessions at budget.max_live_sessions"});
  r.add("bounded-memory",
        AdmissionEntry{[](const AdmissionBudget& b) -> std::unique_ptr<AdmissionPolicy> {
                         return std::make_unique<BoundedMemoryPolicy>(b);
                       },
                       "cap resident layout words at budget.max_resident_words"});
}

AdmissionRegistry& AdmissionRegistry::global() {
  static AdmissionRegistry* instance = [] {
    auto* r = new AdmissionRegistry();
    register_builtin_admission(*r);
    return r;
  }();
  return *instance;
}

std::unique_ptr<AdmissionPolicy> AdmissionRegistry::build(
    const std::string& name, const AdmissionBudget& budget) const {
  return find(name).build(budget);
}

}  // namespace ccs::session
