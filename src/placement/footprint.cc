#include "placement/footprint.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::placement {

FootprintEstimator::FootprintEstimator(FootprintConfig config) : config_(config) {
  if (config_.budget_words < 0) throw Error("footprint budget must be non-negative");
  if (config_.min_window_accesses < 1) {
    throw Error("footprint estimator needs min_window_accesses >= 1");
  }
  if (config_.cold_windows < 1) throw Error("footprint estimator needs cold_windows >= 1");
  if (config_.express_permille < 0) {
    throw Error("footprint thresholds must be non-negative");
  }
  if (config_.thrash_miss_permille < 0 || config_.thrash_miss_permille > 1000) {
    throw Error("thrash threshold is a miss rate per mille: it must lie in [0, 1000]");
  }
}

std::int32_t FootprintEstimator::add_session(std::int64_t layout_words,
                                             std::int64_t state_words) {
  CCS_EXPECTS(layout_words >= 0 && state_words >= 0,
              "session footprint seeds must be non-negative");
  CCS_EXPECTS(state_words <= layout_words,
              "module state cannot exceed the layout span it is part of");
  Session s;
  s.layout = layout_words;
  s.state = state_words;
  s.live = layout_words;  // the gain-analysis seed: assume the whole span is live
  sessions_.push_back(s);
  return static_cast<std::int32_t>(sessions_.size() - 1);
}

const FootprintEstimator::Session& FootprintEstimator::session(std::int32_t s) const {
  CCS_EXPECTS(s >= 0 && s < session_count(), "session index out of range");
  return sessions_[static_cast<std::size_t>(s)];
}

void FootprintEstimator::observe(std::int32_t s, const FootprintObservation& o) {
  CCS_EXPECTS(s >= 0 && s < session_count(), "session index out of range");
  Session& session = sessions_[static_cast<std::size_t>(s)];
  CCS_EXPECTS(o.accesses >= session.last_accesses && o.misses >= session.last_misses,
              "footprint observations must carry monotone lifetime counters");
  const std::int64_t window_accesses = o.accesses - session.last_accesses;
  const std::int64_t window_misses = o.misses - session.last_misses;
  session.last_accesses = o.accesses;
  session.last_misses = o.misses;

  if (window_accesses < config_.min_window_accesses) {
    if (++session.quiet >= config_.cold_windows) session.active = false;
    return;
  }
  session.quiet = 0;
  session.active = true;
  session.miss_permille = window_misses * 1000 / window_accesses;
  if (session.miss_permille >= config_.thrash_miss_permille) {
    // Cycling the whole span through the cache: nothing stays resident long
    // enough for the residency probe to mean anything.
    session.live = session.layout;
  } else {
    // Warm enough to trust residency, floored at the state share (a session
    // that just migrated holds nothing yet but will reload at least state).
    session.live = std::clamp(o.resident_words, std::min(session.state, session.layout),
                              session.layout);
  }
}

std::int64_t FootprintEstimator::footprint_words(std::int32_t s) const {
  return session(s).live;
}

bool FootprintEstimator::express(std::int32_t s) const {
  if (config_.budget_words <= 0) return false;
  return session(s).live * 1000 > config_.express_permille * config_.budget_words;
}

bool FootprintEstimator::hot(std::int32_t s) const {
  return session(s).active && !express(s);
}

std::int64_t FootprintEstimator::window_miss_permille(std::int32_t s) const {
  return session(s).miss_permille;
}

}  // namespace ccs::placement
