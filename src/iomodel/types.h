// Core types of the external-memory (I/O) model [Aggarwal & Vitter 1988].
//
// The paper analyzes schedules in this model: a fast cache of M words, an
// arbitrarily large slow memory, and transfers in blocks of B words. Cost is
// the number of block transfers (cache misses). All sizes in this library
// are in *words*; one streaming token occupies one word.
#pragma once

#include <cstdint>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::iomodel {

/// Word address in the simulated flat address space.
using Addr = std::int64_t;

/// Block index = Addr / block_words.
using BlockId = std::int64_t;

/// Read or write; writes mark the cached block dirty (write-back,
/// write-allocate policy, matching how real caches treat streaming stores).
enum class AccessMode : std::uint8_t { kRead, kWrite };

/// Cache geometry.
struct CacheConfig {
  std::int64_t capacity_words = 64 * 1024;  ///< M.
  std::int64_t block_words = 8;             ///< B.

  std::int64_t capacity_blocks() const {
    CCS_EXPECTS(block_words > 0, "block size must be positive");
    CCS_EXPECTS(capacity_words >= block_words, "cache smaller than one block");
    return capacity_words / block_words;
  }
};

/// Transfer counters. `misses` counts fetches from slow memory;
/// `writebacks` counts dirty evictions (also block transfers in the model,
/// tracked separately because the paper's bounds are stated in fetches).
struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t writebacks = 0;

  double miss_rate() const {
    return accesses > 0 ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
  /// Total block transfers in the I/O model (fetches + dirty evictions).
  std::int64_t transfers() const { return misses + writebacks; }

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

}  // namespace ccs::iomodel
