// E2 -- the Theorem 3 lower bound vs measured misses (Thm 3 / Lemma 4).
//
// Workload: random multirate pipelines across seeds. For each, compute the
// Theorem 3 witness bound (T/B * sum of gain-minimizing edge gains over the
// 2M segments), simulate the partitioned schedule on an 8M cache, and the
// naive schedule on an M cache. Expected shape: measured(any) >= ~LB, and
// measured(partitioned) within a small constant of LB -- the sandwich that
// proves near-optimality.

#include "analysis/lower_bound.h"
#include "bench/common.h"
#include "schedule/naive.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  Rng rng(2024);

  Table t("E2: Theorem 3 lower bound vs measured misses (random pipelines, M=512, B=8)");
  t.set_header({"seed", "LB bw", "LB misses", "partitioned", "part/LB", "naive@M", "naive/LB"});
  for (int seed = 0; seed < 6; ++seed) {
    Rng trial = rng.fork();
    const auto g = workloads::random_pipeline(20, 64, 300, 3, trial);
    const auto bound = analysis::pipeline_lower_bound(g, m);
    if (bound.bandwidth_term.is_zero()) continue;

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const std::int64_t outputs = 4 * plan.schedule.outputs_per_period;
    const auto r_part = bench::run(g, plan.schedule, 8 * m, b, outputs);
    const auto naive = schedule::naive_minimal_buffer_schedule(g);
    const auto r_naive = bench::run(g, naive, m, b, outputs);

    const double lb_part = bound.misses(r_part.source_firings, b);
    const double lb_naive = bound.misses(r_naive.source_firings, b);
    t.add_row({Table::num(static_cast<std::int64_t>(seed)),
               bound.bandwidth_term.to_string(), Table::num(lb_part, 0),
               Table::num(static_cast<std::int64_t>(r_part.cache.misses)),
               bench::safe_ratio(static_cast<double>(r_part.cache.misses), lb_part),
               Table::num(static_cast<std::int64_t>(r_naive.cache.misses)),
               bench::safe_ratio(static_cast<double>(r_naive.cache.misses), lb_naive)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
