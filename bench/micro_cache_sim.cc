// Microbenchmark: cache simulator throughput (google-benchmark).
//
// The experiment harness's wall-clock time is dominated by simulated memory
// accesses; these benches track simulated accesses/second for each cache
// variant so regressions in the hot path are caught.
//
// Two families:
//  * range regimes (BM_LruHot, BM_LruSequential, BM_*Range) drive the cache
//    through the block-granular bulk API exactly as the runtime engine does
//    (state scans, channel ring segments); items = simulated block accesses.
//  * scalar regimes (BM_*Scalar*, BM_LruRandom) issue one virtual access()
//    per word over a precomputed address stream, tracking the non-bulk path
//    without measuring the RNG.

#include <benchmark/benchmark.h>

#include <vector>

#include "iomodel/cache.h"
#include "iomodel/hierarchy.h"
#include "iomodel/opt_cache.h"
#include "util/rng.h"

namespace {

using namespace ccs::iomodel;

constexpr std::int64_t kSpanWords = 64;  // typical state-scan / ring-segment span

std::vector<Addr> random_addrs(std::uint64_t seed, std::int64_t hi_inclusive, int n) {
  ccs::Rng rng(seed);
  std::vector<Addr> addrs;
  addrs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) addrs.push_back(rng.uniform(0, hi_inclusive));
  return addrs;
}

// Resident regime through the bulk API: random 64-word spans inside half the
// cache, so every block access is a hit -- the common case when a scheduled
// component fits in cache. Items = simulated block accesses.
void BM_LruHot(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  const auto starts = random_addrs(2, 32 * 1024 - kSpanWords, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access_span(starts[i], kSpanWords, AccessMode::kRead);
    if (++i == starts.size()) i = 0;
  }
  state.SetItemsProcessed(cache.stats().accesses);
}
BENCHMARK(BM_LruHot);

// Streaming regime through the bulk API: a long sequential scan in 64-word
// chunks; every block is a cold miss with an eviction, like a working set
// far beyond M. Items = simulated block accesses.
void BM_LruSequential(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  Addr a = 0;
  for (auto _ : state) {
    cache.access_span(a, kSpanWords, AccessMode::kRead);
    a += kSpanWords;
    if (a >= (Addr{1} << 40)) a = 0;
  }
  state.SetItemsProcessed(cache.stats().accesses);
}
BENCHMARK(BM_LruSequential);

// Scalar hit path: one virtual access() per word, precomputed addresses.
void BM_LruScalarHot(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  const auto addrs = random_addrs(2, 32 * 1024, 65536);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access(addrs[i], AccessMode::kRead);
    if (++i == addrs.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruScalarHot);

// Scalar mixed hit/miss path over a large address space.
void BM_LruRandom(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  const auto addrs = random_addrs(1, 1 << 22, 65536);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access(addrs[i], AccessMode::kRead);
    if (++i == addrs.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruRandom);

void BM_SetAssociativeRandom(benchmark::State& state) {
  SetAssociativeCache cache(CacheConfig{64 * 1024, 8}, 8);
  const auto addrs = random_addrs(3, 1 << 22, 65536);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access(addrs[i], AccessMode::kRead);
    if (++i == addrs.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssociativeRandom);

// Bulk resident regime on realistic geometry.
void BM_SetAssociativeRange(benchmark::State& state) {
  SetAssociativeCache cache(CacheConfig{64 * 1024, 8}, 8);
  const auto starts = random_addrs(5, 32 * 1024 - kSpanWords, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access_span(starts[i], kSpanWords, AccessMode::kRead);
    if (++i == starts.size()) i = 0;
  }
  state.SetItemsProcessed(cache.stats().accesses);
}
BENCHMARK(BM_SetAssociativeRange);

// Bulk resident regime through a two-level hierarchy (every span hits L1).
void BM_HierarchyRange(benchmark::State& state) {
  HierarchyCache cache({64 * 1024, 512 * 1024}, 8);
  const auto starts = random_addrs(6, 32 * 1024 - kSpanWords, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    cache.access_span(starts[i], kSpanWords, AccessMode::kRead);
    if (++i == starts.size()) i = 0;
  }
  state.SetItemsProcessed(cache.level_stats(0).accesses);
}
BENCHMARK(BM_HierarchyRange);

void BM_OptOffline(benchmark::State& state) {
  ccs::Rng rng(4);
  std::vector<BlockId> trace;
  trace.reserve(100000);
  for (int i = 0; i < 100000; ++i) trace.push_back(rng.uniform(0, 4096));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_misses(trace, 512));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_OptOffline);

}  // namespace

BENCHMARK_MAIN();
