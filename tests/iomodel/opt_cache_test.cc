#include "iomodel/opt_cache.h"

#include <gtest/gtest.h>

#include "iomodel/cache.h"
#include "iomodel/trace.h"
#include "util/rng.h"

namespace ccs::iomodel {
namespace {

TEST(OptCache, ColdMissesOnly) {
  EXPECT_EQ(opt_misses({1, 2, 3, 1, 2, 3}, 3), 3);
}

TEST(OptCache, ClassicBeladyExample) {
  // Capacity 3, trace 1 2 3 4 1 2 5 1 2 3 4 5: OPT misses 7.
  const std::vector<BlockId> trace{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  EXPECT_EQ(opt_misses(trace, 3), 7);
}

TEST(OptCache, CapacityOneMissesEveryChange) {
  EXPECT_EQ(opt_misses({1, 1, 2, 2, 1}, 1), 3);
}

TEST(OptCache, EmptyTrace) { EXPECT_EQ(opt_misses({}, 4), 0); }

TEST(OptCache, NeverWorseThanLruOnRandomTraces) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BlockId> trace;
    for (int i = 0; i < 3000; ++i) trace.push_back(rng.uniform(0, 40));
    const std::int64_t capacity = 8;
    LruCache lru(CacheConfig{capacity * 8, 8});
    for (const BlockId b : trace) lru.access(b * 8, AccessMode::kRead);
    EXPECT_LE(opt_misses(trace, capacity), lru.stats().misses) << "trial " << trial;
  }
}

TEST(OptCache, SleatorTarjanResourceAugmentation) {
  // LRU with 2k capacity incurs at most ~2x the misses of OPT with k
  // (k/(2k-k+1) * OPT + k cold misses). Verify the bound empirically.
  Rng rng(99);
  std::vector<BlockId> trace;
  for (int i = 0; i < 5000; ++i) trace.push_back(rng.uniform(0, 30));
  const std::int64_t k = 8;
  LruCache lru(CacheConfig{2 * k * 8, 8});
  for (const BlockId b : trace) lru.access(b * 8, AccessMode::kRead);
  const auto opt = opt_misses(trace, k);
  EXPECT_LE(static_cast<double>(lru.stats().misses),
            2.0 * static_cast<double>(opt) + 2.0 * static_cast<double>(k));
}

TEST(OptCache, TieBreakOnNeverUsedAgainIsDeterministic) {
  // Blocks 1..4 are all never used again once block 5 arrives, so every
  // eviction decision from then on is a pure tie on next_use == n. The
  // tie-break (lowest block id first) cannot change the miss count -- any
  // Belady tie-break is optimal -- but the count must be exact and stable:
  // 4 cold misses + one miss each for 5, 6, 7.
  const std::vector<BlockId> trace{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(opt_misses(trace, 4), 7);

  // Interleaved ties: 10 and 20 are dead after position 1, 30 keeps its next
  // use at position 4. OPT must evict a dead block (not 30) on the miss of
  // 40, so 30's reuse at position 4 hits: misses are exactly the 4 distinct
  // blocks. A wrong tie-break that evicted 30 would score 5.
  const std::vector<BlockId> reuse{10, 20, 30, 40, 30};
  EXPECT_EQ(opt_misses(reuse, 3), 4);

  // Same trace, both orders of the dead blocks: the tie-break must not
  // depend on insertion order into the heap.
  const std::vector<BlockId> swapped{20, 10, 30, 40, 30};
  EXPECT_EQ(opt_misses(swapped, 3), 4);
}

TEST(ToBlockTrace, DividesByBlockSize) {
  const auto blocks = to_block_trace({0, 7, 8, 15, 16}, 8);
  EXPECT_EQ(blocks, (std::vector<BlockId>{0, 0, 1, 1, 2}));
}

TEST(RecordingCache, CapturesAddressStream) {
  LruCache inner(CacheConfig{64, 8});
  RecordingCache rec(inner);
  rec.access(5, AccessMode::kRead);
  rec.access(13, AccessMode::kWrite);
  EXPECT_EQ(rec.trace(), (std::vector<Addr>{5, 13}));
  EXPECT_EQ(rec.stats().misses, 2);  // forwarded to inner
  rec.clear_trace();
  EXPECT_TRUE(rec.trace().empty());
}

}  // namespace
}  // namespace ccs::iomodel
