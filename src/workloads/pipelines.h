// Synthetic pipeline workloads.
//
// Pipelines (single directed chains) are the class for which the paper gives
// a complete, polynomial-time solution (Section 4). The generators here
// produce the families used by experiments E1-E4:
//  * uniform      -- identical modules; partitioning reduces to bin packing.
//  * random       -- random states and rates; general-position instances.
//  * hourglass    -- decimate-then-interpolate gain profile, where gains dip
//                    in the middle; cutting at gain-minimizing edges beats
//                    state-balanced cutting, exercising Theorem 5's cut rule.
//  * heavy_tail   -- few large-state modules among many small ones, making
//                    the c-bounded constraint bind in interesting places.
//
// All generated pipelines have the chain topology src = m0 -> m1 -> ... ->
// m(n-1) = sink and are rate matched by construction (any chain is).
#pragma once

#include <cstdint>

#include "sdf/graph.h"
#include "util/rng.h"

namespace ccs::workloads {

/// n identical modules of `state` words; every edge has rates (out, in) =
/// (rate, rate). Requires n >= 2.
sdf::SdfGraph uniform_pipeline(std::int32_t n, std::int64_t state, std::int64_t rate = 1);

/// Random pipeline: states uniform in [state_lo, state_hi], edge rates
/// uniform in [1, max_rate] independently per endpoint.
sdf::SdfGraph random_pipeline(std::int32_t n, std::int64_t state_lo, std::int64_t state_hi,
                              std::int64_t max_rate, Rng& rng);

/// Decimate-then-interpolate pipeline: the first half of the edges each
/// consume `factor` tokens per firing and emit 1 (gain shrinks by factor per
/// stage); the second half mirror this (1 in, `factor` out). Token traffic
/// is lowest at the waist, so the optimal cuts cluster there.
sdf::SdfGraph hourglass_pipeline(std::int32_t n, std::int64_t state, std::int64_t factor);

/// Mostly `small_state` modules with every k-th module of `large_state`.
sdf::SdfGraph heavy_tail_pipeline(std::int32_t n, std::int64_t small_state,
                                  std::int64_t large_state, std::int32_t every_k);

}  // namespace ccs::workloads
