// Cache-oblivious baseline schedulers.
//
// These represent what a streaming runtime does when it ignores the cache:
// execute one steady-state iteration at a time across the *whole* graph.
// When the graph's total state exceeds M, every module's state is evicted
// between its firings in consecutive iterations, which is exactly the
// pathology the paper's partitioned scheduler removes.
#pragma once

#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Demand-driven steady state over minimal feasible buffers. The classic
/// "smallest memory" schedule; one period = one iteration.
Schedule naive_minimal_buffer_schedule(const sdf::SdfGraph& g);

/// Single-appearance steady state (topological order, q(v) firings per
/// module) with one full iteration of traffic buffered per edge.
Schedule naive_single_appearance_schedule(const sdf::SdfGraph& g);

}  // namespace ccs::schedule
