#include "partition/agglomerative.h"

#include <algorithm>
#include <vector>

#include "partition/dag_refine.h"
#include "sdf/gain.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::partition {

namespace {

/// Dense renumbering after merges emptied some component ids.
Partition compact(const Partition& p) {
  std::vector<std::int32_t> remap(static_cast<std::size_t>(p.num_components), -1);
  std::int32_t next = 0;
  for (const std::int32_t c : p.assignment) {
    auto& slot = remap[static_cast<std::size_t>(c)];
    if (slot == -1) slot = next++;
  }
  Partition out;
  out.num_components = next;
  out.assignment.reserve(p.assignment.size());
  for (const std::int32_t c : p.assignment) {
    out.assignment.push_back(remap[static_cast<std::size_t>(c)]);
  }
  return out;
}

}  // namespace

Partition agglomerative_partition(const sdf::SdfGraph& g, std::int64_t state_bound) {
  CCS_EXPECTS(state_bound > 0, "state bound must be positive");
  if (g.max_state() > state_bound) {
    throw Error("a module exceeds the state bound; no bounded partition exists");
  }
  const sdf::GainMap gains(g);

  // Edges by descending gain: the most expensive traffic merges first.
  std::vector<sdf::EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) order[static_cast<std::size_t>(e)] = e;
  std::sort(order.begin(), order.end(), [&](sdf::EdgeId a, sdf::EdgeId b) {
    if (gains.edge_gain(a) != gains.edge_gain(b)) {
      return gains.edge_gain(b) < gains.edge_gain(a);
    }
    return a < b;  // deterministic tie-break
  });

  Partition cur = Partition::singletons(g);
  std::vector<std::int64_t> state(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    state[static_cast<std::size_t>(v)] = g.node(v).state;
  }

  bool merged = true;
  while (merged) {
    merged = false;
    for (const sdf::EdgeId e : order) {
      const std::int32_t a = cur.comp(g.edge(e).src);
      const std::int32_t b = cur.comp(g.edge(e).dst);
      if (a == b) continue;
      if (state[static_cast<std::size_t>(a)] + state[static_cast<std::size_t>(b)] >
          state_bound) {
        continue;
      }
      // Trial merge b into a; keep only if the contraction stays acyclic.
      Partition trial = cur;
      for (auto& c : trial.assignment) {
        if (c == b) c = a;
      }
      if (!sdf::contraction_is_acyclic(g, trial.assignment, trial.num_components)) continue;
      state[static_cast<std::size_t>(a)] += state[static_cast<std::size_t>(b)];
      state[static_cast<std::size_t>(b)] = 0;
      cur = std::move(trial);
      merged = true;
    }
  }

  cur = compact(cur);
  RefineOptions refine;
  refine.state_bound = state_bound;
  cur = refine_partition(g, cur, refine);
  CCS_ENSURES(is_well_ordered(g, cur), "clustering must preserve well-ordering");
  CCS_ENSURES(is_bounded(g, cur, state_bound), "clustering must respect the bound");
  return cur;
}

}  // namespace ccs::partition
