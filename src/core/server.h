// core::Server -- multi-tenant serving over one shared cache, with sessions
// as a managed, bounded resource.
//
// The paper's cost model is about a *single* application owning the cache;
// serving-scale reality is several streaming applications timesharing one.
// A Server owns a shared CacheSim, admits multiple core::Stream sessions
// onto it, and multiplexes their component executions with a pluggable
// tenant policy -- round-robin (fair timesharing) or miss-aware (cache
// affinity: prefer the tenant whose working set is resident). Every tenant
// keeps its own RunResult, and because each cache access belongs to exactly
// one tenant's step, the per-tenant counters always sum to the shared
// cache's aggregate -- the interference between tenants shows up as each
// tenant's misses rising above its solo baseline, which is the paper's
// cache-contention story at serving scale.
//
// Session lifecycle (src/session/): sessions open (admit), retire (close),
// and -- when the swap tier is enabled -- idle out of residency entirely:
//
//   * admit() asks the session::AdmissionPolicy (ServerOptions::admission)
//     whether another resident session fits the budget. A refusal evicts
//     the least-recently-active *idle* session to the swap tier and retries
//     (counted admissions_queued); with no victim available the admission
//     is rejected (admissions_rejected) and admit() returns kNoTenant.
//   * A swapped session is a compact session::SwapImage plus the inputs
//     needed to rebuild its Stream; it keeps its tenant id, its address
//     band, and its slot in the multiplexing order (as an idle tenant), so
//     a swap-on run's per-tenant counters are bit-identical to a swap-off
//     run's -- rehydration (transparent, on the next push) rebuilds the
//     engine without a single cache access.
//   * close() retires a session forever: its totals fold into the report's
//     `retired` aggregate, its address band returns to the free list, and
//     its id is rejected from then on (with an error naming the live
//     tenants, like Cluster::migrate). Memory is therefore O(live), not
//     O(ever-admitted) -- the property bench/micro_churn.cc measures at
//     1,000,000 logical sessions.
//
//   core::ServerOptions sopts;
//   sopts.cache = {64 * 1024, 8};
//   sopts.admission = "bounded-live";
//   sopts.budget.max_live_sessions = 4;
//   sopts.swap = true;
//   core::Server server(sopts);
//   const auto a = server.admit("radio", g1, plan1.partition);
//   server.push(a, 4096);
//   server.run_until_idle();
//   server.close(a);
//   server.report().write_json(std::cout);
//
// Determinism: admission order, arrival pushes, eviction (LRU over idle
// sessions), and both built-in tenant policies are deterministic, so
// repeated identical runs produce identical per-tenant and aggregate
// counters (asserted in tests/core/server_test.cc and the lifecycle suite).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/stream.h"
#include "iomodel/cache.h"
#include "iomodel/types.h"
#include "partition/partition.h"
#include "runtime/run_result.h"
#include "session/admission.h"
#include "session/lifecycle.h"
#include "session/swap.h"
#include "util/registry.h"

namespace ccs::core {

/// Tenant id within one Server: assigned monotonically at admission and
/// never reused, so a closed session's id stays invalid forever.
using TenantId = std::int32_t;

inline constexpr TenantId kNoTenant = -1;

/// What a tenant policy may consult about one tenant when picking who runs
/// next. Only runnable tenants are offered.
struct TenantStatus {
  TenantId id = kNoTenant;
  std::int64_t pending_inputs = 0;    ///< Arrivals waiting to be consumed.
  std::int64_t outputs = 0;           ///< Sink firings so far.
  std::int64_t steps = 0;             ///< Component executions so far.
  double last_miss_rate = 0.0;        ///< Misses per firing of the last step.
};

/// A tenant-multiplexing rule. pick() must return one of the offered ids;
/// policies may keep state (e.g. a rotation cursor) but must be
/// deterministic -- the Server's repeat-run guarantee depends on it.
class TenantPolicy {
 public:
  virtual ~TenantPolicy() = default;
  virtual TenantId pick(const std::vector<TenantStatus>& runnable) = 0;
};

/// A named tenant-policy factory.
struct TenantPolicyEntry {
  std::function<std::unique_ptr<TenantPolicy>()> build;
  std::string description;  ///< One-line description for listings.
};

/// String-keyed tenant-policy table ("round-robin", "miss-aware"). See
/// util/registry.h for the shared add/find/keys semantics.
class TenantRegistry : public NamedRegistry<TenantPolicyEntry> {
 public:
  TenantRegistry()
      : NamedRegistry<TenantPolicyEntry>("tenant policy", "tenant policies") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static TenantRegistry& global();
};

/// Registers the built-in tenant policies into `r` (used by global();
/// exposed so tests can build isolated registries): round-robin, miss-aware.
void register_builtin_tenant_policies(TenantRegistry& r);

/// Server knobs.
struct ServerOptions {
  iomodel::CacheConfig cache{64 * 1024, 8};  ///< Shared cache geometry.
  std::string tenant_policy = "round-robin";  ///< TenantRegistry key.

  /// session::AdmissionRegistry key governing admit(). "unbounded" (the
  /// default) admits everything, preserving the pre-lifecycle behaviour.
  std::string admission = "unbounded";

  /// Limits the admission policy enforces (all-zero = no limits).
  session::AdmissionBudget budget;

  /// Enable the idle-session swap tier: an admission the policy refuses
  /// evicts the least-recently-active idle session (serialized to a
  /// session::SwapImage) and retries; swapped sessions rehydrate
  /// transparently on their next push(). Off, refused admissions are
  /// simply rejected.
  bool swap = false;

  /// Words of simulated address space reserved per open session (the band
  /// its state, rings, and external streams live in). The default 2^36
  /// preserves the historical banding; smaller bands admit more concurrent
  /// sessions (the 2^40 space holds 2^40 / band_words bands -- 16 at the
  /// default, ~1M at 2^20). Must be a multiple of the cache block size and
  /// large enough for each session's layout.
  std::int64_t band_words = std::int64_t{1} << 36;
};

/// One tenant's slice of a ServerReport.
struct TenantReport {
  TenantId id = kNoTenant;
  std::string name;
  session::SessionState state = session::SessionState::kLive;
  runtime::RunResult totals;   ///< This tenant's whole-session counters.
  std::int64_t steps = 0;      ///< Component executions granted.
  std::int64_t outputs = 0;    ///< Sink firings produced.
};

/// Per-tenant and aggregate accounting of everything the server executed.
struct ServerReport {
  std::vector<TenantReport> tenants;   ///< Open sessions, in id order.
  runtime::RunResult aggregate;        ///< Sum over open tenants + retired.
  runtime::RunResult retired;          ///< Folded totals of closed sessions.
  std::int64_t retired_sessions = 0;   ///< Sessions closed so far.
  iomodel::CacheStats shared_cache;    ///< Shared-cache deltas since admission
                                       ///< began (== aggregate.cache).
  std::int64_t steps = 0;              ///< Multiplexing decisions executed.
  session::LifecycleCounters lifecycle;  ///< Residency + admission accounting.
  std::int64_t swap_stored_bytes = 0;    ///< Swap-tier footprint right now.
  std::int64_t swap_peak_stored_bytes = 0;

  /// One stable-keyed JSON object (counters lossless) so server runs can
  /// be byte-diffed in CI. The "lifecycle" sub-object is emitted on a
  /// single line so differentials that legitimately differ only in swap
  /// accounting can strip it with `grep -v '"lifecycle"'`.
  void write_json(std::ostream& os) const;
};

/// Multi-tenant streaming server: one shared cache, many Stream sessions,
/// one multiplexing rule. Not thread-safe -- the shared cache makes tenant
/// steps inherently serial (that is the contention being modeled).
class Server {
 public:
  /// Throws MemoryError for a degenerate cache geometry and ccs::Error for
  /// an unknown tenant-policy/admission key or invalid band size.
  /// `registry` defaults to TenantRegistry::global(); it must outlive the
  /// server.
  explicit Server(ServerOptions options, const TenantRegistry* registry = nullptr);

  /// Admits a new session over the shared cache and returns its id, or
  /// kNoTenant when the admission policy refuses and no idle victim can be
  /// swapped out to make room (counted in the lifecycle report either
  /// way). `options.policy` resolves through the online registry as usual.
  /// `m` is the cache size the session's Theta(M) buffers amortize
  /// against; 0 (the default) uses the shared cache's full capacity, a
  /// smaller value sizes the tenant for its *share* of a contended cache.
  /// Throws ccs::Error when the open-session count exhausts the address
  /// bands or the session's layout exceeds one band.
  TenantId admit(std::string name, const sdf::SdfGraph& g, const partition::Partition& p,
                 StreamOptions options = {}, std::int64_t m = 0);

  /// Convenience: admit a Planner plan (graph and partition from the plan's
  /// session). The shared cache geometry still governs buffer sizing.
  TenantId admit(std::string name, const Planner& planner, const Plan& plan,
                 StreamOptions options = {});

  /// Retires session `id` forever: folds its totals into the report's
  /// `retired` aggregate, frees its engine (or discards its swap image),
  /// and returns its address band to the free list. The id is rejected
  /// from then on. Throws ccs::Error naming the live tenants for an
  /// unknown or already-closed id.
  void close(TenantId id);

  /// Open sessions right now (live + idle + swapped).
  std::int32_t tenant_count() const noexcept {
    return static_cast<std::int32_t>(tenants_.size());
  }

  /// The tenant's session (for pushes, polls, or direct stepping).
  /// Rehydrates a swapped session first -- taking a Stream reference means
  /// the caller is about to touch live state. Throws ccs::Error naming the
  /// live tenants for an unknown or closed id.
  Stream& stream(TenantId id);

  const std::string& tenant_name(TenantId id) const;

  /// Lifecycle state of an open session (kLive / kIdle / kSwapped).
  session::SessionState state_of(TenantId id) const;

  /// True iff the session is currently in the swap tier.
  bool swapped(TenantId id) const;

  /// Forwards arrivals to tenant `id`, rehydrating it first if swapped;
  /// returns how many were accepted.
  std::int64_t push(TenantId id, std::int64_t items);

  /// One multiplexing decision: offers every possibly-runnable tenant to
  /// the tenant policy, steps the pick, and returns who ran (kNoTenant if
  /// every tenant is idle). A picked tenant that turns out to be blocked is
  /// remembered as idle until new arrivals wake it. Swapped tenants are
  /// idle by construction and are never offered.
  TenantId step();

  /// Steps until every tenant is idle; returns multiplexing decisions made.
  std::int64_t run_until_idle();

  /// Drains every tenant, in id order (rehydrating swapped ones first).
  void drain_all();

  /// Evicts one resident idle session to the swap tier (requires
  /// ServerOptions::swap). Exposed for drivers that want to shed memory
  /// eagerly instead of waiting for admission pressure. Throws for a
  /// non-idle, already-swapped, or unknown tenant.
  void swap_out(TenantId id);

  /// Evicts every resident idle session to the swap tier (requires
  /// ServerOptions::swap); returns how many were evicted.
  std::int64_t swap_out_idle();

  /// Residency + admission counters (live view of the report's lifecycle).
  const session::LifecycleCounters& lifecycle() const noexcept { return lifecycle_; }

  /// Per-tenant totals, their sum, and the shared cache's own counters.
  ServerReport report() const;

  iomodel::CacheSim& cache() noexcept { return *cache_; }

 private:
  struct Tenant {
    std::string name;
    std::unique_ptr<Stream> stream;  ///< Null while swapped out.
    bool idle = false;           ///< Known-blocked until new arrivals.
    double last_miss_rate = 0.0;
    std::int64_t band = 0;          ///< Address-band index (base = band * band_words).
    std::int64_t layout_words = 0;  ///< Resident footprint (state + rings).

    // Rebuild inputs for rehydration: a Stream is a pure function of
    // (graph, partition, m, options) plus the mutable state in the swap
    // image, so keeping these makes the swap tier transparent.
    sdf::SdfGraph graph;
    partition::Partition partition;
    StreamOptions stream_options;  ///< With engine.address_base baked in.
    std::int64_t m = 0;

    // Report summary cached at swap-out so report() never rehydrates.
    runtime::RunResult totals;
    std::int64_t steps = 0;
    std::int64_t outputs = 0;
  };

  Tenant& tenant(TenantId id);
  const Tenant& tenant(TenantId id) const;
  [[noreturn]] void throw_unknown_tenant(TenantId id) const;

  /// Serializes a resident tenant into the swap tier and frees its Stream.
  void swap_out_tenant(TenantId id, Tenant& t);

  /// Rebuilds a swapped tenant's Stream from its image. No cache traffic.
  void rehydrate(TenantId id, Tenant& t);

  session::AdmissionLoad current_load() const;

  ServerOptions options_;
  std::unique_ptr<iomodel::CacheSim> cache_;
  std::unique_ptr<TenantPolicy> policy_;
  std::unique_ptr<session::AdmissionPolicy> admission_;
  std::map<TenantId, Tenant> tenants_;  ///< Open sessions only, O(live+swapped).
  TenantId next_id_ = 0;                ///< Ids are never reused.
  std::set<std::int64_t> free_bands_;   ///< Bands returned by close().
  std::int64_t next_band_ = 0;
  session::SwapManager swap_;
  session::LifecycleCounters lifecycle_;
  runtime::RunResult retired_;          ///< Folded totals of closed sessions.
  iomodel::CacheStats baseline_;  ///< Shared-cache stats at construction.
  std::int64_t steps_ = 0;
};

}  // namespace ccs::core
