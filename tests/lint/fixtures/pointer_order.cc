// Fixture: ordering/hashing by pointer value must be flagged.
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>

struct Node {
  int id = 0;
};

using BadOrdered = std::map<Node*, int, std::less<Node*>>;  // LINT-EXPECT(pointer-order)

std::size_t bad_hash(Node* n) {
  return std::hash<Node*>{}(n);  // LINT-EXPECT(pointer-order)
}

std::uint64_t bad_key(Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // LINT-EXPECT(pointer-order)
}

// Ordering by a stable field through the pointer is fine.
bool good_compare(const Node* a, const Node* b) { return a->id < b->id; }
