// Every scheduler must pass the same gate: check_schedule validates the
// period against its declared buffer capacities and input/output counts.
#include <gtest/gtest.h>

#include "partition/dag_greedy.h"
#include "partition/pipeline_dp.h"
#include "schedule/dynamic.h"
#include "schedule/kohli.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "schedule/scaled.h"
#include "schedule/schedule.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

void expect_valid(const sdf::SdfGraph& g, const Schedule& s, const std::string& context) {
  const auto report = check_schedule(g, s, 2);
  EXPECT_TRUE(report.ok) << context << " [" << s.name << "]: " << report.problem;
  EXPECT_GT(s.inputs_per_period, 0) << context;
  EXPECT_GT(s.outputs_per_period, 0) << context;
}

TEST(Naive, ValidOnStreamItSuite) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    expect_valid(app.graph, naive_minimal_buffer_schedule(app.graph), app.name);
    expect_valid(app.graph, naive_single_appearance_schedule(app.graph), app.name);
  }
}

TEST(Naive, MinimalBufferUsesLessMemoryThanSas) {
  const auto g = ccs::workloads::filter_bank(8);
  const auto minbuf = naive_minimal_buffer_schedule(g);
  const auto sas = naive_single_appearance_schedule(g);
  EXPECT_LE(minbuf.total_buffer_words(), sas.total_buffer_words());
}

TEST(Scaled, ValidAndScalesWithCache) {
  const auto g = ccs::workloads::uniform_pipeline(10, 64);
  const auto small = scaled_schedule(g, 1024);
  const auto large = scaled_schedule(g, 64 * 1024);
  expect_valid(g, small, "small cache");
  expect_valid(g, large, "large cache");
  EXPECT_LE(small.inputs_per_period, large.inputs_per_period);
  EXPECT_GE(choose_scale_factor(g, 64 * 1024), choose_scale_factor(g, 1024));
}

TEST(Scaled, ScaleFactorAtLeastOne) {
  const auto g = ccs::workloads::des(16);
  EXPECT_GE(choose_scale_factor(g, 64), 1);  // cache smaller than any module
}

TEST(Kohli, ValidOnPipelines) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = ccs::workloads::random_pipeline(12, 16, 128, 3, rng);
    expect_valid(g, kohli_schedule(g, 4096), "trial " + std::to_string(trial));
  }
}

TEST(Kohli, RejectsNonPipelines) {
  const auto g = ccs::workloads::fm_radio(4);
  EXPECT_THROW(kohli_schedule(g, 4096), GraphError);
}

TEST(Partitioned, BatchTHomogeneousEqualsM) {
  const auto g = ccs::workloads::uniform_pipeline(8, 64);
  PartitionedOptions opts;
  opts.m = 4096;
  EXPECT_EQ(compute_batch_t(g, opts), 4096);
  opts.t_multiplier = 2;
  EXPECT_EQ(compute_batch_t(g, opts), 8192);
}

TEST(Partitioned, BatchTRespectsDivisibility) {
  sdf::SdfGraph g;
  g.add_node("a", 8);
  g.add_node("b", 8);
  g.add_node("c", 8);
  g.add_edge(0, 1, 3, 2);  // gain of edge = 3
  g.add_edge(1, 2, 5, 7);  // gain(b) = 3/2; edge gain = 15/2
  PartitionedOptions opts;
  opts.m = 100;
  const auto t = compute_batch_t(g, opts);
  // T*3 divisible by lcm(3,2)=6 -> T even; T*15/2 divisible by lcm(5,7)=35
  // and integral -> T*15/2 = 35k -> T = 14k/3... combined smallest T is a
  // multiple of lcm conditions; just verify the defining properties:
  const sdf::GainMap gains(g);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const Rational tokens = gains.edge_gain(e) * Rational(t);
    ASSERT_TRUE(tokens.is_integer());
    EXPECT_EQ(tokens.num() % g.edge(e).out_rate, 0);
    EXPECT_EQ(tokens.num() % g.edge(e).in_rate, 0);
    EXPECT_GE(tokens.num(), opts.m);
  }
}

TEST(Partitioned, ValidOnUniformPipeline) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 512);
  PartitionedOptions opts;
  opts.m = 512;
  const auto s = partitioned_schedule(g, dp.partition, opts);
  expect_valid(g, s, "uniform pipeline");
  EXPECT_EQ(s.inputs_per_period, 512);
}

TEST(Partitioned, ValidOnMultiratePipelines) {
  Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = ccs::workloads::random_pipeline(10, 16, 100, 3, rng);
    const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
    PartitionedOptions opts;
    opts.m = 256;
    const auto s = partitioned_schedule(g, dp.partition, opts);
    expect_valid(g, s, "trial " + std::to_string(trial));
  }
}

TEST(Partitioned, ValidOnStreamItApps) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    const std::int64_t m = std::max<std::int64_t>(app.graph.max_state(), 512);
    const auto p = partition::dag_greedy_gain_partition(app.graph, 3 * m);
    PartitionedOptions opts;
    opts.m = m;
    const auto s = partitioned_schedule(app.graph, p, opts);
    expect_valid(app.graph, s, app.name);
  }
}

TEST(Partitioned, RejectsNonWellOrderedPartition) {
  sdf::SdfGraph g;
  g.add_node("s", 8);
  g.add_node("a", 8);
  g.add_node("b", 8);
  g.add_node("t", 8);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  const auto bad = partition::Partition::from_components(g, {{0, 3}, {1}, {2}});
  PartitionedOptions opts;
  opts.m = 64;
  EXPECT_THROW(partitioned_schedule(g, bad, opts), Error);
}

TEST(Partitioned, CrossBuffersAreExactBatchTraffic) {
  const auto g = ccs::workloads::uniform_pipeline(6, 128);
  const auto p = partition::Partition::from_components(g, {{0, 1, 2}, {3, 4, 5}});
  PartitionedOptions opts;
  opts.m = 256;
  const auto s = partitioned_schedule(g, p, opts);
  // The one cross edge (2->3) must hold exactly T tokens (gain 1).
  EXPECT_EQ(s.buffer_caps[2], 256);
  // Internal edges keep minimal buffers (1 for homogeneous).
  EXPECT_EQ(s.buffer_caps[0], 1);
  EXPECT_EQ(s.buffer_caps[4], 1);
}

TEST(DynamicPipeline, ValidAndDrains) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 512);
  const auto s = dynamic_pipeline_schedule(g, dp.partition, 512, 2000);
  expect_valid(g, s, "dynamic uniform");
  EXPECT_GE(s.outputs_per_period, 2000);
}

TEST(DynamicPipeline, MultirateDrains) {
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = ccs::workloads::random_pipeline(8, 16, 100, 3, rng);
    const auto dp = partition::pipeline_optimal_partition(g, 3 * 512);
    const auto s = dynamic_pipeline_schedule(g, dp.partition, 512, 500);
    expect_valid(g, s, "trial " + std::to_string(trial));
  }
}

TEST(DynamicHomogeneous, ValidOnLayeredDag) {
  Rng rng(53);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  const auto g = layered_homogeneous_dag(spec, rng);
  const auto p = partition::dag_greedy_partition(g, 3 * 512);
  const auto s = dynamic_homogeneous_schedule(g, p, 512, 1500);
  expect_valid(g, s, "layered");
  EXPECT_GE(s.outputs_per_period, 1500);
}

TEST(DynamicHomogeneous, RejectsMultirate) {
  const auto g = ccs::workloads::filter_bank(4);
  const auto p = partition::dag_greedy_partition(g, 100000);
  EXPECT_THROW(dynamic_homogeneous_schedule(g, p, 512, 100), Error);
}

TEST(PeriodsForOutputs, CeilingDivision) {
  Schedule s;
  s.outputs_per_period = 100;
  EXPECT_EQ(periods_for_outputs(s, 1), 1);
  EXPECT_EQ(periods_for_outputs(s, 100), 1);
  EXPECT_EQ(periods_for_outputs(s, 101), 2);
  EXPECT_EQ(periods_for_outputs(s, 1000), 10);
}

TEST(Validate, CatchesLyingSchedules) {
  const auto g = ccs::workloads::uniform_pipeline(3, 8);
  Schedule s = naive_minimal_buffer_schedule(g);
  s.outputs_per_period += 1;  // lie about outputs
  EXPECT_FALSE(check_schedule(g, s).ok);
  Schedule s2 = naive_minimal_buffer_schedule(g);
  s2.period.pop_back();  // drop the sink firing: won't drain
  EXPECT_FALSE(check_schedule(g, s2).ok);
  Schedule s3 = naive_minimal_buffer_schedule(g);
  s3.period.clear();
  EXPECT_FALSE(check_schedule(g, s3).ok);
}

}  // namespace
}  // namespace ccs::schedule
