// Fixture: fresh-entropy seeding must be flagged.
#include <random>

unsigned bad_seed() {
  std::random_device rd;  // LINT-EXPECT(random-device)
  return rd();
}

// Deterministic seeding is the approved pattern and must NOT be flagged.
unsigned good_seed() {
  std::mt19937_64 rng(12345);
  return static_cast<unsigned>(rng());
}
