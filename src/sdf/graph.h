// Synchronous dataflow (SDF) streaming graph model.
//
// A streaming computation is a directed acyclic multigraph G = (V, E):
// vertices are *modules* with a fixed state size s(v) (the words of code +
// data that must reside in cache for the module to fire), and edges are
// FIFO *channels*. An edge (u, v) carries two integral rates:
//   out_rate -- tokens produced onto the channel each time u fires,
//   in_rate  -- tokens consumed from the channel each time v fires.
// All tokens are unit size (one word), per the paper's w.l.o.g. assumption.
//
// SdfGraph is a value type: cheap to copy for small graphs, movable, and
// structurally immutable apart from the add_node/add_edge builder calls.
// Derived quantities (gains, repetition vectors, buffer bounds) live in
// sibling headers and take the graph by const reference.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/contracts.h"

namespace ccs::sdf {

/// Dense module index. Valid ids are 0 .. node_count()-1.
using NodeId = std::int32_t;
/// Dense channel index. Valid ids are 0 .. edge_count()-1.
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A computation module.
struct Node {
  std::string name;        ///< Unique human-readable identifier.
  std::int64_t state = 0;  ///< State size in words; must fit in cache to fire.
};

/// A FIFO channel between two modules.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int64_t out_rate = 1;  ///< Tokens produced per firing of src.
  std::int64_t in_rate = 1;   ///< Tokens consumed per firing of dst.
};

/// Directed streaming multigraph (parallel edges between the same pair of
/// modules are allowed, as in the paper's multigraph model).
class SdfGraph {
 public:
  SdfGraph() = default;

  /// Adds a module. `state` is in words and must be non-negative. Names must
  /// be unique; duplicates throw GraphError.
  NodeId add_node(std::string name, std::int64_t state);

  /// Adds a channel src -> dst. Rates must be positive. Self-loops throw
  /// GraphError (the paper's graphs are acyclic).
  EdgeId add_edge(NodeId src, NodeId dst, std::int64_t out_rate, std::int64_t in_rate);

  std::int32_t node_count() const noexcept { return static_cast<std::int32_t>(nodes_.size()); }
  std::int32_t edge_count() const noexcept { return static_cast<std::int32_t>(edges_.size()); }

  const Node& node(NodeId v) const {
    CCS_EXPECTS(v >= 0 && v < node_count(), "node id out of range");
    return nodes_[static_cast<std::size_t>(v)];
  }
  const Edge& edge(EdgeId e) const {
    CCS_EXPECTS(e >= 0 && e < edge_count(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Outgoing / incoming channel ids of a module, in insertion order.
  const std::vector<EdgeId>& out_edges(NodeId v) const {
    CCS_EXPECTS(v >= 0 && v < node_count(), "node id out of range");
    return out_[static_cast<std::size_t>(v)];
  }
  const std::vector<EdgeId>& in_edges(NodeId v) const {
    CCS_EXPECTS(v >= 0 && v < node_count(), "node id out of range");
    return in_[static_cast<std::size_t>(v)];
  }

  /// Id lookup by unique name; kInvalidNode when absent.
  NodeId find_node(const std::string& name) const noexcept;

  /// Modules with no incoming / no outgoing channels.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// Sum of all module state sizes, in words.
  std::int64_t total_state() const noexcept;

  /// Largest single module state, in words (0 for an empty graph).
  std::int64_t max_state() const noexcept;

  /// True if the graph is a single directed chain (every module has at most
  /// one input and one output channel, one source, one sink, connected).
  bool is_pipeline() const;

  /// True if every edge has in_rate == out_rate == 1.
  bool is_homogeneous() const noexcept;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

/// One-line structural summary ("n=12 e=14 state=8192 pipeline").
std::ostream& operator<<(std::ostream& os, const SdfGraph& g);

}  // namespace ccs::sdf
