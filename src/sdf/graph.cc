#include "sdf/graph.h"

#include <ostream>

#include "util/error.h"
#include "util/int_math.h"

namespace ccs::sdf {

NodeId SdfGraph::add_node(std::string name, std::int64_t state) {
  if (name.empty()) throw GraphError("module name must be non-empty");
  if (state < 0) throw GraphError("module '" + name + "' has negative state size");
  if (find_node(name) != kInvalidNode) {
    throw GraphError("duplicate module name '" + name + "'");
  }
  nodes_.push_back(Node{std::move(name), state});
  out_.emplace_back();
  in_.emplace_back();
  return node_count() - 1;
}

EdgeId SdfGraph::add_edge(NodeId src, NodeId dst, std::int64_t out_rate,
                          std::int64_t in_rate) {
  if (src < 0 || src >= node_count() || dst < 0 || dst >= node_count()) {
    throw GraphError("edge endpoint id out of range");
  }
  if (src == dst) throw GraphError("self-loop on module '" + node(src).name + "'");
  if (out_rate <= 0 || in_rate <= 0) {
    throw RateError("edge " + node(src).name + " -> " + node(dst).name +
                    " must have positive rates");
  }
  edges_.push_back(Edge{src, dst, out_rate, in_rate});
  const EdgeId id = edge_count() - 1;
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

NodeId SdfGraph::find_node(const std::string& name) const noexcept {
  for (NodeId v = 0; v < node_count(); ++v) {
    if (nodes_[static_cast<std::size_t>(v)].name == name) return v;
  }
  return kInvalidNode;
}

std::vector<NodeId> SdfGraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (in_[static_cast<std::size_t>(v)].empty()) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> SdfGraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (out_[static_cast<std::size_t>(v)].empty()) out.push_back(v);
  }
  return out;
}

std::int64_t SdfGraph::total_state() const noexcept {
  std::int64_t total = 0;
  for (const auto& n : nodes_) total += n.state;
  return total;
}

std::int64_t SdfGraph::max_state() const noexcept {
  std::int64_t best = 0;
  for (const auto& n : nodes_) best = std::max(best, n.state);
  return best;
}

bool SdfGraph::is_pipeline() const {
  if (node_count() == 0) return false;
  std::int32_t n_source = 0;
  std::int32_t n_sink = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (in_[vi].size() > 1 || out_[vi].size() > 1) return false;
    if (in_[vi].empty()) ++n_source;
    if (out_[vi].empty()) ++n_sink;
  }
  // With in/out degree <= 1, one source and one sink imply a single connected
  // chain covering all modules (edge_count == node_count - 1 rules out any
  // disjoint cycle, which add_edge's acyclic usage also precludes).
  return n_source == 1 && n_sink == 1 && edge_count() == node_count() - 1;
}

bool SdfGraph::is_homogeneous() const noexcept {
  for (const auto& e : edges_) {
    if (e.out_rate != 1 || e.in_rate != 1) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const SdfGraph& g) {
  os << "SdfGraph{n=" << g.node_count() << " e=" << g.edge_count()
     << " state=" << g.total_state();
  if (g.is_pipeline()) os << " pipeline";
  if (g.is_homogeneous()) os << " homogeneous";
  return os << "}";
}

}  // namespace ccs::sdf
