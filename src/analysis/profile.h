// Per-component execution profiles.
//
// Folds the engine's per-module miss attribution through a partition to
// show where a schedule's misses actually land: which component is hot,
// how its misses compare to its state size, and whether the per-batch
// accounting of Lemma 4/8 matches per-component reality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition.h"
#include "runtime/run_result.h"
#include "sdf/graph.h"

namespace ccs::analysis {

/// One component's share of a run.
struct ComponentProfile {
  std::int32_t component = 0;
  std::int64_t state_words = 0;    ///< Total module state in the component.
  std::int32_t modules = 0;
  std::int64_t misses = 0;         ///< Attributed misses (from node_misses).
  double miss_share = 0.0;         ///< Fraction of all attributed misses.
};

/// Builds per-component profiles from a run's node attribution. Requires
/// result.node_misses to be populated (EngineOptions::per_node_attribution).
std::vector<ComponentProfile> profile_components(const sdf::SdfGraph& g,
                                                 const partition::Partition& p,
                                                 const runtime::RunResult& result);

/// Renders profiles as an aligned text table (one line per component).
std::string format_profiles(const std::vector<ComponentProfile>& profiles);

}  // namespace ccs::analysis
