#include "util/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"

namespace ccs {
namespace {

TEST(NamedRegistry, AddFindContainsKeys) {
  NamedRegistry<int> reg("widget");
  EXPECT_EQ(reg.size(), 0u);
  reg.add("beta", 2);
  reg.add("alpha", 1);
  EXPECT_TRUE(reg.contains("alpha"));
  EXPECT_FALSE(reg.contains("gamma"));
  EXPECT_EQ(reg.find("alpha"), 1);
  EXPECT_EQ(reg.find("beta"), 2);
  EXPECT_EQ(reg.keys(), (std::vector<std::string>{"alpha", "beta"}));  // sorted
  EXPECT_EQ(reg.size(), 2u);
}

TEST(NamedRegistry, EmptyNameThrows) {
  NamedRegistry<int> reg("widget");
  EXPECT_THROW(reg.add("", 1), Error);
}

TEST(NamedRegistry, DuplicateKeyThrowsAndListsKnownKeys) {
  NamedRegistry<int> reg("widget");
  reg.add("alpha", 1);
  try {
    reg.add("alpha", 2);
    FAIL() << "duplicate registration must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("already registered"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
  }
  EXPECT_EQ(reg.find("alpha"), 1);  // the original entry survives
}

TEST(NamedRegistry, UnknownKeyThrowsAndListsAlternatives) {
  NamedRegistry<int> reg("widget");
  reg.add("alpha", 1);
  reg.add("beta", 2);
  try {
    (void)reg.find("gamma");
    FAIL() << "unknown key must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown widget 'gamma'"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
}

TEST(NamedRegistry, IrregularPluralAppearsInErrors) {
  NamedRegistry<int> reg("policy", "policies");
  try {
    (void)reg.find("nope");
    FAIL() << "unknown key must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no policies are registered"),
              std::string::npos)
        << e.what();
  }
}

TEST(NamedRegistry, ErrorPathsAreSafeUnderConcurrentLookup) {
  // Readers hammer find/contains/keys -- including the throwing unknown-key
  // path, which assembles the known-keys suffix under the lock -- while a
  // writer registers new entries and retries duplicates. TSan builds verify
  // the mutex actually covers every touch of the map.
  NamedRegistry<int> reg("widget");
  reg.add("seed", 0);
  std::atomic<bool> stop{false};
  std::atomic<int> unknown_errors{0};
  std::atomic<int> duplicate_errors{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      // A fixed minimum of iterations, then until the writer is done: the
      // error-path counters below must be exercised even if the writer
      // finishes before this thread is scheduled.
      for (int i = 0; i < 100 || !stop.load(std::memory_order_relaxed); ++i) {
        EXPECT_TRUE(reg.contains("seed"));
        EXPECT_EQ(reg.find("seed"), 0);
        try {
          (void)reg.find("no-such-widget");
          ADD_FAILURE() << "unknown key must always throw";
        } catch (const Error&) {
          unknown_errors.fetch_add(1, std::memory_order_relaxed);
        }
        const auto keys = reg.keys();
        EXPECT_GE(keys.size(), 1u);
      }
    });
  }

  for (int i = 0; i < 50; ++i) {
    reg.add("widget-" + std::to_string(i), i);
    try {
      reg.add("seed", 99);  // duplicate: must throw, must not corrupt
    } catch (const Error&) {
      duplicate_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(duplicate_errors.load(), 50);
  EXPECT_GT(unknown_errors.load(), 0);
  EXPECT_EQ(reg.size(), 51u);
  EXPECT_EQ(reg.find("seed"), 0);
}

}  // namespace
}  // namespace ccs
