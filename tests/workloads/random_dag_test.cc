#include "workloads/random_dag.h"

#include <gtest/gtest.h>

#include "sdf/gain.h"
#include "sdf/topology.h"
#include "sdf/validate.h"

namespace ccs::workloads {
namespace {

using sdf::NodeId;

TEST(LayeredDag, StructurallyValid) {
  Rng rng(1);
  LayeredSpec spec;
  spec.layers = 5;
  spec.width = 4;
  const auto g = layered_homogeneous_dag(spec, rng);
  EXPECT_TRUE(sdf::validate(g, sdf::ValidationOptions{}).empty());
  EXPECT_TRUE(g.is_homogeneous());
  EXPECT_EQ(g.node_count(), 2 + 5 * 4);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(LayeredDag, EveryModuleOnSourceSinkPath) {
  Rng rng(2);
  LayeredSpec spec;
  spec.layers = 4;
  spec.width = 5;
  spec.edge_prob = 0.1;
  const auto g = layered_homogeneous_dag(spec, rng);
  const sdf::Reachability reach(g);
  const NodeId src = g.sources().front();
  const NodeId sink = g.sinks().front();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == src || v == sink) continue;
    EXPECT_TRUE(reach.precedes(src, v)) << g.node(v).name;
    EXPECT_TRUE(reach.precedes(v, sink)) << g.node(v).name;
  }
}

TEST(LayeredDag, HomogeneousGainsAllOne) {
  Rng rng(3);
  const auto g = layered_homogeneous_dag(LayeredSpec{}, rng);
  const sdf::GainMap gains(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(gains.node_gain(v), Rational(1));
  }
}

TEST(LayeredDag, StatesWithinBounds) {
  Rng rng(4);
  LayeredSpec spec;
  spec.state_lo = 100;
  spec.state_hi = 200;
  const auto g = layered_homogeneous_dag(spec, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.node(v).state, 100);
    EXPECT_LE(g.node(v).state, 200);
  }
}

TEST(SeriesParallel, RateMatchedAcrossSeeds) {
  SeriesParallelSpec spec;
  spec.target_nodes = 25;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const auto g = series_parallel_dag(spec, rng);
    EXPECT_TRUE(sdf::is_rate_matched(g)) << "seed " << seed;
    EXPECT_TRUE(sdf::is_acyclic(g)) << "seed " << seed;
    EXPECT_EQ(g.sources().size(), 1u) << "seed " << seed;
    EXPECT_EQ(g.sinks().size(), 1u) << "seed " << seed;
  }
}

TEST(SeriesParallel, HitsRoughNodeBudget) {
  SeriesParallelSpec spec;
  spec.target_nodes = 40;
  Rng rng(11);
  const auto g = series_parallel_dag(spec, rng);
  EXPECT_GE(g.node_count(), 10);
  EXPECT_LE(g.node_count(), 120);  // splits/joins/normalizers inflate the count
}

TEST(SeriesParallel, SingleNodeBudgetYieldsSingleton) {
  SeriesParallelSpec spec;
  spec.target_nodes = 1;
  Rng rng(12);
  const auto g = series_parallel_dag(spec, rng);
  EXPECT_EQ(g.node_count(), 1);
  EXPECT_EQ(g.edge_count(), 0);
}

}  // namespace
}  // namespace ccs::workloads
