// E17 -- asynchronous homogeneous dag scheduling vs the static batch
// schedule (Section 3's "asynchronous or parallel dynamic schedule").
//
// Same comparison as E11 but for dags: the online rule (all inputs hold M
// tokens, all outputs empty -> run M iterations) against the topological
// batch schedule from the same partition. Expected shape: miss parity
// within a small constant, no deadlocks -- homogeneity guarantees a
// schedulable component always exists.

#include "bench/common.h"
#include "partition/dag_greedy.h"
#include "schedule/dynamic.h"
#include "schedule/partitioned.h"
#include "util/rng.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 256;
  const std::int64_t b = 8;
  const std::int64_t outputs = 2048;
  Rng rng(1717);

  Table t("E17: static batch vs dynamic scheduling on homogeneous dags (M=256, B=8)");
  t.set_header({"seed", "components", "static misses/out", "dynamic misses/out",
                "dyn/static"});
  for (int seed = 0; seed < 6; ++seed) {
    Rng trial = rng.fork();
    workloads::LayeredSpec spec;
    spec.layers = 4;
    spec.width = 3;
    spec.state_lo = 120;
    spec.state_hi = 240;
    const auto g = workloads::layered_homogeneous_dag(spec, trial);
    const auto p = partition::dag_greedy_partition(g, 3 * m);

    schedule::PartitionedOptions sopts;
    sopts.m = m;
    const auto stat = schedule::partitioned_schedule(g, p, sopts);
    const auto dyn = schedule::dynamic_homogeneous_schedule(g, p, m, outputs);
    const auto r_stat = bench::run(g, stat, 4 * m, b, outputs);
    const auto r_dyn = bench::run(g, dyn, 4 * m, b, outputs);
    t.add_row({Table::num(static_cast<std::int64_t>(seed)),
               Table::num(static_cast<std::int64_t>(p.num_components)),
               Table::num(r_stat.misses_per_output(), 3),
               Table::num(r_dyn.misses_per_output(), 3),
               bench::safe_ratio(r_dyn.misses_per_output(), r_stat.misses_per_output())});
  }
  bench::emit(t, argc, argv);
  return 0;
}
