// Simulated-annealing dag partitioner.
//
// The paper's conclusion points at heuristic graph partitioners [10, 14] as
// the practical road past NP-completeness; Corollary 9 converts any
// alpha-approximate bandwidth into an O(alpha)-competitive schedule, so
// stronger heuristics pay off directly. Annealing explores the same move
// space as dag_refine (single-module moves between components, plus moves
// into fresh singletons) but accepts uphill moves with temperature-decayed
// probability, escaping the local minima where pure descent parks.
//
// Determinism: all randomness comes from the caller's seed; equal seeds
// give equal partitions.
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"
#include "util/rng.h"

namespace ccs::partition {

/// Annealing knobs.
struct AnnealOptions {
  std::int64_t state_bound = 0;    ///< c*M; hard constraint throughout.
  std::int32_t iterations = 20000; ///< Proposed moves.
  double initial_temp = 1.0;       ///< In units of mean edge gain.
  double cooling = 0.9995;         ///< Geometric decay per iteration.
  std::uint64_t seed = 1;          ///< RNG seed (runs are deterministic per seed).
};

/// Anneals from `start` (must be valid, well ordered, bounded). Returns the
/// best valid partition seen; never worse than `start`.
Partition anneal_partition(const sdf::SdfGraph& g, const Partition& start,
                           const AnnealOptions& options);

}  // namespace ccs::partition
