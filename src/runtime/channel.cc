#include "runtime/channel.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::runtime {

Channel::Channel(iomodel::Region region, std::int64_t capacity)
    : region_(region), capacity_(capacity) {
  CCS_EXPECTS(capacity >= 1, "channel capacity must be positive");
  CCS_EXPECTS(region.words == capacity, "region must have one word per slot");
}

void Channel::push(std::int64_t count, iomodel::CacheSim& cache) {
  CCS_EXPECTS(count >= 0, "negative push count");
  if (count > space()) {
    throw ScheduleError("channel overflow: pushing " + std::to_string(count) + " into " +
                        std::to_string(space()) + " free slots");
  }
  touch((head_ + size_) % capacity_, count, cache, iomodel::AccessMode::kWrite);
  size_ += count;
}

void Channel::pop(std::int64_t count, iomodel::CacheSim& cache) {
  CCS_EXPECTS(count >= 0, "negative pop count");
  if (count > size_) {
    throw ScheduleError("channel underflow: popping " + std::to_string(count) + " of " +
                        std::to_string(size_) + " tokens");
  }
  touch(head_, count, cache, iomodel::AccessMode::kRead);
  head_ = (head_ + count) % capacity_;
  size_ -= count;
}

void Channel::touch(std::int64_t offset, std::int64_t count, iomodel::CacheSim& cache,
                    iomodel::AccessMode mode) const {
  const std::int64_t block = cache.config().block_words;
  std::int64_t remaining = count;
  std::int64_t pos = offset;
  while (remaining > 0) {
    const std::int64_t run = std::min(remaining, capacity_ - pos);  // until wrap
    const iomodel::Addr first = region_.base + pos;
    const iomodel::Addr last = first + run - 1;
    for (iomodel::BlockId b = first / block; b <= last / block; ++b) {
      cache.access(std::max(first, b * block), mode);
    }
    remaining -= run;
    pos = (pos + run) % capacity_;
  }
}

}  // namespace ccs::runtime
