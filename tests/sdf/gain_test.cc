#include "sdf/gain.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(Gain, HomogeneousChainAllOnes) {
  const auto g = ccs::workloads::uniform_pipeline(4, 10);
  const GainMap gains(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(gains.node_gain(v), Rational(1));
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(gains.edge_gain(e), Rational(1));
  }
  EXPECT_EQ(gains.source(), 0);
}

TEST(Gain, DecimatingChain) {
  // src -(out 1, in 2)-> a -(out 1, in 3)-> b : gain(a)=1/2, gain(b)=1/6.
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const EdgeId e0 = g.add_edge(s, a, 1, 2);
  const EdgeId e1 = g.add_edge(a, b, 1, 3);
  const GainMap gains(g);
  EXPECT_EQ(gains.node_gain(s), Rational(1));
  EXPECT_EQ(gains.node_gain(a), Rational(1, 2));
  EXPECT_EQ(gains.node_gain(b), Rational(1, 6));
  EXPECT_EQ(gains.edge_gain(e0), Rational(1));        // 1 token per source firing
  EXPECT_EQ(gains.edge_gain(e1), Rational(1, 2));     // a fires 1/2, emits 1
}

TEST(Gain, AmplifyingEdge) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const EdgeId e = g.add_edge(s, a, 5, 1);
  const GainMap gains(g);
  EXPECT_EQ(gains.node_gain(a), Rational(5));
  EXPECT_EQ(gains.edge_gain(e), Rational(5));
}

TEST(Gain, RateMatchedDiamondAccepted) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(s, a, 2, 1);  // gain(a) = 2
  g.add_edge(s, b, 1, 1);  // gain(b) = 1
  g.add_edge(a, t, 1, 2);  // path gain to t: 2 * 1/2 = 1
  g.add_edge(b, t, 1, 1);  // path gain to t: 1
  const GainMap gains(g);
  EXPECT_EQ(gains.node_gain(t), Rational(1));
  EXPECT_TRUE(is_rate_matched(g));
}

TEST(Gain, MismatchedDiamondRejected) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(s, a, 2, 1);
  g.add_edge(s, b, 1, 1);
  g.add_edge(a, t, 1, 1);  // path gain 2
  g.add_edge(b, t, 1, 1);  // path gain 1 -- disagreement at t
  EXPECT_THROW(GainMap{g}, RateError);
  EXPECT_FALSE(is_rate_matched(g));
}

TEST(Gain, MultipleSourcesRejected) {
  SdfGraph g;
  g.add_node("s1", 1);
  g.add_node("s2", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(0, t, 1, 1);
  g.add_edge(1, t, 1, 1);
  EXPECT_THROW(GainMap{g}, GraphError);
}

TEST(Gain, EmptyGraphRejected) {
  SdfGraph g;
  EXPECT_THROW(GainMap{g}, GraphError);
}

TEST(Gain, StreamItAppsAreRateMatched) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    EXPECT_TRUE(is_rate_matched(app.graph)) << app.name;
  }
}

TEST(Gain, HourglassGainDipsAtWaist) {
  const auto g = ccs::workloads::hourglass_pipeline(9, 10, 3);
  const GainMap gains(g);
  // Gains decrease towards the waist, then increase again.
  const Rational mid = gains.node_gain(4);
  EXPECT_LT(mid, gains.node_gain(0));
  EXPECT_LT(mid, gains.node_gain(8));
}

}  // namespace
}  // namespace ccs::sdf
