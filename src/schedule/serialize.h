// Textual serialization of schedules.
//
// Partitioning is a compile-time activity (the paper suggests even
// exponential partitioners are acceptable offline); a production runtime
// wants to compute a schedule once and ship it. The format is line
// oriented and references modules by name so it survives graph rebuilds
// that preserve naming:
//
//   schedule <name>
//   inputs <n>
//   outputs <n>
//   buffers <cap0> <cap1> ...          # one per edge, edge-id order
//   period <name> <name> ...           # firing order (possibly long)
//
// Reading validates the schedule against the graph (module names must
// resolve; buffer arity must match) but does not replay it -- callers who
// distrust the source should run schedule::check_schedule afterwards.
#pragma once

#include <iosfwd>
#include <string>

#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Writes `s` for graph `g`.
void write_schedule(const sdf::SdfGraph& g, const Schedule& s, std::ostream& os);

/// Convenience: schedule as text.
std::string to_text(const sdf::SdfGraph& g, const Schedule& s);

/// Parses a schedule for `g`. Throws ParseError on malformed input and
/// ccs::Error when names or arities do not match the graph.
Schedule read_schedule(const sdf::SdfGraph& g, std::istream& is);

/// Convenience: parse from a string.
Schedule from_text(const sdf::SdfGraph& g, const std::string& text);

}  // namespace ccs::schedule
