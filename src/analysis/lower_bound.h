// Lower bounds on cache misses (Theorems 3, 7, and 10).
//
// These are the other half of the paper's optimality story: *every* schedule
// -- partitioned or not -- must incur at least Omega((T/B) * bw) misses,
// where bw is
//   * pipelines (Thm 3):  sum of gain(gainMin(Wi)) over disjoint segments
//     Wi of state >= 2M (we use the Theorem 5 accretion to build them);
//   * dags (Thm 7/10):    minBW_3(G), the bandwidth of an optimal
//     well-ordered 3M-bounded partition (exact solver; pipelines fall back
//     to the polynomial DP).
// Experiments compare measured miss counts of all schedulers against these
// values; the theory predicts measured >= const * bound, with the
// partitioned scheduler within a constant factor above.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "partition/pipeline_greedy.h"
#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::analysis {

/// Theorem 3 witness: the segments and their gain-minimizing edges.
struct PipelineBound {
  Rational bandwidth_term;                      ///< sum of witness-edge gains.
  std::vector<partition::ChainSegment> segments;  ///< the >=2M segments Wi.
  std::vector<sdf::EdgeId> witness_edges;       ///< gainMin(Wi).

  /// Misses forced by Theorem 3 for T source firings and block size B
  /// (constant factors dropped: this is the Omega argument's leading term).
  double misses(std::int64_t t, std::int64_t b) const {
    return static_cast<double>(t) / static_cast<double>(b) * bandwidth_term.to_double();
  }
};

/// Builds the Theorem 3 bound for a pipeline with cache size m.
PipelineBound pipeline_lower_bound(const sdf::SdfGraph& g, std::int64_t m);

/// Theorem 7/10 bound: minBW_3(G) (exact). For pipelines this uses the
/// polynomial DP; for dags the exponential exact solver, returning nullopt
/// when the graph exceeds `max_exact_nodes`.
std::optional<Rational> dag_min_bandwidth_3m(const sdf::SdfGraph& g, std::int64_t m,
                                             std::int32_t max_exact_nodes = 24);

/// (T/B) * bw -- the common final form of all the bounds.
double bound_misses(const Rational& bw, std::int64_t t, std::int64_t b);

}  // namespace ccs::analysis
