// Microbenchmark: streaming engine throughput (google-benchmark).
//
// Firings/second of the token+cache execution engine, the inner loop of
// every experiment. Regimes: resident (component fits, mostly hits),
// thrashing (state exceeds cache, mostly misses), attribution overhead, and
// a wide split-join (many short channels per firing, stressing the
// precomputed firing plans rather than the state scan).

#include <benchmark/benchmark.h>

#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "sdf/min_buffer.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace {

using namespace ccs;

void run_engine(benchmark::State& state, const sdf::SdfGraph& g, std::int64_t cache_words) {
  const auto naive = schedule::naive_minimal_buffer_schedule(g);
  iomodel::LruCache cache(iomodel::CacheConfig{cache_words, 8});
  runtime::EngineOptions opts;
  opts.per_node_attribution = false;
  runtime::Engine engine(g, naive.buffer_caps, cache, opts);
  std::int64_t firings = 0;
  for (auto _ : state) {
    engine.run(naive.period);
    firings += static_cast<std::int64_t>(naive.period.size());
  }
  state.SetItemsProcessed(firings);
}

void BM_EngineResident(benchmark::State& state) {
  run_engine(state, workloads::uniform_pipeline(16, 256), 64 * 1024);
}
BENCHMARK(BM_EngineResident);

void BM_EngineThrashing(benchmark::State& state) {
  run_engine(state, workloads::uniform_pipeline(16, 256), 1024);
}
BENCHMARK(BM_EngineThrashing);

// 32 parallel single-tap filters under a duplicating split: each joiner
// firing moves one token across each of 32 packed one-word channels, so the
// firing plan and channel bookkeeping dominate, not the state scan.
void BM_EngineWideSplitJoin(benchmark::State& state) {
  run_engine(state, workloads::channel_vocoder(32), 64 * 1024);
}
BENCHMARK(BM_EngineWideSplitJoin);

void BM_EngineWithAttribution(benchmark::State& state) {
  const auto g = workloads::uniform_pipeline(16, 256);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);
  iomodel::LruCache cache(iomodel::CacheConfig{64 * 1024, 8});
  runtime::Engine engine(g, naive.buffer_caps, cache);  // attribution on
  std::int64_t firings = 0;
  for (auto _ : state) {
    engine.run(naive.period);
    firings += static_cast<std::int64_t>(naive.period.size());
  }
  state.SetItemsProcessed(firings);
}
BENCHMARK(BM_EngineWithAttribution);

}  // namespace

BENCHMARK_MAIN();
