// Fixture: every clock read must be flagged.
#include <chrono>
#include <ctime>

double bad_steady() {
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT(wall-clock)
  const auto t1 = std::chrono::system_clock::now();  // LINT-EXPECT(wall-clock)
  const auto t2 =
      std::chrono::high_resolution_clock::now();  // LINT-EXPECT(wall-clock)
  (void)t1;
  (void)t2;
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long bad_ctime() {
  return std::time(nullptr);  // LINT-EXPECT(wall-clock)
}
