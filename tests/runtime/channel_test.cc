#include "runtime/channel.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ccs::runtime {
namespace {

using iomodel::AccessMode;
using iomodel::CacheConfig;
using iomodel::LruCache;
using iomodel::Region;

TEST(Channel, PushPopBookkeeping) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 16}, 16);
  EXPECT_TRUE(ch.empty());
  ch.push(5, cache);
  EXPECT_EQ(ch.size(), 5);
  EXPECT_EQ(ch.space(), 11);
  ch.pop(3, cache);
  EXPECT_EQ(ch.size(), 2);
  ch.pop(2, cache);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, OverflowThrows) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 4}, 4);
  ch.push(4, cache);
  EXPECT_TRUE(ch.full());
  EXPECT_THROW(ch.push(1, cache), ScheduleError);
}

TEST(Channel, UnderflowThrows) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 4}, 4);
  ch.push(2, cache);
  EXPECT_THROW(ch.pop(3, cache), ScheduleError);
}

TEST(Channel, WritesMakeBlocksDirty) {
  LruCache cache(CacheConfig{16, 8});  // 2 blocks only
  Channel ch(Region{0, 8}, 8);
  ch.push(8, cache);                       // writes block 0
  cache.access(64, AccessMode::kRead);     // fill
  cache.access(128, AccessMode::kRead);    // evict dirty block 0
  EXPECT_EQ(cache.stats().writebacks, 1);
}

TEST(Channel, BlockGranularityTouching) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 64}, 64);
  ch.push(20, cache);  // words 0..19: blocks 0,1,2 -> 3 misses, 3 accesses
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().accesses, 3);
}

TEST(Channel, WrapAroundTouchesBothEnds) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 16}, 16);
  ch.push(12, cache);
  ch.pop(12, cache);  // head now at 12
  const auto misses_before = cache.stats().misses;
  ch.push(8, cache);  // wraps: words 12..15 (block 1) + 0..3 (block 0)
  EXPECT_EQ(ch.size(), 8);
  // Both blocks were already resident, so no new misses -- but no crash and
  // correct size tracking across the wrap.
  EXPECT_EQ(cache.stats().misses, misses_before);
  ch.pop(8, cache);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, ResetDropsTokensSilently) {
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 8}, 8);
  ch.push(5, cache);
  const auto accesses = cache.stats().accesses;
  ch.reset();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(cache.stats().accesses, accesses);  // no traffic
}

TEST(Channel, RegionMustMatchCapacity) {
  EXPECT_THROW(Channel(Region{0, 8}, 16), ContractViolation);
}

TEST(Channel, StreamingThroughRingCostsOneMissPerBlock) {
  // Push/pop a long stream through a small ring: every block of the ring is
  // rewritten each lap, but misses stay bounded by laps * ring blocks when
  // the ring fits in cache.
  LruCache cache(CacheConfig{1024, 8});
  Channel ch(Region{0, 32}, 32);  // 4 blocks
  for (int lap = 0; lap < 100; ++lap) {
    ch.push(32, cache);
    ch.pop(32, cache);
  }
  EXPECT_EQ(cache.stats().misses, 4);  // ring stays resident
}

}  // namespace
}  // namespace ccs::runtime
