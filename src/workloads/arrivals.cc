#include "workloads/arrivals.h"

#include <utility>

#include "util/contracts.h"
#include "util/rng.h"

namespace ccs::workloads {

ArrivalPattern steady_arrivals(std::int64_t per_tick) {
  CCS_EXPECTS(per_tick >= 0, "arrival rate must be non-negative");
  return [per_tick](std::int64_t) { return per_tick; };
}

ArrivalPattern bursty_arrivals(std::int64_t burst, std::int64_t period) {
  // A zero-size burst would be an arrival pattern that never delivers
  // anything -- a silent misconfiguration (use steady_arrivals(0) to model
  // an idle tenant on purpose).
  CCS_EXPECTS(burst >= 1, "burst size must be at least one item");
  CCS_EXPECTS(period >= 1, "burst period must be at least one tick");
  return [burst, period](std::int64_t tick) { return tick % period == 0 ? burst : 0; };
}

ArrivalPattern on_off_arrivals(std::int64_t per_tick, std::int64_t on, std::int64_t off) {
  CCS_EXPECTS(per_tick >= 0, "arrival rate must be non-negative");
  CCS_EXPECTS(on >= 1, "on-phase must last at least one tick");
  CCS_EXPECTS(off >= 0, "off-phase must be non-negative");
  const std::int64_t cycle = on + off;
  return [per_tick, on, cycle](std::int64_t tick) {
    return tick % cycle < on ? per_tick : 0;
  };
}

ArrivalPattern phase_shift_arrivals(ArrivalPattern base, std::int64_t shift) {
  CCS_EXPECTS(base != nullptr, "phase shift needs a base pattern");
  CCS_EXPECTS(shift >= 0, "phase shift must be non-negative");
  return [base = std::move(base), shift](std::int64_t tick) {
    return tick < shift ? 0 : base(tick - shift);
  };
}

std::int64_t total_arrivals(const ArrivalPattern& pattern, std::int64_t ticks) {
  CCS_EXPECTS(ticks >= 0, "tick count must be non-negative");
  std::int64_t total = 0;
  for (std::int64_t t = 0; t < ticks; ++t) total += pattern(t);
  return total;
}

ArrivalRegistry& ArrivalRegistry::global() {
  static ArrivalRegistry instance;
  static const bool initialized = (register_builtin_arrivals(instance), true);
  (void)initialized;
  return instance;
}

ArrivalPattern ArrivalRegistry::build(const std::string& name) const {
  return find(name).build();
}

void register_builtin_arrivals(ArrivalRegistry& r) {
  r.add("steady-1", {[] { return steady_arrivals(1); }, "1 item every tick"});
  r.add("steady-16", {[] { return steady_arrivals(16); }, "16 items every tick"});
  r.add("bursty-64",
        {[] { return bursty_arrivals(64, 16); }, "64 items every 16th tick (avg 4/tick)"});
  r.add("bursty-256",
        {[] { return bursty_arrivals(256, 32); }, "256 items every 32nd tick (avg 8/tick)"});
  r.add("bursty-1024",
        {[] { return bursty_arrivals(1024, 8); },
         "1024 items every 8th tick (Theta(M)-sized bursts for kiloword caches)"});
  r.add("on-off-8x8",
        {[] { return on_off_arrivals(8, 8, 8); }, "8/tick for 8 ticks, then 8 ticks silent"});
  r.add("on-off-16x48",
        {[] { return on_off_arrivals(16, 16, 48); },
         "16/tick for 16 ticks, then 48 ticks silent (25% duty cycle)"});
  r.add("bursty-64-shift-8",
        {[] { return phase_shift_arrivals(bursty_arrivals(64, 16), 8); },
         "bursty-64 delayed half a period (stagger against bursty-64 tenants)"});
}

std::vector<SessionEvent> churn_trace(const ChurnOptions& options) {
  CCS_EXPECTS(options.sessions >= 0, "session count must be non-negative");
  CCS_EXPECTS(options.max_concurrent >= 1, "at least one session must fit");
  CCS_EXPECTS(options.pushes_per_session >= 1, "each session needs a burst");
  CCS_EXPECTS(options.items_per_push >= 1, "bursts must carry items");

  std::vector<SessionEvent> trace;
  trace.reserve(static_cast<std::size_t>(
      options.sessions * (options.pushes_per_session + 2)));
  Rng rng(options.seed);

  // Open sessions with bursts still owed. Each drawn event either opens the
  // next logical session (when there is room) or advances a random open one
  // -- its next burst, or its close once the bursts are spent. Interleaving
  // means a session usually sits idle between its own bursts while others
  // run: exactly the reactivation pattern the swap tier feeds on.
  struct Open {
    std::int64_t session = 0;
    std::int64_t pushes_left = 0;
  };
  std::vector<Open> open;
  std::int64_t next_session = 0;
  while (next_session < options.sessions || !open.empty()) {
    const bool can_open = next_session < options.sessions &&
                          static_cast<std::int64_t>(open.size()) < options.max_concurrent;
    const bool must_open = open.empty();
    if (must_open || (can_open && rng.bernoulli(0.5))) {
      trace.push_back({SessionEvent::Kind::kOpen, next_session, 0});
      open.push_back({next_session, options.pushes_per_session});
      ++next_session;
      continue;
    }
    const auto slot = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(open.size()) - 1));
    Open& o = open[slot];
    if (o.pushes_left > 0) {
      trace.push_back({SessionEvent::Kind::kPush, o.session, options.items_per_push});
      --o.pushes_left;
    } else {
      trace.push_back({SessionEvent::Kind::kClose, o.session, 0});
      o = open.back();  // swap-remove; order is rng-driven anyway
      open.pop_back();
    }
  }
  return trace;
}

}  // namespace ccs::workloads
