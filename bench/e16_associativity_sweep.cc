// E16 -- robustness to realistic cache geometry (extension).
//
// Every theorem assumes an ideal (fully associative) cache; real hardware
// is set-associative. Sweep associativity from direct-mapped to fully
// associative on the same schedules. Expected shape: the naive-vs-
// partitioned ordering survives at every associativity, with conflict
// misses inflating both sides as ways shrink -- evidence the paper's
// conclusions transfer to commodity hardware.

#include "bench/common.h"
#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t sim_words = 4 * m;
  const std::int64_t outputs = 2048;
  const auto g = workloads::uniform_pipeline(24, 256);

  core::PlannerOptions opts;
  opts.cache.capacity_words = m;
  opts.cache.block_words = b;
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  auto run_with = [&](const schedule::Schedule& s, std::int32_t ways) {
    // ways == 0 encodes fully associative.
    std::unique_ptr<iomodel::CacheSim> cache;
    if (ways == 0) cache = iomodel::make_lru(sim_words, b);
    else cache = iomodel::make_set_associative(sim_words, b, ways);
    runtime::Engine engine(g, s.buffer_caps, *cache);
    runtime::RunResult total;
    const auto rounds = schedule::periods_for_outputs(s, outputs);
    for (std::int64_t i = 0; i < rounds; ++i) {
      total += engine.run(s.period);
    }
    return total;
  };

  Table t("E16: associativity sweep (pipeline 24x256, cache 2048 words, B=8)");
  t.set_header({"ways", "naive", "partitioned", "naive/part"});
  for (const std::int32_t ways : {1, 2, 4, 8, 16, 0}) {
    const auto r_naive = run_with(naive, ways);
    const auto r_part = run_with(plan.schedule, ways);
    t.add_row({ways == 0 ? "full" : Table::num(static_cast<std::int64_t>(ways)),
               Table::num(r_naive.misses_per_output(), 3),
               Table::num(r_part.misses_per_output(), 3),
               bench::safe_ratio(r_naive.misses_per_output(), r_part.misses_per_output(), 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
