// Dynamic (online) component scheduling (Section 3, "Scheduling pipelines"
// and the asynchronous homogeneous variant) -- batch wrappers.
//
// Unlike the batch scheduler, the dynamic pipeline scheduler fixes no output
// count in advance. Every cross edge gets a Theta(M) buffer; a component is
// *schedulable* when its input cross buffer is at least half full and its
// output cross buffer at most half full; it then executes until the input
// empties or the output fills, moving Omega(M) tokens either way -- enough
// to amortize the O(M/B) cost of loading the component.
//
// The rules themselves live in schedule/online.h as stateful OnlinePolicy
// sessions (the supported online surface; core::Stream drives them against
// a live engine with real arrivals). The functions below are thin batch
// wrappers kept for one-shot callers: they run the corresponding policy
// until `min_outputs` sink firings and materialize everything it executed
// as one periodic Schedule -- firing-for-firing identical to the sequence a
// Stream with the same input allowance executes online.
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Runs the online rule until at least `min_outputs` sink firings, then
/// drains, returning everything executed as one period. The partition must
/// be a well-ordered pipeline segmentation.
Schedule dynamic_pipeline_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                   std::int64_t m, std::int64_t min_outputs);

/// Homogeneous-dag variant: a component is schedulable when every incoming
/// cross buffer holds M tokens and every outgoing one is empty; it then
/// runs M local iterations (the paper's asynchronous schedule, executed
/// sequentially). Requires a homogeneous graph.
Schedule dynamic_homogeneous_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                      std::int64_t m, std::int64_t min_outputs);

}  // namespace ccs::schedule
