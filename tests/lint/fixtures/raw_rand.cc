// Fixture: unseedable global RNG state must be flagged.
#include <cstdlib>

void seed_it(unsigned s) {
  srand(s);  // LINT-EXPECT(raw-rand)
}

int bad_draw() {
  return std::rand();  // LINT-EXPECT(raw-rand)
}

int bare_draw() {
  return rand();  // LINT-EXPECT(raw-rand)
}

// A local function whose name merely contains "rand" must NOT be flagged.
int spread_operand(int operand) { return operand + 1; }
