// Human-readable formatting of counts and sizes for logs and tables.
#pragma once

#include <cstdint>
#include <string>

namespace ccs {

/// 1234567 -> "1,234,567".
std::string format_count(std::int64_t v);

/// Words -> "12 w", "4.0 Kw", "2.5 Mw" (sizes in this library are in words).
std::string format_words(std::int64_t words);

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// and control characters; everything else passes through byte-for-byte).
/// The single escaping rule behind every JSON emitter in the library
/// (core::ExperimentResult, core::ClusterReport).
std::string json_escape(const std::string& s);

}  // namespace ccs
