#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/contracts.h"

namespace ccs {
namespace {

TEST(Table, PrintsTitleHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("a  bb"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, RightAlignsByDefault) {
  Table t("align");
  t.set_header({"col"});
  t.add_row({"7"});
  std::ostringstream os;
  t.print(os);
  // "col" is 3 wide, so the value line must be "  7".
  EXPECT_NE(os.str().find("  7"), std::string::npos);
}

TEST(Table, LeftAlignOption) {
  Table t("align");
  t.set_header({"name", "v"});
  t.set_align({Align::kLeft, Align::kRight});
  t.add_row({"ab", "1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("ab  "), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ContractViolation);
}

TEST(Table, RowBeforeHeaderThrows) {
  Table t("bad");
  EXPECT_THROW(t.add_row({"1"}), ContractViolation);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("csv");
  t.set_header({"name", "note"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quote", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::ratio(2.5, 1), "2.5x");
}

TEST(Table, RowsCount) {
  Table t("n");
  t.set_header({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace ccs
