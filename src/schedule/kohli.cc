#include "schedule/kohli.h"

#include <algorithm>

#include "schedule/token_sim.h"
#include "sdf/min_buffer.h"
#include "sdf/repetition.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::schedule {

Schedule kohli_schedule(const sdf::SdfGraph& g, std::int64_t m) {
  CCS_EXPECTS(m > 0, "cache size must be positive");
  const auto chain = sdf::pipeline_order(g);  // throws if not a pipeline
  const sdf::RepetitionVector reps(g);

  Schedule out;
  out.name = "kohli";
  // Equal cache share per edge buffer; half the cache is reserved for state.
  const std::int64_t share = std::max<std::int64_t>(m / (2 * std::max(g.edge_count(), 1)), 1);
  out.buffer_caps.resize(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    out.buffer_caps[static_cast<std::size_t>(e)] =
        std::max(share, sdf::edge_min_buffer(edge.out_rate, edge.in_rate));
  }

  // One period: enough iterations that every buffer can fill at least once,
  // then a drain phase returning all channels to empty.
  const std::int64_t iterations = std::max<std::int64_t>(
      1, (share + reps.count(chain.front()) - 1) / std::max<std::int64_t>(
                                                        reps.count(chain.front()), 1));
  const std::int64_t source_target = iterations * reps.count(chain.front());

  TokenSim sim(g, out.buffer_caps);
  // Fill phase: walk the chain; at each module fire the largest batch
  // available (the "keep firing while profitable" local rule).
  while (sim.fired(chain.front()) < source_target) {
    for (const sdf::NodeId v : chain) {
      std::int64_t limit = reps.total_firings();  // effectively unbounded
      if (v == chain.front()) {
        limit = source_target - sim.fired(v);
        if (limit <= 0) continue;
      }
      const std::int64_t batch = sim.max_batch(v, limit);
      if (batch > 0) {
        sim.fire(v, batch);
        out.period.insert(out.period.end(), static_cast<std::size_t>(batch), v);
      }
    }
  }
  // Drain phase: stop the source; sweep until nothing can fire.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const sdf::NodeId v : chain) {
      if (v == chain.front()) continue;
      const std::int64_t batch = sim.max_batch(v, reps.total_firings());
      if (batch > 0) {
        sim.fire(v, batch);
        out.period.insert(out.period.end(), static_cast<std::size_t>(batch), v);
        progressed = true;
      }
    }
  }
  if (!sim.drained()) {
    throw DeadlockError("kohli schedule failed to drain the pipeline");
  }
  out.inputs_per_period = sim.fired(chain.front());
  out.outputs_per_period = sim.fired(chain.back());
  return out;
}

}  // namespace ccs::schedule
