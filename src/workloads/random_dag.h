// Random streaming-dag workloads.
//
// Two families:
//  * layered homogeneous dags -- all rates 1 (the setting of Theorem 7).
//    Source -> L layers of W modules -> sink, with random inter-layer edges
//    plus a guaranteed covering so every module is on a source-sink path.
//  * series-parallel multirate dags -- recursively composed fragments with a
//    single entry and exit. Series edges carry random rates; every parallel
//    branch is built with unit internal gain so the join's consumption rates
//    stay equal to the split's production rates, keeping the whole graph
//    rate matched with small integral rates.
#pragma once

#include <cstdint>

#include "sdf/graph.h"
#include "util/rng.h"

namespace ccs::workloads {

/// Parameters for layered homogeneous dags.
struct LayeredSpec {
  std::int32_t layers = 4;        ///< Interior layers (excluding source/sink).
  std::int32_t width = 4;         ///< Modules per interior layer.
  double edge_prob = 0.3;         ///< Probability of each extra inter-layer edge.
  std::int64_t state_lo = 64;     ///< Module state lower bound (words).
  std::int64_t state_hi = 256;    ///< Module state upper bound (words).
};

/// Homogeneous (all rates 1) layered dag with a single source and sink.
sdf::SdfGraph layered_homogeneous_dag(const LayeredSpec& spec, Rng& rng);

/// Parameters for series-parallel multirate dags.
struct SeriesParallelSpec {
  std::int32_t target_nodes = 24;  ///< Approximate module count.
  std::int32_t max_branches = 3;   ///< Max fan-out of a parallel composition.
  std::int64_t max_rate = 4;       ///< Rates drawn from [1, max_rate].
  std::int64_t state_lo = 64;
  std::int64_t state_hi = 256;
};

/// Rate-matched multirate series-parallel dag with single source and sink.
sdf::SdfGraph series_parallel_dag(const SeriesParallelSpec& spec, Rng& rng);

}  // namespace ccs::workloads
