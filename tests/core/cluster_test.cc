// core::Cluster -- the multicore serving golden gates.
//
// The acceptance properties this file pins:
//  * virtual-time runs are repeat-run counter-identical, down to the
//    shared-LLC statistics (fully deterministic lockstep);
//  * thread-mode per-tenant RunResults are bit-identical to virtual time
//    (both modes share one worker_step code path and private caches are
//    single-owner), so they sum to the same aggregates;
//  * placement policies stripe/balance/stick as documented, and migration
//    pays real reload misses.

#include "core/cluster.h"

#include <gtest/gtest.h>

#include <sstream>

#include "partition/pipeline_dp.h"
#include "util/error.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace ccs::core {
namespace {

using iomodel::CacheConfig;

struct Scenario {
  std::vector<std::pair<std::string, sdf::SdfGraph>> tenants;
  std::vector<partition::Partition> partitions;
};

/// Two pipeline shapes x2, planned once for a 1024-word share.
Scenario four_tenant_scenario() {
  Scenario s;
  s.tenants.emplace_back("uniform-0", workloads::uniform_pipeline(10, 150));
  s.tenants.emplace_back("tail-1", workloads::heavy_tail_pipeline(12, 32, 400, 4));
  s.tenants.emplace_back("uniform-2", workloads::uniform_pipeline(10, 150));
  s.tenants.emplace_back("fat-3", workloads::uniform_pipeline(5, 500));
  for (const auto& [name, g] : s.tenants) {
    s.partitions.push_back(partition::pipeline_optimal_partition(g, 3 * 1024).partition);
  }
  return s;
}

ClusterOptions small_cluster(std::int32_t workers, const std::string& placement) {
  ClusterOptions opts;
  opts.workers = workers;
  opts.l1 = CacheConfig{4096, 8};
  opts.llc_words = 32768;
  opts.placement = placement;
  return opts;
}

/// Serves the scenario for 6 bursty ticks with a rebalance every other
/// tick; `threads` picks the execution mode, `llc_shards` the LLC backend.
ClusterReport serve(const Scenario& s, std::int32_t workers, const std::string& placement,
                    bool threads, std::int32_t llc_shards = 0) {
  ClusterOptions opts = small_cluster(workers, placement);
  opts.llc_shards = llc_shards;
  Cluster cluster(opts);
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  const auto arrival = workloads::bursty_arrivals(96, 2);
  for (std::int64_t tick = 0; tick < 6; ++tick) {
    for (TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, arrival(tick));
    }
    if (tick % 2 == 0) cluster.rebalance();
    if (threads) {
      cluster.run_threads();
    } else {
      cluster.run_until_idle();
    }
  }
  cluster.drain_all();
  return cluster.report();
}

TEST(Cluster, VirtualTimeRepeatRunsAreCounterIdentical) {
  const Scenario s = four_tenant_scenario();
  for (const std::string placement : {"round-robin", "least-loaded", "affinity"}) {
    const ClusterReport first = serve(s, 2, placement, false);
    const ClusterReport again = serve(s, 2, placement, false);
    ASSERT_EQ(first.tenants.size(), again.tenants.size());
    for (std::size_t i = 0; i < first.tenants.size(); ++i) {
      EXPECT_EQ(first.tenants[i].totals, again.tenants[i].totals)
          << placement << " tenant " << first.tenants[i].name;
      EXPECT_EQ(first.tenants[i].worker, again.tenants[i].worker);
      EXPECT_EQ(first.tenants[i].migrations, again.tenants[i].migrations);
    }
    EXPECT_EQ(first.aggregate, again.aggregate) << placement;
    EXPECT_EQ(first.llc, again.llc) << placement;  // lockstep pins even the LLC
    EXPECT_EQ(first.rounds, again.rounds) << placement;
    EXPECT_EQ(first.migrations, again.migrations) << placement;
    EXPECT_EQ(first.makespan(), again.makespan()) << placement;
  }
}

TEST(Cluster, ThreadModePerTenantResultsSumToVirtualTimeAggregates) {
  const Scenario s = four_tenant_scenario();
  // 8 and 16 cover the oversubscribed tail: more workers than tenants, so
  // some workers idle -- determinism must not depend on every worker having
  // work (and on this host, on threads exceeding physical cores).
  for (const std::int32_t workers : {1, 2, 4, 8, 16}) {
    const ClusterReport virtual_time = serve(s, workers, "round-robin", false);
    const ClusterReport threaded = serve(s, workers, "round-robin", true);
    ASSERT_EQ(virtual_time.tenants.size(), threaded.tenants.size());
    runtime::RunResult virtual_sum;
    runtime::RunResult threaded_sum;
    for (std::size_t i = 0; i < virtual_time.tenants.size(); ++i) {
      // Stronger than the sum property: each tenant's counters match
      // bit-for-bit, because both modes run the identical per-worker step
      // sequence against single-owner private caches.
      EXPECT_EQ(virtual_time.tenants[i].totals, threaded.tenants[i].totals)
          << workers << " workers, tenant " << virtual_time.tenants[i].name;
      virtual_sum += virtual_time.tenants[i].totals;
      threaded_sum += threaded.tenants[i].totals;
    }
    EXPECT_EQ(virtual_sum, threaded_sum) << workers;
    EXPECT_EQ(threaded.aggregate, virtual_time.aggregate) << workers;
    // Total LLC probes equal summed private misses in both modes, even
    // though the hit/miss split may differ under real interleaving.
    EXPECT_EQ(threaded.llc.accesses, virtual_time.llc.accesses) << workers;
  }
}

TEST(Cluster, ShardedLlcKeepsThreadVirtualDeterminism) {
  // The same thread-mode ≡ virtual-time gate with the address-striped LLC
  // (llc_shards = 4): per-tenant counters bit-identical across modes, and
  // total LLC probes still equal summed private misses.
  const Scenario s = four_tenant_scenario();
  for (const std::int32_t workers : {1, 2, 4, 8, 16}) {
    const ClusterReport virtual_time = serve(s, workers, "round-robin", false, 4);
    const ClusterReport threaded = serve(s, workers, "round-robin", true, 4);
    ASSERT_EQ(virtual_time.tenants.size(), threaded.tenants.size());
    for (std::size_t i = 0; i < virtual_time.tenants.size(); ++i) {
      EXPECT_EQ(virtual_time.tenants[i].totals, threaded.tenants[i].totals)
          << workers << " workers, tenant " << virtual_time.tenants[i].name;
    }
    EXPECT_EQ(threaded.aggregate, virtual_time.aggregate) << workers;
    EXPECT_EQ(threaded.llc.accesses, virtual_time.llc.accesses) << workers;
    EXPECT_EQ(virtual_time.llc_shards, 4) << workers;
  }
}

TEST(Cluster, OneShardLlcIsBitIdenticalToFlatLlc) {
  // llc_shards = 1 is the flat LruCache geometry behind a different lock:
  // a virtual-time run must match the single-mutex backend counter-for-
  // counter, down to the shared-LLC hit/miss split.
  const Scenario s = four_tenant_scenario();
  const ClusterReport flat = serve(s, 4, "affinity", false, 0);
  const ClusterReport one_shard = serve(s, 4, "affinity", false, 1);
  ASSERT_EQ(flat.tenants.size(), one_shard.tenants.size());
  for (std::size_t i = 0; i < flat.tenants.size(); ++i) {
    EXPECT_EQ(flat.tenants[i].totals, one_shard.tenants[i].totals)
        << flat.tenants[i].name;
  }
  EXPECT_EQ(flat.aggregate, one_shard.aggregate);
  EXPECT_EQ(flat.llc, one_shard.llc);
  EXPECT_EQ(flat.makespan(), one_shard.makespan());
}

TEST(Cluster, RoundRobinStripesAdmissionsAcrossWorkers) {
  const Scenario s = four_tenant_scenario();
  Cluster cluster(small_cluster(2, "round-robin"));
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  EXPECT_EQ(cluster.worker_of(0), 0);
  EXPECT_EQ(cluster.worker_of(1), 1);
  EXPECT_EQ(cluster.worker_of(2), 0);
  EXPECT_EQ(cluster.worker_of(3), 1);
  // Static striping never migrates, even when explicitly rebalanced.
  cluster.push(0, 64);
  cluster.run_until_idle();
  EXPECT_EQ(cluster.rebalance(), 0);
}

TEST(Cluster, AffinityKeepsWarmSessionsPut) {
  const Scenario s = four_tenant_scenario();
  Cluster cluster(small_cluster(2, "affinity"));
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  // Warm every session, then rebalance: nobody's working set is better
  // cached anywhere else, so nobody moves.
  for (TenantId t = 0; t < cluster.tenant_count(); ++t) cluster.push(t, 32);
  cluster.run_until_idle();
  EXPECT_EQ(cluster.rebalance(), 0);
  EXPECT_EQ(cluster.report().migrations, 0);
}

TEST(Cluster, MigrationPaysRealReloadMisses) {
  const auto g = workloads::uniform_pipeline(10, 150);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 1024).partition;
  // Identical work, with and without a mid-run migration; the migrated run
  // must reload its working set on the new worker's cold L1.
  const auto run = [&](bool migrate_midway) {
    Cluster cluster(small_cluster(2, "round-robin"));
    const TenantId id = cluster.admit("t", g, p, {}, 1024);
    cluster.push(id, 64);
    cluster.run_until_idle();
    if (migrate_midway) cluster.migrate(id, 1);
    cluster.push(id, 64);
    cluster.run_until_idle();
    cluster.drain_all();
    return cluster.report();
  };
  const ClusterReport stayed = run(false);
  const ClusterReport moved = run(true);
  EXPECT_EQ(stayed.tenants[0].totals.firings, moved.tenants[0].totals.firings);
  EXPECT_GT(moved.tenants[0].totals.cache.misses, stayed.tenants[0].totals.cache.misses);
  EXPECT_EQ(moved.tenants[0].migrations, 1);
  EXPECT_EQ(moved.tenants[0].worker, 1);
}

TEST(Cluster, TenantsAreIndependentAcrossWorkers) {
  const Scenario s = four_tenant_scenario();
  // The same tenant work on 1 worker and on 4: private-cache counters of a
  // tenant depend only on its own worker-local step interleaving, so a
  // tenant alone on its worker matches a solo single-worker run.
  Cluster alone(small_cluster(1, "round-robin"));
  alone.admit(s.tenants[0].first, s.tenants[0].second, s.partitions[0], {}, 1024);
  alone.push(0, 128);
  alone.run_until_idle();
  alone.drain_all();

  Cluster spread(small_cluster(4, "round-robin"));
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    spread.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  for (TenantId t = 0; t < spread.tenant_count(); ++t) spread.push(t, 128);
  spread.run_until_idle();
  spread.drain_all();

  EXPECT_EQ(spread.report().tenants[0].totals, alone.report().tenants[0].totals);
}

TEST(Cluster, ReportAccountingIsConsistent) {
  const Scenario s = four_tenant_scenario();
  const ClusterReport report = serve(s, 2, "least-loaded", false);
  runtime::RunResult sum;
  std::int64_t tenant_migrations = 0;
  for (const auto& t : report.tenants) {
    sum += t.totals;
    tenant_migrations += t.migrations;
  }
  EXPECT_EQ(sum, report.aggregate);
  EXPECT_EQ(tenant_migrations, report.migrations);
  std::int64_t busy = 0;
  std::int64_t placed = 0;
  for (const auto& w : report.workers) {
    busy += w.busy;
    placed += w.tenants;
  }
  EXPECT_EQ(busy, report.aggregate.firings);  // every firing ran on some worker
  EXPECT_EQ(placed, static_cast<std::int64_t>(report.tenants.size()));
  EXPECT_GE(report.makespan(), busy / static_cast<std::int64_t>(report.workers.size()));
  EXPECT_GE(report.imbalance(), 1.0);
  // Private misses across workers all flowed through the shared LLC.
  std::int64_t private_misses = 0;
  for (const auto& w : report.workers) private_misses += w.l1.misses;
  EXPECT_EQ(report.llc.accesses, private_misses);
}

TEST(Cluster, WriteJsonIsStableAcrossIdenticalRuns) {
  const Scenario s = four_tenant_scenario();
  std::ostringstream a;
  std::ostringstream b;
  serve(s, 2, "affinity", false).write_json(a);
  serve(s, 2, "affinity", false).write_json(b);
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"placement\": \"affinity\""), std::string::npos);
  EXPECT_NE(a.str().find("\"worker_table\""), std::string::npos);
}

TEST(Cluster, RejectsBadConfigurationsWithActionableErrors) {
  const auto g = workloads::uniform_pipeline(6, 50);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 1024).partition;
  ClusterOptions bad = small_cluster(2, "bogus");
  try {
    Cluster cluster(bad);
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("valid placement policies"), std::string::npos);
  }
  Cluster cluster(small_cluster(2, "round-robin"));
  cluster.admit("a", g, p);
  EXPECT_THROW(cluster.admit("a", g, p), Error);
  EXPECT_THROW(cluster.migrate(0, 7), ContractViolation);
}

}  // namespace
}  // namespace ccs::core
