#include "sdf/topology.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace ccs::sdf {

std::vector<NodeId> topological_sort(const SdfGraph& g) {
  const std::int32_t n = g.node_count();
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(n), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    ++indegree[static_cast<std::size_t>(g.edge(e).dst)];
  }
  // Min-heap on node id keeps the order deterministic.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  if (static_cast<std::int32_t>(order.size()) != n) {
    throw GraphError("graph contains a directed cycle");
  }
  return order;
}

bool is_acyclic(const SdfGraph& g) {
  try {
    (void)topological_sort(g);
    return true;
  } catch (const GraphError&) {
    return false;
  }
}

Reachability::Reachability(const SdfGraph& g) : n_(g.node_count()) {
  const auto words = static_cast<std::size_t>((n_ + 63) / 64);
  bits_.assign(static_cast<std::size_t>(n_), std::vector<std::uint64_t>(words, 0));
  const auto order = topological_sort(g);
  // Process in reverse topological order: successors' sets are complete.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    auto& row = bits_[static_cast<std::size_t>(u)];
    for (const EdgeId e : g.out_edges(u)) {
      const NodeId w = g.edge(e).dst;
      row[static_cast<std::size_t>(w) >> 6] |= 1ULL << (static_cast<std::size_t>(w) & 63);
      const auto& succ = bits_[static_cast<std::size_t>(w)];
      for (std::size_t i = 0; i < words; ++i) row[i] |= succ[i];
    }
  }
}

std::vector<ContractedEdge> contract(const SdfGraph& g,
                                     const std::vector<std::int32_t>& assignment,
                                     std::int32_t num_components) {
  CCS_EXPECTS(static_cast<std::int32_t>(assignment.size()) == g.node_count(),
              "assignment size must equal node count");
  std::vector<ContractedEdge> cross;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const std::int32_t cs = assignment[static_cast<std::size_t>(edge.src)];
    const std::int32_t cd = assignment[static_cast<std::size_t>(edge.dst)];
    CCS_EXPECTS(cs >= 0 && cs < num_components && cd >= 0 && cd < num_components,
                "component id out of range");
    if (cs != cd) cross.push_back(ContractedEdge{cs, cd, e});
  }
  return cross;
}

bool contraction_is_acyclic(const SdfGraph& g, const std::vector<std::int32_t>& assignment,
                            std::int32_t num_components) {
  const auto cross = contract(g, assignment, num_components);
  // Kahn's algorithm on the contracted multigraph.
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(num_components), 0);
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(num_components));
  for (const auto& ce : cross) {
    adj[static_cast<std::size_t>(ce.src_comp)].push_back(ce.dst_comp);
    ++indegree[static_cast<std::size_t>(ce.dst_comp)];
  }
  std::vector<std::int32_t> stack;
  for (std::int32_t c = 0; c < num_components; ++c) {
    if (indegree[static_cast<std::size_t>(c)] == 0) stack.push_back(c);
  }
  std::int32_t seen = 0;
  while (!stack.empty()) {
    const std::int32_t c = stack.back();
    stack.pop_back();
    ++seen;
    for (const std::int32_t d : adj[static_cast<std::size_t>(c)]) {
      if (--indegree[static_cast<std::size_t>(d)] == 0) stack.push_back(d);
    }
  }
  return seen == num_components;
}

std::vector<NodeId> pipeline_order(const SdfGraph& g) {
  if (!g.is_pipeline()) throw GraphError("graph is not a pipeline");
  const auto srcs = g.sources();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.node_count()));
  NodeId v = srcs.front();
  order.push_back(v);
  while (!g.out_edges(v).empty()) {
    v = g.edge(g.out_edges(v).front()).dst;
    order.push_back(v);
  }
  CCS_ENSURES(static_cast<std::int32_t>(order.size()) == g.node_count(),
              "pipeline chain must cover all modules");
  return order;
}

}  // namespace ccs::sdf
