// Engine incremental mode: try_fire, input-credit accounting, and
// snapshot/take polling -- the noexcept hot path behind core::Stream.

#include <gtest/gtest.h>

#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::runtime {
namespace {

using iomodel::CacheConfig;
using iomodel::LruCache;
using sdf::NodeId;
using sdf::SdfGraph;

SdfGraph two_stage() {
  SdfGraph g;
  const NodeId a = g.add_node("a", 16);
  const NodeId b = g.add_node("b", 16);
  g.add_edge(a, b, 2, 2);
  return g;
}

TEST(TryFire, UnderflowReturnsFalseWithoutSideEffects) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  const auto accesses_before = cache.stats().accesses;
  EXPECT_FALSE(engine.try_fire(1));  // no input tokens yet
  EXPECT_EQ(engine.tokens(0), 0);
  EXPECT_EQ(engine.fired(1), 0);
  EXPECT_EQ(cache.stats().accesses, accesses_before);  // no memory traffic
}

TEST(TryFire, OverflowReturnsFalseWithoutSideEffects) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {2}, cache);
  EXPECT_TRUE(engine.try_fire(0));  // buffer now full (2/2)
  const auto accesses_before = cache.stats().accesses;
  EXPECT_FALSE(engine.try_fire(0));
  EXPECT_EQ(engine.tokens(0), 2);
  EXPECT_EQ(engine.fired(0), 1);
  EXPECT_EQ(cache.stats().accesses, accesses_before);
}

TEST(TryFire, OutOfRangeIdReturnsFalseInsteadOfThrowing) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  EXPECT_FALSE(engine.try_fire(-1));
  EXPECT_FALSE(engine.try_fire(99));
}

TEST(TryFire, MatchesFireSemanticsOnSuccess) {
  const auto g = two_stage();
  LruCache c1(CacheConfig{1024, 8});
  LruCache c2(CacheConfig{1024, 8});
  Engine via_fire(g, {4}, c1);
  Engine via_try(g, {4}, c2);
  via_fire.fire(0);
  via_fire.fire(1);
  ASSERT_TRUE(via_try.try_fire(0));
  ASSERT_TRUE(via_try.try_fire(1));
  EXPECT_EQ(via_fire.take(), via_try.take());
}

TEST(InputCredit, SourceBlocksAtZeroCreditAndResumesOnPush) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.credit_input = true;
  Engine engine(g, {4}, cache, opts);

  EXPECT_EQ(engine.input_credit(), 0);
  EXPECT_FALSE(engine.can_fire(0));
  EXPECT_FALSE(engine.try_fire(0));
  EXPECT_THROW(engine.fire(0), ScheduleError);  // fire() keeps throwing
  EXPECT_EQ(engine.fired(0), 0);

  engine.push_input(2);
  EXPECT_EQ(engine.input_credit(), 2);
  EXPECT_TRUE(engine.try_fire(0));
  EXPECT_EQ(engine.input_credit(), 1);  // one credit per source firing
  EXPECT_TRUE(engine.try_fire(1));      // non-source modules need no credit
  EXPECT_TRUE(engine.try_fire(0));
  EXPECT_EQ(engine.input_credit(), 0);
  EXPECT_TRUE(engine.try_fire(1));
  EXPECT_FALSE(engine.try_fire(0));  // credit exhausted again
}

TEST(InputCredit, RunValidatesCreditUpFrontWithoutTokenMovement) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.credit_input = true;
  Engine engine(g, {4}, cache, opts);
  engine.push_input(1);
  const std::vector<NodeId> two_sources{0, 1, 0, 1};  // needs credit 2
  EXPECT_THROW(engine.run(two_sources), ScheduleError);
  EXPECT_EQ(engine.fired(0), 0);  // validation failed before any firing
  EXPECT_EQ(engine.tokens(0), 0);
  const std::vector<NodeId> affordable{0, 1};
  EXPECT_EQ(engine.run(affordable).firings, 2);
}

TEST(InputCredit, UnmeteredEngineIgnoresCreditAndRejectsPush) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);  // credit_input off
  EXPECT_EQ(engine.input_credit(), Engine::kUnlimitedCredit);
  EXPECT_TRUE(engine.try_fire(0));
  EXPECT_THROW(engine.push_input(4), ContractViolation);
}

TEST(InputCredit, PushSaturatesInsteadOfOverflowing) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.credit_input = true;
  Engine engine(g, {4}, cache, opts);
  engine.push_input(Engine::kUnlimitedCredit);
  engine.push_input(Engine::kUnlimitedCredit);  // would overflow if added
  EXPECT_EQ(engine.input_credit(), Engine::kUnlimitedCredit);
  // Unlimited credit is sticky: source firings no longer consume it.
  EXPECT_TRUE(engine.try_fire(0));
  EXPECT_EQ(engine.input_credit(), Engine::kUnlimitedCredit);
  EXPECT_THROW(engine.push_input(-1), ContractViolation);
}

TEST(InputCredit, RebindCacheResetsCredit) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.credit_input = true;
  Engine engine(g, {4}, cache, opts);
  engine.push_input(8);
  LruCache fresh(CacheConfig{1024, 8});
  engine.rebind_cache(fresh);
  EXPECT_EQ(engine.input_credit(), 0);
  EXPECT_FALSE(engine.try_fire(0));
}

TEST(SnapshotTake, SnapshotPollsWithoutResettingTheWindow) {
  const auto g = two_stage();
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, {4}, cache);
  engine.fire(0);
  const RunResult peek1 = engine.snapshot();
  const RunResult peek2 = engine.snapshot();
  EXPECT_EQ(peek1, peek2);  // polling is idempotent
  EXPECT_EQ(peek1.firings, 1);
  engine.fire(1);
  EXPECT_EQ(engine.snapshot().firings, 2);  // window still open
  const RunResult taken = engine.take();
  EXPECT_EQ(taken.firings, 2);
  EXPECT_EQ(taken.source_firings, 1);
  EXPECT_EQ(taken.sink_firings, 1);
  // take() closed the window: nothing new to report.
  EXPECT_EQ(engine.snapshot().firings, 0);
  EXPECT_EQ(engine.snapshot().cache.accesses, 0);
}

TEST(SnapshotTake, RunEqualsFireAllPlusTake) {
  const auto g = ccs::workloads::uniform_pipeline(6, 64);
  const std::vector<std::int64_t> caps(static_cast<std::size_t>(g.edge_count()), 2);
  const std::vector<NodeId> period{0, 1, 2, 3, 4, 5};
  LruCache c1(CacheConfig{512, 8});
  LruCache c2(CacheConfig{512, 8});
  Engine via_run(g, caps, c1);
  Engine via_steps(g, caps, c2);
  const RunResult from_run = via_run.run(period);
  for (const NodeId v : period) ASSERT_TRUE(via_steps.try_fire(v));
  EXPECT_EQ(from_run, via_steps.take());
}

}  // namespace
}  // namespace ccs::runtime
