// Online (dynamic) pipeline scheduling through a true streaming session:
// the half-full/half-empty rule from Section 3 of the paper, driven by live
// arrivals through core::Stream instead of a materialized firing list.
//
//   $ ./online_pipeline [--stages=16] [--state=300] [--cache-words=1024]
//                       [--arrival=steady-16] [--outputs=8192]
//
// Demonstrates: the Stream push/step/drain session, arrival-pattern driving
// with backpressure, and the Section 4 equivalence -- the online session
// lands within a constant factor of the static batch schedule. Both sides
// of the comparison execute on the SAME cache geometry (sim-words, default
// 4*M: the paper's constant-factor augmentation regime), so the numbers are
// directly comparable.

#include <algorithm>
#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "core/stream.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("online_pipeline", "static batch vs online Stream serving of one pipeline");
  args.add_int("stages", 16, "pipeline length");
  args.add_int("state", 300, "words of state per module");
  args.add_int("cache-words", 1024, "cache size M in words the plan targets");
  args.add_int("sim-words", 0, "cache words to simulate on (0 = 4*M, Theorem 5's regime)");
  args.add_int("outputs", 8192, "items to serve");
  args.add_string("arrival", "bursty-1024",
                  "arrival pattern (workloads::ArrivalRegistry key); Theta(M)-sized "
                  "bursts let component loads amortize, thin patterns (steady-16) "
                  "show the granularity cost");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::uniform_pipeline(
        static_cast<std::int32_t>(args.get_int("stages")), args.get_int("state"));
    const std::int64_t m = args.get_int("cache-words");
    const std::int64_t outputs = args.get_int("outputs");
    const std::int64_t sim_words =
        args.get_int("sim-words") > 0 ? args.get_int("sim-words") : 4 * m;

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = 8;
    const core::Planner planner(g, opts);
    const auto plan = planner.plan("pipeline-dp");
    std::cout << "pipeline: " << g << "\n"
              << "optimal partition: " << plan.partition.num_components
              << " segments, bandwidth " << plan.partition_bandwidth << "\n\n";

    // One labeled measurement geometry for BOTH sides of the comparison.
    const iomodel::CacheConfig sim{sim_words, 8};
    std::cout << "measurement cache: " << sim.capacity_words << " words ("
              << (args.get_int("sim-words") > 0 ? "explicit" : "4*M augmentation")
              << "), plan M = " << m << "\n\n";

    // Batch side: materialized schedule, replayed by core::simulate.
    const auto r_batch = core::simulate(g, plan.schedule, sim, outputs);

    // Online side: a Stream session over the same partition, fed by a real
    // arrival pattern, stepping only when something is schedulable.
    iomodel::LruCache stream_cache(sim);
    core::StreamOptions sopts;
    sopts.max_pending_inputs = 8 * m;  // bounded ingress queue
    core::Stream stream(g, plan.partition, stream_cache, m, sopts);
    const auto arrival = workloads::ArrivalRegistry::global().build(args.get_string("arrival"));

    std::int64_t tick = 0;
    std::int64_t arrived = 0;
    std::int64_t refused = 0;
    while (arrived < outputs) {
      const std::int64_t want = std::min(arrival(tick), outputs - arrived);
      const std::int64_t accepted = stream.push(want);
      refused += want - accepted;
      arrived += accepted;
      stream.run_until_idle();
      ++tick;
    }
    stream.drain();

    Table t("static batch vs online session (same cache, " + std::to_string(outputs) +
            " items)");
    t.set_header({"execution", "buffer words", "misses", "misses/output"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
    t.add_row({plan.schedule.name, Table::num(plan.schedule.total_buffer_words()),
               Table::num(r_batch.cache.misses),
               Table::num(r_batch.misses_per_output(), 3)});
    std::int64_t stream_buffers = 0;
    for (const auto c : stream.policy().buffer_caps()) stream_buffers += c;
    t.add_row({"stream/" + std::string(stream.policy().name()),
               Table::num(stream_buffers), Table::num(stream.stats().cache.misses),
               Table::num(stream.stats().misses_per_output(), 3)});
    t.print(std::cout);
    std::cout << "\nserved " << stream.outputs_produced() << " outputs over " << tick
              << " ticks (" << stream.steps() << " component executions, " << refused
              << " arrivals briefly refused by backpressure)\n"
              << "With Theta(M)-sized arrival bursts the online session fixes no output\n"
                 "count in advance yet lands within a constant factor of the batch\n"
                 "schedule, as Section 4 predicts. Thinner arrivals (try\n"
                 "--arrival=steady-16) amortize each component load over fewer items\n"
                 "and pay proportionally more misses -- the granularity cost the\n"
                 "paper's infinite-input idealization hides.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
