#include "partition/dag_anneal.h"

#include <cmath>

#include "sdf/gain.h"
#include "util/contracts.h"

namespace ccs::partition {

namespace {

/// Bandwidth delta of moving v to `target` (same form as dag_refine's).
double move_delta(const sdf::SdfGraph& g, const std::vector<double>& edge_gain,
                  const Partition& p, sdf::NodeId v, std::int32_t target) {
  double delta = 0;
  const std::int32_t from = p.comp(v);
  auto edge_term = [&](sdf::EdgeId e, sdf::NodeId other) {
    const std::int32_t oc = p.comp(other);
    const bool was_cross = oc != from;
    const bool now_cross = oc != target;
    if (was_cross && !now_cross) delta -= edge_gain[static_cast<std::size_t>(e)];
    if (!was_cross && now_cross) delta += edge_gain[static_cast<std::size_t>(e)];
  };
  for (const sdf::EdgeId e : g.in_edges(v)) edge_term(e, g.edge(e).src);
  for (const sdf::EdgeId e : g.out_edges(v)) edge_term(e, g.edge(e).dst);
  return delta;
}

Partition compact(const Partition& p) {
  std::vector<std::int32_t> remap(static_cast<std::size_t>(p.num_components), -1);
  std::int32_t next = 0;
  for (const std::int32_t c : p.assignment) {
    auto& slot = remap[static_cast<std::size_t>(c)];
    if (slot == -1) slot = next++;
  }
  Partition out;
  out.num_components = next;
  out.assignment.reserve(p.assignment.size());
  for (const std::int32_t c : p.assignment) {
    out.assignment.push_back(remap[static_cast<std::size_t>(c)]);
  }
  return out;
}

}  // namespace

Partition anneal_partition(const sdf::SdfGraph& g, const Partition& start,
                           const AnnealOptions& options) {
  CCS_EXPECTS(options.state_bound > 0, "state bound must be positive");
  CCS_EXPECTS(is_well_ordered(g, start), "annealing requires a well-ordered start");
  CCS_EXPECTS(is_bounded(g, start, options.state_bound), "start exceeds the bound");

  const sdf::GainMap gains(g);
  std::vector<double> edge_gain(static_cast<std::size_t>(g.edge_count()));
  double mean_gain = 0;
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    edge_gain[static_cast<std::size_t>(e)] = gains.edge_gain(e).to_double();
    mean_gain += edge_gain[static_cast<std::size_t>(e)];
  }
  mean_gain = g.edge_count() > 0 ? mean_gain / static_cast<double>(g.edge_count()) : 1.0;

  Rng rng(options.seed);
  Partition cur = start;
  auto states = component_states(g, cur);
  double cur_bw = bandwidth(g, gains, cur).to_double();
  Partition best = cur;
  double best_bw = cur_bw;
  double temp = options.initial_temp * mean_gain;

  for (std::int32_t it = 0; it < options.iterations; ++it, temp *= options.cooling) {
    const auto v = static_cast<sdf::NodeId>(rng.uniform(0, g.node_count() - 1));
    const std::int32_t from = cur.comp(v);
    // Candidate targets: neighbor components, or a fresh singleton (which
    // only makes sense if v is not already alone).
    std::vector<std::int32_t> targets;
    for (const sdf::EdgeId e : g.in_edges(v)) targets.push_back(cur.comp(g.edge(e).src));
    for (const sdf::EdgeId e : g.out_edges(v)) targets.push_back(cur.comp(g.edge(e).dst));
    if (states[static_cast<std::size_t>(from)] > g.node(v).state) {
      targets.push_back(cur.num_components);
    }
    if (targets.empty()) continue;
    const std::int32_t target = rng.pick(targets);
    if (target == from) continue;
    const bool fresh = target == cur.num_components;
    if (!fresh && states[static_cast<std::size_t>(target)] + g.node(v).state >
                      options.state_bound) {
      continue;
    }
    const double delta = move_delta(g, edge_gain, cur, v, target);
    if (delta > 0 && (temp <= 0 || rng.uniform01() >= std::exp(-delta / temp))) {
      continue;  // uphill move rejected
    }
    Partition trial = cur;
    trial.assignment[static_cast<std::size_t>(v)] = target;
    if (fresh) ++trial.num_components;
    if (!is_well_ordered(g, trial)) continue;

    states[static_cast<std::size_t>(from)] -= g.node(v).state;
    if (fresh) states.push_back(g.node(v).state);
    else states[static_cast<std::size_t>(target)] += g.node(v).state;
    cur = std::move(trial);
    cur_bw += delta;
    if (cur_bw < best_bw - 1e-12) {
      best = cur;
      best_bw = cur_bw;
    }
  }

  best = compact(best);
  CCS_ENSURES(is_well_ordered(g, best), "annealing must preserve well-ordering");
  CCS_ENSURES(is_bounded(g, best, options.state_bound), "annealing must preserve the bound");
  return best;
}

}  // namespace ccs::partition
