// FIFO channel backed by a ring buffer in the simulated address space.
//
// Tokens are unit-sized words. push/pop touch the cache at *block*
// granularity: a contiguous span of k words covers a fixed set of blocks,
// and touching each block once produces exactly the same miss count (and
// LRU recency order) as touching every word, while costing O(k/B) simulator
// work instead of O(k).
#pragma once

#include <cstdint>

#include "iomodel/cache.h"
#include "iomodel/layout.h"

namespace ccs::runtime {

/// Bounded FIFO queue of unit-size tokens with simulated memory traffic.
class Channel {
 public:
  /// `region.words` must equal `capacity` (one word per token slot).
  Channel(iomodel::Region region, std::int64_t capacity);

  std::int64_t capacity() const noexcept { return capacity_; }
  std::int64_t size() const noexcept { return size_; }
  std::int64_t space() const noexcept { return capacity_ - size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }

  /// Appends `count` tokens, writing their slots. Requires space() >= count.
  void push(std::int64_t count, iomodel::CacheSim& cache);

  /// Removes `count` tokens, reading their slots. Requires size() >= count.
  void pop(std::int64_t count, iomodel::CacheSim& cache);

  /// Empties the queue without memory traffic (used between measurement
  /// phases; the data is dead by construction).
  void reset() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Ring cursor of the oldest token, in [0, capacity). Together with
  /// size() this is the channel's complete mutable state -- the swap tier
  /// serializes exactly this pair.
  std::int64_t head() const noexcept { return head_; }

  /// Restores the ring cursors without memory traffic (swap-tier
  /// rehydration). Token *contents* are not modeled beyond block residency,
  /// so cursors are all there is to restore; the blocks themselves stay in
  /// (or fall out of) the simulated cache independently.
  void restore(std::int64_t head, std::int64_t size);

 private:
  /// Touches every block overlapping [offset, offset+count) within the ring:
  /// the wrapped span splits into at most two contiguous pieces, each issued
  /// as one bulk CacheSim::access_span transaction.
  void touch(std::int64_t offset, std::int64_t count, iomodel::CacheSim& cache,
             iomodel::AccessMode mode) const;

  iomodel::Region region_;
  std::int64_t capacity_;
  std::int64_t head_ = 0;  // index of the oldest token
  std::int64_t size_ = 0;
};

}  // namespace ccs::runtime
