// Microbenchmark: serving tail latency under the latency cost models
// (google-benchmark).
//
// The latency subsystem prices every scheduler step in modeled cycles (a
// pure function of the step's firings, its private-L1 counter delta, and
// static cluster configuration) and folds the per-step costs into exact
// log2-bucket histograms. This file records the two serving stories that
// the percentiles make visible, for BENCH_PR10.json:
//
//   * BM_TailBurstyVsSteady -- the same average arrival rate delivered
//     steadily vs maximally clumped. A burst deepens the queue, so the
//     steps that absorb it do ~8x the firings on colder cache: in a fleet
//     where half the tenants are bursty, the cluster's p50 still tracks
//     the steady steps while the p99 jumps to the burst steps. tail_gap_x
//     (p99_mixed / p50_mixed vs the all-steady fleet's ~1) is the burst
//     penalty the mean hides completely.
//
//   * BM_PlacementP99Spread -- the PR6 oversubscribed-L1 regime (two heavy
//     working sets striped onto one small private cache) priced under
//     llc-shared. Placement decides which tenants share a private L1, so
//     it moves the miss distribution and with it the tail; p95_spread /
//     p99_spread (max - min across round-robin, affinity, adaptive) is how
//     much tail is on the table for the placer.
//
// Every number here is a deterministic model quantity: reruns reproduce
// the counters bit-for-bit, and wall time (items/s) only measures
// simulator overhead.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "partition/pipeline_dp.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace {

using namespace ccs;

constexpr std::int64_t kM = 512;
constexpr std::int64_t kTicks = 32;
constexpr std::int32_t kTenants = 6;

/// Serves `kTenants` sessions of (g, p) for kTicks ticks; tenant t draws
/// its arrivals from `arrivals[t % arrivals.size()]`.
core::ClusterReport serve(const sdf::SdfGraph& g,
                          const partition::Partition& p,
                          const core::ClusterOptions& opts,
                          const std::vector<workloads::ArrivalPattern>& arrivals) {
  core::Cluster cluster(opts);
  core::StreamOptions sopts;
  sopts.engine.per_node_attribution = false;
  for (std::int32_t t = 0; t < kTenants; ++t) {
    cluster.admit("t" + std::to_string(t), g, p, sopts, kM);
  }
  for (std::int64_t tick = 0; tick < kTicks; ++tick) {
    for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, arrivals[static_cast<std::size_t>(t) % arrivals.size()](tick));
    }
    cluster.run_until_idle();
  }
  cluster.drain_all();
  return cluster.report();
}

/// Bursty vs steady at the same average rate (8 items/tick/tenant), per
/// cost model (range(0): 0 = two-level, 1 = llc-shared). The all-steady
/// fleet is the baseline; the mixed fleet (alternating steady / bursty
/// tenants) shows the burst steps as a tail above an unchanged median.
void BM_TailBurstyVsSteady(benchmark::State& state) {
  static const char* kModels[] = {"two-level", "llc-shared"};
  const std::string model = kModels[state.range(0)];
  const auto g = workloads::uniform_pipeline(12, 120);
  const auto p = partition::pipeline_optimal_partition(g, 3 * kM).partition;
  core::ClusterOptions opts;
  opts.workers = 4;
  opts.l1 = {4 * kM, 8};
  opts.llc_words = 16 * kM;
  opts.llc_shards = 2;
  opts.cost_model = model;

  std::int64_t outputs = 0;
  std::int64_t p50_steady = 0, p99_steady = 0;
  std::int64_t p50_mixed = 0, p99_mixed = 0;
  for (auto _ : state) {
    const auto steady =
        serve(g, p, opts, {workloads::steady_arrivals(8)});
    const auto mixed =
        serve(g, p, opts,
              {workloads::steady_arrivals(8), workloads::bursty_arrivals(64, 8)});
    outputs += steady.aggregate.sink_firings + mixed.aggregate.sink_firings;
    p50_steady = steady.aggregate.latency.p50();
    p99_steady = steady.aggregate.latency.p99();
    p50_mixed = mixed.aggregate.latency.p50();
    p99_mixed = mixed.aggregate.latency.p99();
  }
  state.SetItemsProcessed(outputs);
  state.SetLabel(model);
  state.counters["p50_steady"] = static_cast<double>(p50_steady);
  state.counters["p99_steady"] = static_cast<double>(p99_steady);
  state.counters["p50_mixed"] = static_cast<double>(p50_mixed);
  state.counters["p99_mixed"] = static_cast<double>(p99_mixed);
  state.counters["tail_gap_x"] =
      p50_mixed > 0
          ? static_cast<double>(p99_mixed) / static_cast<double>(p50_mixed)
          : 0.0;
}
BENCHMARK(BM_TailBurstyVsSteady)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The heavy/light mix from the adaptive-placement regime, priced under
/// llc-shared: per placement policy, the cluster p99 -- and the spread
/// between the best and worst policy.
void BM_PlacementP99Spread(benchmark::State& state) {
  static const char* kPlacements[] = {"round-robin", "affinity", "adaptive"};
  constexpr std::int64_t kMp = 1024;     // PR6 oversubscription geometry
  constexpr std::int64_t kSpreadTicks = 128;  // enough samples that the p99
                                             // rank sits below the handful
                                             // of cold-start steps
  const auto heavy = workloads::uniform_pipeline(4, 400);
  const auto light = workloads::uniform_pipeline(4, 40);
  const auto heavy_p =
      partition::pipeline_optimal_partition(heavy, 3 * kMp).partition;
  const auto light_p =
      partition::pipeline_optimal_partition(light, 3 * kMp).partition;

  std::int64_t outputs = 0;
  std::int64_t migrated = 0;
  std::int64_t p95[3] = {0, 0, 0};
  std::int64_t p99[3] = {0, 0, 0};
  for (auto _ : state) {
    for (int pi = 0; pi < 3; ++pi) {
      core::ClusterOptions opts;
      opts.workers = 2;
      opts.l1 = {2 * kMp, 8};  // holds one heavy working set, not two
      opts.llc_words = 32 * kMp;
      opts.llc_shards = 2;
      opts.placement = kPlacements[pi];
      opts.cost_model = "llc-shared";
      core::Cluster cluster(opts);
      core::StreamOptions sopts;
      sopts.engine.per_node_attribution = false;
      for (std::int32_t t = 0; t < 4; ++t) {
        const bool is_heavy = t % 2 == 0;
        cluster.admit((is_heavy ? "heavy-" : "light-") + std::to_string(t),
                      is_heavy ? heavy : light,
                      is_heavy ? heavy_p : light_p, sopts, kMp);
      }
      for (std::int64_t tick = 0; tick < kSpreadTicks; ++tick) {
        for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
          cluster.push(t, t % 2 == 0 ? 8 : 4);
        }
        cluster.run_until_idle();
      }
      cluster.drain_all();
      const auto report = cluster.report();
      outputs += report.aggregate.sink_firings;
      if (pi == 2) migrated = report.auto_migrations;
      p95[pi] = report.aggregate.latency.p95();
      p99[pi] = report.aggregate.latency.p99();
    }
  }
  state.SetItemsProcessed(outputs);
  state.SetLabel("llc-shared");
  state.counters["auto_migrations"] = static_cast<double>(migrated);
  state.counters["p99_round_robin"] = static_cast<double>(p99[0]);
  state.counters["p99_affinity"] = static_cast<double>(p99[1]);
  state.counters["p99_adaptive"] = static_cast<double>(p99[2]);
  state.counters["p95_spread"] =
      static_cast<double>(*std::max_element(p95, p95 + 3) -
                          *std::min_element(p95, p95 + 3));
  state.counters["p99_spread"] =
      static_cast<double>(*std::max_element(p99, p99 + 3) -
                          *std::min_element(p99, p99 + 3));
}
BENCHMARK(BM_PlacementP99Spread)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
