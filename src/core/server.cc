#include "core/server.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::core {

namespace {

/// Fair timesharing: rotate through runnable tenants in id order, resuming
/// after the last pick.
class RoundRobinPolicy final : public TenantPolicy {
 public:
  TenantId pick(const std::vector<TenantStatus>& runnable) override {
    // First runnable id strictly greater than the last pick, else wrap.
    const TenantStatus* best = nullptr;
    const TenantStatus* lowest = nullptr;
    for (const TenantStatus& t : runnable) {
      if (lowest == nullptr || t.id < lowest->id) lowest = &t;
      if (t.id > last_ && (best == nullptr || t.id < best->id)) best = &t;
    }
    last_ = (best != nullptr ? best : lowest)->id;
    return last_;
  }

 private:
  TenantId last_ = kNoTenant;
};

/// Cache affinity: keep running the tenant whose last step missed least per
/// firing (its working set is the one currently resident), ties broken by
/// lowest id so the rule is deterministic.
class MissAwarePolicy final : public TenantPolicy {
 public:
  TenantId pick(const std::vector<TenantStatus>& runnable) override {
    const TenantStatus* best = nullptr;
    for (const TenantStatus& t : runnable) {
      if (best == nullptr || t.last_miss_rate < best->last_miss_rate ||
          (t.last_miss_rate == best->last_miss_rate && t.id < best->id)) {
        best = &t;
      }
    }
    return best->id;
  }
};

}  // namespace

TenantRegistry& TenantRegistry::global() {
  static TenantRegistry instance;
  static const bool initialized = (register_builtin_tenant_policies(instance), true);
  (void)initialized;
  return instance;
}

void register_builtin_tenant_policies(TenantRegistry& r) {
  r.add("round-robin", {[] { return std::make_unique<RoundRobinPolicy>(); },
                        "fair timesharing: rotate through runnable tenants in id order"});
  r.add("miss-aware", {[] { return std::make_unique<MissAwarePolicy>(); },
                       "cache affinity: prefer the tenant whose last step missed least "
                       "per firing"});
}

Server::Server(ServerOptions options, const TenantRegistry* registry)
    : options_(std::move(options)) {
  validate_cache_geometry(options_.cache);
  const TenantRegistry& reg = registry != nullptr ? *registry : TenantRegistry::global();
  policy_ = reg.find(options_.tenant_policy).build();
  cache_ = std::make_unique<iomodel::LruCache>(options_.cache);
  baseline_ = cache_->stats();
}

TenantId Server::admit(std::string name, const sdf::SdfGraph& g,
                       const partition::Partition& p, StreamOptions options,
                       std::int64_t m) {
  CCS_EXPECTS(!name.empty(), "tenant name must be non-empty");
  CCS_EXPECTS(m >= 0, "tenant cache share must be non-negative");
  for (const Tenant& t : tenants_) {
    if (t.name == name) throw Error("tenant '" + name + "' is already admitted");
  }
  // Each tenant gets its own 2^36-word band of the simulated address space:
  // co-resident programs must *contend* for cache blocks, not alias them.
  // The bands below the engine's external-stream regions bound the fleet.
  if (tenants_.size() >= 16) {
    throw Error("server is full: at most 16 tenants per shared cache");
  }
  options.engine.address_base =
      static_cast<std::int64_t>(tenants_.size()) * (std::int64_t{1} << 36);
  Tenant t;
  t.name = std::move(name);
  t.stream = std::make_unique<Stream>(
      g, p, *cache_, m > 0 ? m : options_.cache.capacity_words, std::move(options));
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

TenantId Server::admit(std::string name, const Planner& planner, const Plan& plan,
                       StreamOptions options) {
  return admit(std::move(name), planner.graph(), plan.partition, std::move(options));
}

Server::Tenant& Server::tenant(TenantId id) {
  CCS_EXPECTS(id >= 0 && id < tenant_count(), "tenant id out of range");
  return tenants_[static_cast<std::size_t>(id)];
}

const Server::Tenant& Server::tenant(TenantId id) const {
  CCS_EXPECTS(id >= 0 && id < tenant_count(), "tenant id out of range");
  return tenants_[static_cast<std::size_t>(id)];
}

Stream& Server::stream(TenantId id) { return *tenant(id).stream; }

const Stream& Server::stream(TenantId id) const { return *tenant(id).stream; }

const std::string& Server::tenant_name(TenantId id) const { return tenant(id).name; }

std::int64_t Server::push(TenantId id, std::int64_t items) {
  Tenant& t = tenant(id);
  const std::int64_t accepted = t.stream->push(items);
  if (accepted > 0) t.idle = false;  // new arrivals may unblock the session
  return accepted;
}

TenantId Server::step() {
  // Offer every not-known-idle tenant; a pick that turns out blocked is
  // marked idle and the offer repeats, so one step() call either progresses
  // some tenant or proves the whole server idle.
  std::vector<TenantStatus> runnable;
  runnable.reserve(tenants_.size());
  for (;;) {
    runnable.clear();
    for (TenantId id = 0; id < tenant_count(); ++id) {
      const Tenant& t = tenants_[static_cast<std::size_t>(id)];
      if (t.idle) continue;
      TenantStatus s;
      s.id = id;
      s.pending_inputs = t.stream->pending_inputs();
      s.outputs = t.stream->outputs_produced();
      s.steps = t.stream->steps();
      s.last_miss_rate = t.last_miss_rate;
      runnable.push_back(s);
    }
    if (runnable.empty()) return kNoTenant;

    const TenantId id = policy_->pick(runnable);
    CCS_CHECK(id >= 0 && id < tenant_count(), "tenant policy picked an invalid id");
    Tenant& t = tenants_[static_cast<std::size_t>(id)];
    const StepResult r = t.stream->step();
    if (!r.progressed()) {
      t.idle = true;
      continue;
    }
    t.last_miss_rate = r.run.firings > 0 ? static_cast<double>(r.run.cache.misses) /
                                               static_cast<double>(r.run.firings)
                                         : 0.0;
    ++steps_;
    return id;
  }
}

std::int64_t Server::run_until_idle() {
  std::int64_t executed = 0;
  while (step() != kNoTenant) ++executed;
  return executed;
}

void Server::drain_all() {
  for (Tenant& t : tenants_) {
    t.stream->drain();
    t.idle = true;
  }
}

ServerReport Server::report() const {
  ServerReport report;
  report.steps = steps_;
  for (const Tenant& t : tenants_) {
    TenantReport row;
    row.name = t.name;
    row.totals = t.stream->stats();
    row.steps = t.stream->steps();
    row.outputs = t.stream->outputs_produced();
    report.aggregate += row.totals;
    report.tenants.push_back(std::move(row));
  }
  const iomodel::CacheStats& now = cache_->stats();
  report.shared_cache.accesses = now.accesses - baseline_.accesses;
  report.shared_cache.hits = now.hits - baseline_.hits;
  report.shared_cache.misses = now.misses - baseline_.misses;
  report.shared_cache.writebacks = now.writebacks - baseline_.writebacks;
  return report;
}

}  // namespace ccs::core
