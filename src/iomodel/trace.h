// Access-trace recording: a CacheSim decorator that forwards to an inner
// cache while appending every touched address to a trace. Feeds OPT
// comparisons and debugging.
//
// Bulk accesses record one address per touched block (the block's first
// word); to_block_trace() maps either form to the same block trace, so OPT
// comparisons are unaffected by which API produced the recording.
#pragma once

#include <vector>

#include "iomodel/cache.h"

namespace ccs::iomodel {

/// Records the word-address stream while delegating to an inner cache.
class RecordingCache final : public CacheSim {
 public:
  /// Does not own `inner`; it must outlive this object.
  explicit RecordingCache(CacheSim& inner)
      : CacheSim(inner.config().block_words), inner_(&inner) {}

  void access(Addr addr, AccessMode mode) override {
    trace_.push_back(addr);
    inner_->access(addr, mode);
  }
  void flush() override { inner_->flush(); }
  bool contains(Addr addr) const override { return inner_->contains(addr); }
  const CacheStats& stats() const override { return inner_->stats(); }
  const CacheConfig& config() const override { return inner_->config(); }

  const std::vector<Addr>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override {
    const std::int64_t block = block_words();
    for (BlockId b = first, e = first + count; b != e; ++b) trace_.push_back(b * block);
    inner_->access_blocks(first, count, mode);
  }

 private:
  CacheSim* inner_;
  std::vector<Addr> trace_;
};

}  // namespace ccs::iomodel
