// Legacy one-call facade over the session API.
//
// The supported public surface is the session API in this directory:
//   core::Planner     (core/planner.h)    -- plan one graph, one session
//   core::Experiment  (core/experiment.h) -- sweep scenario grids in parallel
//   partition::Registry / schedule::Registry / workloads::Registry
//                                         -- name-addressed strategies
//
// The free functions below predate it. `core::plan` survives as a thin shim
// over `Planner` for one-shot callers; prefer constructing a Planner when
// you plan the same graph more than once (construction caches validation and
// the gain analysis). `core::simulate` remains the single-run measurement
// primitive (Experiment uses it per sweep cell).
//
//   using namespace ccs;
//   core::PlannerOptions opts;
//   opts.cache.capacity_words = 32 * 1024;
//   core::Plan plan = core::plan(graph, opts);   // == Planner(graph, opts).plan()
//   runtime::RunResult r = core::simulate(graph, plan.schedule, opts.cache,
//                                         /*target_outputs=*/100000);
//   std::cout << r.misses_per_input() << " vs predicted "
//             << plan.predicted.misses_per_input << "\n";
#pragma once

#include <cstdint>

#include "core/planner.h"
#include "iomodel/types.h"
#include "runtime/engine.h"
#include "runtime/run_result.h"
#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::core {

/// Legacy shim: builds a complete plan in one call, equal in every field to
/// `Planner(g, options).plan()`. Throws GraphError/RateError for graphs
/// outside the paper's model, MemoryError for a degenerate cache geometry,
/// ccs::Error for an unknown partitioner name (the message lists the valid
/// registry keys) and when no c-bounded partition exists.
Plan plan(const sdf::SdfGraph& g, const PlannerOptions& options);

/// Executes a schedule (any scheduler's) on a fresh fully-associative LRU
/// cache of the given geometry until at least `target_outputs` sink firings,
/// returning accumulated counters. Throws MemoryError for a degenerate
/// cache geometry (same check as plan).
runtime::RunResult simulate(const sdf::SdfGraph& g, const schedule::Schedule& s,
                            const iomodel::CacheConfig& cache_config,
                            std::int64_t target_outputs,
                            runtime::EngineOptions engine_options = {});

}  // namespace ccs::core
