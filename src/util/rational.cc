#include "util/rational.h"

#include <limits>
#include <ostream>

namespace ccs {

namespace {

Int128 gcd128(Int128 a, Int128 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

constexpr Int128 kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr Int128 kI64Max = std::numeric_limits<std::int64_t>::max();

}  // namespace

Rational Rational::from_i128(Int128 num, Int128 den) {
  if (den == 0) throw RateError("rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) return Rational();
  const Int128 g = gcd128(num, den);
  num /= g;
  den /= g;
  if (num < kI64Min || num > kI64Max || den > kI64Max) {
    throw OverflowError("rational overflow after normalization");
  }
  Rational r;
  r.num_ = static_cast<std::int64_t>(num);
  r.den_ = static_cast<std::int64_t>(den);
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(0), den_(1) {
  *this = from_i128(num, den);
}

std::int64_t Rational::floor() const noexcept {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

std::int64_t Rational::ceil() const noexcept {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

Rational Rational::reciprocal() const {
  if (num_ == 0) throw RateError("reciprocal of zero");
  return from_i128(den_, num_);
}

Rational Rational::operator-() const { return from_i128(-static_cast<Int128>(num_), den_); }

Rational& Rational::operator+=(const Rational& rhs) {
  *this = from_i128(static_cast<Int128>(num_) * rhs.den_ +
                        static_cast<Int128>(rhs.num_) * den_,
                    static_cast<Int128>(den_) * rhs.den_);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  *this = from_i128(static_cast<Int128>(num_) * rhs.den_ -
                        static_cast<Int128>(rhs.num_) * den_,
                    static_cast<Int128>(den_) * rhs.den_);
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  *this = from_i128(static_cast<Int128>(num_) * rhs.num_,
                    static_cast<Int128>(den_) * rhs.den_);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) throw RateError("division of rational by zero");
  *this = from_i128(static_cast<Int128>(num_) * rhs.den_,
                    static_cast<Int128>(den_) * rhs.num_);
  return *this;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) noexcept {
  const Int128 lhs = static_cast<Int128>(a.num_) * b.den_;
  const Int128 rhs = static_cast<Int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.to_string(); }

}  // namespace ccs
