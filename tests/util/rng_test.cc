#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformCoversFullRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

}  // namespace
}  // namespace ccs
