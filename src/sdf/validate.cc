#include "sdf/validate.h"

#include <sstream>

#include "sdf/gain.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::sdf {

std::vector<std::string> validate(const SdfGraph& g, const ValidationOptions& opts) {
  std::vector<std::string> problems;
  if (g.node_count() == 0) {
    problems.push_back("graph has no modules");
    return problems;
  }
  if (!is_acyclic(g)) {
    problems.push_back("graph contains a directed cycle");
    return problems;  // everything downstream assumes a dag
  }
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  if (opts.require_single_source && sources.size() != 1) {
    problems.push_back("expected exactly one source, found " + std::to_string(sources.size()));
  }
  if (opts.require_single_sink && sinks.size() != 1) {
    problems.push_back("expected exactly one sink, found " + std::to_string(sinks.size()));
  }
  if (opts.max_module_state > 0) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (g.node(v).state > opts.max_module_state) {
        problems.push_back("module '" + g.node(v).name + "' state " +
                           std::to_string(g.node(v).state) + " exceeds cache size " +
                           std::to_string(opts.max_module_state));
      }
    }
  }
  if (opts.require_rate_matched && sources.size() == 1) {
    try {
      GainMap gains(g);
    } catch (const Error& e) {
      problems.push_back(e.what());
    }
  }
  return problems;
}

void validate_or_throw(const SdfGraph& g, const ValidationOptions& opts) {
  const auto problems = validate(g, opts);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid streaming graph (" << problems.size() << " problem(s)):";
  for (const auto& p : problems) os << "\n  - " << p;
  throw GraphError(os.str());
}

}  // namespace ccs::sdf
