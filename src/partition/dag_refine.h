// Move-based local refinement of dag partitions.
//
// FM-style hill climbing: repeatedly move a single module into a different
// component when the move (a) keeps every component within the state bound,
// (b) keeps the partition well ordered, and (c) strictly reduces bandwidth.
// Empty components left behind by moves are compacted away. This is the
// "heuristic graph partitioner" avenue the paper's conclusion points to
// [10, 14]; Corollary 9 turns any alpha-approximate bandwidth into an
// O(alpha)-competitive schedule, so better heuristics translate directly
// into better schedules.
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::partition {

/// Refinement knobs.
struct RefineOptions {
  std::int64_t state_bound = 0;   ///< c*M; components must stay within it.
  std::int32_t max_passes = 32;   ///< Full sweeps over all modules.
  bool allow_new_components = false;  ///< Permit splitting a module into a
                                      ///< fresh singleton component when that
                                      ///< lowers bandwidth.
};

/// Improves `p` in place semantics (returns the refined copy). The result is
/// always valid: well ordered, bounded by options.state_bound, and with
/// bandwidth <= bandwidth(p).
Partition refine_partition(const sdf::SdfGraph& g, const Partition& p,
                           const RefineOptions& options);

}  // namespace ccs::partition
