// Shared helpers for the experiment harness (e01..e12).
//
// Every experiment binary prints one or more ccs::Table blocks to stdout and
// exits 0; `for b in build/bench/*; do $b; done` regenerates every table in
// EXPERIMENTS.md. Binaries accept no required arguments so the sweep is
// hands-off; optional --csv switches the output format.
#pragma once

#include <iostream>
#include <string>

#include "core/scheduler.h"
#include "schedule/schedule.h"
#include "util/table.h"

namespace ccs::bench {

/// Simulates `s` on a fresh LRU cache until `outputs` sink firings.
inline runtime::RunResult run(const sdf::SdfGraph& g, const schedule::Schedule& s,
                              std::int64_t cache_words, std::int64_t block_words,
                              std::int64_t outputs) {
  return core::simulate(g, s, iomodel::CacheConfig{cache_words, block_words}, outputs);
}

/// Prints a table, honoring a --csv flag in argv.
inline void emit(const Table& t, int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  if (csv) t.print_csv(std::cout);
  else t.print(std::cout);
  std::cout << "\n";
}

/// Formats a ratio column defensively (divide-by-zero -> "-").
inline std::string safe_ratio(double num, double den, int precision = 2) {
  if (den <= 0.0) return "-";
  return Table::ratio(num / den, precision);
}

}  // namespace ccs::bench
