#include "schedule/dynamic.h"

#include <algorithm>
#include <vector>

#include "schedule/token_sim.h"
#include "sdf/gain.h"
#include "sdf/min_buffer.h"
#include "sdf/repetition.h"
#include "sdf/topology.h"
#include "util/error.h"
#include "util/int_math.h"

namespace ccs::schedule {

namespace {

/// Greedy chain/topological sweeps with the source capped at `source_limit`
/// lifetime firings; records into `period`; returns when no module can fire.
void drain_sweeps(TokenSim& sim, const std::vector<sdf::NodeId>& order, sdf::NodeId source,
                  std::int64_t source_limit, std::vector<sdf::NodeId>& period) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const sdf::NodeId v : order) {
      std::int64_t limit = std::numeric_limits<std::int64_t>::max();
      if (v == source) {
        limit = source_limit - sim.fired(v);
        if (limit <= 0) continue;
      }
      const std::int64_t batch = sim.max_batch(v, limit);
      if (batch > 0) {
        sim.fire(v, batch);
        period.insert(period.end(), static_cast<std::size_t>(batch), v);
        progressed = true;
      }
    }
  }
}

}  // namespace

Schedule dynamic_pipeline_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                   std::int64_t m, std::int64_t min_outputs) {
  CCS_EXPECTS(m > 0 && min_outputs > 0, "invalid dynamic schedule parameters");
  const auto chain = sdf::pipeline_order(g);  // throws if not a pipeline
  if (!partition::is_well_ordered(g, p)) {
    throw Error("dynamic scheduling requires a well-ordered partition");
  }
  const partition::Partition topo_p = partition::renumber_topological(g, p);
  const sdf::RepetitionVector reps(g);
  const std::int64_t k = topo_p.num_components;

  // Segments must be contiguous runs of the chain (true for any well-ordered
  // pipeline partition); record each component's member order and its
  // incoming/outgoing cross edge.
  std::vector<std::vector<sdf::NodeId>> members(static_cast<std::size_t>(k));
  for (const sdf::NodeId v : chain) {
    members[static_cast<std::size_t>(topo_p.comp(v))].push_back(v);
  }
  std::vector<sdf::EdgeId> cross;  // cross[i] = edge from comp i to comp i+1
  for (std::int64_t i = 0; i + 1 < k; ++i) {
    const sdf::NodeId last = members[static_cast<std::size_t>(i)].back();
    CCS_CHECK(!g.out_edges(last).empty(), "non-final segment must continue the chain");
    const sdf::EdgeId e = g.out_edges(last).front();
    CCS_CHECK(topo_p.comp(g.edge(e).dst) == i + 1,
              "pipeline partition must be contiguous segments");
    cross.push_back(e);
  }

  Schedule out;
  out.name = "dynamic-pipeline";
  const auto internal = sdf::feasible_buffers(g);
  out.buffer_caps = internal;
  for (const sdf::EdgeId e : cross) {
    const sdf::Edge& edge = g.edge(e);
    out.buffer_caps[static_cast<std::size_t>(e)] =
        std::max(m, sdf::edge_min_buffer(edge.out_rate, edge.in_rate) * 2);
  }

  TokenSim sim(g, out.buffer_caps);
  const sdf::NodeId source = chain.front();
  const sdf::NodeId sink = chain.back();

  // The source's component has no input cross edge, so "run until the input
  // empties" never triggers for it; cap its firings at the whole-run demand
  // (enough steady-state iterations to cover min_outputs) or the loop would
  // never block when the partition has a single component.
  const std::int64_t src_cap =
      checked_mul(ceil_div(min_outputs, reps.count(sink)) + 1, reps.count(source));

  // Executes component c until its input cross edge is exhausted or its
  // output cross edge is full (the paper's run-to-blocking rule).
  auto execute_component = [&](std::int64_t c) -> std::int64_t {
    std::int64_t fired_total = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
        std::int64_t limit = std::numeric_limits<std::int32_t>::max();
        if (v == source) {
          limit = src_cap - sim.fired(v);
          if (limit <= 0) continue;
        }
        const std::int64_t batch = sim.max_batch(v, limit);
        if (batch > 0) {
          sim.fire(v, batch);
          out.period.insert(out.period.end(), static_cast<std::size_t>(batch), v);
          fired_total += batch;
          progressed = true;
        }
      }
    }
    return fired_total;
  };

  // Fill phase: the continuity rule. Scan cross edges in order; the first
  // at-most-half-full edge designates its upstream component; if none
  // qualifies, the sink's component runs (its output is always "empty").
  while (sim.fired(sink) < min_outputs) {
    std::int64_t chosen = k - 1;
    for (std::size_t i = 0; i < cross.size(); ++i) {
      const sdf::EdgeId e = cross[i];
      if (sim.tokens(e) * 2 <= sim.capacity(e)) {
        chosen = static_cast<std::int64_t>(i);
        break;
      }
    }
    if (execute_component(chosen) > 0) continue;
    // The idealized rule assumes an infinite input stream; once the source
    // hits its cap near the end of the run, push the in-flight tokens
    // through whichever component can still move.
    bool progressed = false;
    for (std::int64_t c = 0; c < k && !progressed; ++c) {
      progressed = execute_component(c) > 0;
    }
    if (!progressed) {
      throw DeadlockError("dynamic pipeline scheduler made no progress");
    }
  }

  // Align the source on a whole number of steady-state iterations, then
  // drain so the period is repeatable.
  const std::int64_t src_target =
      ceil_div(sim.fired(source), reps.count(source)) * reps.count(source);
  drain_sweeps(sim, chain, source, src_target, out.period);
  if (!sim.drained()) {
    throw DeadlockError("dynamic pipeline schedule failed to drain");
  }
  out.inputs_per_period = sim.fired(source);
  out.outputs_per_period = sim.fired(sink);
  return out;
}

Schedule dynamic_homogeneous_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                      std::int64_t m, std::int64_t min_outputs) {
  CCS_EXPECTS(m > 0 && min_outputs > 0, "invalid dynamic schedule parameters");
  if (!g.is_homogeneous()) {
    throw Error("dynamic homogeneous scheduling requires unit rates everywhere");
  }
  if (!partition::is_well_ordered(g, p)) {
    throw Error("dynamic scheduling requires a well-ordered partition");
  }
  const partition::Partition topo_p = partition::renumber_topological(g, p);
  const auto global_topo = sdf::topological_sort(g);
  const std::int64_t k = topo_p.num_components;

  std::vector<std::vector<sdf::NodeId>> members(static_cast<std::size_t>(k));
  for (const sdf::NodeId v : global_topo) {
    members[static_cast<std::size_t>(topo_p.comp(v))].push_back(v);
  }

  Schedule out;
  out.name = "dynamic-homog";
  out.buffer_caps.assign(static_cast<std::size_t>(g.edge_count()), 1);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (topo_p.comp(g.edge(e).src) != topo_p.comp(g.edge(e).dst)) {
      out.buffer_caps[static_cast<std::size_t>(e)] = m;
    }
  }

  TokenSim sim(g, out.buffer_caps);
  const sdf::NodeId source = g.sources().front();
  const sdf::NodeId sink = g.sinks().front();

  auto schedulable = [&](std::int64_t c) {
    for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
      for (const sdf::EdgeId e : g.in_edges(v)) {
        if (topo_p.comp(g.edge(e).src) != c && sim.tokens(e) < m) return false;
      }
      for (const sdf::EdgeId e : g.out_edges(v)) {
        if (topo_p.comp(g.edge(e).dst) != c && sim.tokens(e) != 0) return false;
      }
    }
    return true;
  };

  // Execute = m local iterations, each one topological pass over members.
  auto execute_component = [&](std::int64_t c) {
    for (std::int64_t iter = 0; iter < m; ++iter) {
      for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
        sim.fire(v, 1);
        out.period.push_back(v);
      }
    }
  };

  while (sim.fired(sink) < min_outputs) {
    std::int64_t chosen = -1;
    for (std::int64_t c = 0; c < k; ++c) {
      if (schedulable(c)) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) {
      throw DeadlockError(
          "no schedulable component; homogeneity should guarantee one exists");
    }
    execute_component(chosen);
  }

  // Drain: source already fired an exact number of batches. Drain
  // component-major (run each component to exhaustion before moving on) so
  // every component's state is loaded O(1) times, not once per global
  // sweep -- a global module-by-module sweep would thrash all state on
  // every lap.
  bool draining = true;
  while (draining) {
    draining = false;
    for (std::int64_t c = 0; c < k; ++c) {
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
          if (v == source) continue;  // no new inputs while draining
          const std::int64_t batch =
              sim.max_batch(v, std::numeric_limits<std::int64_t>::max());
          if (batch > 0) {
            sim.fire(v, batch);
            out.period.insert(out.period.end(), static_cast<std::size_t>(batch), v);
            progressed = true;
            draining = true;
          }
        }
      }
    }
  }
  if (!sim.drained()) {
    throw DeadlockError("dynamic homogeneous schedule failed to drain");
  }
  out.inputs_per_period = sim.fired(source);
  out.outputs_per_period = sim.fired(sink);
  return out;
}

}  // namespace ccs::schedule
