// Adaptive footprint-driven placement -- the differential-test harness.
//
// The acceptance properties this file pins:
//  * "adaptive" with migration disabled (never-fire thresholds) is
//    decision-for-decision identical to "affinity": per-tenant counters,
//    placements, migrations, LLC statistics, rounds, makespan -- across
//    several arrival patterns (the differential baseline);
//  * with active thresholds, migrations change only cache traffic: firings,
//    source/sink firings, steps, and outputs are conserved against the
//    never-migrated run (placement is invisible to the dataflow);
//  * adaptive runs keep both determinism gates: repeat runs are
//    counter-identical down to the shared LLC, and thread mode matches
//    virtual time per tenant at 1/2/4 workers;
//  * an oversubscribed worker actually sheds hot sessions (auto_migrations
//    fires, hot tenants end up spread out);
//  * Cluster::migrate edge cases: a move to the current worker is a counted
//    no-op, an unknown tenant id throws ccs::Error naming the live tenants,
//    and rebalance() on an empty cluster returns 0;
//  * placement::FootprintEstimator's seed/correct/classify arithmetic.

#include "core/cluster.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "partition/pipeline_dp.h"
#include "placement/footprint.h"
#include "util/error.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace ccs::core {
namespace {

using iomodel::CacheConfig;

struct Scenario {
  std::vector<std::pair<std::string, sdf::SdfGraph>> tenants;
  std::vector<partition::Partition> partitions;
};

/// Two pipeline shapes x2, planned once for a 1024-word share -- the same
/// mix cluster_test.cc serves, so the differential gate runs on familiar
/// ground.
Scenario four_tenant_scenario() {
  Scenario s;
  s.tenants.emplace_back("uniform-0", workloads::uniform_pipeline(10, 150));
  s.tenants.emplace_back("tail-1", workloads::heavy_tail_pipeline(12, 32, 400, 4));
  s.tenants.emplace_back("uniform-2", workloads::uniform_pipeline(10, 150));
  s.tenants.emplace_back("fat-3", workloads::uniform_pipeline(5, 500));
  for (const auto& [name, g] : s.tenants) {
    s.partitions.push_back(partition::pipeline_optimal_partition(g, 3 * 1024).partition);
  }
  return s;
}

ClusterOptions cluster_options(std::int32_t workers, const std::string& placement) {
  ClusterOptions opts;
  opts.workers = workers;
  opts.l1 = CacheConfig{4096, 8};
  opts.llc_words = 32768;
  opts.placement = placement;
  return opts;
}

/// Serves the scenario under `pattern` for `ticks` ticks with a rebalance
/// every other tick; `threads` picks the execution mode.
ClusterReport serve(const Scenario& s, ClusterOptions opts,
                    const workloads::ArrivalPattern& pattern, std::int64_t ticks,
                    bool threads = false) {
  Cluster cluster(std::move(opts));
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  for (std::int64_t tick = 0; tick < ticks; ++tick) {
    for (TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, pattern(tick));
    }
    if (tick % 2 == 0) cluster.rebalance();
    if (threads) {
      cluster.run_threads();
    } else {
      cluster.run_until_idle();
    }
  }
  cluster.drain_all();
  return cluster.report();
}

void expect_identical_reports(const ClusterReport& a, const ClusterReport& b,
                              const std::string& label) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size()) << label;
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].totals, b.tenants[i].totals)
        << label << " tenant " << a.tenants[i].name;
    EXPECT_EQ(a.tenants[i].worker, b.tenants[i].worker) << label;
    EXPECT_EQ(a.tenants[i].migrations, b.tenants[i].migrations) << label;
  }
  EXPECT_EQ(a.aggregate, b.aggregate) << label;
  EXPECT_EQ(a.llc, b.llc) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.makespan(), b.makespan()) << label;
}

// -- the differential gate ---------------------------------------------------

TEST(AdaptivePlacement, NeverFireThresholdsAreBitIdenticalToAffinity) {
  const Scenario s = four_tenant_scenario();
  const std::vector<std::pair<std::string, workloads::ArrivalPattern>> patterns = {
      {"steady-16", workloads::steady_arrivals(16)},
      {"bursty-64", workloads::bursty_arrivals(64, 2)},
      {"on-off-8x8", workloads::on_off_arrivals(8, 8, 8)},
  };
  for (const auto& [name, pattern] : patterns) {
    ClusterOptions adaptive = cluster_options(2, "adaptive");
    adaptive.adaptive = placement::never_fire_adaptive();
    const ClusterReport a = serve(s, adaptive, pattern, 6);
    const ClusterReport b = serve(s, cluster_options(2, "affinity"), pattern, 6);
    expect_identical_reports(a, b, name);
    EXPECT_EQ(a.auto_migrations, 0) << name;  // nothing may ever fire
  }
}

// -- determinism gates -------------------------------------------------------

TEST(AdaptivePlacement, RepeatRunsAreCounterIdenticalIncludingLlc) {
  const Scenario s = four_tenant_scenario();
  const auto pattern = workloads::bursty_arrivals(96, 2);
  const ClusterReport first = serve(s, cluster_options(2, "adaptive"), pattern, 6);
  const ClusterReport again = serve(s, cluster_options(2, "adaptive"), pattern, 6);
  expect_identical_reports(first, again, "adaptive repeat");
  EXPECT_EQ(first.auto_migrations, again.auto_migrations);
  EXPECT_EQ(first.migration_noops, again.migration_noops);
}

TEST(AdaptivePlacement, ThreadModeMatchesVirtualTimePerTenant) {
  const Scenario s = four_tenant_scenario();
  const auto pattern = workloads::bursty_arrivals(96, 2);
  for (const std::int32_t workers : {1, 2, 4}) {
    const ClusterReport virtual_time =
        serve(s, cluster_options(workers, "adaptive"), pattern, 6, false);
    const ClusterReport threaded =
        serve(s, cluster_options(workers, "adaptive"), pattern, 6, true);
    ASSERT_EQ(virtual_time.tenants.size(), threaded.tenants.size());
    for (std::size_t i = 0; i < virtual_time.tenants.size(); ++i) {
      EXPECT_EQ(virtual_time.tenants[i].totals, threaded.tenants[i].totals)
          << workers << " workers, tenant " << virtual_time.tenants[i].name;
      EXPECT_EQ(virtual_time.tenants[i].worker, threaded.tenants[i].worker) << workers;
      EXPECT_EQ(virtual_time.tenants[i].migrations, threaded.tenants[i].migrations)
          << workers;
    }
    EXPECT_EQ(threaded.aggregate, virtual_time.aggregate) << workers;
    EXPECT_EQ(threaded.migrations, virtual_time.migrations) << workers;
    EXPECT_EQ(threaded.auto_migrations, virtual_time.auto_migrations) << workers;
    // Total LLC probes equal summed private misses in both modes even
    // though the hit/miss split varies under real interleaving.
    EXPECT_EQ(threaded.llc.accesses, virtual_time.llc.accesses) << workers;
  }
}

// -- the migration model -----------------------------------------------------

/// An oversubscription scenario: two sessions whose ~1600-word working sets
/// each fit a 2048-word private L1 alone but not together (and stay well
/// under the express cutoff), plus two lightweight ones. Cold admission
/// places hot-0 and hot-2 on worker 0, the lights on worker 1.
Scenario oversubscribed_scenario() {
  Scenario s;
  s.tenants.emplace_back("hot-0", workloads::uniform_pipeline(4, 400));
  s.tenants.emplace_back("cold-1", workloads::uniform_pipeline(4, 40));
  s.tenants.emplace_back("hot-2", workloads::uniform_pipeline(4, 400));
  s.tenants.emplace_back("cold-3", workloads::uniform_pipeline(4, 40));
  for (const auto& [name, g] : s.tenants) {
    s.partitions.push_back(partition::pipeline_optimal_partition(g, 3 * 1024).partition);
  }
  return s;
}

ClusterOptions tiny_l1_options(const std::string& placement) {
  ClusterOptions opts = cluster_options(2, placement);
  opts.l1 = CacheConfig{2048, 8};  // each heavy layout alone ~fills it
  opts.llc_words = 32768;
  return opts;
}

TEST(AdaptivePlacement, OversubscribedWorkerShedsHotSessions) {
  const Scenario s = oversubscribed_scenario();
  const auto pattern = workloads::steady_arrivals(48);

  // Round-robin strands both heavy tenants on worker 0 forever. Run the
  // adaptive policy on the identical admission order: after the first
  // adaptation window it must notice worker 0's hot footprints exceed the
  // L1 and shed one of them.
  Cluster cluster(tiny_l1_options("adaptive"));
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
  }
  for (std::int64_t tick = 0; tick < 8; ++tick) {
    for (TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, pattern(tick));
    }
    cluster.run_until_idle();  // adapt() runs at every entry
  }
  cluster.drain_all();
  const ClusterReport report = cluster.report();
  EXPECT_GT(report.auto_migrations, 0);
  // The two heavy sessions must not share a worker once adaptation settles.
  EXPECT_NE(report.tenants[0].worker, report.tenants[2].worker);
}

TEST(AdaptivePlacement, MigrationsConserveDataflowCounters) {
  const Scenario s = oversubscribed_scenario();
  const auto pattern = workloads::steady_arrivals(48);
  const auto run = [&](placement::AdaptiveOptions adaptive) {
    ClusterOptions opts = tiny_l1_options("adaptive");
    opts.adaptive = adaptive;
    Cluster cluster(std::move(opts));
    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
      cluster.admit(s.tenants[i].first, s.tenants[i].second, s.partitions[i], {}, 1024);
    }
    for (std::int64_t tick = 0; tick < 8; ++tick) {
      for (TenantId t = 0; t < cluster.tenant_count(); ++t) {
        cluster.push(t, pattern(tick));
      }
      cluster.run_until_idle();
    }
    cluster.drain_all();
    return cluster.report();
  };

  const ClusterReport pinned = run(placement::never_fire_adaptive());
  const ClusterReport adapted = run(placement::AdaptiveOptions{});
  ASSERT_EQ(pinned.tenants.size(), adapted.tenants.size());
  EXPECT_EQ(pinned.migrations, 0);
  EXPECT_GT(adapted.auto_migrations, 0);
  // Same arrivals, same graphs: migration may only change *cache* traffic.
  // Every dataflow counter is placement-invariant, per tenant.
  for (std::size_t i = 0; i < pinned.tenants.size(); ++i) {
    EXPECT_EQ(pinned.tenants[i].totals.firings, adapted.tenants[i].totals.firings)
        << pinned.tenants[i].name;
    EXPECT_EQ(pinned.tenants[i].totals.source_firings,
              adapted.tenants[i].totals.source_firings);
    EXPECT_EQ(pinned.tenants[i].totals.sink_firings,
              adapted.tenants[i].totals.sink_firings);
    EXPECT_EQ(pinned.tenants[i].outputs, adapted.tenants[i].outputs);
    EXPECT_EQ(pinned.tenants[i].steps, adapted.tenants[i].steps);
  }
  EXPECT_EQ(pinned.aggregate.firings, adapted.aggregate.firings);
  EXPECT_EQ(pinned.aggregate.source_firings, adapted.aggregate.source_firings);
  EXPECT_EQ(pinned.aggregate.sink_firings, adapted.aggregate.sink_firings);
  EXPECT_EQ(pinned.steps, adapted.steps);
}

// -- migrate() edge cases ----------------------------------------------------

TEST(AdaptivePlacement, MigrateToCurrentWorkerIsACountedNoop) {
  const Scenario s = four_tenant_scenario();
  Cluster cluster(cluster_options(2, "round-robin"));
  cluster.admit(s.tenants[0].first, s.tenants[0].second, s.partitions[0], {}, 1024);
  const WorkerId home = cluster.worker_of(0);
  cluster.migrate(0, home);
  cluster.migrate(0, home);
  const ClusterReport report = cluster.report();
  EXPECT_EQ(report.migrations, 0);
  EXPECT_EQ(report.tenants[0].migrations, 0);
  EXPECT_EQ(report.migration_noops, 2);
  EXPECT_EQ(cluster.worker_of(0), home);
}

TEST(AdaptivePlacement, MigrateUnknownTenantNamesTheLiveOnes) {
  const Scenario s = four_tenant_scenario();
  Cluster cluster(cluster_options(2, "round-robin"));
  cluster.admit(s.tenants[0].first, s.tenants[0].second, s.partitions[0], {}, 1024);
  cluster.admit(s.tenants[1].first, s.tenants[1].second, s.partitions[1], {}, 1024);
  try {
    cluster.migrate(9, 0);
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown tenant id 9"), std::string::npos) << what;
    EXPECT_NE(what.find("uniform-0"), std::string::npos) << what;
    EXPECT_NE(what.find("tail-1"), std::string::npos) << what;
  }
  // The worker-range contract still holds for live tenants.
  EXPECT_THROW(cluster.migrate(0, 7), ContractViolation);
}

TEST(AdaptivePlacement, RebalanceOnEmptyClusterReturnsZero) {
  for (const std::string placement :
       {"round-robin", "least-loaded", "affinity", "adaptive"}) {
    Cluster cluster(cluster_options(2, placement));
    EXPECT_EQ(cluster.rebalance(), 0) << placement;
    EXPECT_EQ(cluster.adapt(), 0) << placement;  // quiescent and empty: no-op
    EXPECT_EQ(cluster.report().migrations, 0) << placement;
  }
}

// -- the estimator's arithmetic ----------------------------------------------

TEST(FootprintEstimator, SeedsFromLayoutAndStaysColdUntilActive) {
  placement::FootprintConfig config;
  config.budget_words = 4096;
  placement::FootprintEstimator est(config);
  const std::int32_t s = est.add_session(/*layout_words=*/1000, /*state_words=*/300);
  EXPECT_EQ(est.footprint_words(s), 1000);  // the gain-analysis seed
  EXPECT_FALSE(est.hot(s));                 // nothing observed yet
  EXPECT_FALSE(est.express(s));
}

TEST(FootprintEstimator, ActiveWindowFollowsResidencyWithinBounds) {
  placement::FootprintConfig config;
  config.budget_words = 4096;
  config.min_window_accesses = 64;
  placement::FootprintEstimator est(config);
  const std::int32_t s = est.add_session(1000, 300);

  placement::FootprintObservation o;
  o.accesses = 1000;  // active window, low miss rate
  o.misses = 10;
  o.resident_words = 640;
  est.observe(s, o);
  EXPECT_TRUE(est.hot(s));
  EXPECT_EQ(est.footprint_words(s), 640);  // trusts residency
  EXPECT_EQ(est.window_miss_permille(s), 10);

  // Residency below the state floor clamps up; above the layout clamps down.
  o.accesses += 1000;
  o.misses += 10;
  o.resident_words = 100;
  est.observe(s, o);
  EXPECT_EQ(est.footprint_words(s), 300);  // state floor
  o.accesses += 1000;
  o.misses += 10;
  o.resident_words = 5000;
  est.observe(s, o);
  EXPECT_EQ(est.footprint_words(s), 1000);  // layout cap
}

TEST(FootprintEstimator, ThrashWindowSnapsBackToTheFullLayout) {
  placement::FootprintConfig config;
  config.budget_words = 4096;
  config.thrash_miss_permille = 500;
  placement::FootprintEstimator est(config);
  const std::int32_t s = est.add_session(1000, 300);
  placement::FootprintObservation o;
  o.accesses = 1000;
  o.misses = 700;        // 700 permille >= the thrash threshold
  o.resident_words = 64; // residency lies when the session cycles its span
  est.observe(s, o);
  EXPECT_EQ(est.footprint_words(s), 1000);
  EXPECT_TRUE(est.hot(s));
}

TEST(FootprintEstimator, QuietWindowsDemoteToColdAfterTheConfiguredCount) {
  placement::FootprintConfig config;
  config.budget_words = 4096;
  config.min_window_accesses = 64;
  config.cold_windows = 2;
  placement::FootprintEstimator est(config);
  const std::int32_t s = est.add_session(1000, 300);
  placement::FootprintObservation o;
  o.accesses = 1000;
  o.misses = 10;
  o.resident_words = 640;
  est.observe(s, o);
  ASSERT_TRUE(est.hot(s));
  est.observe(s, o);  // no new accesses: quiet window 1 of 2
  EXPECT_TRUE(est.hot(s));
  est.observe(s, o);  // quiet window 2 of 2: demoted
  EXPECT_FALSE(est.hot(s));
}

TEST(FootprintEstimator, ExpressSessionsAreNeverHot) {
  placement::FootprintConfig config;
  config.budget_words = 1000;
  config.express_permille = 2000;  // express beyond 2x the budget
  placement::FootprintEstimator est(config);
  const std::int32_t s = est.add_session(/*layout_words=*/5000, /*state_words=*/100);
  placement::FootprintObservation o;
  o.accesses = 10000;
  o.misses = 9000;  // thrashing: estimate snaps to the 5000-word layout
  o.resident_words = 900;
  est.observe(s, o);
  EXPECT_TRUE(est.express(s));
  EXPECT_FALSE(est.hot(s));  // too big to cache: never charged as pressure
}

TEST(FootprintEstimator, RejectsNonsenseConfigurations) {
  placement::FootprintConfig bad;
  bad.budget_words = -1;
  EXPECT_THROW(placement::FootprintEstimator{bad}, Error);
  placement::FootprintConfig est_bad;
  est_bad.thrash_miss_permille = 2000;  // a miss rate cannot exceed 1000
  EXPECT_THROW(placement::FootprintEstimator{est_bad}, Error);
}

}  // namespace
}  // namespace ccs::core
