#include "sdf/graph_stats.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "sdf/gain.h"
#include "sdf/topology.h"

namespace ccs::sdf {

GraphStats compute_stats(const SdfGraph& g) {
  GraphStats stats;
  stats.nodes = g.node_count();
  stats.edges = g.edge_count();
  stats.total_state = g.total_state();
  stats.max_state = g.max_state();
  stats.pipeline = g.is_pipeline();
  stats.homogeneous = g.is_homogeneous();
  if (g.node_count() == 0) return stats;

  // Longest-path levels give depth and a width proxy (modules per level).
  const auto order = topological_sort(g);
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId v : order) {
    for (const EdgeId e : g.out_edges(v)) {
      auto& dst = level[static_cast<std::size_t>(g.edge(e).dst)];
      dst = std::max(dst, level[static_cast<std::size_t>(v)] + 1);
    }
  }
  const std::int32_t max_level = *std::max_element(level.begin(), level.end());
  stats.depth = max_level + 1;
  std::vector<std::int32_t> per_level(static_cast<std::size_t>(max_level) + 1, 0);
  for (const std::int32_t l : level) ++per_level[static_cast<std::size_t>(l)];
  stats.width = *std::max_element(per_level.begin(), per_level.end());

  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto degree = static_cast<std::int32_t>(g.in_edges(v).size() + g.out_edges(v).size());
    stats.max_degree = std::max(stats.max_degree, degree);
  }

  const GainMap gains(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Rational& gain = gains.edge_gain(e);
    if (e == 0) {
      stats.min_edge_gain = gain;
      stats.max_edge_gain = gain;
    } else {
      stats.min_edge_gain = std::min(stats.min_edge_gain, gain);
      stats.max_edge_gain = std::max(stats.max_edge_gain, gain);
    }
  }
  return stats;
}

std::ostream& operator<<(std::ostream& os, const GraphStats& stats) {
  os << "nodes=" << stats.nodes << " edges=" << stats.edges
     << " state=" << stats.total_state << " depth=" << stats.depth
     << " width=" << stats.width << " deg=" << stats.max_degree << " gain=["
     << stats.min_edge_gain << "," << stats.max_edge_gain << "]";
  if (stats.pipeline) os << " pipeline";
  if (stats.homogeneous) os << " homogeneous";
  return os;
}

}  // namespace ccs::sdf
