#include "partition/partition.h"

#include <gtest/gtest.h>

#include "sdf/gain.h"
#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::partition {
namespace {

using sdf::NodeId;
using sdf::SdfGraph;

SdfGraph diamond() {
  SdfGraph g;
  const NodeId s = g.add_node("s", 10);
  const NodeId a = g.add_node("a", 20);
  const NodeId b = g.add_node("b", 30);
  const NodeId t = g.add_node("t", 40);
  g.add_edge(s, a, 1, 1);
  g.add_edge(s, b, 1, 1);
  g.add_edge(a, t, 1, 1);
  g.add_edge(b, t, 1, 1);
  return g;
}

TEST(Partition, FromComponentsRoundTrip) {
  const auto g = diamond();
  const auto p = Partition::from_components(g, {{0, 1}, {2, 3}});
  EXPECT_EQ(p.num_components, 2);
  EXPECT_EQ(p.comp(0), 0);
  EXPECT_EQ(p.comp(1), 0);
  EXPECT_EQ(p.comp(2), 1);
  EXPECT_EQ(p.comp(3), 1);
  const auto comps = p.components();
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{2, 3}));
}

TEST(Partition, FromComponentsRejectsBadCovers) {
  const auto g = diamond();
  EXPECT_THROW(Partition::from_components(g, {{0, 1}, {1, 2, 3}}), Error);  // overlap
  EXPECT_THROW(Partition::from_components(g, {{0, 1}, {2}}), Error);        // missing 3
  EXPECT_THROW(Partition::from_components(g, {{0, 1, 2, 3}, {}}), Error);   // empty comp
}

TEST(Partition, SingletonsAndWhole) {
  const auto g = diamond();
  const auto s = Partition::singletons(g);
  EXPECT_EQ(s.num_components, 4);
  EXPECT_TRUE(is_well_ordered(g, s));
  const auto w = Partition::whole(g);
  EXPECT_EQ(w.num_components, 1);
  EXPECT_TRUE(is_well_ordered(g, w));
}

TEST(Partition, BandwidthCountsCrossEdgeGains) {
  const auto g = diamond();
  const sdf::GainMap gains(g);
  // {s,a} | {b,t}: cross edges s->b (gain 1) and a->t (gain 1).
  const auto p = Partition::from_components(g, {{0, 1}, {2, 3}});
  EXPECT_EQ(bandwidth(g, gains, p), Rational(2));
  // Whole graph: no cross edges.
  EXPECT_EQ(bandwidth(g, gains, Partition::whole(g)), Rational(0));
  // Singletons: all 4 edges cross.
  EXPECT_EQ(bandwidth(g, gains, Partition::singletons(g)), Rational(4));
}

TEST(Partition, BandwidthWeighsGains) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(s, a, 4, 1);  // edge gain 4
  g.add_edge(a, b, 1, 2);  // a fires 4 times/source firing, emits 4 -> gain 4
  const sdf::GainMap gains(g);
  const auto p = Partition::from_components(g, {{0}, {1}, {2}});
  EXPECT_EQ(bandwidth(g, gains, p), Rational(8));
}

TEST(Partition, ComponentStatesAndMax) {
  const auto g = diamond();
  const auto p = Partition::from_components(g, {{0, 1}, {2, 3}});
  EXPECT_EQ(component_states(g, p), (std::vector<std::int64_t>{30, 70}));
  EXPECT_EQ(max_component_state(g, p), 70);
  EXPECT_TRUE(is_bounded(g, p, 70));
  EXPECT_FALSE(is_bounded(g, p, 69));
}

TEST(Partition, Degrees) {
  const auto g = diamond();
  const auto p = Partition::from_components(g, {{0, 1}, {2, 3}});
  EXPECT_EQ(component_degrees(g, p), (std::vector<std::int32_t>{2, 2}));
  EXPECT_EQ(max_component_degree(g, p), 2);
}

TEST(Partition, WellOrderingDetectsContractedCycle) {
  const auto g = diamond();
  // {s,t} together with a and b separate: contraction has a cycle.
  const auto bad = Partition::from_components(g, {{0, 3}, {1}, {2}});
  EXPECT_FALSE(is_well_ordered(g, bad));
  const auto good = Partition::from_components(g, {{0}, {1, 2}, {3}});
  EXPECT_TRUE(is_well_ordered(g, good));
}

TEST(Partition, ValidateCatchesCorruptAssignments) {
  const auto g = diamond();
  Partition p;
  p.num_components = 2;
  p.assignment = {0, 0, 5, 1};  // component 5 out of range
  const auto problems = validate_partition(g, p);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("outside"), std::string::npos);

  Partition q;
  q.num_components = 3;
  q.assignment = {0, 0, 1, 1};  // component 2 empty
  const auto problems2 = validate_partition(g, q);
  ASSERT_FALSE(problems2.empty());
  EXPECT_NE(problems2[0].find("empty"), std::string::npos);
}

TEST(Partition, RenumberTopologicalOrdersComponents) {
  const auto g = ccs::workloads::uniform_pipeline(6, 10);
  // Components intentionally numbered against the flow: {4,5}=0, {2,3}=1, {0,1}=2.
  const auto p = Partition::from_components(g, {{4, 5}, {2, 3}, {0, 1}});
  EXPECT_TRUE(is_well_ordered(g, p));
  const auto r = renumber_topological(g, p);
  EXPECT_EQ(r.comp(0), 0);
  EXPECT_EQ(r.comp(2), 1);
  EXPECT_EQ(r.comp(4), 2);
}

TEST(Partition, MeasureBundlesMetrics) {
  const auto g = diamond();
  const sdf::GainMap gains(g);
  const auto p = Partition::from_components(g, {{0, 1}, {2, 3}});
  const auto q = measure(g, gains, p);
  EXPECT_EQ(q.bandwidth, Rational(2));
  EXPECT_EQ(q.max_state, 70);
  EXPECT_EQ(q.max_degree, 2);
  EXPECT_EQ(q.num_components, 2);
  EXPECT_TRUE(q.well_ordered);
}

}  // namespace
}  // namespace ccs::partition
