// Greedy topological packing for general dags.
//
// Walks the modules in topological order and packs consecutive runs into
// components of total state at most `state_bound`. Components are intervals
// of a topological order, so every edge points from a component to itself or
// a later one: the partition is well ordered by construction. Quality is
// modest (it ignores gains); dag_refine improves it and dag_exact provides
// the optimum for small graphs.
//
// A gain-aware variant breaks components preferentially at low-gain edges:
// when a component must be closed, it retreats the boundary to the cheapest
// cut seen since the component opened (the chain analogue of Theorem 5's
// gain-minimizing cut, generalized to the dag's topological order).
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::partition {

/// Plain first-fit packing along a topological order.
Partition dag_greedy_partition(const sdf::SdfGraph& g, std::int64_t state_bound);

/// Packing that retreats each component boundary to the position whose
/// crossing gain is smallest (boundary cost = total gain of edges crossing
/// that topological cut). Often substantially lower bandwidth on multirate
/// graphs at the same asymptotic cost O(V * E).
Partition dag_greedy_gain_partition(const sdf::SdfGraph& g, std::int64_t state_bound);

}  // namespace ccs::partition
