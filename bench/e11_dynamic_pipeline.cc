// E11 -- dynamic (online) scheduling matches static batching (Sections 3-4).
//
// The dynamic pipeline scheduler fixes no output count in advance, choosing
// components by the half-full/half-empty rule. Across random pipelines,
// compare its misses to the static batch schedule built from the same
// partition. Expected shape: ratio ~1 (the paper: the batch schedules "can
// be easily transformed into dynamic schedules" with the same bounds) and
// no deadlocks anywhere.

#include "bench/common.h"
#include "partition/pipeline_dp.h"
#include "schedule/dynamic.h"
#include "schedule/partitioned.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t outputs = 4096;
  Rng rng(1111);

  Table t("E11: static batch vs dynamic pipeline scheduling (M=512, B=8, sim 8M)");
  t.set_header({"seed", "segments", "static misses/out", "dynamic misses/out", "dyn/static"});
  for (int seed = 0; seed < 6; ++seed) {
    Rng trial = rng.fork();
    const auto g = workloads::random_pipeline(20, 64, 300, 3, trial);
    const auto dp = partition::pipeline_optimal_partition(g, 3 * m);
    schedule::PartitionedOptions sopts;
    sopts.m = m;
    const auto stat = schedule::partitioned_schedule(g, dp.partition, sopts);
    const auto dyn = schedule::dynamic_pipeline_schedule(g, dp.partition, m, outputs);
    const auto r_stat = bench::run(g, stat, 8 * m, b, outputs);
    const auto r_dyn = bench::run(g, dyn, 8 * m, b, outputs);
    t.add_row({Table::num(static_cast<std::int64_t>(seed)),
               Table::num(static_cast<std::int64_t>(dp.partition.num_components)),
               Table::num(r_stat.misses_per_output(), 3),
               Table::num(r_dyn.misses_per_output(), 3),
               bench::safe_ratio(r_dyn.misses_per_output(), r_stat.misses_per_output())});
  }
  bench::emit(t, argc, argv);
  return 0;
}
