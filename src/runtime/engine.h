// Streaming execution engine over the simulated cache.
//
// The engine owns the memory layout (state regions and channel ring buffers)
// and executes module firings against a CacheSim, enforcing SDF semantics:
// a firing consumes in(u,v) tokens from every input channel, scans the
// module's state, and produces out(v,w) tokens on every output channel.
// Underflow/overflow throw ScheduleError -- a schedule that violates buffer
// bounds is a scheduler bug, not a runtime condition.
//
// The source module additionally streams words from an unbounded external
// input region and the sink streams words to an external output region
// (the paper's "designated channels" into and out of the application);
// these sequential streams cost ~1/B misses per word for *every* scheduler
// and never interfere with partitioning decisions.
//
// Two driving modes:
//  * Batch: run(firings) validates a whole materialized sequence once and
//    replays it -- the classic schedule-then-measure workflow.
//  * Incremental: try_fire() is a noexcept feasibility-check-and-fire for
//    online drivers (core::Stream) that decide the next firing from live
//    state; push_input() meters the external input so the source can only
//    fire against tokens that have actually arrived (EngineOptions::
//    credit_input), and snapshot()/take() poll the counters accumulated
//    since the last take without needing a run() boundary.
//
// Hot path: construction precomputes one FiringPlan per module (flattened
// input/output port spans, the state region, source/sink flags), so a firing
// never re-derives edge lists or rates from the graph. run() validates the
// whole firing sequence once with a token-count replay (pure integer
// arithmetic, no memory traffic) and then executes it through the unchecked
// fast path; an infeasible sequence throws the same ScheduleError a
// per-firing check would, before any firing executes. State scans and
// channel ring operations are issued as bulk block-granular cache
// transactions (at most two per channel operation).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "iomodel/cache.h"
#include "iomodel/layout.h"
#include "runtime/channel.h"
#include "runtime/run_result.h"
#include "sdf/graph.h"

namespace ccs::runtime {

/// Engine knobs.
struct EngineOptions {
  /// Model external input/output streams of the source/sink (1 word per
  /// firing each). Disable to measure pure internal traffic.
  bool model_external_io = true;

  /// Attribute per-module miss deltas in RunResult::node_misses. Costs one
  /// stats snapshot per firing; disable for the biggest sweeps.
  bool per_node_attribution = true;

  /// Block-align every channel buffer instead of packing them. Packing is
  /// the default because the paper's sum(minBuf) = O(state) assumption is
  /// about tokens, not blocks; aligning one-word buffers inflates their
  /// footprint by a factor of B. Exposed for the E15 ablation.
  bool block_align_buffers = false;

  /// Meter the external input: the source may only fire against credit
  /// granted through push_input() (one credit = one source firing), so an
  /// online driver can model arrivals and starvation. Off (the default),
  /// the external input is unbounded, as the batch schedulers assume.
  bool credit_input = false;

  /// Word address where this engine's state/buffer layout begins (rounded
  /// up to a block boundary). Engines sharing one cache (multi-tenant
  /// serving) must use disjoint bases so their blocks *contend* rather than
  /// silently alias; the external stream regions are offset by the base
  /// too. Keep bases well below 2^40 (the external-stream bands).
  std::int64_t address_base = 0;
};

/// One working-set observation of an engine, polled by adaptive placement
/// (core::Cluster feeds these to placement::FootprintEstimator). The layout
/// fields are structural; the counters are lifetime totals the consumer
/// windows itself.
struct FootprintSample {
  std::int64_t layout_words = 0;  ///< State + channel rings (footprint upper bound).
  std::int64_t state_words = 0;   ///< Module-state share of the layout.
  std::int64_t accesses = 0;      ///< Lifetime cache accesses attributed to this engine.
  std::int64_t misses = 0;        ///< Lifetime cache misses attributed to this engine.
};

/// The complete mutable execution state of an Engine, captured at a
/// quiescent point (a take()/run() boundary) so an idle session's host
/// objects can be destroyed and later rebuilt bit-identically — the swap
/// tier (session::SwappedSession) packs this into a compact byte image.
///
/// What is deliberately NOT here: the memory layout and firing plans (pure
/// functions of graph + buffer_caps + options, recomputed by the Engine
/// constructor without any cache traffic) and the simulated cache contents
/// (the cache keeps or evicts the session's blocks on its own — exactly as
/// it would had the host objects stayed alive, since an idle engine issues
/// no accesses either way). Delta baselines are re-anchored on restore,
/// which is lossless at a quiescent point because every delta is zero there.
struct EngineState {
  std::vector<std::int64_t> channel_heads;  ///< Ring cursor per edge.
  std::vector<std::int64_t> channel_sizes;  ///< Queued tokens per edge.
  std::vector<std::int64_t> fired;          ///< Lifetime firings per node.
  std::int64_t input_credit = 0;            ///< Remaining source credit (credit mode).
  iomodel::Addr external_in_cursor = 0;
  iomodel::Addr external_out_cursor = 0;
  std::int64_t source_firings = 0;
  std::int64_t sink_firings = 0;
  std::int64_t total_firings = 0;
  std::int64_t state_misses = 0;    ///< Lifetime classified-miss counters.
  std::int64_t channel_misses = 0;
  std::int64_t io_misses = 0;

  friend bool operator==(const EngineState&, const EngineState&) = default;
};

/// The layout footprint (state + channel rings, in words, including
/// block-alignment padding) an Engine for (g, buffer_caps) would occupy,
/// computed WITHOUT constructing an engine or touching any cache -- pure
/// integer arithmetic over the same MemoryLayout allocation sequence the
/// constructor performs from a block-aligned base. Admission control
/// (session::AdmissionPolicy "bounded-memory") prices a session before
/// deciding whether to build it.
std::int64_t layout_footprint_words(const sdf::SdfGraph& g,
                                    std::span<const std::int64_t> buffer_caps,
                                    std::int64_t block_words,
                                    bool block_align_buffers = false);

/// Executes firing sequences for one graph + buffer-capacity assignment.
class Engine {
 public:
  /// `buffer_caps[e]` is the ring capacity (in tokens) of edge e; it must be
  /// at least max(out_rate, in_rate) of that edge. The engine lays out all
  /// state and buffers in the simulated address space. `cache` must outlive
  /// the engine.
  Engine(const sdf::SdfGraph& g, std::vector<std::int64_t> buffer_caps,
         iomodel::CacheSim& cache, EngineOptions options = {});

  /// Sentinel input_credit() when the external input is not metered.
  static constexpr std::int64_t kUnlimitedCredit =
      std::numeric_limits<std::int64_t>::max();

  /// True iff every input has enough tokens, every output enough space, and
  /// (under credit_input) the source has arrival credit left.
  bool can_fire(sdf::NodeId v) const;

  /// Executes one firing. Throws ScheduleError (before any memory traffic
  /// or token movement) if v cannot fire.
  void fire(sdf::NodeId v);

  /// Feasibility check plus firing in one noexcept call -- the online hot
  /// path. Returns false (touching nothing: no tokens, no memory traffic,
  /// no counters) when v cannot fire right now, including an out-of-range
  /// id, a blocked channel, or an exhausted input credit; true after the
  /// firing executed. fire() keeps its throwing contract for batch callers.
  bool try_fire(sdf::NodeId v) noexcept;

  /// Grants `count` further source firings' worth of external input
  /// (requires EngineOptions::credit_input). Saturates at kUnlimitedCredit.
  void push_input(std::int64_t count);

  /// Source firings the external input can still cover: granted minus
  /// consumed credit, or kUnlimitedCredit when the input is not metered.
  std::int64_t input_credit() const noexcept {
    return options_.credit_input ? input_credit_ : kUnlimitedCredit;
  }

  /// Fires the sequence in order, returning the counters accumulated since
  /// the previous take (or construction). The whole sequence is validated
  /// up front; an infeasible sequence throws ScheduleError naming the first
  /// offending firing, with no tokens moved and no memory traffic.
  RunResult run(std::span<const sdf::NodeId> firings);

  /// Counters accumulated since the last take()/run() boundary, without
  /// resetting the baseline: polling twice returns the same deltas.
  RunResult snapshot() const;

  /// Counters accumulated since the last take()/run() boundary, then
  /// re-anchors the baseline so the next take reports only new work. run()
  /// is equivalent to validate + fire-all + take().
  RunResult take();

  /// Re-anchors only the cache-statistics baseline at the cache's current
  /// counters. On a cache shared between engines (multi-tenant serving),
  /// call this before each run/take window so traffic other engines
  /// generated in between is not attributed to this one; firing and
  /// classified-miss baselines are engine-local and unaffected.
  void resync_cache_baseline() { last_stats_ = cache_->stats(); }

  /// Tokens currently queued on edge e.
  std::int64_t tokens(sdf::EdgeId e) const {
    return channels_[static_cast<std::size_t>(e)].size();
  }

  /// Free slots on edge e.
  std::int64_t space(sdf::EdgeId e) const {
    return channels_[static_cast<std::size_t>(e)].space();
  }

  /// Lifetime firing count of module v.
  std::int64_t fired(sdf::NodeId v) const {
    return fired_[static_cast<std::size_t>(v)];
  }

  /// True iff every channel is empty.
  bool drained() const;

  /// Empties all channels without memory traffic and resets firing counters
  /// (cache contents and statistics are left untouched).
  void reset_tokens();

  /// Rebinds the engine to a different cache of the same block size and
  /// restores the as-constructed execution state: channels empty, firing and
  /// classified-miss counters zeroed, external IO cursors rewound, and the
  /// delta baselines re-anchored to the new cache's current statistics. A
  /// sweep worker can therefore reuse one constructed engine (layout and
  /// firing plans are preserved) across repeated measurements, each against
  /// a cold cache, and observe counters identical to a freshly constructed
  /// engine. `cache` must outlive the engine.
  void rebind_cache(iomodel::CacheSim& cache);

  /// Live migration: rebinds the engine to a different cache of the same
  /// block size WITHOUT touching execution state. Tokens, firing counters,
  /// classified-miss totals, input credit, and external cursors all
  /// survive; only the cache-statistics delta baseline is re-anchored on
  /// the new cache. The new cache does not hold this engine's working set,
  /// so the next firings pay real reload misses -- the multicore migration
  /// cost core::Cluster models (contrast rebind_cache, which restarts the
  /// run for sweep reuse). Call between run/take windows, never mid-run.
  void migrate_cache(iomodel::CacheSim& cache);

  /// Captures the complete mutable execution state. Must be called at a
  /// quiescent point: every counter since the last take()/run() must have
  /// been taken (engine-local deltas are asserted zero), so re-anchoring
  /// the baselines on restore loses nothing.
  EngineState save_state() const;

  /// Restores a state captured by save_state() from an engine built for
  /// the same graph, buffer capacities, and options (vector lengths are
  /// validated; a mismatch throws ScheduleError). Issues NO cache traffic
  /// and re-anchors all delta baselines at the restored lifetime counters
  /// and the bound cache's current statistics — the swap-tier rehydration
  /// contract: a restored engine's subsequent firings are bit-identical to
  /// one that was never torn down.
  void restore_state(const EngineState& state);

  const sdf::SdfGraph& graph() const noexcept { return *graph_; }
  iomodel::CacheSim& cache() noexcept { return *cache_; }
  std::int64_t state_footprint() const noexcept { return state_words_; }

  /// Footprint snapshot for adaptive placement: the layout geometry plus the
  /// cache's lifetime counters. On a *dedicated* cache the counters are this
  /// engine's own traffic; on a shared cache the caller must substitute
  /// per-tenant attributed totals (core::Stream::footprint_sample does).
  FootprintSample footprint_sample() const noexcept;

  /// The address range holding this engine's state and channel rings (from
  /// EngineOptions::address_base to the layout cursor; excludes the
  /// external-stream bands). Placement-affinity probes rank workers by how
  /// much of this span their private cache holds.
  iomodel::Region layout_span() const noexcept {
    return iomodel::Region{options_.address_base,
                           layout_.footprint() - options_.address_base};
  }

  /// Heavy cross-consistency walk of the execution state: every channel's
  /// token count within [0, capacity], the input credit non-negative (or
  /// the unlimited sentinel), every firing plan's port spans within the
  /// flattened port arrays with each port naming a real channel, and the
  /// firing/miss tallies internally consistent. Throws ContractViolation on
  /// the first inconsistency. Audit builds (-DCCS_AUDIT=ON) run it at
  /// run()/take() boundaries and sampled firing boundaries; tests may call
  /// it in any build.
  void audit_invariants() const;

 private:
  /// One side of a module's channel connections, flattened for the hot
  /// loop. `channel` doubles as the EdgeId (channels_ is indexed by edge).
  struct Port {
    std::int32_t channel;  ///< Index into channels_ == sdf::EdgeId.
    std::int64_t rate;     ///< Tokens moved per firing.
  };

  /// Everything a firing needs, precomputed at construction. Ports live in
  /// the shared in_ports_/out_ports_ arrays; each plan owns a span of them.
  struct FiringPlan {
    std::int32_t in_begin = 0, in_end = 0;    ///< [begin, end) into in_ports_.
    std::int32_t out_begin = 0, out_end = 0;  ///< [begin, end) into out_ports_.
    iomodel::Region state;
    bool is_source = false;
    bool is_sink = false;
  };

  /// Shared feasibility scan: returns the first port of v that cannot fire
  /// given per-channel token counts `size_of(channel)`, or nullptr if all
  /// can; sets `underflow` to distinguish the failure direction. The single
  /// home of the firing-feasibility rule — can_fire, fire, and
  /// validate_sequence all go through it.
  template <typename SizeOf>
  const Port* first_blocked_port(sdf::NodeId v, SizeOf&& size_of, bool& underflow) const {
    const FiringPlan& plan = plans_[static_cast<std::size_t>(v)];
    for (std::int32_t i = plan.in_begin; i < plan.in_end; ++i) {
      const Port& p = in_ports_[static_cast<std::size_t>(i)];
      if (size_of(p.channel) < p.rate) {
        underflow = true;
        return &p;
      }
    }
    for (std::int32_t i = plan.out_begin; i < plan.out_end; ++i) {
      const Port& p = out_ports_[static_cast<std::size_t>(i)];
      if (channels_[static_cast<std::size_t>(p.channel)].capacity() - size_of(p.channel) <
          p.rate) {
        underflow = false;
        return &p;
      }
    }
    return nullptr;
  }

  /// Builds the ScheduleError for a blocked port found by first_blocked_port.
  [[noreturn]] void throw_blocked(sdf::NodeId v, const Port& p, bool underflow) const;

  /// Replays `firings` against token counters only (no cache traffic),
  /// throwing on the first infeasible firing (including a source firing
  /// beyond the granted input credit when the input is metered).
  void validate_sequence(std::span<const sdf::NodeId> firings);

  /// Executes one pre-validated firing.
  void fire_unchecked(sdf::NodeId v);

  /// Assembles the delta-since-baseline counters (shared by snapshot/take).
  RunResult delta_counters() const;

  /// Re-anchors every last_* baseline at the current lifetime counters.
  void advance_baselines();

  const sdf::SdfGraph* graph_;
  iomodel::CacheSim* cache_;
  EngineOptions options_;
  iomodel::MemoryLayout layout_;
  std::vector<Channel> channels_;     // per edge
  std::vector<FiringPlan> plans_;     // per node
  std::vector<Port> in_ports_;        // all input ports, grouped by node
  std::vector<Port> out_ports_;       // all output ports, grouped by node
  std::vector<std::int64_t> fired_;   // per node, lifetime
  std::vector<std::int64_t> sizes_scratch_;  // per edge, for validate_sequence
  std::int64_t state_words_ = 0;

  sdf::NodeId source_ = sdf::kInvalidNode;
  sdf::NodeId sink_ = sdf::kInvalidNode;
  std::int64_t input_credit_ = 0;  ///< Remaining source firings (credit mode).
  iomodel::Addr external_in_cursor_ = 0;
  iomodel::Addr external_out_cursor_ = 0;
  iomodel::Region external_in_;
  iomodel::Region external_out_;

  // Baseline counters for delta reporting in run().
  iomodel::CacheStats last_stats_;
  std::int64_t last_firings_ = 0;
  std::int64_t last_source_firings_ = 0;
  std::int64_t last_sink_firings_ = 0;
  std::int64_t source_firings_ = 0;
  std::int64_t sink_firings_ = 0;
  std::int64_t total_firings_ = 0;
  std::vector<std::int64_t> node_miss_base_;

  // Classified miss counters (lifetime + last-run baselines).
  std::int64_t state_misses_ = 0;
  std::int64_t channel_misses_ = 0;
  std::int64_t io_misses_ = 0;
  std::int64_t last_state_misses_ = 0;
  std::int64_t last_channel_misses_ = 0;
  std::int64_t last_io_misses_ = 0;

  /// Audit-mode sampling counter: a full audit_invariants() walk per firing
  /// would turn O(n) runs into O(n^2), so audit builds walk every 64th
  /// firing plus every run/take boundary. Unused outside audit builds.
  [[maybe_unused]] std::int64_t audit_tick_ = 0;
};

}  // namespace ccs::runtime
