// core::Stream -- the online session API.
//
// The load-bearing test is the golden equivalence gate: a Stream granted
// the policy's own batch input allowance must reproduce the materialized
// schedule::dynamic_*_schedule + Engine::run counters bit-identically
// (RunResult operator== covers every counter including the per-node miss
// attribution), across the E11 regimes. The rest covers the session
// mechanics: arrivals, starvation, backpressure, and polling.

#include "core/stream.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "iomodel/cache.h"
#include "partition/pipeline_dp.h"
#include "partition/dag_greedy.h"
#include "runtime/engine.h"
#include "schedule/dynamic.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs::core {
namespace {

using iomodel::CacheConfig;
using iomodel::LruCache;

/// Batch side of the gate: materialize the dynamic schedule and run it once
/// through a fresh engine on `sim` geometry.
runtime::RunResult run_batch(const sdf::SdfGraph& g, const schedule::Schedule& s,
                             const CacheConfig& sim) {
  LruCache cache(sim);
  runtime::Engine engine(g, s.buffer_caps, cache);
  return engine.run(s.period);
}

TEST(StreamGolden, PipelineEquivalentToBatchDynamicAcrossE11Regimes) {
  const std::int64_t m = 512;
  const std::int64_t outputs = 1024;
  const CacheConfig sim{8 * m, 8};  // E11 measures on the augmented cache
  Rng rng(1111);                    // E11's generator
  for (int seed = 0; seed < 4; ++seed) {
    Rng trial = rng.fork();
    const auto g = workloads::random_pipeline(20, 64, 300, 3, trial);
    const auto dp = partition::pipeline_optimal_partition(g, 3 * m);

    const auto dyn = schedule::dynamic_pipeline_schedule(g, dp.partition, m, outputs);
    const runtime::RunResult batch = run_batch(g, dyn, sim);

    LruCache shared(sim);
    Stream stream(g, dp.partition, shared, m);
    EXPECT_EQ(stream.policy().name(), "pipeline-half-full");
    EXPECT_EQ(stream.policy().buffer_caps(), dyn.buffer_caps);

    // Unbounded arrivals = the policy's own batch allowance: the online
    // session must walk the identical firing sequence.
    stream.push(stream.policy().batch_credit(outputs));
    while (stream.outputs_produced() < outputs) {
      ASSERT_TRUE(stream.step().progressed()) << "stream idled before the target";
    }
    stream.drain();

    EXPECT_EQ(stream.stats(), batch) << "seed " << seed;
    EXPECT_EQ(stream.inputs_consumed(), dyn.inputs_per_period);
    EXPECT_EQ(stream.outputs_produced(), dyn.outputs_per_period);
  }
}

TEST(StreamGolden, HomogeneousDagEquivalentToBatchDynamic) {
  const std::int64_t m = 512;
  const std::int64_t outputs = 1500;
  const CacheConfig sim{4 * m, 8};
  Rng rng(53);
  workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const auto p = partition::dag_greedy_partition(g, 3 * m);

  const auto dyn = schedule::dynamic_homogeneous_schedule(g, p, m, outputs);
  const runtime::RunResult batch = run_batch(g, dyn, sim);

  LruCache shared(sim);
  Stream stream(g, p, shared, m);
  EXPECT_EQ(stream.policy().name(), "homogeneous-m-batch");
  stream.push(stream.policy().batch_credit(outputs));  // unlimited: saturates
  while (stream.outputs_produced() < outputs) {
    ASSERT_TRUE(stream.step().progressed());
  }
  stream.drain();
  EXPECT_EQ(stream.stats(), batch);
}

TEST(Stream, StarvesWithoutArrivalsAndResumesOnPush) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  Stream stream(g, dp.partition, CacheConfig{1024, 8});

  // Nothing pushed: the source has no credit, so the session is idle.
  EXPECT_FALSE(stream.step().progressed());
  EXPECT_EQ(stream.stats().firings, 0);

  stream.push(64);
  const runtime::RunResult burst = stream.run_until_idle();
  EXPECT_GT(burst.firings, 0);
  EXPECT_EQ(stream.inputs_consumed(), 64);  // consumed exactly what arrived
  EXPECT_EQ(stream.pending_inputs(), 0);

  // Starved again until the next arrivals.
  EXPECT_FALSE(stream.step().progressed());
  stream.push(64);
  EXPECT_GT(stream.run_until_idle().firings, 0);
  EXPECT_EQ(stream.inputs_consumed(), 128);
}

TEST(Stream, BackpressureClampsPushes) {
  const auto g = workloads::uniform_pipeline(6, 50);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  StreamOptions opts;
  opts.max_pending_inputs = 100;
  Stream stream(g, dp.partition, CacheConfig{1024, 8}, opts);

  EXPECT_EQ(stream.push(60), 60);
  EXPECT_FALSE(stream.backpressured());
  EXPECT_EQ(stream.push(60), 40);  // clamped at the watermark
  EXPECT_TRUE(stream.backpressured());
  EXPECT_EQ(stream.push(1), 0);
  EXPECT_EQ(stream.pending_inputs(), 100);

  // Consuming arrivals reopens the window.
  stream.run_until_idle();
  EXPECT_FALSE(stream.backpressured());
  EXPECT_GT(stream.push(100), 0);
}

TEST(Stream, DrainFlushesAllChannelsOnIterationBoundary) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  Stream stream(g, dp.partition, CacheConfig{1024, 8});
  stream.push(256);
  stream.run_until_idle();
  stream.drain();
  // A uniform pipeline has repetition counts of 1, so everything pushed can
  // always be flushed through to the sink.
  EXPECT_EQ(stream.outputs_produced(), stream.inputs_consumed());
  EXPECT_EQ(stream.outputs_produced(), 256);
}

TEST(Stream, StatsAccumulateStepDeltas) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  Stream stream(g, dp.partition, CacheConfig{1024, 8});
  stream.push(128);
  runtime::RunResult sum;
  for (StepResult r = stream.step(); r.progressed(); r = stream.step()) sum += r.run;
  sum += stream.drain();
  EXPECT_EQ(sum, stream.stats());
  EXPECT_GT(stream.steps(), 0);
}

TEST(Stream, PlannerConvenienceConstructorPlansAndServes) {
  const auto g = workloads::uniform_pipeline(12, 200);
  PlannerOptions opts;
  opts.cache.capacity_words = 1024;
  opts.cache.block_words = 8;
  const Planner planner(g, opts);
  const Plan plan = planner.plan("pipeline-dp");
  Stream stream(planner, plan);
  stream.push(512);
  stream.run_until_idle();
  stream.drain();
  EXPECT_GT(stream.outputs_produced(), 0);
  EXPECT_GT(stream.stats().cache.misses, 0);
}

TEST(Stream, RejectsUnknownPolicyListingKeys) {
  const auto g = workloads::uniform_pipeline(6, 50);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  StreamOptions opts;
  opts.policy = "bogus";
  try {
    Stream stream(g, dp.partition, CacheConfig{1024, 8}, opts);
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("valid online rules"), std::string::npos);
  }
}

TEST(Stream, AutoRejectsGeneralMultirateDags) {
  // Multirate non-pipeline: neither online rule applies.
  sdf::SdfGraph g;
  const auto a = g.add_node("a", 8);
  const auto b = g.add_node("b", 8);
  const auto c = g.add_node("c", 8);
  const auto d = g.add_node("d", 8);
  g.add_edge(a, b, 2, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(b, d, 1, 2);
  g.add_edge(c, d, 1, 1);
  const auto p = partition::Partition::singletons(g);
  EXPECT_THROW(Stream(g, p, CacheConfig{1024, 8}), GraphError);
}

}  // namespace
}  // namespace ccs::core
