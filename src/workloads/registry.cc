#include "workloads/registry.h"

#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::workloads {

Registry& Registry::global() {
  static Registry instance;
  static const bool initialized = (register_builtin_workloads(instance), true);
  (void)initialized;
  return instance;
}

sdf::SdfGraph Registry::build(const std::string& name) const {
  return find(name).build();
}

void register_builtin_workloads(Registry& r) {
  // The twelve StreamIt-style applications at their default parameters,
  // under the exact names streamit_suite() uses in tables.
  r.add("FMRadio", {[] { return fm_radio(); }, "FM radio frontend (deep pipeline + equalizer split-join)"});
  r.add("FilterBank", {[] { return filter_bank(); }, "M-channel analysis/synthesis filter bank"});
  r.add("Beamformer", {[] { return beamformer(); }, "multi-channel beamformer (stacked split-joins)"});
  r.add("BitonicSort", {[] { return bitonic_sort(); }, "bitonic sorting network (homogeneous butterfly)"});
  r.add("FFT", {[] { return fft(); }, "radix-2 FFT butterfly network"});
  r.add("DES", {[] { return des(); }, "DES cipher (heavy-state 16-round pipeline)"});
  r.add("ChannelVocoder", {[] { return channel_vocoder(); }, "channel vocoder (wide shallow split-join)"});
  r.add("MatrixMult", {[] { return matrix_mult(); }, "blocked matrix multiply pipeline"});
  r.add("Vocoder", {[] { return vocoder(); }, "phase vocoder (multirate split-join)"});
  r.add("TDE", {[] { return tde(); }, "time-delay equalization (deep multirate pipeline)"});
  r.add("Serpent", {[] { return serpent(); }, "Serpent cipher (32-round pipeline)"});
  r.add("Radar", {[] { return radar(); }, "radar array frontend (deep FIR chains + beams)"});

  // Parametric families at representative sizes. Randomized generators use
  // fixed seeds so sweep cells are reproducible bit-for-bit.
  r.add("uniform-pipeline",
        {[] { return uniform_pipeline(16, 200); },
         "16-stage uniform pipeline, 200 words of state per module"});
  r.add("hourglass-pipeline",
        {[] { return hourglass_pipeline(16, 200, 2); },
         "decimate-then-interpolate pipeline (gain waist in the middle)"});
  r.add("heavy-tail-pipeline",
        {[] { return heavy_tail_pipeline(24, 64, 600, 6); },
         "mostly small modules with every 6th at 600 words"});
  r.add("layered-dag",
        {[] {
           Rng rng(1);
           return layered_homogeneous_dag(LayeredSpec{}, rng);
         },
         "layered homogeneous dag (all rates 1), seed 1"});
  r.add("series-parallel-dag",
        {[] {
           Rng rng(1);
           return series_parallel_dag(SeriesParallelSpec{}, rng);
         },
         "rate-matched multirate series-parallel dag, seed 1"});
}

}  // namespace ccs::workloads
