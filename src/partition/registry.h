// String-keyed partitioner registry.
//
// The planner used to hard-wire its partitioners into a closed enum; this
// registry replaces that with an open, name-addressed strategy table. The
// built-ins self-register under the names the experiment tables always used
// ("pipeline-dp", "dag-refined", ...) and callers add their own strategies
// with Registry::global().add(...) -- a custom partitioner becomes usable in
// PlannerOptions::partitioner, `--partitioner=` flags, and Experiment sweep
// specs with no core changes. Unknown names throw a recoverable ccs::Error
// that lists every valid key.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "partition/partition.h"
#include "sdf/graph.h"
#include "util/registry.h"

namespace ccs::partition {

/// Everything a partitioner strategy may consult, derived from the planner's
/// options (state_bound = c_bound * cache_words).
struct StrategyContext {
  std::int64_t cache_words = 0;       ///< M (words).
  std::int64_t state_bound = 0;       ///< c * M: component state ceiling.
  std::int32_t exact_max_nodes = 20;  ///< Budget gate for exponential strategies.
  std::uint64_t seed = 1;             ///< For randomized strategies (annealing).
};

/// A named partitioning strategy.
struct Strategy {
  /// Builds a well-ordered, bounded partition or throws a ccs::Error
  /// subclass (e.g. when no bounded partition exists or a budget is
  /// exceeded).
  std::function<Partition(const sdf::SdfGraph&, const StrategyContext&)> build;

  /// True iff the strategy makes sense for this graph (pipeline-only
  /// strategies, node budgets). Null means always applicable. plan_all()
  /// and compare() consult this; an *explicit* request by name always runs
  /// the strategy, which throws its own error if the graph is unsuitable.
  std::function<bool(const sdf::SdfGraph&, const StrategyContext&)> applicable;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed partitioner table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class Registry : public NamedRegistry<Strategy> {
 public:
  Registry() : NamedRegistry<Strategy>("partitioner") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static Registry& global();

  /// Keys of every strategy applicable to `g` under `ctx`, sorted.
  std::vector<std::string> applicable_keys(const sdf::SdfGraph& g,
                                           const StrategyContext& ctx) const;

  /// Looks up `name` and runs it. Throws ccs::Error (listing valid keys)
  /// for unknown names; propagates the strategy's own errors.
  Partition build(const std::string& name, const sdf::SdfGraph& g,
                  const StrategyContext& ctx) const;
};

/// Registers the built-in strategies into `r` (used by global(); exposed so
/// tests can build isolated registries): pipeline-dp, pipeline-greedy,
/// dag-greedy, dag-greedy-gain, dag-refined, anneal, agglomerative, exact.
void register_builtin_partitioners(Registry& r);

}  // namespace ccs::partition
