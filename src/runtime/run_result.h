// Structured result of executing a firing sequence on the simulated cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "iomodel/types.h"
#include "latency/histogram.h"

namespace ccs::runtime {

/// Counters accumulated over one Engine::run call (deltas, not lifetime
/// totals, so successive runs can be compared).
struct RunResult {
  iomodel::CacheStats cache;              ///< Transfer counters for this run.
  std::int64_t firings = 0;               ///< Module executions performed.
  std::int64_t source_firings = 0;        ///< Executions of the source module.
  std::int64_t sink_firings = 0;          ///< Executions of the sink module.
  std::vector<std::int64_t> node_misses;  ///< Miss delta attributed per module.

  // Misses classified by what was being touched (sums to cache.misses):
  std::int64_t state_misses = 0;    ///< Loading module state.
  std::int64_t channel_misses = 0;  ///< Reading/writing channel buffers.
  std::int64_t io_misses = 0;       ///< External input/output streams.

  // Latency accounting, filled in by the pricing layer (core::Stream when a
  // latency::CostModel is attached; the Engine itself never prices). Zero /
  // empty without a model, so counter-only comparisons are unaffected.
  std::int64_t cost = 0;       ///< Modeled cycles for this run.
  latency::Histogram latency;  ///< Per-step cost samples (one per priced step).

  /// Amortized cost in the paper's terms: misses per item entering the graph
  /// (one item enters per source firing).
  double misses_per_input() const {
    return source_firings > 0
               ? static_cast<double>(cache.misses) / static_cast<double>(source_firings)
               : 0.0;
  }

  /// Misses per terminal output (one per sink firing).
  double misses_per_output() const {
    return sink_firings > 0
               ? static_cast<double>(cache.misses) / static_cast<double>(sink_firings)
               : 0.0;
  }

  /// Accumulates another run's counters (periods of the same execution, or
  /// shards of a partitioned measurement). Per-node attributions are summed
  /// index-wise; a shorter vector is treated as zero-extended.
  RunResult& operator+=(const RunResult& other) {
    cache.accesses += other.cache.accesses;
    cache.hits += other.cache.hits;
    cache.misses += other.cache.misses;
    cache.writebacks += other.cache.writebacks;
    firings += other.firings;
    source_firings += other.source_firings;
    sink_firings += other.sink_firings;
    state_misses += other.state_misses;
    channel_misses += other.channel_misses;
    io_misses += other.io_misses;
    cost += other.cost;
    latency += other.latency;
    if (node_misses.size() < other.node_misses.size()) {
      node_misses.resize(other.node_misses.size(), 0);
    }
    for (std::size_t i = 0; i < other.node_misses.size(); ++i) {
      node_misses[i] += other.node_misses[i];
    }
    return *this;
  }

  friend RunResult operator+(RunResult a, const RunResult& b) {
    a += b;
    return a;
  }

  /// Exact counter equality — the single definition the sweep repetition
  /// tripwire and the determinism tests compare through, so a counter added
  /// here is automatically covered by all of them.
  friend bool operator==(const RunResult&, const RunResult&) = default;
};

}  // namespace ccs::runtime
