#include "sdf/serialize.h"

#include <ostream>
#include <sstream>

#include "util/error.h"

namespace ccs::sdf {

void write_graph(const SdfGraph& g, std::ostream& os) {
  os << "# ccs streaming graph: " << g.node_count() << " modules, " << g.edge_count()
     << " channels\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "node " << g.node(v).name << " state=" << g.node(v).state << '\n';
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    os << "edge " << g.node(edge.src).name << " -> " << g.node(edge.dst).name
       << " out=" << edge.out_rate << " in=" << edge.in_rate << '\n';
  }
}

std::string to_text(const SdfGraph& g) {
  std::ostringstream os;
  write_graph(g, os);
  return os.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError("line " + std::to_string(line) + ": " + msg);
}

/// Parses "key=value" returning value; fails if the key does not match.
std::int64_t parse_kv(const std::string& token, const std::string& key, int line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) fail(line, "expected '" + key + "=<int>', got '" + token + "'");
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(token.substr(prefix.size()), &pos);
    if (pos != token.size() - prefix.size()) fail(line, "trailing junk in '" + token + "'");
    return v;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "bad integer in '" + token + "'");
  }
}

}  // namespace

SdfGraph read_graph(std::istream& is) {
  SdfGraph g;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "node") {
      std::string name, state_kv;
      if (!(ls >> name >> state_kv)) fail(line_no, "expected 'node <name> state=<words>'");
      g.add_node(name, parse_kv(state_kv, "state", line_no));
    } else if (kind == "edge") {
      std::string src, arrow, dst, out_kv, in_kv;
      if (!(ls >> src >> arrow >> dst >> out_kv >> in_kv) || arrow != "->") {
        fail(line_no, "expected 'edge <src> -> <dst> out=<rate> in=<rate>'");
      }
      const NodeId s = g.find_node(src);
      const NodeId d = g.find_node(dst);
      if (s == kInvalidNode) fail(line_no, "unknown module '" + src + "'");
      if (d == kInvalidNode) fail(line_no, "unknown module '" + dst + "'");
      g.add_edge(s, d, parse_kv(out_kv, "out", line_no), parse_kv(in_kv, "in", line_no));
    } else {
      fail(line_no, "unknown declaration '" + kind + "'");
    }
    std::string extra;
    if (ls >> extra) fail(line_no, "trailing junk '" + extra + "'");
  }
  return g;
}

SdfGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

}  // namespace ccs::sdf
