// runtime::WorkerPool -- private worker L1s over an optional shared LLC.
//
// The load-bearing properties: a worker's private cache behaves exactly
// like a standalone LRU of the same geometry (per-worker counters are
// independent of co-workers), the shared LLC sees exactly the private
// misses and turns repeat fetches by *other* workers into hits, and the
// residency probe counts what is actually resident.

#include "runtime/worker_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "iomodel/cache.h"
#include "util/error.h"

namespace ccs::runtime {
namespace {

using iomodel::AccessMode;
using iomodel::CacheConfig;

WorkerPoolOptions small_pool(std::int32_t workers, std::int64_t llc_words) {
  WorkerPoolOptions opts;
  opts.workers = workers;
  opts.l1 = CacheConfig{256, 8};
  opts.llc_words = llc_words;
  return opts;
}

TEST(WorkerPool, PrivateLevelMatchesStandaloneLruExactly) {
  // Differential check: the same access stream through a pool worker and a
  // plain LruCache must produce identical counters and residency, LLC or
  // not (the shared level never feeds back into L1 behaviour).
  for (const std::int64_t llc : {std::int64_t{0}, std::int64_t{4096}}) {
    WorkerPool pool(small_pool(2, llc));
    iomodel::LruCache reference(CacheConfig{256, 8});
    auto drive = [](iomodel::CacheSim& cache) {
      for (int pass = 0; pass < 3; ++pass) {
        for (iomodel::Addr a = 0; a < 512; a += 3) {
          cache.access(a, a % 2 == 0 ? AccessMode::kRead : AccessMode::kWrite);
        }
        cache.access_span(128, 200, AccessMode::kRead);
      }
    };
    drive(pool.worker_cache(0));
    drive(reference);
    EXPECT_EQ(pool.worker_stats(0), reference.stats()) << "llc=" << llc;
    for (iomodel::Addr a = 0; a < 512; a += 8) {
      EXPECT_EQ(pool.worker_cache(0).contains(a), reference.contains(a)) << a;
    }
    // Worker 1 never ran: its counters stay zero regardless of worker 0.
    EXPECT_EQ(pool.worker_stats(1).accesses, 0) << "llc=" << llc;
  }
}

TEST(WorkerPool, SharedLlcTurnsCrossWorkerRefetchesIntoHits) {
  WorkerPool pool(small_pool(2, 4096));
  // Worker 0 faults a block in: one L1 miss, one LLC access (miss).
  pool.worker_cache(0).access(0, AccessMode::kRead);
  EXPECT_EQ(pool.worker_stats(0).misses, 1);
  EXPECT_EQ(pool.llc_stats().accesses, 1);
  EXPECT_EQ(pool.llc_stats().misses, 1);
  // Worker 1 touches the same block: a private miss, but an LLC *hit* --
  // the shared level is what co-located workers save through.
  pool.worker_cache(1).access(0, AccessMode::kRead);
  EXPECT_EQ(pool.worker_stats(1).misses, 1);
  EXPECT_EQ(pool.llc_stats().accesses, 2);
  EXPECT_EQ(pool.llc_stats().hits, 1);
  // A private hit never reaches the LLC.
  pool.worker_cache(1).access(1, AccessMode::kRead);
  EXPECT_EQ(pool.llc_stats().accesses, 2);
}

TEST(WorkerPool, LlcAccessesEqualSummedPrivateMisses) {
  WorkerPool pool(small_pool(3, 4096));
  for (std::int32_t w = 0; w < pool.size(); ++w) {
    for (iomodel::Addr a = 0; a < 1024; a += 5) {
      pool.worker_cache(w).access(a + 64 * w, AccessMode::kRead);
    }
  }
  std::int64_t private_misses = 0;
  for (std::int32_t w = 0; w < pool.size(); ++w) {
    private_misses += pool.worker_stats(w).misses;
  }
  EXPECT_EQ(pool.llc_stats().accesses, private_misses);
}

TEST(WorkerPool, ResidencyProbeCountsResidentBlocks) {
  WorkerPool pool(small_pool(2, 0));
  // 256-word L1, 8-word blocks = 32 block capacity. Touch blocks 0..15.
  pool.worker_cache(0).access_span(0, 128, AccessMode::kRead);
  const iomodel::Region span{0, 128};
  EXPECT_EQ(pool.resident_blocks(0, span), 16);
  EXPECT_EQ(pool.resident_blocks(1, span), 0);  // private means private
  EXPECT_EQ(pool.resident_blocks(0, iomodel::Region{0, 0}), 0);
  // Evict by thrashing a disjoint range larger than the cache.
  pool.worker_cache(0).access_span(4096, 512, AccessMode::kRead);
  EXPECT_EQ(pool.resident_blocks(0, span), 0);
}

TEST(WorkerPool, FlushDropsThePrivateLevelOnly) {
  WorkerPool pool(small_pool(2, 4096));
  pool.worker_cache(0).access(0, AccessMode::kWrite);
  pool.worker_cache(0).flush();
  EXPECT_FALSE(pool.worker_cache(0).contains(0));
  // The block is still in the shared level: refetching hits the LLC.
  pool.worker_cache(0).access(0, AccessMode::kRead);
  EXPECT_EQ(pool.llc_stats().hits, 1);
}

TEST(WorkerPool, ShardedLlcBehavesLikeFlatOnSerialTraffic) {
  // The existing cross-worker LLC contracts, re-run against the sharded
  // backend: a serialized driver must see the same accesses == summed
  // private misses identity, and cross-worker refetches must hit.
  WorkerPoolOptions opts = small_pool(3, 4096);
  opts.llc_shards = 4;
  WorkerPool pool(opts);
  EXPECT_EQ(pool.llc_shards(), 4);
  pool.worker_cache(0).access(0, AccessMode::kRead);
  pool.worker_cache(1).access(0, AccessMode::kRead);
  EXPECT_EQ(pool.llc_stats().accesses, 2);
  EXPECT_EQ(pool.llc_stats().hits, 1);
  for (std::int32_t w = 0; w < pool.size(); ++w) {
    for (iomodel::Addr a = 0; a < 1024; a += 5) {
      pool.worker_cache(w).access(a + 64 * w, AccessMode::kRead);
    }
  }
  std::int64_t private_misses = 0;
  for (std::int32_t w = 0; w < pool.size(); ++w) {
    private_misses += pool.worker_stats(w).misses;
  }
  EXPECT_EQ(pool.llc_stats().accesses, private_misses);
}

/// One worker's share of the contention test: sweep a block band through
/// its private cache `passes` times. The tiny L1 (8 blocks) never holds the
/// band, so every block access probes the shared LLC under its lock.
void sweep_band(WorkerPool& pool, std::int32_t w, iomodel::BlockId base,
                std::int64_t blocks, std::int64_t passes) {
  for (std::int64_t p = 0; p < passes; ++p) {
    pool.worker_cache(w).access_blocks(base, blocks, AccessMode::kRead);
  }
}

TEST(WorkerPool, ConcurrentLlcStatsMatchVirtualTimeExactly) {
  // Real threads vs a serialized (virtual-time) run of the same per-worker
  // streams, for both LLC backends and both band layouts. The LLC is big
  // enough that nothing is ever evicted, so the aggregate split is a pure
  // function of the streams, not the interleaving: misses == distinct
  // blocks touched, accesses == summed private misses (each worker's L1 is
  // private, so its miss count is deterministic). Aggregate LLC counters
  // and every per-worker counter must agree exactly.
  constexpr std::int32_t kWorkers = 4;
  constexpr std::int64_t kBand = 64;
  constexpr std::int64_t kPasses = 3;
  for (const std::int32_t shards : {0, 4}) {
    for (const bool overlap : {false, true}) {
      WorkerPoolOptions opts;
      opts.workers = kWorkers;
      opts.l1 = CacheConfig{64, 8};  // 8 blocks: a 64-block band never fits
      opts.llc_words = 64 * 1024;    // all bands stay resident: no evictions
      opts.llc_shards = shards;
      const auto base_of = [&](std::int32_t w) {
        return overlap ? iomodel::BlockId{0}
                       : static_cast<iomodel::BlockId>(w) * kBand;
      };

      WorkerPool threaded(opts);
      std::vector<std::thread> threads;
      threads.reserve(kWorkers);
      for (std::int32_t w = 0; w < kWorkers; ++w) {
        threads.emplace_back(sweep_band, std::ref(threaded), w, base_of(w),
                             kBand, kPasses);
      }
      for (auto& t : threads) t.join();

      WorkerPool serial(opts);
      for (std::int32_t w = 0; w < kWorkers; ++w) {
        sweep_band(serial, w, base_of(w), kBand, kPasses);
      }

      const std::string where = "shards=" + std::to_string(shards) +
                                (overlap ? " overlapping" : " disjoint");
      EXPECT_EQ(threaded.llc_stats(), serial.llc_stats()) << where;
      EXPECT_EQ(threaded.llc_stats().misses,
                overlap ? kBand : kWorkers * kBand)
          << where;  // one cold miss per distinct block, never re-evicted
      for (std::int32_t w = 0; w < kWorkers; ++w) {
        EXPECT_EQ(threaded.worker_stats(w), serial.worker_stats(w))
            << where << " worker " << w;
      }
    }
  }
}

TEST(WorkerPool, RejectsDegenerateShardGeometry) {
  WorkerPoolOptions opts = small_pool(2, 4096);
  opts.llc_shards = -1;
  EXPECT_THROW(WorkerPool{opts}, Error);
  opts.llc_shards = 3;  // not a power of two
  EXPECT_THROW(WorkerPool{opts}, Error);
  opts.llc_shards = 1024;  // 4096/8 = 512 blocks < 1024 shards
  EXPECT_THROW(WorkerPool{opts}, Error);
  opts.llc_shards = 512;  // exactly one block per stripe is fine
  EXPECT_NO_THROW(WorkerPool{opts});
  // Without an LLC the shard count is ignored (no shared level to stripe).
  WorkerPoolOptions no_llc = small_pool(2, 0);
  no_llc.llc_shards = 16;
  WorkerPool flat(no_llc);
  EXPECT_FALSE(flat.has_llc());
}

TEST(WorkerPool, RejectsDegenerateGeometry) {
  EXPECT_THROW(WorkerPool(small_pool(0, 0)), Error);
  EXPECT_THROW(WorkerPool(small_pool(2, 256)), Error);   // LLC not larger than L1
  EXPECT_THROW(WorkerPool(small_pool(2, 100)), Error);   // LLC smaller than L1
  WorkerPoolOptions bad = small_pool(2, 0);
  bad.l1 = CacheConfig{4, 8};  // smaller than one block
  EXPECT_THROW(WorkerPool{bad}, Error);
  WorkerPool ok(small_pool(1, 0));
  EXPECT_FALSE(ok.has_llc());
  EXPECT_THROW(ok.llc_stats(), ContractViolation);
  EXPECT_THROW(ok.worker_cache(1), ContractViolation);
}

}  // namespace
}  // namespace ccs::runtime
