#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/planner.h"
#include "schedule/naive.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::core {
namespace {

PlannerOptions small_cache() {
  PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  return opts;
}

TEST(Planner, AutoPicksPipelineDpForPipelines) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto plan = core::plan(g, small_cache());
  EXPECT_EQ(plan.partitioner_name, "pipeline-dp");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
  EXPECT_GT(plan.batch_t, 0);
}

TEST(Planner, AutoPicksExactForSmallDags) {
  Rng rng(71);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 50;
  spec.state_hi = 120;
  const auto g = layered_homogeneous_dag(spec, rng);
  const auto plan = core::plan(g, small_cache());
  EXPECT_EQ(plan.partitioner_name, "exact");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
}

TEST(Planner, AutoPicksRefinedForLargeDags) {
  const auto g = ccs::workloads::fm_radio(10);  // 25 nodes > exact threshold
  auto opts = small_cache();
  opts.cache.capacity_words = 1024;
  const auto plan = core::plan(g, opts);
  EXPECT_EQ(plan.partitioner_name, "dag-refined");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
}

TEST(Planner, AllExplicitPartitionersWork) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  for (const std::string name :
       {"pipeline-dp", "pipeline-greedy", "dag-greedy", "dag-greedy-gain", "dag-refined",
        "anneal", "agglomerative", "exact"}) {
    auto opts = small_cache();
    opts.partitioner = name;
    const auto plan = core::plan(g, opts);
    EXPECT_EQ(plan.partitioner_name, name);
    EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok) << "partitioner " << name;
    EXPECT_TRUE(partition::is_well_ordered(g, plan.partition)) << "partitioner " << name;
  }
}

TEST(Planner, UnknownPartitionerNameListsValidKeys) {
  const auto g = ccs::workloads::uniform_pipeline(8, 100);
  auto opts = small_cache();
  opts.partitioner = "no-such-strategy";
  try {
    core::plan(g, opts);
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-strategy"), std::string::npos) << what;
    EXPECT_NE(what.find("pipeline-dp"), std::string::npos) << what;
    EXPECT_NE(what.find("dag-refined"), std::string::npos) << what;
  }
}

TEST(Planner, SessionPlansAreReusableAndDeterministic) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const Planner planner(g, small_cache());
  const auto a = planner.plan();
  const auto b = planner.plan();
  EXPECT_EQ(a.partition.assignment, b.partition.assignment);
  EXPECT_EQ(a.schedule.period, b.schedule.period);
  EXPECT_EQ(a.partitioner_name, b.partitioner_name);

  // Explicit strategy calls on the same session reuse the cached analysis.
  const auto greedy = planner.plan("dag-greedy");
  EXPECT_EQ(greedy.partitioner_name, "dag-greedy");
  EXPECT_TRUE(schedule::check_schedule(planner.graph(), greedy.schedule).ok);
}

TEST(Planner, ShimMatchesSession) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto via_shim = core::plan(g, small_cache());
  const auto via_session = Planner(g, small_cache()).plan();
  EXPECT_EQ(via_shim.partition.assignment, via_session.partition.assignment);
  EXPECT_EQ(via_shim.schedule.period, via_session.schedule.period);
  EXPECT_EQ(via_shim.batch_t, via_session.batch_t);
}

TEST(Planner, PlanAllCoversEveryApplicableStrategy) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const Planner planner(g, small_cache());
  const auto plans = planner.plan_all();
  // On a small pipeline every built-in strategy applies.
  EXPECT_EQ(plans.size(), partition::Registry::global().keys().size());
  for (const auto& plan : plans) {
    EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok) << plan.partitioner_name;
  }

  // On a large dag the pipeline-only strategies and the exact DP drop out.
  const auto dag = ccs::workloads::fm_radio(10);
  auto opts = small_cache();
  opts.cache.capacity_words = 1024;
  const Planner dag_planner(dag, opts);
  const auto dag_plans = dag_planner.plan_all();
  EXPECT_EQ(dag_plans.size(), plans.size() - 3);
  for (const auto& plan : dag_plans) {
    EXPECT_NE(plan.partitioner_name, "pipeline-dp");
    EXPECT_NE(plan.partitioner_name, "pipeline-greedy");
    EXPECT_NE(plan.partitioner_name, "exact");
  }
}

TEST(Planner, CompareReportsLowerBoundOnPipelines) {
  const auto g = ccs::workloads::uniform_pipeline(16, 200);
  const Planner planner(g, small_cache());
  const auto rows = planner.compare();
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_TRUE(row.has_lower_bound) << row.partitioner;
    EXPECT_GT(row.predicted_misses_per_input, 0.0) << row.partitioner;
    // No strategy's prediction may undercut the Theorem 3/7 bound: the
    // plan's cross term alone is bandwidth/B >= minBW_3/B.
    EXPECT_GE(row.predicted_misses_per_input * (1.0 + 1e-9),
              row.lower_bound_misses_per_input)
        << row.partitioner;
  }
  // Rows are sorted best-first.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].predicted_misses_per_input, rows[i].predicted_misses_per_input);
  }
  // The pipeline DP is optimal for pipelines: its predicted cost must tie
  // the best row (it may share the top spot with strategies that found the
  // same segmentation).
  const auto dp = std::find_if(rows.begin(), rows.end(), [](const StrategyComparison& r) {
    return r.partitioner == "pipeline-dp";
  });
  ASSERT_NE(dp, rows.end());
  EXPECT_DOUBLE_EQ(dp->predicted_misses_per_input, rows.front().predicted_misses_per_input);
}

TEST(Planner, RejectsInvalidGraphs) {
  sdf::SdfGraph empty;
  EXPECT_THROW(core::plan(empty, small_cache()), GraphError);

  sdf::SdfGraph oversized;
  oversized.add_node("a", 100000);
  oversized.add_node("b", 8);
  oversized.add_edge(0, 1, 1, 1);
  EXPECT_THROW(core::plan(oversized, small_cache()), GraphError);
}

TEST(Planner, RejectsRateMismatchedGraph) {
  // Diamond with inconsistent rates: the b->d and c->d edges demand
  // different repetition counts for d, so no repetition vector exists.
  // validate_or_throw aggregates all problems into one GraphError.
  sdf::SdfGraph g;
  const auto a = g.add_node("a", 8);
  const auto b = g.add_node("b", 8);
  const auto c = g.add_node("c", 8);
  const auto d = g.add_node("d", 8);
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(b, d, 1, 1);
  g.add_edge(c, d, 2, 1);
  EXPECT_THROW(core::plan(g, small_cache()), GraphError);
}

TEST(Planner, RejectsZeroCapacityCache) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  auto opts = small_cache();
  opts.cache.capacity_words = 0;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
  opts.cache.capacity_words = -64;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
  // A cache smaller than one block is equally degenerate.
  opts.cache.capacity_words = 4;
  opts.cache.block_words = 8;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
}

TEST(Simulate, RejectsZeroCapacityCache) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{0, 8}, 100),
               MemoryError);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 0}, 100),
               MemoryError);
}

TEST(Simulate, RejectsNonPositiveOutputTarget) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 8}, 0),
               ContractViolation);
}

TEST(Planner, PredictionPopulated) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto plan = core::plan(g, small_cache());
  EXPECT_GT(plan.predicted.misses_per_input, 0.0);
  EXPECT_GE(plan.partition_bandwidth, Rational(0));
}

TEST(Simulate, ReachesOutputTarget) {
  const auto g = ccs::workloads::uniform_pipeline(8, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  const auto r = core::simulate(g, s, iomodel::CacheConfig{512, 8}, 500);
  EXPECT_GE(r.sink_firings, 500);
  EXPECT_GT(r.cache.misses, 0);
}

TEST(Simulate, PartitionedBeatsNaiveWhenStateExceedsCache) {
  // 16 modules x 200 words = 3200 words total state against a 512-word
  // cache: naive reloads everything every iteration, partitioned amortizes.
  const auto g = ccs::workloads::uniform_pipeline(16, 200);
  const auto opts = small_cache();
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  // Partitioned runs on the augmented cache (c * M), per Theorem 5's
  // memory-augmentation guarantee; naive gets the same augmented cache.
  const iomodel::CacheConfig sim_cache{4 * opts.cache.capacity_words,
                                       opts.cache.block_words};
  const std::int64_t target = 4096;
  const auto r_part = core::simulate(g, plan.schedule, sim_cache, target);
  const auto r_naive = core::simulate(g, naive, sim_cache, target);
  EXPECT_LT(r_part.misses_per_output() * 2, r_naive.misses_per_output());
}

TEST(RunResult, PlusOperatorsAccumulate) {
  runtime::RunResult a;
  a.cache.misses = 10;
  a.firings = 5;
  a.node_misses = {1, 2};
  runtime::RunResult b;
  b.cache.misses = 7;
  b.firings = 3;
  b.node_misses = {4, 4};
  const auto m = a + b;
  EXPECT_EQ(m.cache.misses, 17);
  EXPECT_EQ(m.firings, 8);
  EXPECT_EQ(m.node_misses, (std::vector<std::int64_t>{5, 6}));

  runtime::RunResult acc;
  acc += a;
  acc += b;
  EXPECT_EQ(acc.cache.misses, 17);
  EXPECT_EQ(acc.firings, 8);
  EXPECT_EQ(acc.node_misses, (std::vector<std::int64_t>{5, 6}));
}

TEST(Planner, ExplainMentionsEveryComponentAndModule) {
  const auto g = ccs::workloads::uniform_pipeline(8, 200);
  const auto plan = core::plan(g, small_cache());
  const auto text = core::explain(g, plan);
  EXPECT_NE(text.find("partitioner : pipeline-dp"), std::string::npos);
  EXPECT_NE(text.find("batch T"), std::string::npos);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_NE(text.find(g.node(v).name), std::string::npos) << g.node(v).name;
  }
  for (std::int32_t c = 0; c < plan.partition.num_components; ++c) {
    EXPECT_NE(text.find("V" + std::to_string(c)), std::string::npos);
  }
}

TEST(Simulate, MeasuredCostNearPrediction) {
  const auto g = ccs::workloads::uniform_pipeline(16, 200);
  const auto opts = small_cache();
  const auto plan = core::plan(g, opts);
  const iomodel::CacheConfig sim_cache{4 * opts.cache.capacity_words,
                                       opts.cache.block_words};
  const auto r = core::simulate(g, plan.schedule, sim_cache, 2048);
  const double measured = r.misses_per_input();
  const double predicted = plan.predicted.misses_per_input;
  // Same order of magnitude: the model ignores external IO and cold misses.
  EXPECT_LT(measured, predicted * 4 + 1.0);
  EXPECT_GT(measured * 8, predicted);
}

}  // namespace
}  // namespace ccs::core
