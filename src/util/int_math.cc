#include "util/int_math.h"

#include <limits>
#include <string>

namespace ccs {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    throw OverflowError("integer overflow in " + std::to_string(a) + " * " +
                        std::to_string(b));
  }
  return result;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    throw OverflowError("integer overflow in " + std::to_string(a) + " + " +
                        std::to_string(b));
  }
  return result;
}

std::int64_t checked_lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a < 0 ? -a : a, b < 0 ? -b : b);
  return checked_mul(a / g, b);
}

}  // namespace ccs
