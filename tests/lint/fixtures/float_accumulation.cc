// Fixture: float/double accumulation inside the latency layer. The rule
// activates because this file declares namespace ccs::latency (fixtures
// live outside src/latency/, so path matching alone would miss them).

#include <cstdint>

namespace ccs::latency {

struct LossyStats {
  double mean = 0.0;        // LINT-EXPECT(float-accumulation)
  std::int64_t count = 0;   // integers are fine
};

inline void accumulate(LossyStats& s, std::int64_t sample) {
  float weight = 1.0f;      // LINT-EXPECT(float-accumulation)
  s.mean += static_cast<double>(sample) * weight;  // LINT-EXPECT(float-accumulation)
  ++s.count;
}

// A deliberate, reviewed exception is spelled with the allowlist marker:
// presentation-only conversion at the very edge of the layer.
// ccs-lint: allow(float-accumulation)
inline double mean_for_display(const LossyStats& s) {
  return s.count == 0 ? 0.0 : s.mean / static_cast<double>(s.count);  // ccs-lint: allow(float-accumulation)
}

}  // namespace ccs::latency
