#include "sdf/repetition.h"

#include <gtest/gtest.h>

#include "util/int_math.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(Repetition, HomogeneousChainAllOnes) {
  const auto g = ccs::workloads::uniform_pipeline(5, 10);
  const RepetitionVector reps(g);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(reps.count(v), 1);
  EXPECT_EQ(reps.total_firings(), 5);
}

TEST(Repetition, ClassicTwoRateChain) {
  // s -(3,2)-> a: q(s)=2, q(a)=3.
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const EdgeId e = g.add_edge(s, a, 3, 2);
  const RepetitionVector reps(g);
  EXPECT_EQ(reps.count(s), 2);
  EXPECT_EQ(reps.count(a), 3);
  EXPECT_EQ(reps.edge_tokens(e), 6);
}

TEST(Repetition, BalanceEquationsHoldOnEveryEdge) {
  Rng rng(123);
  ccs::workloads::SeriesParallelSpec spec;
  spec.target_nodes = 30;
  const auto g = ccs::workloads::series_parallel_dag(spec, rng);
  const RepetitionVector reps(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    EXPECT_EQ(reps.count(edge.src) * edge.out_rate, reps.count(edge.dst) * edge.in_rate);
  }
}

TEST(Repetition, VectorIsMinimal) {
  // gcd of all counts must be 1, otherwise a smaller vector would work.
  for (const auto& app : ccs::workloads::streamit_suite()) {
    const RepetitionVector reps(app.graph);
    std::int64_t g = 0;
    for (const auto q : reps.counts()) g = gcd64(g, q);
    EXPECT_EQ(g, 1) << app.name;
  }
}

TEST(Repetition, HourglassCounts) {
  // factor-2 hourglass with 5 nodes: rates (1,2),(1,2)... waist at node 2.
  const auto g = ccs::workloads::hourglass_pipeline(5, 10, 2);
  const RepetitionVector reps(g);
  // Edges: 0-(1,2)->1, 1-(1,2)->2 (waist index 2), 2-(1,1)->3? No: the waist
  // edge is at i == 2, so edges are (1,2), (1,2), (1,1), (2,1). Gains are
  // 1, 1/2, 1/4, 1/4, 1/2, giving q = (4, 2, 1, 1, 2).
  EXPECT_EQ(reps.count(0), 4);  // decimation means the source fires most
  EXPECT_EQ(reps.count(1), 2);
  EXPECT_EQ(reps.count(2), 1);
  EXPECT_EQ(reps.count(3), 1);
  EXPECT_EQ(reps.count(4), 2);
}

TEST(Repetition, TotalFirings) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  g.add_edge(s, a, 3, 2);
  const RepetitionVector reps(g);
  EXPECT_EQ(reps.total_firings(), 5);
}

}  // namespace
}  // namespace ccs::sdf
