#include "schedule/registry.h"

#include "schedule/kohli.h"
#include "schedule/naive.h"
#include "schedule/scaled.h"

namespace ccs::schedule {

Registry& Registry::global() {
  static Registry instance;
  static const bool initialized = (register_builtin_schedulers(instance), true);
  (void)initialized;
  return instance;
}

std::vector<std::string> Registry::applicable_keys(const sdf::SdfGraph& g,
                                                   const SchedulerContext& ctx) const {
  std::vector<std::string> out;
  for (const std::string& name : keys()) {
    const SchedulerEntry s = find(name);
    if (!s.applicable || s.applicable(g, ctx)) out.push_back(name);
  }
  return out;
}

Schedule Registry::build(const std::string& name, const sdf::SdfGraph& g,
                         const SchedulerContext& ctx) const {
  return find(name).build(g, ctx);
}

void register_builtin_schedulers(Registry& r) {
  r.add("naive",
        {[](const sdf::SdfGraph& g, const SchedulerContext&) {
           return naive_minimal_buffer_schedule(g);
         },
         nullptr, "demand-driven steady state over minimal buffers"});
  r.add("single-appearance",
        {[](const sdf::SdfGraph& g, const SchedulerContext&) {
           return naive_single_appearance_schedule(g);
         },
         nullptr, "single-appearance steady state (topological, q(v) firings)"});
  r.add("scaled",
        {[](const sdf::SdfGraph& g, const SchedulerContext& ctx) {
           return scaled_schedule(g, ctx.cache_words);
         },
         nullptr, "execution scaling (Sermulins et al.)"});
  r.add("kohli",
        {[](const sdf::SdfGraph& g, const SchedulerContext& ctx) {
           return kohli_schedule(g, ctx.cache_words);
         },
         [](const sdf::SdfGraph& g, const SchedulerContext&) { return g.is_pipeline(); },
         "Kohli's greedy cache-aware heuristic (pipelines only)"});
}

}  // namespace ccs::schedule
