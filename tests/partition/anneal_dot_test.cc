#include <gtest/gtest.h>

#include "partition/dag_anneal.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dot.h"
#include "sdf/gain.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::partition {
namespace {

TEST(Anneal, NeverWorseThanStartAndValid) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    workloads::SeriesParallelSpec spec;
    spec.target_nodes = 24;
    const auto g = workloads::series_parallel_dag(spec, rng);
    const sdf::GainMap gains(g);
    const std::int64_t bound = 800;
    const auto start = dag_greedy_partition(g, bound);
    AnnealOptions opts;
    opts.state_bound = bound;
    opts.iterations = 4000;
    opts.seed = 42 + static_cast<std::uint64_t>(trial);
    const auto annealed = anneal_partition(g, start, opts);
    EXPECT_TRUE(validate_partition(g, annealed).empty()) << trial;
    EXPECT_TRUE(is_well_ordered(g, annealed)) << trial;
    EXPECT_TRUE(is_bounded(g, annealed, bound)) << trial;
    EXPECT_LE(bandwidth(g, gains, annealed), bandwidth(g, gains, start)) << trial;
  }
}

TEST(Anneal, DeterministicPerSeed) {
  Rng rng(6);
  workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const auto start = dag_greedy_partition(g, 600);
  AnnealOptions opts;
  opts.state_bound = 600;
  opts.iterations = 2000;
  opts.seed = 7;
  const auto a = anneal_partition(g, start, opts);
  const auto b = anneal_partition(g, start, opts);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Anneal, ApproachesExactOnSmallDags) {
  Rng rng(7);
  workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 60;
  spec.state_hi = 140;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const sdf::GainMap gains(g);
  const std::int64_t bound = 420;
  ExactOptions eopts;
  eopts.state_bound = bound;
  const auto exact = dag_exact_partition(g, eopts);
  ASSERT_TRUE(exact.has_value());
  AnnealOptions aopts;
  aopts.state_bound = bound;
  aopts.iterations = 20000;
  const auto annealed = anneal_partition(g, dag_greedy_partition(g, bound), aopts);
  // Annealing must land within 2x of optimal on these easy instances.
  EXPECT_LE(bandwidth(g, gains, annealed).to_double(),
            2.0 * exact->bandwidth.to_double() + 1e-9);
}

TEST(Anneal, RequiresValidStart) {
  const auto g = workloads::fm_radio(4);
  AnnealOptions opts;
  opts.state_bound = 100;  // start exceeds this
  EXPECT_THROW(anneal_partition(g, Partition::whole(g), opts), ContractViolation);
}

TEST(Dot, PlainGraphContainsNodesAndEdges) {
  const auto g = workloads::fm_radio(2);
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("digraph stream"), std::string::npos);
  EXPECT_NE(dot.find("\"AtoD\""), std::string::npos);
  EXPECT_NE(dot.find("\"LowPass\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1:4\""), std::string::npos);  // decimating edge
  EXPECT_EQ(dot.find("cluster_"), std::string::npos);       // no partition
}

TEST(Dot, PartitionedGraphHasClustersAndBoldCrossEdges) {
  const auto g = workloads::fm_radio(2);
  const auto p = dag_greedy_partition(g, 400);
  ASSERT_GT(p.num_components, 1);
  const auto dot = to_dot(g, p);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
}

TEST(Dot, RejectsInvalidPartition) {
  const auto g = workloads::fm_radio(2);
  Partition bad;
  bad.num_components = 2;
  bad.assignment.assign(static_cast<std::size_t>(g.node_count()), 0);  // comp 1 empty
  EXPECT_THROW(to_dot(g, bad), Error);
}

}  // namespace
}  // namespace ccs::partition
