#include "iomodel/sharded_cache.h"

#include "util/int_math.h"

namespace ccs::iomodel {

ShardedLruCache::ShardedLruCache(const CacheConfig& config, std::int32_t shards)
    : CacheSim(config.block_words),
      config_(config),
      shards_(shards),
      shard_mask_(shards - 1) {
  CCS_EXPECTS(shards >= 1, "need at least one shard");
  CCS_EXPECTS(is_pow2(shards), "shard count must be a power of two");
  const std::int64_t blocks = config.capacity_blocks();
  CCS_EXPECTS(blocks >= shards, "every shard needs at least one block");
  // Capacity splits as evenly as the block count allows: the first
  // `blocks % shards` stripes hold one extra block. shards == 1 therefore
  // reproduces the flat LruCache geometry exactly.
  const std::int64_t base = blocks / shards;
  const std::int64_t extra = blocks % shards;
  shards_store_.reserve(static_cast<std::size_t>(shards));
  for (std::int32_t s = 0; s < shards; ++s) {
    const std::int64_t cap_blocks = base + (s < extra ? 1 : 0);
    shards_store_.push_back(std::make_unique<Shard>(
        CacheConfig{cap_blocks * config.block_words, config.block_words}));
  }
}

void ShardedLruCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  access_block(block_of(addr), mode);
}

void ShardedLruCache::do_access_blocks(BlockId first, std::int64_t count,
                                       AccessMode mode) {
  if (shards_ == 1) {
    Shard& s = shard(0);
    const MutexLock lock(s.mutex);
    s.cache.access_blocks(first, count, mode);
    return;
  }
  // Stripes are independent, so the span may be walked stripe-by-stripe
  // (one lock acquisition each) as long as every stripe sees its own blocks
  // in ascending order -- bit-identical to the per-block scalar loop.
  const BlockId end = first + count;
  for (std::int32_t s = 0; s < shards_; ++s) {
    const BlockId stripe = static_cast<BlockId>(s);
    BlockId b = first + ((stripe - first) & shard_mask_);
    if (b >= end) continue;
    Shard& sh = shard(s);
    const MutexLock lock(sh.mutex);
    for (; b < end; b += shards_) sh.cache.access_block(b, mode);
  }
}

void ShardedLruCache::flush() {
  for (std::int32_t s = 0; s < shards_; ++s) {
    Shard& sh = shard(s);
    const MutexLock lock(sh.mutex);
    sh.cache.flush();
  }
}

bool ShardedLruCache::contains(Addr addr) const {
  if (addr < 0) return false;
  const Shard& sh = shard(shard_of(block_of(addr)));
  const MutexLock lock(sh.mutex);
  return sh.cache.contains(addr);
}

const CacheStats& ShardedLruCache::stats() const {
  CacheStats sum;
  for (std::int32_t s = 0; s < shards_; ++s) {
    const Shard& sh = shard(s);
    const MutexLock lock(sh.mutex);
    const CacheStats& part = sh.cache.stats();
    // Audit: each stripe's counters are self-consistent and its residency
    // fits its slice of the capacity; the aggregate is their sum by
    // construction, so stripe-level consistency implies aggregate
    // consistency (the shard-sum ≡ aggregate gate).
    CCS_AUDIT(part.hits + part.misses == part.accesses,
              "stripe hit/miss split disagrees with its access count");
    CCS_AUDIT(sh.cache.resident_blocks() <= sh.cache.config().capacity_blocks(),
              "stripe holds more blocks than its capacity slice");
    CCS_AUDIT_BLOCK(sh.cache.audit_invariants(););
    sum.accesses += part.accesses;
    sum.hits += part.hits;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  agg_ = sum;
  return agg_;
}

const CacheStats& ShardedLruCache::shard_stats(std::int32_t s) const {
  CCS_EXPECTS(s >= 0 && s < shards_, "shard index out of range");
  return shard(s).cache.stats();
}

std::int64_t ShardedLruCache::resident_blocks() const {
  std::int64_t total = 0;
  for (std::int32_t s = 0; s < shards_; ++s) {
    const Shard& sh = shard(s);
    const MutexLock lock(sh.mutex);
    total += sh.cache.resident_blocks();
  }
  return total;
}

std::unique_ptr<CacheSim> make_sharded_lru(std::int64_t capacity_words,
                                           std::int64_t block_words,
                                           std::int32_t shards) {
  return std::make_unique<ShardedLruCache>(CacheConfig{capacity_words, block_words},
                                           shards);
}

}  // namespace ccs::iomodel
