#include "util/contract.h"

#include <gtest/gtest.h>

#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "sdf/graph.h"
#include "util/rng.h"

namespace ccs {
namespace {

TEST(Contract, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(CCS_EXPECTS(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(CCS_ENSURES(true, "trivially true"));
  EXPECT_NO_THROW(CCS_CHECK(42 > 0, "positive"));
  EXPECT_NO_THROW(CCS_ASSERT(true, "cheap check"));
}

TEST(Contract, FailuresThrowContractViolation) {
  EXPECT_THROW(CCS_EXPECTS(false, "boom"), ContractViolation);
  EXPECT_THROW(CCS_ENSURES(false, "boom"), ContractViolation);
  EXPECT_THROW(CCS_CHECK(false, "boom"), ContractViolation);
  EXPECT_THROW(CCS_ASSERT(false, "boom"), ContractViolation);
}

TEST(Contract, MessageNamesKindConditionAndLocation) {
  try {
    CCS_CHECK(2 < 1, "two is not less than one");
    FAIL() << "CCS_CHECK(false) must throw";
  } catch (const ContractViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cc"), std::string::npos) << what;
  }
}

TEST(Contract, AssertIsAlwaysOnEvenInReleaseBuilds) {
  // The hot-path assertion layer is deliberately not tied to NDEBUG: this
  // test fails in any build configuration where CCS_ASSERT compiles away.
  bool evaluated = false;
  const auto probe = [&evaluated]() {
    evaluated = true;
    return true;
  };
  CCS_ASSERT(probe(), "side effect must run");
  EXPECT_TRUE(evaluated);
}

TEST(Contract, AuditMacrosMatchTheBuildFlag) {
  if constexpr (kAuditEnabled) {
    EXPECT_THROW(CCS_AUDIT(false, "audit fires in audit builds"), ContractViolation);
    bool ran = false;
    CCS_AUDIT_BLOCK(ran = true;);
    EXPECT_TRUE(ran);
  } else {
    // Outside audit builds the macros compile to nothing: the condition is
    // not even evaluated.
    EXPECT_NO_THROW(CCS_AUDIT(false, "compiled away"));
    bool ran = false;
    CCS_AUDIT_BLOCK(ran = true;);
    EXPECT_FALSE(ran);
  }
}

TEST(AuditWalk, LruCachePassesAfterMixedTraffic) {
  iomodel::LruCache cache(iomodel::CacheConfig{8 * 16, 16});
  EXPECT_NO_THROW(cache.audit_invariants());  // empty cache is consistent
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto mode = rng.uniform(0, 1) == 0 ? iomodel::AccessMode::kRead
                                             : iomodel::AccessMode::kWrite;
    cache.access(rng.uniform(0, 40) * 16 + rng.uniform(0, 15), mode);
  }
  EXPECT_NO_THROW(cache.audit_invariants());
  cache.flush();
  EXPECT_NO_THROW(cache.audit_invariants());
}

TEST(AuditWalk, SetAssociativeCachePassesAfterMixedTraffic) {
  iomodel::SetAssociativeCache cache(iomodel::CacheConfig{16 * 16, 16}, 4);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const auto mode = rng.uniform(0, 1) == 0 ? iomodel::AccessMode::kRead
                                             : iomodel::AccessMode::kWrite;
    cache.access(rng.uniform(0, 60) * 16 + rng.uniform(0, 15), mode);
  }
  EXPECT_NO_THROW(cache.audit_invariants());
  cache.flush();
  EXPECT_NO_THROW(cache.audit_invariants());
}

TEST(AuditWalk, EnginePassesAcrossRunBoundaries) {
  sdf::SdfGraph g;
  const auto src = g.add_node("src", 4);
  const auto mid = g.add_node("mid", 8);
  const auto snk = g.add_node("snk", 4);
  g.add_edge(src, mid, 2, 1);
  g.add_edge(mid, snk, 1, 2);
  const auto cache = iomodel::make_lru(64 * 16, 16);
  runtime::Engine engine(g, {4, 4}, *cache);
  EXPECT_NO_THROW(engine.audit_invariants());
  for (int round = 0; round < 8; ++round) {
    engine.fire(src);
    engine.fire(mid);
    engine.fire(mid);
    engine.fire(snk);
    (void)engine.take();
    EXPECT_NO_THROW(engine.audit_invariants());
  }
}

}  // namespace
}  // namespace ccs
