// The latency subsystem end to end on a serving cluster: the uniform
// strict-extension guarantee, thread-mode ≡ virtual-time percentiles under
// non-trivial models, and exact histogram survival across the swap tier.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/planner.h"
#include "latency/histogram.h"
#include "session/swap.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace ccs::core {
namespace {

struct Scenario {
  sdf::SdfGraph graph;
  partition::Partition partition;
  std::int64_t m = 0;
};

Scenario make_scenario() {
  Scenario s;
  s.graph = workloads::uniform_pipeline(12, 120);
  PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  const Planner planner(s.graph, opts);
  s.partition = planner.plan("pipeline-dp").partition;
  s.m = 512;
  return s;
}

ClusterReport run_scenario(const Scenario& s, ClusterOptions opts,
                           bool threads, bool swap_between_ticks = false) {
  Cluster cluster(opts);
  for (int t = 0; t < 4; ++t) {
    cluster.admit("tenant-" + std::to_string(t), s.graph, s.partition, {}, s.m);
  }
  const workloads::ArrivalPattern arrival = workloads::bursty_arrivals(64, 8);
  for (std::int64_t tick = 0; tick < 24; ++tick) {
    for (TenantId t = 0; t < cluster.tenant_count(); ++t) {
      cluster.push(t, arrival(tick));
    }
    if (threads) {
      cluster.run_threads();
    } else {
      cluster.run_until_idle();
    }
    if (swap_between_ticks) cluster.swap_out_idle();
  }
  cluster.drain_all();
  return cluster.report();
}

TEST(ServingLatency, UniformModelCostEqualsFirings) {
  // The strict-extension guarantee in-process: under "uniform" (the
  // default) every step costs exactly its firing count, so the aggregate
  // cost IS the aggregate firing count and worker busy time advances
  // exactly as it did before the latency subsystem existed.
  const Scenario s = make_scenario();
  ClusterOptions opts;
  opts.workers = 2;
  const ClusterReport report = run_scenario(s, opts, /*threads=*/false);
  EXPECT_EQ(report.cost_model, "uniform");
  EXPECT_EQ(report.aggregate.cost, report.aggregate.firings);
  std::int64_t worker_cost = 0;
  for (const ClusterWorkerReport& w : report.workers) {
    worker_cost += w.busy;
    EXPECT_EQ(w.latency.sum(), w.busy);  // every busy cycle is a sample
  }
  EXPECT_EQ(worker_cost, report.aggregate.cost);
}

TEST(ServingLatency, ThreadModePercentilesMatchVirtualTime) {
  // Costs are priced from private-L1 deltas and static configuration only,
  // so every histogram -- per tenant AND per worker -- must be
  // bit-identical between real threads and lockstep virtual time.
  const Scenario s = make_scenario();
  for (const char* model : {"two-level", "llc-shared"}) {
    ClusterOptions opts;
    opts.workers = 3;
    opts.llc_shards = 2;
    opts.cost_model = model;
    const ClusterReport virt = run_scenario(s, opts, /*threads=*/false);
    const ClusterReport thr = run_scenario(s, opts, /*threads=*/true);
    ASSERT_EQ(virt.tenants.size(), thr.tenants.size());
    for (std::size_t i = 0; i < virt.tenants.size(); ++i) {
      EXPECT_EQ(virt.tenants[i].totals, thr.tenants[i].totals) << model << " " << i;
    }
    ASSERT_EQ(virt.workers.size(), thr.workers.size());
    for (std::size_t w = 0; w < virt.workers.size(); ++w) {
      EXPECT_EQ(virt.workers[w].busy, thr.workers[w].busy) << model << " " << w;
      EXPECT_EQ(virt.workers[w].latency, thr.workers[w].latency) << model << " " << w;
    }
    EXPECT_EQ(virt.aggregate, thr.aggregate) << model;
    EXPECT_GT(virt.aggregate.latency.p99(), 0) << model;
  }
}

TEST(ServingLatency, SwapRoundTripPreservesHistogramsExactly) {
  // Aggressively shedding idle sessions between ticks forces every tenant
  // through pack -> unpack -> rehydrate repeatedly; the final report must
  // match the never-swapped run exactly, histograms included.
  const Scenario s = make_scenario();
  ClusterOptions opts;
  opts.workers = 2;
  opts.cost_model = "two-level";
  opts.swap = true;
  const ClusterReport swapped =
      run_scenario(s, opts, /*threads=*/false, /*swap_between_ticks=*/true);
  const ClusterReport straight = run_scenario(s, opts, /*threads=*/false);
  ASSERT_EQ(swapped.tenants.size(), straight.tenants.size());
  for (std::size_t i = 0; i < swapped.tenants.size(); ++i) {
    EXPECT_EQ(swapped.tenants[i].totals, straight.tenants[i].totals) << i;
    EXPECT_EQ(swapped.tenants[i].totals.latency.p99(),
              straight.tenants[i].totals.latency.p99())
        << i;
  }
  EXPECT_EQ(swapped.aggregate, straight.aggregate);
  EXPECT_GT(swapped.lifecycle.swap_outs, 0);  // the shedding actually happened
}

TEST(ServingLatency, SwapImageCarriesHistogramState) {
  // Codec-level check (v2 layout): a snapshot with a populated histogram
  // survives pack -> unpack bit-for-bit, and a bucket-count mismatch is a
  // detected corruption, not a silent misparse.
  session::SessionSnapshot snap;
  snap.engine.channel_heads = {1, 2};
  snap.engine.channel_sizes = {3, 4};
  snap.engine.fired = {5, 6, 7};
  snap.totals.firings = 40;
  snap.totals.cost = 1234;
  for (std::int64_t v : {0, 1, 7, 64, 900, 4097}) snap.totals.latency.record(v);
  snap.steps = 9;
  const session::SwapImage image = session::SwapImage::pack(snap);
  const session::SessionSnapshot back = image.unpack();
  EXPECT_EQ(back, snap);
  EXPECT_EQ(back.totals.latency.p99(), snap.totals.latency.p99());
  EXPECT_EQ(back.totals.cost, 1234);
}

TEST(ServingLatency, SloAttainmentIsReportedPerTenant) {
  const Scenario s = make_scenario();
  ClusterOptions opts;
  opts.workers = 2;
  opts.cost_model = "two-level";
  opts.slo_p99 = 1;  // impossible target: every tenant must violate it
  const ClusterReport tight = run_scenario(s, opts, /*threads=*/false);
  EXPECT_EQ(tight.slo_p99, 1);
  for (const ClusterTenantReport& t : tight.tenants) {
    EXPECT_GT(t.totals.latency.p99(), tight.slo_p99);
  }
}

}  // namespace
}  // namespace ccs::core
