// E7 -- batch granularity T on inhomogeneous graphs (Section 3).
//
// The T-granularity scheduler may pick any legal T (divisibility + at least
// M tokens per cross edge); larger T means larger cross buffers but more
// amortization of component loads. Sweep the T multiplier on a multirate
// pipeline. Expected shape: misses/output decreases slightly then flattens
// (state term ~1/T), while buffer memory grows linearly in T -- the paper's
// reason to leave buffer minimization "an interesting open problem".

#include "bench/common.h"
#include "partition/pipeline_dp.h"
#include "schedule/partitioned.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t outputs = 4096;
  Rng rng(707);
  const auto g = workloads::random_pipeline(20, 64, 300, 3, rng);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * m);

  Table t("E7: T multiplier sweep on a multirate pipeline (M=512, B=8, sim 8M)");
  t.set_header({"T mult", "batch T", "buffer words", "misses/output"});
  for (const std::int64_t mult : {1, 2, 4, 8}) {
    schedule::PartitionedOptions sopts;
    sopts.m = m;
    sopts.t_multiplier = mult;
    const auto sched = schedule::partitioned_schedule(g, dp.partition, sopts);
    const auto r = bench::run(g, sched, 8 * m, b, outputs);
    t.add_row({Table::num(mult), Table::num(schedule::compute_batch_t(g, sopts)),
               Table::num(sched.total_buffer_words()),
               Table::num(r.misses_per_output(), 3)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
