#include "partition/partition.h"

#include <algorithm>

#include "sdf/topology.h"
#include "util/contracts.h"
#include "util/error.h"

namespace ccs::partition {

Partition Partition::from_components(const sdf::SdfGraph& g,
                                     const std::vector<std::vector<sdf::NodeId>>& comps) {
  Partition p;
  p.num_components = static_cast<std::int32_t>(comps.size());
  p.assignment.assign(static_cast<std::size_t>(g.node_count()), -1);
  for (std::size_t c = 0; c < comps.size(); ++c) {
    if (comps[c].empty()) throw Error("component " + std::to_string(c) + " is empty");
    for (const sdf::NodeId v : comps[c]) {
      if (v < 0 || v >= g.node_count()) throw Error("component node id out of range");
      if (p.assignment[static_cast<std::size_t>(v)] != -1) {
        throw Error("node '" + g.node(v).name + "' assigned to two components");
      }
      p.assignment[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(c);
    }
  }
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    if (p.assignment[static_cast<std::size_t>(v)] == -1) {
      throw Error("node '" + g.node(v).name + "' not covered by any component");
    }
  }
  return p;
}

Partition Partition::singletons(const sdf::SdfGraph& g) {
  Partition p;
  p.num_components = g.node_count();
  p.assignment.resize(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    p.assignment[static_cast<std::size_t>(v)] = v;
  }
  return p;
}

Partition Partition::whole(const sdf::SdfGraph& g) {
  Partition p;
  p.num_components = 1;
  p.assignment.assign(static_cast<std::size_t>(g.node_count()), 0);
  return p;
}

std::vector<std::vector<sdf::NodeId>> Partition::components() const {
  std::vector<std::vector<sdf::NodeId>> comps(static_cast<std::size_t>(num_components));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    comps[static_cast<std::size_t>(assignment[v])].push_back(static_cast<sdf::NodeId>(v));
  }
  return comps;
}

Rational bandwidth(const sdf::SdfGraph& g, const sdf::GainMap& gains, const Partition& p) {
  Rational total(0);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    if (p.comp(edge.src) != p.comp(edge.dst)) total += gains.edge_gain(e);
  }
  return total;
}

std::vector<std::int64_t> component_states(const sdf::SdfGraph& g, const Partition& p) {
  std::vector<std::int64_t> states(static_cast<std::size_t>(p.num_components), 0);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    states[static_cast<std::size_t>(p.comp(v))] += g.node(v).state;
  }
  return states;
}

std::int64_t max_component_state(const sdf::SdfGraph& g, const Partition& p) {
  const auto states = component_states(g, p);
  return states.empty() ? 0 : *std::max_element(states.begin(), states.end());
}

std::vector<std::int32_t> component_degrees(const sdf::SdfGraph& g, const Partition& p) {
  std::vector<std::int32_t> degrees(static_cast<std::size_t>(p.num_components), 0);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    const std::int32_t cs = p.comp(edge.src);
    const std::int32_t cd = p.comp(edge.dst);
    if (cs != cd) {
      ++degrees[static_cast<std::size_t>(cs)];
      ++degrees[static_cast<std::size_t>(cd)];
    }
  }
  return degrees;
}

std::int32_t max_component_degree(const sdf::SdfGraph& g, const Partition& p) {
  const auto degrees = component_degrees(g, p);
  return degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());
}

bool is_well_ordered(const sdf::SdfGraph& g, const Partition& p) {
  return sdf::contraction_is_acyclic(g, p.assignment, p.num_components);
}

bool is_bounded(const sdf::SdfGraph& g, const Partition& p, std::int64_t state_bound) {
  return max_component_state(g, p) <= state_bound;
}

std::vector<std::string> validate_partition(const sdf::SdfGraph& g, const Partition& p) {
  std::vector<std::string> problems;
  if (p.assignment.size() != static_cast<std::size_t>(g.node_count())) {
    problems.push_back("assignment size != node count");
    return problems;
  }
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(std::max(p.num_components, 1)), 0);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    const std::int32_t c = p.comp(v);
    if (c < 0 || c >= p.num_components) {
      problems.push_back("node '" + g.node(v).name + "' has component id " +
                         std::to_string(c) + " outside [0, " +
                         std::to_string(p.num_components) + ")");
    } else {
      ++sizes[static_cast<std::size_t>(c)];
    }
  }
  for (std::int32_t c = 0; c < p.num_components; ++c) {
    if (sizes[static_cast<std::size_t>(c)] == 0) {
      problems.push_back("component " + std::to_string(c) + " is empty");
    }
  }
  return problems;
}

Partition renumber_topological(const sdf::SdfGraph& g, const Partition& p) {
  CCS_EXPECTS(is_well_ordered(g, p), "cannot topologically order a non-well-ordered partition");
  // Kahn's algorithm over the contracted dag, smallest old id first for
  // determinism.
  const auto cross = sdf::contract(g, p.assignment, p.num_components);
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(p.num_components));
  std::vector<std::int32_t> indegree(static_cast<std::size_t>(p.num_components), 0);
  for (const auto& ce : cross) {
    adj[static_cast<std::size_t>(ce.src_comp)].push_back(ce.dst_comp);
    ++indegree[static_cast<std::size_t>(ce.dst_comp)];
  }
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> ready;
  for (std::int32_t c = p.num_components - 1; c >= 0; --c) {
    if (indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
  }
  while (!ready.empty()) {
    std::sort(ready.rbegin(), ready.rend());
    const std::int32_t c = ready.back();
    ready.pop_back();
    order.push_back(c);
    for (const std::int32_t d : adj[static_cast<std::size_t>(c)]) {
      if (--indegree[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  CCS_CHECK(static_cast<std::int32_t>(order.size()) == p.num_components,
            "contracted graph must be acyclic");

  std::vector<std::int32_t> new_id(static_cast<std::size_t>(p.num_components));
  for (std::size_t i = 0; i < order.size(); ++i) {
    new_id[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  Partition out;
  out.num_components = p.num_components;
  out.assignment.resize(p.assignment.size());
  for (std::size_t v = 0; v < p.assignment.size(); ++v) {
    out.assignment[v] = new_id[static_cast<std::size_t>(p.assignment[v])];
  }
  return out;
}

PartitionQuality measure(const sdf::SdfGraph& g, const sdf::GainMap& gains,
                         const Partition& p) {
  PartitionQuality q;
  q.bandwidth = bandwidth(g, gains, p);
  q.max_state = max_component_state(g, p);
  q.max_degree = max_component_degree(g, p);
  q.num_components = p.num_components;
  q.well_ordered = is_well_ordered(g, p);
  return q;
}

}  // namespace ccs::partition
