#include "sdf/graph.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace ccs::sdf {
namespace {

TEST(SdfGraph, AddNodesAndEdges) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 10);
  const NodeId b = g.add_node("b", 20);
  const EdgeId e = g.add_edge(a, b, 2, 3);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.node(a).name, "a");
  EXPECT_EQ(g.node(b).state, 20);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_EQ(g.edge(e).out_rate, 2);
  EXPECT_EQ(g.edge(e).in_rate, 3);
}

TEST(SdfGraph, AdjacencyLists) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId c = g.add_node("c", 1);
  const EdgeId ab = g.add_edge(a, b, 1, 1);
  const EdgeId ac = g.add_edge(a, c, 1, 1);
  const EdgeId bc = g.add_edge(b, c, 1, 1);
  EXPECT_EQ(g.out_edges(a), (std::vector<EdgeId>{ab, ac}));
  EXPECT_EQ(g.in_edges(c), (std::vector<EdgeId>{ac, bc}));
  EXPECT_TRUE(g.in_edges(a).empty());
  EXPECT_TRUE(g.out_edges(c).empty());
}

TEST(SdfGraph, ParallelEdgesAllowed) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, b, 2, 2);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.out_edges(a).size(), 2u);
}

TEST(SdfGraph, DuplicateNameThrows) {
  SdfGraph g;
  g.add_node("a", 1);
  EXPECT_THROW(g.add_node("a", 2), GraphError);
}

TEST(SdfGraph, EmptyNameThrows) {
  SdfGraph g;
  EXPECT_THROW(g.add_node("", 1), GraphError);
}

TEST(SdfGraph, NegativeStateThrows) {
  SdfGraph g;
  EXPECT_THROW(g.add_node("a", -1), GraphError);
}

TEST(SdfGraph, SelfLoopThrows) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  EXPECT_THROW(g.add_edge(a, a, 1, 1), GraphError);
}

TEST(SdfGraph, NonPositiveRatesThrow) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  EXPECT_THROW(g.add_edge(a, b, 0, 1), RateError);
  EXPECT_THROW(g.add_edge(a, b, 1, -2), RateError);
}

TEST(SdfGraph, BadEndpointThrows) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  EXPECT_THROW(g.add_edge(a, 5, 1, 1), GraphError);
  EXPECT_THROW(g.add_edge(-1, a, 1, 1), GraphError);
}

TEST(SdfGraph, FindNode) {
  SdfGraph g;
  const NodeId a = g.add_node("alpha", 1);
  EXPECT_EQ(g.find_node("alpha"), a);
  EXPECT_EQ(g.find_node("beta"), kInvalidNode);
}

TEST(SdfGraph, SourcesAndSinks) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId c = g.add_node("c", 1);
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 1, 1);
  EXPECT_EQ(g.sources(), std::vector<NodeId>{a});
  EXPECT_EQ(g.sinks(), std::vector<NodeId>{c});
}

TEST(SdfGraph, TotalAndMaxState) {
  SdfGraph g;
  g.add_node("a", 10);
  g.add_node("b", 30);
  g.add_node("c", 20);
  EXPECT_EQ(g.total_state(), 60);
  EXPECT_EQ(g.max_state(), 30);
}

TEST(SdfGraph, PipelineDetection) {
  SdfGraph chain;
  const NodeId a = chain.add_node("a", 1);
  const NodeId b = chain.add_node("b", 1);
  const NodeId c = chain.add_node("c", 1);
  chain.add_edge(a, b, 1, 1);
  chain.add_edge(b, c, 1, 1);
  EXPECT_TRUE(chain.is_pipeline());

  SdfGraph vee;
  const NodeId x = vee.add_node("x", 1);
  const NodeId y = vee.add_node("y", 1);
  const NodeId z = vee.add_node("z", 1);
  vee.add_edge(x, z, 1, 1);
  vee.add_edge(y, z, 1, 1);
  EXPECT_FALSE(vee.is_pipeline());

  SdfGraph empty;
  EXPECT_FALSE(empty.is_pipeline());
}

TEST(SdfGraph, HomogeneousDetection) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 1, 1);
  EXPECT_TRUE(g.is_homogeneous());
  const NodeId c = g.add_node("c", 1);
  g.add_edge(b, c, 2, 1);
  EXPECT_FALSE(g.is_homogeneous());
}

TEST(SdfGraph, StreamOperatorSummarizes) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 5);
  const NodeId b = g.add_node("b", 5);
  g.add_edge(a, b, 1, 1);
  std::ostringstream os;
  os << g;
  EXPECT_NE(os.str().find("n=2"), std::string::npos);
  EXPECT_NE(os.str().find("pipeline"), std::string::npos);
}

TEST(SdfGraph, OutOfRangeAccessThrows) {
  SdfGraph g;
  g.add_node("a", 1);
  EXPECT_THROW(g.node(3), ContractViolation);
  EXPECT_THROW(g.edge(0), ContractViolation);
}

}  // namespace
}  // namespace ccs::sdf
