#include "iomodel/layout.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace ccs::iomodel {
namespace {

TEST(Layout, AllocationsAreDisjointAndAligned) {
  MemoryLayout layout(8);
  const Region a = layout.allocate(10, "a");
  const Region b = layout.allocate(5, "b");
  EXPECT_EQ(a.base, 0);
  EXPECT_EQ(a.words, 10);
  EXPECT_EQ(b.base, 16);  // 10 rounded up to block boundary
  EXPECT_EQ(b.words, 5);
  EXPECT_EQ(b.base % 8, 0);
}

TEST(Layout, ZeroSizeRegionsAllowed) {
  MemoryLayout layout(8);
  const Region z = layout.allocate(0, "z");
  EXPECT_EQ(z.words, 0);
  const Region a = layout.allocate(4, "a");
  EXPECT_EQ(a.base, 0);  // zero region consumed no space
}

TEST(Layout, FootprintTracksCursor) {
  MemoryLayout layout(8);
  layout.allocate(3, "a");
  EXPECT_EQ(layout.footprint(), 3);
  layout.allocate(8, "b");  // aligned: starts at 8
  EXPECT_EQ(layout.footprint(), 16);
  EXPECT_EQ(layout.regions(), 2u);
}

TEST(Layout, PackedRegionsShareBlocks) {
  MemoryLayout layout(8);
  const Region a = layout.allocate(3, "a", /*block_align=*/false);
  const Region b = layout.allocate(3, "b", /*block_align=*/false);
  EXPECT_EQ(a.base, 0);
  EXPECT_EQ(b.base, 3);  // no padding between packed regions
  EXPECT_EQ(layout.footprint(), 6);
}

TEST(Layout, PackedThenAlignedRealigns) {
  MemoryLayout layout(8);
  layout.allocate(3, "packed", /*block_align=*/false);
  const Region aligned = layout.allocate(4, "aligned");
  EXPECT_EQ(aligned.base, 8);
  EXPECT_EQ(aligned.base % 8, 0);
}

TEST(Layout, LabelLookup) {
  MemoryLayout layout(8);
  layout.allocate(8, "state:foo");
  layout.allocate(8, "buf:foo>bar");
  EXPECT_EQ(layout.label_at(3), "state:foo");
  EXPECT_EQ(layout.label_at(9), "buf:foo>bar");
  EXPECT_EQ(layout.label_at(1000), "");
}

TEST(Layout, RegionContains) {
  const Region r{8, 4};
  EXPECT_TRUE(r.contains(8));
  EXPECT_TRUE(r.contains(11));
  EXPECT_FALSE(r.contains(12));
  EXPECT_FALSE(r.contains(7));
  EXPECT_EQ(r.end(), 12);
}

TEST(Layout, RejectsNegativeSize) {
  MemoryLayout layout(8);
  EXPECT_THROW(layout.allocate(-1, "bad"), ContractViolation);
}

}  // namespace
}  // namespace ccs::iomodel
