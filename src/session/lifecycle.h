// Session lifecycle accounting: sessions as a managed, bounded resource.
//
// The serving layers (core::Server, core::Cluster) historically held every
// admitted Stream's engine, channels, and queues live forever -- memory was
// O(ever-admitted), which caps the "millions of users" goal. This layer
// names the lifecycle states a session moves through and counts them, so
// the O(live) claim is machine-checkable from report JSON:
//
//     admit()            step()/push() idle      SwapManager evict
//   ┌────────┐  work   ┌────────┐   quiescent  ┌─────────┐
//   │  LIVE  │ ◄─────► │  IDLE  │ ───────────► │ SWAPPED │
//   └────────┘         └────────┘              └─────────┘
//        │                  ▲     rehydrate on      │
//        │ close()          └──────────────────────-┘
//        ▼                       next push()
//   ┌────────┐
//   │ CLOSED │   (id retired forever; band reusable)
//   └────────┘
//
// LIVE and IDLE sessions are *resident*: their Stream (engine + channel
// rings + counters) occupies host memory and their layout occupies a
// simulated address band. A SWAPPED session is a compact byte image
// (session::SwapImage) plus the construction inputs needed to rebuild the
// Stream; a CLOSED session is a row in an aggregate and nothing else.
#pragma once

#include <cstdint>
#include <string>

namespace ccs::session {

/// Where a session is in its lifecycle. Resident = kLive or kIdle.
enum class SessionState : std::uint8_t {
  kLive,     ///< Resident and recently making progress.
  kIdle,     ///< Resident but blocked (no arrivals / no space) -- swap candidate.
  kSwapped,  ///< Serialized to a SwapImage; rehydrated on the next push().
  kClosed,   ///< Retired; the id is rejected forever, the band is reusable.
};

/// Human-readable state name ("live", "idle", "swapped", "closed").
std::string to_string(SessionState state);

/// Lifecycle counters for one serving endpoint (a Server, or a Cluster's
/// aggregate). All counts are exact and deterministic; the report JSON
/// writes them verbatim, so repeat-run byte-diffs cover them.
struct LifecycleCounters {
  std::int64_t sessions_opened = 0;  ///< admit() calls that produced a session.
  std::int64_t sessions_closed = 0;  ///< close() calls (ids retired forever).
  std::int64_t live_sessions = 0;    ///< Resident right now (live + idle).
  std::int64_t swapped_sessions = 0; ///< Swapped out right now.
  std::int64_t peak_live = 0;        ///< Max resident at any instant.

  /// Simulated words of state + channel rings across resident sessions:
  /// the O(live) quantity. Swapped and closed sessions contribute zero.
  std::int64_t resident_words = 0;
  std::int64_t peak_resident_words = 0;

  std::int64_t swap_outs = 0;  ///< Evictions to the swap tier.
  std::int64_t swap_ins = 0;   ///< Rehydrations from the swap tier.

  /// Admissions refused outright by the policy (no victim available, or
  /// the swap tier is disabled).
  std::int64_t admissions_rejected = 0;

  /// Admissions that succeeded only after evicting an idle victim -- the
  /// "queued behind a swap" count.
  std::int64_t admissions_queued = 0;

  /// A session became resident (admit or swap-in), occupying `words`.
  void on_resident(std::int64_t words) {
    ++live_sessions;
    resident_words += words;
    if (live_sessions > peak_live) peak_live = live_sessions;
    if (resident_words > peak_resident_words) peak_resident_words = resident_words;
  }

  /// A resident session left residency (swap-out or close), freeing `words`.
  void on_nonresident(std::int64_t words) {
    --live_sessions;
    resident_words -= words;
  }

  friend bool operator==(const LifecycleCounters&, const LifecycleCounters&) = default;
};

}  // namespace ccs::session
