// Online (dynamic) pipeline scheduling: the half-full/half-empty rule from
// Section 3 of the paper, where no output count is fixed in advance.
//
//   $ ./online_pipeline [--stages=16] [--state=300] [--cache-words=1024]
//
// Demonstrates: the dynamic scheduler, its equivalence in cost to the static
// batch scheduler (Section 4's "Producing an optimal dynamic schedule"), and
// the buffer sizing that makes some component always schedulable.

#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "schedule/dynamic.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("online_pipeline", "static batch vs dynamic scheduling of one pipeline");
  args.add_int("stages", 16, "pipeline length");
  args.add_int("state", 300, "words of state per module");
  args.add_int("cache-words", 1024, "cache size M in words");
  args.add_int("outputs", 8192, "sink firings to simulate");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::uniform_pipeline(
        static_cast<std::int32_t>(args.get_int("stages")), args.get_int("state"));
    const std::int64_t m = args.get_int("cache-words");
    const std::int64_t outputs = args.get_int("outputs");

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = 8;
    const core::Planner planner(g, opts);
    const auto plan = planner.plan("pipeline-dp");
    std::cout << "pipeline: " << g << "\n"
              << "optimal partition: " << plan.partition.num_components
              << " segments, bandwidth " << plan.partition_bandwidth << "\n\n";

    const auto& batch = plan.schedule;
    const auto dynamic = schedule::dynamic_pipeline_schedule(g, plan.partition, m, outputs);

    const iomodel::CacheConfig sim{4 * m, 8};
    const auto r_batch = core::simulate(g, batch, sim, outputs);
    const auto r_dyn = core::simulate(g, dynamic, sim, outputs);

    Table t("static batch vs dynamic (M=" + std::to_string(m) + ", " +
            std::to_string(outputs) + " outputs)");
    t.set_header({"scheduler", "buffer words", "misses", "misses/output"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
    t.add_row({batch.name, Table::num(batch.total_buffer_words()),
               Table::num(r_batch.cache.misses), Table::num(r_batch.misses_per_output(), 3)});
    t.add_row({dynamic.name, Table::num(dynamic.total_buffer_words()),
               Table::num(r_dyn.cache.misses), Table::num(r_dyn.misses_per_output(), 3)});
    t.print(std::cout);
    std::cout << "\nThe dynamic schedule needs no a-priori output count yet lands within a\n"
                 "constant factor of the batch schedule, as Section 4 predicts.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
