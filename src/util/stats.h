// Streaming summary statistics for experiment harnesses.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ccs {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::int64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of positive values; returns 0 for an empty range.
double geometric_mean(const std::vector<double>& values);

/// Median (of a copy; input unmodified). Returns 0 for an empty range.
double median(std::vector<double> values);

/// Busy-time balance of a worker pool: worst worker / average over `busy`
/// (1.0 = perfect balance). An idle pool -- empty, or zero busy time
/// everywhere -- reports 0.0, the only finite reading of "never ran". The
/// single definition behind schedule::ParallelResult::imbalance and
/// core::ClusterReport::imbalance.
double busy_imbalance(const std::vector<std::int64_t>& busy);

}  // namespace ccs
