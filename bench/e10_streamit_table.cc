// E10 -- the headline per-application table.
//
// Every StreamIt-style app at one fixed geometry: partition statistics
// (components, bandwidth, batch T) and the naive-vs-partitioned miss
// reduction. This is the shape of the summary tables in the empirical
// cache-aware-scheduling literature the paper cites [15, 21, 25]; Moonen et
// al. report >4x reductions on a real multimedia workload, and the
// partitioned scheduler should land in that territory on the apps whose
// state far exceeds the cache.

#include "bench/common.h"
#include "schedule/naive.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t b = 8;
  const std::int64_t outputs = 1024;

  Table t("E10: per-app summary (M = max(total/6, max module), B=8, sim 4M)");
  t.set_header({"app", "modules", "state", "M", "comps", "bandwidth", "batch T",
                "naive", "partitioned", "reduction"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& app : workloads::streamit_suite()) {
    const auto& g = app.graph;
    const std::int64_t m = std::max(g.total_state() / 6, g.max_state());
    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const auto r_naive =
        bench::run(g, schedule::naive_minimal_buffer_schedule(g), 4 * m, b, outputs);
    const auto r_part = bench::run(g, plan.schedule, 4 * m, b, outputs);
    t.add_row({app.name, Table::num(static_cast<std::int64_t>(g.node_count())),
               Table::num(g.total_state()), Table::num(m),
               Table::num(static_cast<std::int64_t>(plan.partition.num_components)),
               plan.partition_bandwidth.to_string(), Table::num(plan.batch_t),
               Table::num(r_naive.misses_per_output(), 2),
               Table::num(r_part.misses_per_output(), 2),
               bench::safe_ratio(r_naive.misses_per_output(), r_part.misses_per_output(), 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
