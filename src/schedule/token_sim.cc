#include "schedule/token_sim.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::schedule {

TokenSim::TokenSim(const sdf::SdfGraph& g, std::span<const std::int64_t> caps)
    : graph_(&g), caps_(caps.begin(), caps.end()) {
  CCS_EXPECTS(caps.size() == static_cast<std::size_t>(g.edge_count()),
              "one capacity per edge required");
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    if (caps_[static_cast<std::size_t>(e)] < std::max(edge.out_rate, edge.in_rate)) {
      throw ScheduleError("capacity of edge " + std::to_string(e) +
                          " cannot hold a single burst");
    }
  }
  tokens_.assign(static_cast<std::size_t>(g.edge_count()), 0);
  peak_.assign(static_cast<std::size_t>(g.edge_count()), 0);
  fired_.assign(static_cast<std::size_t>(g.node_count()), 0);
}

bool TokenSim::can_fire(sdf::NodeId v) const { return max_batch(v, 1) >= 1; }

std::int64_t TokenSim::max_batch(sdf::NodeId v, std::int64_t limit) const {
  CCS_EXPECTS(v >= 0 && v < graph_->node_count(), "node id out of range");
  std::int64_t batch = limit;
  for (const sdf::EdgeId e : graph_->in_edges(v)) {
    batch = std::min(batch, tokens(e) / graph_->edge(e).in_rate);
  }
  for (const sdf::EdgeId e : graph_->out_edges(v)) {
    batch = std::min(batch, space(e) / graph_->edge(e).out_rate);
  }
  return std::max<std::int64_t>(batch, 0);
}

void TokenSim::fire(sdf::NodeId v, std::int64_t count) {
  CCS_EXPECTS(count >= 0, "negative firing count");
  if (max_batch(v, count) < count) {
    throw ScheduleError("module '" + graph_->node(v).name + "' cannot fire " +
                        std::to_string(count) + " time(s)");
  }
  for (const sdf::EdgeId e : graph_->in_edges(v)) {
    tokens_[static_cast<std::size_t>(e)] -= count * graph_->edge(e).in_rate;
  }
  for (const sdf::EdgeId e : graph_->out_edges(v)) {
    auto& t = tokens_[static_cast<std::size_t>(e)];
    t += count * graph_->edge(e).out_rate;
    peak_[static_cast<std::size_t>(e)] = std::max(peak_[static_cast<std::size_t>(e)], t);
  }
  fired_[static_cast<std::size_t>(v)] += count;
}

bool TokenSim::drained() const {
  return std::all_of(tokens_.begin(), tokens_.end(),
                     [](std::int64_t t) { return t == 0; });
}

}  // namespace ccs::schedule
