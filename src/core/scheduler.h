// CacheConsciousScheduler -- the library's one-call public facade.
//
// This is the paper's contribution packaged as an API: give it a streaming
// graph and a cache geometry, and it (1) validates the graph against the
// paper's model assumptions, (2) picks and runs a partitioner, (3) builds
// the two-level partitioned schedule, (4) predicts its cost (Lemma 4/8) and
// computes the matching lower bound, and (5) can execute any schedule on
// the simulated cache for measurement.
//
//   using namespace ccs;
//   core::PlannerOptions opts;
//   opts.cache.capacity_words = 32 * 1024;
//   core::Plan plan = core::plan(graph, opts);
//   runtime::RunResult r = core::simulate(graph, plan.schedule, opts.cache,
//                                         /*target_outputs=*/100000);
//   std::cout << r.misses_per_input() << " vs predicted "
//             << plan.predicted.misses_per_input << "\n";
#pragma once

#include <cstdint>
#include <string>

#include "analysis/cost_model.h"
#include "analysis/lower_bound.h"
#include "iomodel/types.h"
#include "partition/partition.h"
#include "runtime/engine.h"
#include "runtime/run_result.h"
#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::core {

/// Which partitioner drives the plan.
enum class PartitionerKind {
  kAuto,            ///< DP for pipelines, exact for small dags, refined greedy else.
  kPipelineDp,      ///< Optimal pipeline segmentation (poly time).
  kPipelineGreedy,  ///< Theorem 5 accretion + gain-min cuts.
  kDagGreedy,       ///< Topological first-fit packing.
  kDagGreedyGain,   ///< Packing with gain-aware boundary retreat.
  kDagRefined,      ///< Best of both greedy starts + FM-style local search.
  kAgglomerative,   ///< Heavy-edge clustering + refinement.
  kExact,           ///< Exponential ideal DP (small graphs only).
};

/// Planning knobs.
struct PlannerOptions {
  iomodel::CacheConfig cache;          ///< M (words) and B (words/block).
  double c_bound = 3.0;                ///< Components hold at most c*M state.
  PartitionerKind partitioner = PartitionerKind::kAuto;
  std::int64_t t_multiplier = 1;       ///< Batch scaling beyond the legal minimum.
  std::int32_t exact_max_nodes = 20;   ///< kAuto switches off exact above this.
};

/// Everything the planner decided, plus its cost predictions.
struct Plan {
  partition::Partition partition;
  schedule::Schedule schedule;
  analysis::CostPrediction predicted;
  Rational partition_bandwidth;        ///< bandwidth(P) of the chosen partition.
  std::string partitioner_name;        ///< For tables ("pipeline-dp", ...).
  std::int64_t batch_t = 0;            ///< Source firings per batch.
};

/// Builds a complete plan. Throws GraphError/RateError for graphs outside
/// the paper's model, MemoryError for a degenerate cache geometry (zero or
/// negative capacity, cache smaller than one block), and ccs::Error when no
/// c-bounded partition exists.
Plan plan(const sdf::SdfGraph& g, const PlannerOptions& options);

/// Executes a schedule (any scheduler's) on a fresh fully-associative LRU
/// cache of the given geometry until at least `target_outputs` sink firings,
/// returning accumulated counters. Throws MemoryError for a degenerate
/// cache geometry (same check as plan).
runtime::RunResult simulate(const sdf::SdfGraph& g, const schedule::Schedule& s,
                            const iomodel::CacheConfig& cache_config,
                            std::int64_t target_outputs,
                            runtime::EngineOptions engine_options = {});

/// Sums the counters of two runs (for accumulating across periods).
runtime::RunResult merge(runtime::RunResult a, const runtime::RunResult& b);

/// Multi-line human-readable report of a plan: partition composition,
/// batch parameters, buffer budget, predicted cost, and the assumptions
/// the plan relies on. Intended for logs and tooling output.
std::string explain(const sdf::SdfGraph& g, const Plan& plan);

}  // namespace ccs::core
