// Annotated mutex wrappers for clang thread-safety analysis.
//
// std::mutex from libstdc++ carries no capability attribute, so code that
// wants -Wthread-safety coverage wraps it: ccs::Mutex is a std::mutex
// declared as a CCS_CAPABILITY and ccs::MutexLock is the corresponding
// scoped lock. Both compile to exactly the std:: equivalents (every method
// is a one-line inline forward), so converting a class from std::mutex /
// std::lock_guard to Mutex / MutexLock changes nothing at runtime -- it
// only turns lock misuse into a compile error on clang.
#pragma once

#include <mutex>

#include "util/thread_annotations.h"

namespace ccs {

/// std::mutex as a thread-safety-analysis capability.
class CCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CCS_ACQUIRE() { m_.lock(); }
  void unlock() CCS_RELEASE() { m_.unlock(); }
  bool try_lock() CCS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard over a ccs::Mutex, visible to the analysis.
class CCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CCS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ccs
