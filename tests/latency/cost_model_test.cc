// latency::CostModel and its registry: the uniform strict-extension
// baseline, the collapsed two-level coefficients, the llc-shared
// configuration-only contention surcharge, and the linearity contract that
// lets per-call cache pricing agree with whole-window pricing exactly.

#include "latency/cost_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "iomodel/cache.h"
#include "util/contracts.h"
#include "util/error.h"

namespace ccs::latency {
namespace {

iomodel::CacheStats delta(std::int64_t accesses, std::int64_t hits,
                          std::int64_t misses, std::int64_t writebacks) {
  iomodel::CacheStats s;
  s.accesses = accesses;
  s.hits = hits;
  s.misses = misses;
  s.writebacks = writebacks;
  return s;
}

TEST(CostModel, DefaultIsUniformCostEqualsFirings) {
  const CostModel m;
  EXPECT_EQ(m.key(), "uniform");
  EXPECT_TRUE(m.trivial());
  EXPECT_FALSE(m.access_costs().any());
  // Cache traffic is free under uniform: cost is exactly the firing count,
  // which is what keeps pre-latency virtual time bit-identical.
  EXPECT_EQ(m.step_cost(0, delta(100, 60, 40, 10)), 0);
  EXPECT_EQ(m.step_cost(17, delta(100, 60, 40, 10)), 17);
}

TEST(CostModel, TwoLevelCollapsesDeeperLevelsIntoMissSurcharge) {
  const CostModel m = CostModelRegistry::global().build("two-level", {});
  EXPECT_FALSE(m.trivial());
  // L1{lookup 1, hit 1, wb 4}; deeper{lookup 10, miss 20} folds to +30 per
  // L1 miss: 2 firings + 10*1 + 7*1 + 3*30 + 1*4 = 113.
  EXPECT_EQ(m.step_cost(2, delta(10, 7, 3, 1)), 113);
  // Pricing is per-counter linear: an empty window costs only the firings.
  EXPECT_EQ(m.step_cost(5, {}), 5);
}

TEST(CostModel, LlcSharedSurchargeIsPureConfiguration) {
  CostContext ctx;
  ctx.workers = 4;
  ctx.llc_shards = 2;
  ctx.has_llc = true;
  const CostModel sharded = CostModelRegistry::global().build("llc-shared", ctx);
  // ceil((4-1)/2) = 2 contenders x 4 cycles = +8 per miss over two-level's
  // 30: one miss costs 1 (lookup) + 38.
  EXPECT_EQ(sharded.step_cost(0, delta(1, 0, 1, 0)), 39);

  // A flat single-mutex LLC is one stripe: ceil(3/1) = 3 contenders, +12.
  ctx.llc_shards = 0;
  const CostModel flat = CostModelRegistry::global().build("llc-shared", ctx);
  EXPECT_EQ(flat.step_cost(0, delta(1, 0, 1, 0)), 43);

  // No LLC (or a single worker): nothing to contend on; prices exactly
  // like two-level.
  ctx.has_llc = false;
  const CostModel none = CostModelRegistry::global().build("llc-shared", ctx);
  const CostModel two = CostModelRegistry::global().build("two-level", ctx);
  EXPECT_EQ(none.step_cost(3, delta(10, 7, 3, 1)),
            two.step_cost(3, delta(10, 7, 3, 1)));

  ctx.has_llc = true;
  ctx.workers = 1;
  ctx.llc_shards = 4;
  const CostModel solo = CostModelRegistry::global().build("llc-shared", ctx);
  EXPECT_EQ(solo.step_cost(0, delta(1, 0, 1, 0)), 31);

  // Deterministic: the same configuration always builds the same pricing.
  EXPECT_EQ(sharded.step_cost(9, delta(50, 30, 20, 5)),
            CostModelRegistry::global()
                .build("llc-shared", {4, 2, true})
                .step_cost(9, delta(50, 30, 20, 5)));
}

TEST(CostModel, RegistryListsBuiltinsAndRejectsUnknownKeys) {
  const CostModelRegistry& r = CostModelRegistry::global();
  for (const char* key : {"uniform", "two-level", "llc-shared"}) {
    EXPECT_TRUE(r.contains(key)) << key;
    EXPECT_FALSE(r.find(key).description.empty()) << key;
    EXPECT_EQ(r.build(key, {}).key(), key);
  }
  EXPECT_THROW(r.build("bogus", {}), Error);
}

TEST(CostModel, RejectsNegativeCycleCosts) {
  EXPECT_THROW(CostModel("bad", -1, {}, 0), ContractViolation);
  EXPECT_THROW(CostModel("bad", 1, {}, -1), ContractViolation);
  EXPECT_THROW(CostModel("bad", 1, {{-1, 0, 0, 0}}, 0), ContractViolation);
  EXPECT_THROW(CostModel("bad", 1, {{1, 1, 0, 4}, {0, 0, -5, 0}}, 0),
               ContractViolation);
}

TEST(CostModel, PerCallCachePricesSumToTheWindowPrice) {
  // The linearity contract end to end: attach a model's coefficients to a
  // real LruCache, make several bulk calls, and the per-call costs the
  // cache returns must sum exactly to pricing the whole window's delta.
  const CostModel m = CostModelRegistry::global().build("two-level", {});
  iomodel::LruCache cache({/*capacity_words=*/256, /*block_words=*/8});
  cache.set_access_costs(m.access_costs());

  const iomodel::CacheStats before = cache.stats();
  std::int64_t per_call = 0;
  for (std::int64_t round = 0; round < 4; ++round) {
    // Overlapping strides: some hits, some misses, and capacity evictions.
    per_call += cache.access_span(round * 128, 512,
                                  round % 2 == 1 ? iomodel::AccessMode::kWrite
                                                 : iomodel::AccessMode::kRead);
    per_call += cache.access_span(0, 64, iomodel::AccessMode::kRead);
  }
  const iomodel::CacheStats after = cache.stats();
  const iomodel::CacheStats window = delta(
      after.accesses - before.accesses, after.hits - before.hits,
      after.misses - before.misses, after.writebacks - before.writebacks);
  EXPECT_GT(per_call, 0);
  EXPECT_EQ(per_call, m.access_costs().price(window));
  // step_cost adds only the firing term on top of the same linear price.
  EXPECT_EQ(m.step_cost(6, window), 6 + per_call);
}

TEST(CostModel, CostFreeCacheReturnsZeroWithoutSnapshotting) {
  // Without attached costs (the default), bulk calls return 0 -- the
  // pricing plumbing must be invisible to every pre-latency caller.
  iomodel::LruCache cache({256, 8});
  EXPECT_FALSE(cache.access_costs().any());
  EXPECT_EQ(cache.access_span(0, 512, iomodel::AccessMode::kRead), 0);
}

}  // namespace
}  // namespace ccs::latency
