// Deterministic random number generation.
//
// Every workload generator and randomized experiment takes an explicit Rng
// seeded by the caller, so any table in EXPERIMENTS.md can be regenerated
// bit-for-bit. The engine is splitmix64: tiny state, excellent distribution
// for the modest demands here, and trivially reproducible across platforms
// (unlike std::mt19937 distributions, whose mapping is unspecified).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace ccs {

/// Deterministic 64-bit PRNG (splitmix64) with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    CCS_ASSERT(lo <= hi, "uniform range inverted");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    // Rejection-free modulo is fine here: span is tiny vs 2^64, bias < 2^-40.
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    CCS_ASSERT(!v.empty(), "pick from empty vector");
    return v[static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel sub-experiments).
  Rng fork() noexcept { return Rng(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace ccs
