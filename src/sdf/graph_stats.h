// Structural statistics of streaming graphs.
//
// Used by the explorer example and experiment harness to characterize
// workloads: the partitioners' behaviour depends on depth (pipeline-ness),
// width (parallel slack), degree (the Lemma 8 degree-limited condition),
// and gain spread (how much the gain-minimizing cut rule can save).
#pragma once

#include <cstdint>
#include <iosfwd>

#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::sdf {

/// One-sweep structural summary.
struct GraphStats {
  std::int32_t nodes = 0;
  std::int32_t edges = 0;
  std::int64_t total_state = 0;
  std::int64_t max_state = 0;

  std::int32_t depth = 0;       ///< Longest source->sink path (in nodes).
  std::int32_t width = 0;       ///< Largest antichain layer (by longest-path level).
  std::int32_t max_degree = 0;  ///< Largest in+out degree of a module.

  Rational min_edge_gain{1};    ///< Smallest tokens-per-source-firing on any edge.
  Rational max_edge_gain{1};    ///< Largest.

  bool pipeline = false;
  bool homogeneous = false;
};

/// Computes all statistics. Requires an acyclic graph with a single source
/// (throws what GainMap throws).
GraphStats compute_stats(const SdfGraph& g);

/// "nodes=26 edges=34 state=1584 depth=7 width=10 deg=11 gain=[1/4,1]".
std::ostream& operator<<(std::ostream& os, const GraphStats& stats);

}  // namespace ccs::sdf
