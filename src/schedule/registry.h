// String-keyed baseline-scheduler registry.
//
// Experiment sweeps and examples compare the paper's partitioned schedule
// against the literature's cache-oblivious and cache-aware baselines. This
// registry names those whole-graph schedulers ("naive", "scaled", ...), so
// sweep specs and CLI flags can select them by key, and callers can register
// custom schedulers that then participate in every comparison. (The
// partitioned scheduler itself is not an entry: it is parameterized by a
// partition and lives behind core::Planner.) Unknown names throw a
// recoverable ccs::Error listing every valid key.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "sdf/graph.h"
#include "util/registry.h"

namespace ccs::schedule {

/// What a baseline scheduler may consult: the target cache geometry.
struct SchedulerContext {
  std::int64_t cache_words = 64 * 1024;  ///< M (words).
  std::int64_t block_words = 8;          ///< B (words per block).
};

/// A named whole-graph scheduler.
struct SchedulerEntry {
  /// Builds a periodic schedule or throws a ccs::Error subclass (e.g.
  /// GraphError from pipeline-only schedulers on a dag).
  std::function<Schedule(const sdf::SdfGraph&, const SchedulerContext&)> build;

  /// True iff the scheduler makes sense for this graph; null = always.
  std::function<bool(const sdf::SdfGraph&, const SchedulerContext&)> applicable;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed scheduler table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class Registry : public NamedRegistry<SchedulerEntry> {
 public:
  Registry() : NamedRegistry<SchedulerEntry>("scheduler") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static Registry& global();

  /// Keys of every scheduler applicable to `g` under `ctx`, sorted.
  std::vector<std::string> applicable_keys(const sdf::SdfGraph& g,
                                           const SchedulerContext& ctx) const;

  /// Looks up `name` and runs it. Throws ccs::Error (listing valid keys)
  /// for unknown names; propagates the scheduler's own errors.
  Schedule build(const std::string& name, const sdf::SdfGraph& g,
                 const SchedulerContext& ctx) const;
};

/// Registers the built-in schedulers into `r` (used by global(); exposed so
/// tests can build isolated registries): naive, single-appearance, scaled,
/// kohli.
void register_builtin_schedulers(Registry& r);

}  // namespace ccs::schedule
