// Partition representation, metrics, and validation.
//
// A partition P = {V1..Vk} of the streaming dag drives the paper's two-level
// scheduler. The properties that matter (Definitions 2-3):
//  * well ordered  -- contracting each component yields a dag;
//  * c-bounded     -- every component's total state is at most c*M;
//  * bandwidth     -- sum of gains of cross edges (tokens crossing component
//                     boundaries per source firing);
//  * degree-limited -- O(M/B) cross edges per component (Lemma 8's extra
//                     requirement for the dag upper bound).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/gain.h"
#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::partition {

/// A partition of graph nodes into components 0..num_components-1.
struct Partition {
  std::vector<std::int32_t> assignment;  ///< node id -> component id.
  std::int32_t num_components = 0;       ///< Component ids are 0..num_components-1.

  /// Builds from explicit component node lists (they must cover every node
  /// exactly once; throws ccs::Error otherwise).
  static Partition from_components(const sdf::SdfGraph& g,
                                   const std::vector<std::vector<sdf::NodeId>>& comps);

  /// Every node in its own component.
  static Partition singletons(const sdf::SdfGraph& g);

  /// One component holding the whole graph.
  static Partition whole(const sdf::SdfGraph& g);

  /// Component id of node v.
  std::int32_t comp(sdf::NodeId v) const {
    return assignment[static_cast<std::size_t>(v)];
  }

  /// Node lists per component (in node-id order).
  std::vector<std::vector<sdf::NodeId>> components() const;
};

/// Sum of gains over cross edges (Definition 3).
Rational bandwidth(const sdf::SdfGraph& g, const sdf::GainMap& gains, const Partition& p);

/// Total module state per component.
std::vector<std::int64_t> component_states(const sdf::SdfGraph& g, const Partition& p);

/// Largest component state.
std::int64_t max_component_state(const sdf::SdfGraph& g, const Partition& p);

/// Cross edges incident (in + out) per component.
std::vector<std::int32_t> component_degrees(const sdf::SdfGraph& g, const Partition& p);

/// Largest component degree.
std::int32_t max_component_degree(const sdf::SdfGraph& g, const Partition& p);

/// True iff the contracted multigraph is acyclic (Definition 2).
bool is_well_ordered(const sdf::SdfGraph& g, const Partition& p);

/// True iff every component's state is at most `state_bound` (= c*M).
bool is_bounded(const sdf::SdfGraph& g, const Partition& p, std::int64_t state_bound);

/// Structural problems (bad ids, empty components, missing nodes); empty
/// when the partition is a valid cover.
std::vector<std::string> validate_partition(const sdf::SdfGraph& g, const Partition& p);

/// Renumbers components so ids follow a topological order of the contracted
/// dag (schedulers execute components in id order). Requires well-ordered.
Partition renumber_topological(const sdf::SdfGraph& g, const Partition& p);

/// All quality metrics in one sweep, for tables and tests.
struct PartitionQuality {
  Rational bandwidth;                 ///< Sum of cross-edge gains (Definition 3).
  std::int64_t max_state = 0;         ///< Largest component state (words).
  std::int32_t max_degree = 0;        ///< Largest cross-edge degree.
  std::int32_t num_components = 0;
  bool well_ordered = false;          ///< Contracted multigraph acyclic?
};

/// Computes every quality metric of `p` at once (one pass over the edges
/// instead of one call per metric).
PartitionQuality measure(const sdf::SdfGraph& g, const sdf::GainMap& gains,
                         const Partition& p);

}  // namespace ccs::partition
