// Access-trace recording: a CacheSim decorator that forwards to an inner
// cache while appending every touched address to a trace. Feeds OPT
// comparisons and debugging.
#pragma once

#include <vector>

#include "iomodel/cache.h"

namespace ccs::iomodel {

/// Records the word-address stream while delegating to an inner cache.
class RecordingCache final : public CacheSim {
 public:
  /// Does not own `inner`; it must outlive this object.
  explicit RecordingCache(CacheSim& inner) : inner_(&inner) {}

  void access(Addr addr, AccessMode mode) override {
    trace_.push_back(addr);
    inner_->access(addr, mode);
  }
  void flush() override { inner_->flush(); }
  bool contains(Addr addr) const override { return inner_->contains(addr); }
  const CacheStats& stats() const override { return inner_->stats(); }
  const CacheConfig& config() const override { return inner_->config(); }

  const std::vector<Addr>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  CacheSim* inner_;
  std::vector<Addr> trace_;
};

}  // namespace ccs::iomodel
