// Multi-tenant streaming server: several applications timesharing one cache.
//
//   $ ./stream_server [--cache-words=4096] [--ticks=64] [--arrival=bursty-64]
//                     [--tenant-policy=round-robin]
//
// Demonstrates: core::Server admitting multiple core::Stream sessions over
// one shared CacheSim, tenant multiplexing policies (round-robin vs
// miss-aware), and the cache-interference story at serving scale -- each
// tenant's misses under contention vs the same tenant served solo on the
// same geometry.

#include <iostream>
#include <vector>

#include "core/planner.h"
#include "core/server.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace {

struct TenantSpec {
  std::string name;
  ccs::sdf::SdfGraph graph;
  ccs::partition::Partition partition;
};

/// Runs the whole serving scenario and returns the report.
ccs::core::ServerReport serve(const std::vector<TenantSpec>& specs,
                              const ccs::iomodel::CacheConfig& cache, std::int64_t m,
                              const std::string& tenant_policy,
                              const ccs::workloads::ArrivalPattern& arrival,
                              std::int64_t ticks) {
  using namespace ccs;
  core::ServerOptions opts;
  opts.cache = cache;
  opts.tenant_policy = tenant_policy;
  core::Server server(opts);
  for (const TenantSpec& spec : specs) {
    server.admit(spec.name, spec.graph, spec.partition, {}, m);
  }
  for (std::int64_t tick = 0; tick < ticks; ++tick) {
    const std::int64_t items = arrival(tick);
    for (core::TenantId t = 0; t < server.tenant_count(); ++t) server.push(t, items);
    server.run_until_idle();
  }
  server.drain_all();
  return server.report();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("stream_server", "multi-tenant serving over one shared cache");
  args.add_int("cache-words", 4096, "shared cache size in words");
  args.add_int("plan-words", 1024, "cache share M each tenant plans for");
  args.add_int("ticks", 64, "arrival ticks to serve");
  args.add_string("arrival", "bursty-64", "arrival pattern (ArrivalRegistry key)");
  args.add_string("tenant-policy", "round-robin", "round-robin or miss-aware");
  try {
    if (!args.parse(argc, argv)) return 0;
    const iomodel::CacheConfig shared{args.get_int("cache-words"), 8};
    const std::int64_t m = args.get_int("plan-words");
    const std::int64_t ticks = args.get_int("ticks");
    const auto arrival = workloads::ArrivalRegistry::global().build(args.get_string("arrival"));
    const std::string policy = args.get_string("tenant-policy");

    // Three pipeline tenants with different shapes: a deep uniform chain, a
    // heavy-tailed chain, and a short fat one.
    core::PlannerOptions popts;
    popts.cache.capacity_words = m;
    popts.cache.block_words = 8;
    std::vector<TenantSpec> specs;
    for (const auto& [name, graph] :
         {std::pair<std::string, sdf::SdfGraph>{"deep-uniform",
                                                workloads::uniform_pipeline(20, 150)},
          {"heavy-tail", workloads::heavy_tail_pipeline(16, 48, 500, 4)},
          {"short-fat", workloads::uniform_pipeline(6, 600)}}) {
      const core::Planner planner(graph, popts);
      specs.push_back({name, graph, planner.plan("pipeline-dp").partition});
    }

    const auto report = serve(specs, shared, m, policy, arrival, ticks);

    // Solo baselines: each tenant alone on the same shared geometry.
    Table t("tenants on one " + std::to_string(shared.capacity_words) +
            "-word cache (" + policy + ", " + args.get_string("arrival") + ")");
    t.set_header({"tenant", "steps", "outputs", "misses", "miss/out", "solo miss/out",
                  "interference"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                 Align::kRight, Align::kRight});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto solo =
          serve({specs[i]}, shared, m, policy, arrival, ticks).tenants.front();
      const auto& row = report.tenants[i];
      const double contended = row.totals.misses_per_output();
      const double alone = solo.totals.misses_per_output();
      t.add_row({row.name, Table::num(row.steps), Table::num(row.outputs),
                 Table::num(row.totals.cache.misses), Table::num(contended, 3),
                 Table::num(alone, 3),
                 alone > 0 ? Table::num(contended / alone, 2) + "x" : "-"});
    }
    t.print(std::cout);

    std::cout << "\naggregate: " << report.aggregate.cache.misses << " misses over "
              << report.steps << " multiplexing decisions; per-tenant counters sum to "
              << "the shared cache's " << report.shared_cache.misses << " misses\n"
              << "Interference > 1x is the cache-contention cost of co-residency the\n"
                 "paper's single-application model abstracts away; miss-aware\n"
                 "multiplexing (--tenant-policy=miss-aware) trades fairness for it.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
