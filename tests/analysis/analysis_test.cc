#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "analysis/lower_bound.h"
#include "partition/pipeline_dp.h"
#include "sdf/gain.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs::analysis {
namespace {

TEST(PipelineLowerBound, WitnessEdgesAreRealEdges) {
  const auto g = ccs::workloads::uniform_pipeline(30, 100);
  const auto bound = pipeline_lower_bound(g, 250);
  EXPECT_FALSE(bound.witness_edges.empty());
  for (const auto e : bound.witness_edges) {
    EXPECT_GE(e, 0);
    EXPECT_LT(e, g.edge_count());
  }
  EXPECT_GT(bound.bandwidth_term, Rational(0));
}

TEST(PipelineLowerBound, HomogeneousBandwidthEqualsCutCount) {
  const auto g = ccs::workloads::uniform_pipeline(30, 100);
  const auto bound = pipeline_lower_bound(g, 250);
  EXPECT_EQ(bound.bandwidth_term,
            Rational(static_cast<std::int64_t>(bound.witness_edges.size())));
}

TEST(PipelineLowerBound, MissesScaleWithTOverB) {
  const auto g = ccs::workloads::uniform_pipeline(30, 100);
  const auto bound = pipeline_lower_bound(g, 250);
  EXPECT_DOUBLE_EQ(bound.misses(1000, 8) * 2, bound.misses(2000, 8));
  EXPECT_DOUBLE_EQ(bound.misses(1000, 8), bound.misses(1000, 16) * 2);
}

TEST(PipelineLowerBound, ZeroWhenEverythingFits) {
  const auto g = ccs::workloads::uniform_pipeline(4, 10);
  const auto bound = pipeline_lower_bound(g, 1000);
  EXPECT_EQ(bound.bandwidth_term, Rational(0));
  EXPECT_TRUE(bound.witness_edges.empty());
}

TEST(PipelineLowerBound, NeverExceedsOptimalPartitionBandwidth) {
  // The LB's witness bandwidth must be <= the DP's minBW at 3M bound
  // (the LB is a lower bound, the DP an achievable upper bound)... in fact
  // the witness picks one gain-min edge per disjoint >=2M segment, which is
  // at most the bandwidth of ANY 2M-bounded partition. Check against DP(2M).
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = ccs::workloads::random_pipeline(24, 10, 150, 4, rng);
    const std::int64_t m = 200;
    const auto bound = pipeline_lower_bound(g, m);
    const auto dp = partition::pipeline_optimal_partition(g, 2 * m);
    EXPECT_LE(bound.bandwidth_term, dp.bandwidth) << "trial " << trial;
  }
}

TEST(DagMinBandwidth, PipelineUsesPolynomialPath) {
  const auto g = ccs::workloads::uniform_pipeline(40, 100);  // too big for exact
  const auto bw = dag_min_bandwidth_3m(g, 150);
  ASSERT_TRUE(bw.has_value());
  EXPECT_GT(*bw, Rational(0));
}

TEST(DagMinBandwidth, SmallDagUsesExact) {
  Rng rng(67);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  const auto g = layered_homogeneous_dag(spec, rng);
  const auto bw = dag_min_bandwidth_3m(g, 150);
  ASSERT_TRUE(bw.has_value());
  EXPECT_GE(*bw, Rational(0));
}

TEST(DagMinBandwidth, NulloptWhenInfeasibleOrTooBig) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  EXPECT_EQ(dag_min_bandwidth_3m(g, 30), std::nullopt);  // module > 3M
}

TEST(BoundMisses, Formula) {
  EXPECT_DOUBLE_EQ(bound_misses(Rational(3), 800, 8), 300.0);
  EXPECT_DOUBLE_EQ(bound_misses(Rational(1, 2), 1600, 8), 100.0);
}

TEST(CostModel, BreakdownSumsAndScales) {
  const auto g = ccs::workloads::uniform_pipeline(8, 128);
  const auto p = partition::Partition::from_components(
      g, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const auto c = predict_partitioned_cost(g, p, 1024, 8);
  EXPECT_DOUBLE_EQ(c.misses_per_batch, c.state_term + c.buffer_term + c.cross_term);
  EXPECT_DOUBLE_EQ(c.misses_per_input, c.misses_per_batch / 1024.0);
  // state: 2 components x 512 words / 8 = 128 misses.
  EXPECT_DOUBLE_EQ(c.state_term, 128.0);
  // cross: 1 edge, gain 1, written+read: 2*1024/8 = 256.
  EXPECT_DOUBLE_EQ(c.cross_term, 256.0);
}

TEST(CostModel, LargerTAmortizesState) {
  const auto g = ccs::workloads::uniform_pipeline(8, 128);
  const auto p = partition::Partition::from_components(
      g, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const auto small = predict_partitioned_cost(g, p, 256, 8);
  const auto large = predict_partitioned_cost(g, p, 4096, 8);
  EXPECT_LT(large.misses_per_input, small.misses_per_input);
}

TEST(CostModel, FinerPartitionCostsMoreCross) {
  const auto g = ccs::workloads::uniform_pipeline(8, 128);
  const auto coarse = partition::Partition::from_components(
      g, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const auto fine = partition::Partition::singletons(g);
  const auto c1 = predict_partitioned_cost(g, coarse, 1024, 8);
  const auto c2 = predict_partitioned_cost(g, fine, 1024, 8);
  EXPECT_LT(c1.cross_term, c2.cross_term);
}

}  // namespace
}  // namespace ccs::analysis
