// Clang thread-safety-analysis annotations (-Wthread-safety), no-ops on
// other compilers.
//
// The repo's determinism gates (repeat-run, thread ≡ virtual, swap ≡
// no-swap) all assume the C++ is free of data races. These macros make the
// locking discipline machine-checkable: every mutex is declared a
// capability, every piece of state it protects carries CCS_GUARDED_BY, and
// functions that must be called with a lock held say so with CCS_REQUIRES.
// Clang then rejects -- at compile time, as an error in CI -- any access to
// guarded state without the guarding lock.
//
// libstdc++'s std::mutex is not annotated as a capability, so annotated
// code uses the zero-cost ccs::Mutex / ccs::MutexLock wrappers from
// util/mutex.h instead; the analysis understands those. Conventions:
//
//   ccs::Mutex mu_;
//   State state_ CCS_GUARDED_BY(mu_);        // member data
//   Cache* cache_ CCS_PT_GUARDED_BY(mu_);    // pointee guarded, not pointer
//   void helper() CCS_REQUIRES(mu_);         // caller must hold mu_
//   void api() CCS_EXCLUDES(mu_);            // caller must NOT hold mu_
//
// A function that intentionally breaks the discipline (e.g. a documented
// quiescent-point read from the controlling thread) carries
// CCS_NO_THREAD_SAFETY_ANALYSIS with a comment justifying it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CCS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CCS_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define CCS_CAPABILITY(x) CCS_THREAD_ANNOTATION(capability(x))
#define CCS_SCOPED_CAPABILITY CCS_THREAD_ANNOTATION(scoped_lockable)
#define CCS_GUARDED_BY(x) CCS_THREAD_ANNOTATION(guarded_by(x))
#define CCS_PT_GUARDED_BY(x) CCS_THREAD_ANNOTATION(pt_guarded_by(x))
#define CCS_ACQUIRED_BEFORE(...) CCS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CCS_ACQUIRED_AFTER(...) CCS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CCS_REQUIRES(...) CCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CCS_REQUIRES_SHARED(...) \
  CCS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CCS_ACQUIRE(...) CCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CCS_ACQUIRE_SHARED(...) \
  CCS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CCS_RELEASE(...) CCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CCS_RELEASE_SHARED(...) \
  CCS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CCS_TRY_ACQUIRE(...) CCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CCS_EXCLUDES(...) CCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CCS_ASSERT_CAPABILITY(x) CCS_THREAD_ANNOTATION(assert_capability(x))
#define CCS_RETURN_CAPABILITY(x) CCS_THREAD_ANNOTATION(lock_returned(x))
#define CCS_NO_THREAD_SAFETY_ANALYSIS CCS_THREAD_ANNOTATION(no_thread_safety_analysis)
