// StreamIt-benchmark-shaped applications.
//
// The StreamIt suite (Thies et al., CC'02; Sermulins et al., LCTES'05) is
// the standard workload set for streaming-scheduler papers, including the
// heuristic baselines this paper cites [15, 21, 25]. The suite itself is not
// vendored here, so each application below is *re-modelled* from its
// published topology: module structure, push/pop (out/in) rates, and state
// sizes representing filter tap arrays and lookup tables. The graphs are
// rate matched, single-source, single-sink SDF dags -- exactly the paper's
// model -- and their shapes (deep pipelines, wide split-joins, butterfly
// networks) span the topology space the partitioner must handle.
//
// DESIGN.md records this substitution (published topology in, measured
// hardware out) and why it preserves the relevant behaviour: the paper's
// claims are about cache-miss *counts in the I/O model*, which depend only
// on graph structure, rates, state sizes, and cache geometry.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.h"

namespace ccs::workloads {

/// FM radio frontend: decimating low-pass filter, demodulator, and a
/// `bands`-way equalizer split-join. Deep pipeline + moderate fan-out.
sdf::SdfGraph fm_radio(std::int32_t bands = 10);

/// M-channel analysis/synthesis filter bank: per-branch decimate by M then
/// interpolate by M. Classic multirate split-join.
sdf::SdfGraph filter_bank(std::int32_t channels = 8);

/// Multi-channel beamformer: `channels` input pipelines (2 FIRs each) joined
/// into frames, then `beams` beamforming pipelines. Two stacked split-joins.
sdf::SdfGraph beamformer(std::int32_t channels = 12, std::int32_t beams = 4);

/// Bitonic sorting network over 2^log_n wires: homogeneous compare-exchange
/// butterfly dag (the paper's homogeneous case, Theorem 7).
sdf::SdfGraph bitonic_sort(std::int32_t log_n = 3);

/// Radix-2 FFT butterfly network over 2^log_n wires; homogeneous dag with
/// twiddle-table state per butterfly.
sdf::SdfGraph fft(std::int32_t log_n = 4);

/// DES encryption: 16-round pipeline; each round expands, keys, applies
/// S-boxes (large table state), and permutes. Heavy-state pipeline.
sdf::SdfGraph des(std::int32_t rounds = 16);

/// Channel vocoder: pitch detector plus `filters` band-pass/magnitude
/// branches under a duplicating split. Wide, shallow split-join.
sdf::SdfGraph channel_vocoder(std::int32_t filters = 16);

/// Blocked matrix multiply pipeline streaming `block` x `block` tiles; large
/// rates, large state, multirate pipeline.
sdf::SdfGraph matrix_mult(std::int32_t block = 16);

/// Phase vocoder: windowed analysis -> per-bin magnitude/phase processing
/// (split-join over `bins` spectral bands) -> overlap-add synthesis.
/// Multirate at the window boundaries, wide in the middle.
sdf::SdfGraph vocoder(std::int32_t bins = 15);

/// Time-delay equalization: FFT -> complex multiply by the channel's
/// inverse response -> IFFT, streaming `fft_size`-sample blocks. A deep
/// multirate pipeline with large per-stage state (twiddle/coefficient
/// tables), modelled on the GMTI TDE kernel.
sdf::SdfGraph tde(std::int32_t fft_size = 64);

/// Serpent block cipher: 32 rounds of xor/sbox/linear-transform modules
/// with per-round key and table state; a longer, lighter cousin of DES.
sdf::SdfGraph serpent(std::int32_t rounds = 32);

/// Radar array frontend: `channels` deep FIR chains feeding a beam former,
/// then per-beam pulse compression and CFAR detection. Deeper per-channel
/// pipelines and heavier join state than `beamformer`.
sdf::SdfGraph radar(std::int32_t channels = 8, std::int32_t beams = 2);

/// A named application graph for table-driven experiments.
struct NamedGraph {
  std::string name;
  sdf::SdfGraph graph;
};

/// All twelve applications with their default parameters.
std::vector<NamedGraph> streamit_suite();

}  // namespace ccs::workloads
