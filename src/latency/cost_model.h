// latency::CostModel -- per-level cycle costs for the cache hierarchy.
//
// Everything below this layer counts transfers; serving is judged in time.
// A CostModel attaches integer cycle costs to the counters the simulator
// already produces -- per-level lookup/hit/miss/writeback vectors in the
// style of gem-forge's per-level lookupLatency -- and collapses them into
// one linear pricing of a (firings, CacheStats-delta) window:
//
//   cost = firing_cycles * firings
//        + access_coeff * accesses + hit_coeff * hits
//        + miss_coeff * misses + writeback_coeff * writebacks
//
// Determinism is the load-bearing design constraint. The only per-tenant
// counters that are bit-identical across execution modes are the PRIVATE
// L1 counters (a shared LLC's hit/miss split depends on real thread
// interleaving -- see runtime/worker_pool.h). So a model may price only
// L1-level counters; everything beyond L1 (the next level's lookup, memory
// service, shard contention) is charged as a MODELED per-L1-miss surcharge
// computed from static configuration (worker count, stripe count), never
// from measured shared-level state. That keeps cost -- and therefore every
// histogram percentile -- inside the repeat-run, thread-count, and
// threads ≡ virtual-time gates.
//
// Linearity is the second load-bearing property: pricing a whole window's
// delta equals summing per-call prices (iomodel::AccessCosts returned by
// CacheSim::access_blocks), exactly, in integers -- so the bulk-call
// plumbing and the per-step pricing in core::Stream can never disagree.
//
// Models are string-keyed (CostModelRegistry):
//   * "uniform"    -- 1 cycle per firing, zero cache cost. Cost == firings,
//                     so virtual time advances exactly as it did before the
//                     latency subsystem existed (the strict-extension gate).
//   * "two-level"  -- L1 lookup/hit cycles, an L1 miss pays the modeled
//                     next level (lookup + service), dirty evictions pay a
//                     writeback burst.
//   * "llc-shared" -- "two-level" plus a deterministic contention surcharge
//                     per L1 miss: ceil((workers - 1) / shards) expected
//                     contenders per LLC stripe, a few cycles each (a flat
//                     single-mutex LLC is one stripe).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "iomodel/types.h"
#include "util/registry.h"

namespace ccs::latency {

/// Cycle costs of one cache level (gem-forge style): `lookup` is paid by
/// every access that reaches the level, `hit`/`miss` on the respective
/// outcome, `writeback` per dirty eviction the level performs.
struct LevelCost {
  std::int64_t lookup = 0;
  std::int64_t hit = 0;
  std::int64_t miss = 0;
  std::int64_t writeback = 0;
};

/// Static configuration a registry builder may consult. Only configuration
/// -- never measured occupancy -- so built models are deterministic.
struct CostContext {
  std::int32_t workers = 1;    ///< Worker (core) count sharing the LLC.
  std::int32_t llc_shards = 0; ///< LLC lock stripes; 0 = flat single-mutex.
  bool has_llc = false;        ///< Whether a shared LLC exists at all.
};

/// A linear integer pricing of (firings, private-L1 CacheStats delta).
class CostModel {
 public:
  /// Default-constructed model is "uniform": cost == firings.
  CostModel() = default;

  /// Collapses per-level costs into the linear form. Level 0 is the private
  /// L1 and prices measured counters; level 1 (when present) is the modeled
  /// next level, charged lookup + miss per L1 miss (its own hit/miss split
  /// is unmeasurable without breaking determinism -- see the file comment).
  /// Levels beyond 1 fold into the same per-L1-miss surcharge in order.
  /// `contention_cycles` is an additional per-L1-miss surcharge.
  CostModel(std::string key, std::int64_t firing_cycles,
            const std::vector<LevelCost>& levels, std::int64_t contention_cycles);

  /// Registry key this model was built under ("uniform" by default).
  const std::string& key() const noexcept { return key_; }

  /// Cycles a firing's bookkeeping costs regardless of cache traffic.
  std::int64_t firing_cycles() const noexcept { return firing_cycles_; }

  /// The collapsed per-counter coefficients -- attachable to a CacheSim so
  /// its bulk calls return per-call costs (iomodel::AccessCosts::price).
  const iomodel::AccessCosts& access_costs() const noexcept { return access_costs_; }

  /// Prices one window: firing_cycles * firings + access_costs over the
  /// private-level delta. Linear, so window sums equal per-call sums.
  std::int64_t step_cost(std::int64_t firings, const iomodel::CacheStats& delta) const {
    return firing_cycles_ * firings + access_costs_.price(delta);
  }

  /// True when cost degenerates to the firing count (the "uniform" model):
  /// virtual time then advances exactly as before the latency subsystem.
  bool trivial() const noexcept {
    return firing_cycles_ == 1 && !access_costs_.any();
  }

 private:
  std::string key_ = "uniform";
  std::int64_t firing_cycles_ = 1;
  iomodel::AccessCosts access_costs_;
};

/// A named cost-model factory.
struct CostModelEntry {
  std::function<CostModel(const CostContext&)> build;
  std::string description;  ///< One-line description for listings.
};

/// String-keyed cost-model table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class CostModelRegistry : public NamedRegistry<CostModelEntry> {
 public:
  CostModelRegistry() : NamedRegistry<CostModelEntry>("cost model") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static CostModelRegistry& global();

  /// Looks up `name` and builds the model for `ctx`. Throws ccs::Error
  /// (listing valid keys) for unknown names.
  CostModel build(const std::string& name, const CostContext& ctx) const;
};

/// Registers the built-in models into `r` (used by global(); exposed so
/// tests can build isolated registries): uniform, two-level, llc-shared.
void register_builtin_cost_models(CostModelRegistry& r);

}  // namespace ccs::latency
