#include "util/stats.h"

#include <algorithm>

#include "util/contracts.h"

namespace ccs {

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    CCS_EXPECTS(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(values.begin(),
                                      values.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace ccs
