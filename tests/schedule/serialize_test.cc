#include "schedule/serialize.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "schedule/naive.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

TEST(ScheduleSerialize, RoundTripPreservesEverything) {
  const auto g = ccs::workloads::fm_radio(4);
  const auto original = naive_minimal_buffer_schedule(g);
  const auto parsed = from_text(g, to_text(g, original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.period, original.period);
  EXPECT_EQ(parsed.buffer_caps, original.buffer_caps);
  EXPECT_EQ(parsed.inputs_per_period, original.inputs_per_period);
  EXPECT_EQ(parsed.outputs_per_period, original.outputs_per_period);
}

TEST(ScheduleSerialize, RoundTrippedScheduleStillValidates) {
  const auto g = ccs::workloads::filter_bank(4);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 1024;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const auto parsed = from_text(g, to_text(g, plan.schedule));
  EXPECT_TRUE(check_schedule(g, parsed).ok);
}

TEST(ScheduleSerialize, UnknownModuleRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  const auto s = naive_minimal_buffer_schedule(g);
  auto text = to_text(g, s);
  // Parse against a *different* graph whose names don't match.
  const auto other = ccs::workloads::des(2);
  EXPECT_THROW(from_text(other, text), Error);
}

TEST(ScheduleSerialize, BufferArityMismatchRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g,
                         "schedule x\ninputs 1\noutputs 1\nbuffers 1 2\nperiod AtoD\n"),
               Error);
}

TEST(ScheduleSerialize, MissingPeriodRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g, "schedule x\ninputs 1\noutputs 1\n"), ParseError);
}

TEST(ScheduleSerialize, GarbageLineRejected) {
  const auto g = ccs::workloads::fm_radio(2);
  EXPECT_THROW(from_text(g, "bogus\n"), ParseError);
}

}  // namespace
}  // namespace ccs::schedule
