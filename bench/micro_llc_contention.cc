// Microbenchmark: shared-LLC lock contention under real threads
// (google-benchmark).
//
// The regime the sharded LLC exists for: W worker threads whose private L1s
// are deliberately tiny (8 blocks) stream over disjoint per-worker block
// bands, so essentially every simulated access misses L1 and probes the
// shared LLC under its lock. The LLC is large enough to hold every band, so
// after the first pass the steady state is pure L1-miss -> LLC-hit traffic:
// the probe itself is cheap and the lock protocol dominates.
//
// BM_LlcContention sweeps workers x backend:
//   * shards == 0  -- the original flat LruCache behind one pool-wide mutex:
//                     every probe from every worker serializes on one lock;
//   * shards == 16 -- address-striped ShardedLruCache: consecutive blocks
//                     rotate through the 16 stripes, so two workers collide
//                     on a stripe lock only ~1/16 of the time.
//
// items/s counts LLC probes (== L1 misses) completed per wall-clock second
// across all workers. Rows land in BENCH_PR7.json; the trajectory CI
// artifact tracks the sharded-vs-mutex ratio per worker count. Note the
// ratio is parallelism-bound: on a single-CPU host threads timeshare, real
// lock overlap is preemption-bounded, and both backends pay one uncontended
// atomic per probe, so the gap only opens with physical cores.
//
// BM_LlcProbeSerial is the same loop without threads (one worker, driver
// thread): the uncontended per-probe floor for both backends.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "iomodel/types.h"
#include "runtime/worker_pool.h"

namespace {

using namespace ccs;

constexpr std::int64_t kBlockWords = 8;
constexpr std::int64_t kL1Words = 8 * kBlockWords;  // 8 blocks: bands never fit
constexpr std::int64_t kBandBlocks = 256;           // per-worker disjoint band
constexpr std::int64_t kPasses = 8;                 // band sweeps per thread
constexpr std::int64_t kLlcWords = 64 * 1024;       // holds every band resident

/// One worker thread's share: sweep its private band kPasses times through
/// its worker cache. Every block access misses the 8-block L1 (the band is
/// 32x larger) and probes the LLC under the backend's lock.
void hammer(runtime::WorkerPool& pool, std::int32_t w) {
  auto& cache = pool.worker_cache(w);
  const iomodel::BlockId base = static_cast<iomodel::BlockId>(w) * kBandBlocks;
  for (std::int64_t pass = 0; pass < kPasses; ++pass) {
    cache.access_blocks(base, kBandBlocks, iomodel::AccessMode::kRead);
  }
}

void BM_LlcContention(benchmark::State& state) {
  const auto workers = static_cast<std::int32_t>(state.range(0));
  const auto shards = static_cast<std::int32_t>(state.range(1));
  std::int64_t probes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::WorkerPool pool(
        runtime::WorkerPoolOptions{workers, {kL1Words, kBlockWords}, kLlcWords, shards});
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    state.ResumeTiming();
    for (std::int32_t w = 0; w < workers; ++w) {
      threads.emplace_back(hammer, std::ref(pool), w);
    }
    for (auto& t : threads) t.join();
    state.PauseTiming();
    probes += pool.llc_stats().accesses;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(probes);
  state.SetLabel(shards == 0 ? "single-mutex" : "sharded-" + std::to_string(shards));
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["llc_shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_LlcContention)
    ->Args({1, 0})
    ->Args({1, 16})
    ->Args({2, 0})
    ->Args({2, 16})
    ->Args({4, 0})
    ->Args({4, 16})
    ->Args({8, 0})
    ->Args({8, 16})
    ->Args({16, 0})
    ->Args({16, 16})
    ->UseRealTime();

/// Uncontended floor: the same probe stream issued from the driver thread
/// against a one-worker pool, per backend. Any gap between the two rows is
/// pure lock-protocol cost, not contention.
void BM_LlcProbeSerial(benchmark::State& state) {
  const auto shards = static_cast<std::int32_t>(state.range(0));
  runtime::WorkerPool pool(
      runtime::WorkerPoolOptions{1, {kL1Words, kBlockWords}, kLlcWords, shards});
  auto& cache = pool.worker_cache(0);
  for (auto _ : state) {
    cache.access_blocks(0, kBandBlocks, iomodel::AccessMode::kRead);
  }
  state.SetItemsProcessed(state.iterations() * kBandBlocks);
  state.SetLabel(shards == 0 ? "single-mutex" : "sharded-" + std::to_string(shards));
  state.counters["llc_shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_LlcProbeSerial)->Arg(0)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
