// Microbenchmark: session churn at serving scale (google-benchmark).
//
// The lifecycle subsystem's headline claim: a Server's memory is O(live),
// not O(ever-admitted). BM_ChurnFlatMemory drives a sliding window of open
// sessions through 100k and 1,000,000 logical sessions with a few-hundred
// live budget ("bounded-live" admission + the swap tier, band_words = 2^20
// so the 2^40 address space holds ~1M session bands) and records, per run:
//
//   * peak_live            -- max resident sessions at any instant;
//   * peak_resident_kwords -- max resident layout footprint (state + rings,
//                             in thousands of simulated words);
//   * swap_outs / swap_ins -- eviction traffic the window forced;
//   * sessions_opened      -- the logical-session scale (the x-axis).
//
// FLAT means peak_live and peak_resident_kwords are identical at 100k and
// at 1M sessions -- scale shows up only in sessions_opened and wall time.
// The bit-identity of swapped sessions is gated in tests (lifecycle_test,
// swap_roundtrip_test); this file records the memory-bound story and the
// raw churn rate (sessions opened+closed per second of wall clock).
//
// BM_ChurnTraceGen measures the workloads::churn_trace generator alone at
// the same scales -- the experiment driver's per-cell setup cost.

#include <benchmark/benchmark.h>

#include <deque>
#include <string>

#include "core/server.h"
#include "partition/pipeline_dp.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace {

using namespace ccs;

constexpr std::int64_t kLiveBudget = 256;   ///< Resident-session cap.
constexpr std::int64_t kWindow = 384;       ///< Open (resident + swapped) cap.
constexpr std::int64_t kItemsPerBurst = 32;

/// A sliding window of open sessions over `sessions` logical lifetimes:
/// every admission beyond the resident budget evicts the coldest idle
/// session to the swap tier, every 16th burst goes to the oldest open
/// session (rehydrating it), and the window's tail closes forever.
void BM_ChurnFlatMemory(benchmark::State& state) {
  const std::int64_t sessions = state.range(0);
  const auto g = workloads::uniform_pipeline(4, 48);
  core::ServerOptions opts;
  opts.cache = {2048, 8};
  opts.admission = "bounded-live";
  opts.budget.max_live_sessions = kLiveBudget;
  opts.swap = true;
  opts.band_words = std::int64_t{1} << 20;  // ~1M co-open session bands
  const auto p =
      partition::pipeline_optimal_partition(g, 3 * opts.cache.capacity_words)
          .partition;

  session::LifecycleCounters last;
  for (auto _ : state) {
    core::Server server(opts);
    core::StreamOptions sopts;
    sopts.engine.per_node_attribution = false;
    std::deque<core::TenantId> open;
    for (std::int64_t s = 0; s < sessions; ++s) {
      const core::TenantId id =
          server.admit("s" + std::to_string(s), g, p, sopts);
      open.push_back(id);
      server.push(id, kItemsPerBurst);
      server.run_until_idle();
      if (s % 16 == 15) {
        // Revisit the window's coldest session: almost certainly swapped by
        // now, so this burst pays one rehydration.
        server.push(open.front(), kItemsPerBurst);
        server.run_until_idle();
      }
      if (static_cast<std::int64_t>(open.size()) > kWindow) {
        server.close(open.front());
        open.pop_front();
      }
    }
    server.drain_all();
    last = server.lifecycle();
    while (!open.empty()) {
      server.close(open.front());
      open.pop_front();
    }
  }
  state.SetItemsProcessed(last.sessions_opened * state.iterations());
  state.counters["sessions_opened"] = static_cast<double>(last.sessions_opened);
  state.counters["peak_live"] = static_cast<double>(last.peak_live);
  state.counters["peak_resident_kwords"] =
      static_cast<double>(last.peak_resident_words) / 1000.0;
  state.counters["swap_outs"] = static_cast<double>(last.swap_outs);
  state.counters["swap_ins"] = static_cast<double>(last.swap_ins);
  state.SetLabel("live<=" + std::to_string(last.peak_live) + "/" +
                 std::to_string(sessions) + "-sessions");
}
BENCHMARK(BM_ChurnFlatMemory)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The churn-trace generator alone (the experiment driver's setup cost).
void BM_ChurnTraceGen(benchmark::State& state) {
  workloads::ChurnOptions o;
  o.sessions = state.range(0);
  o.max_concurrent = kLiveBudget;
  o.pushes_per_session = 2;
  std::int64_t events = 0;
  for (auto _ : state) {
    const auto trace = workloads::churn_trace(o);
    events += static_cast<std::int64_t>(trace.size());
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ChurnTraceGen)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
