// E1 -- misses/output vs cache size on a synthetic pipeline (Thm 5 / Cor 6).
//
// Workload: 24-stage uniform pipeline, 256 words of state per module
// (6144 words total). Sweep M; every scheduler runs on the same 4M
// simulation cache. Expected shape: partitioned beats every baseline while
// total state exceeds the cache, and the advantage grows as M shrinks;
// once 4M swallows the whole working set all schedulers converge.

#include "bench/common.h"
#include "schedule/kohli.h"
#include "schedule/naive.h"
#include "schedule/scaled.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const auto g = workloads::uniform_pipeline(24, 256);
  const std::int64_t b = 8;
  const std::int64_t outputs = 4096;

  Table t("E1: misses/output vs cache size M (pipeline, 24x256 words, B=8, sim cache 4M)");
  t.set_header({"M", "naive", "sas", "scaled", "kohli", "partitioned", "naive/part"});
  for (const std::int64_t m : {256, 512, 1024, 2048}) {
    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const auto r_naive =
        bench::run(g, schedule::naive_minimal_buffer_schedule(g), 4 * m, b, outputs);
    const auto r_sas =
        bench::run(g, schedule::naive_single_appearance_schedule(g), 4 * m, b, outputs);
    const auto r_scaled = bench::run(g, schedule::scaled_schedule(g, m), 4 * m, b, outputs);
    const auto r_kohli = bench::run(g, schedule::kohli_schedule(g, m), 4 * m, b, outputs);
    const auto r_part = bench::run(g, plan.schedule, 4 * m, b, outputs);
    t.add_row({Table::num(m), Table::num(r_naive.misses_per_output(), 3),
               Table::num(r_sas.misses_per_output(), 3),
               Table::num(r_scaled.misses_per_output(), 3),
               Table::num(r_kohli.misses_per_output(), 3),
               Table::num(r_part.misses_per_output(), 3),
               bench::safe_ratio(r_naive.misses_per_output(), r_part.misses_per_output(), 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
