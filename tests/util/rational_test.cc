#include "util/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace ccs {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesToLowestTerms) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignToDenominator) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  const Rational s(-3, -4);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) { EXPECT_THROW(Rational(1, 0), RateError); }

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), RateError);
  EXPECT_THROW(Rational(0).reciprocal(), RateError);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(8, 4).to_string(), "2");
  std::ostringstream os;
  os << Rational(-5, 10);
  EXPECT_EQ(os.str(), "-1/2");
}

TEST(Rational, LongProductChainStaysExact) {
  // Products of rate ratios like 2/3 * 3/2 * ... must come back to exactly 1.
  Rational r(1);
  for (int i = 2; i <= 20; ++i) {
    r *= Rational(i, i + 1);
    r *= Rational(i + 1, i);
  }
  EXPECT_EQ(r, Rational(1));
}

TEST(Rational, IntermediateOverflowHandledBy128BitMath) {
  // num*den products exceed 64 bits before normalization but reduce fine.
  const std::int64_t big = std::int64_t{1} << 40;
  const Rational a(big, 3);
  const Rational b(3, big);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, UnrepresentableResultThrows) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const Rational a(big, 1);
  EXPECT_THROW(a * a, OverflowError);
}

TEST(Rational, ReciprocalSwapsNumDen) {
  EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
  EXPECT_EQ(Rational(-3, 7).reciprocal(), Rational(-7, 3));
}

}  // namespace
}  // namespace ccs
