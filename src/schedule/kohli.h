// Greedy cache-aware pipeline heuristic (Kohli, UCB/ERL M04/3) baseline.
//
// Kohli's scheduler walks the pipeline making *local* decisions: keep firing
// the current module while its inputs last and its output buffer has room,
// then move to its successor. Buffers get an equal share of the cache. The
// paper's Section 6 notes that because decisions are local, the heuristic
// cannot be asymptotically optimal -- it never concentrates buffer capacity
// on the gain-minimizing edges the way the optimal partition does.
// Experiment E8 quantifies the gap.
#pragma once

#include <cstdint>

#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Builds the greedy schedule for a pipeline with cache size `m` words.
/// Each edge's buffer gets an equal share of half the cache (the other half
/// notionally holds module state), floored at the edge's minimal burst.
/// Throws GraphError if `g` is not a pipeline.
Schedule kohli_schedule(const sdf::SdfGraph& g, std::int64_t m);

}  // namespace ccs::schedule
