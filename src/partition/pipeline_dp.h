// Optimal pipeline partitioning by dynamic programming.
//
// For a pipeline, every well-ordered partition's components are contiguous
// chain segments (a gap would create a two-way pair of cross edges and hence
// a contracted cycle), so minimum-bandwidth c-bounded partitioning reduces
// to optimal chain segmentation: O(n^2) interval DP over cut positions,
// minimizing the sum of cut-edge gains subject to per-segment state <= cM.
// The paper notes this "simple dynamic program" after Theorem 5; it also
// computes minBW_c(G) exactly for pipelines, which Experiment E2 uses as the
// lower-bound witness.
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::partition {

/// Result of the DP: the optimal partition and its exact bandwidth.
struct PipelineDpResult {
  Partition partition;
  Rational bandwidth;
};

/// Minimum-bandwidth partition of a pipeline into segments of total state at
/// most `state_bound` (= c*M). Throws GraphError if not a pipeline, or
/// ccs::Error if some single module exceeds the bound (then no partition
/// exists).
PipelineDpResult pipeline_optimal_partition(const sdf::SdfGraph& g,
                                            std::int64_t state_bound);

/// Just the optimal bandwidth minBW_c for a pipeline (same DP).
Rational pipeline_min_bandwidth(const sdf::SdfGraph& g, std::int64_t state_bound);

}  // namespace ccs::partition
