#include "workloads/pipelines.h"

#include "util/contracts.h"

namespace ccs::workloads {

using sdf::NodeId;
using sdf::SdfGraph;

namespace {

/// Chain node names: m0 (source) .. m<n-1> (sink).
std::string chain_name(std::int32_t i) { return "m" + std::to_string(i); }

}  // namespace

SdfGraph uniform_pipeline(std::int32_t n, std::int64_t state, std::int64_t rate) {
  CCS_EXPECTS(n >= 2, "pipeline needs at least two modules");
  CCS_EXPECTS(state >= 0 && rate >= 1, "invalid state or rate");
  SdfGraph g;
  for (std::int32_t i = 0; i < n; ++i) g.add_node(chain_name(i), state);
  for (std::int32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, rate, rate);
  return g;
}

SdfGraph random_pipeline(std::int32_t n, std::int64_t state_lo, std::int64_t state_hi,
                         std::int64_t max_rate, Rng& rng) {
  CCS_EXPECTS(n >= 2, "pipeline needs at least two modules");
  CCS_EXPECTS(0 <= state_lo && state_lo <= state_hi, "invalid state range");
  CCS_EXPECTS(max_rate >= 1, "invalid max rate");
  SdfGraph g;
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_node(chain_name(i), rng.uniform(state_lo, state_hi));
  }
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1, rng.uniform(1, max_rate), rng.uniform(1, max_rate));
  }
  return g;
}

SdfGraph hourglass_pipeline(std::int32_t n, std::int64_t state, std::int64_t factor) {
  CCS_EXPECTS(n >= 2, "pipeline needs at least two modules");
  CCS_EXPECTS(factor >= 2, "hourglass needs a decimation factor of at least 2");
  SdfGraph g;
  for (std::int32_t i = 0; i < n; ++i) g.add_node(chain_name(i), state);
  const std::int32_t waist = (n - 1) / 2;
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    if (i < waist) g.add_edge(i, i + 1, 1, factor);        // decimate: consume factor
    else if (i > waist) g.add_edge(i, i + 1, factor, 1);   // interpolate: produce factor
    else g.add_edge(i, i + 1, 1, 1);                       // the waist
  }
  return g;
}

SdfGraph heavy_tail_pipeline(std::int32_t n, std::int64_t small_state,
                             std::int64_t large_state, std::int32_t every_k) {
  CCS_EXPECTS(n >= 2, "pipeline needs at least two modules");
  CCS_EXPECTS(every_k >= 1, "every_k must be positive");
  CCS_EXPECTS(small_state >= 0 && large_state >= small_state, "invalid states");
  SdfGraph g;
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_node(chain_name(i), (i % every_k == every_k - 1) ? large_state : small_state);
  }
  for (std::int32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1, 1);
  return g;
}

}  // namespace ccs::workloads
