#include "workloads/pipelines.h"

#include <gtest/gtest.h>

#include "sdf/gain.h"
#include "sdf/validate.h"

namespace ccs::workloads {
namespace {

using sdf::NodeId;

void expect_valid_pipeline(const sdf::SdfGraph& g) {
  EXPECT_TRUE(g.is_pipeline());
  EXPECT_TRUE(sdf::validate(g, sdf::ValidationOptions{}).empty());
}

TEST(Pipelines, UniformStructure) {
  const auto g = uniform_pipeline(8, 100, 2);
  expect_valid_pipeline(g);
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.edge_count(), 7);
  EXPECT_EQ(g.total_state(), 800);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g.edge(e).out_rate, 2);
    EXPECT_EQ(g.edge(e).in_rate, 2);
  }
}

TEST(Pipelines, UniformRejectsTiny) {
  EXPECT_THROW(uniform_pipeline(1, 10), ContractViolation);
}

TEST(Pipelines, RandomWithinBounds) {
  Rng rng(5);
  const auto g = random_pipeline(20, 10, 50, 4, rng);
  expect_valid_pipeline(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.node(v).state, 10);
    EXPECT_LE(g.node(v).state, 50);
  }
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_GE(g.edge(e).out_rate, 1);
    EXPECT_LE(g.edge(e).out_rate, 4);
    EXPECT_GE(g.edge(e).in_rate, 1);
    EXPECT_LE(g.edge(e).in_rate, 4);
  }
}

TEST(Pipelines, RandomIsDeterministicPerSeed) {
  Rng a(9);
  Rng b(9);
  const auto g1 = random_pipeline(10, 1, 100, 3, a);
  const auto g2 = random_pipeline(10, 1, 100, 3, b);
  for (NodeId v = 0; v < g1.node_count(); ++v) {
    EXPECT_EQ(g1.node(v).state, g2.node(v).state);
  }
}

TEST(Pipelines, HourglassRateProfile) {
  const auto g = hourglass_pipeline(7, 10, 4);
  expect_valid_pipeline(g);
  // First edges decimate (in > out), last edges interpolate (out > in).
  EXPECT_LT(g.edge(0).out_rate, g.edge(0).in_rate);
  EXPECT_GT(g.edge(g.edge_count() - 1).out_rate, g.edge(g.edge_count() - 1).in_rate);
}

TEST(Pipelines, HourglassIsRateMatched) {
  // Any chain is; mostly checks generator arithmetic didn't break gains.
  EXPECT_TRUE(sdf::is_rate_matched(hourglass_pipeline(11, 10, 2)));
}

TEST(Pipelines, HeavyTailPlacesLargeModules) {
  const auto g = heavy_tail_pipeline(10, 8, 512, 5);
  expect_valid_pipeline(g);
  EXPECT_EQ(g.node(4).state, 512);
  EXPECT_EQ(g.node(9).state, 512);
  EXPECT_EQ(g.node(0).state, 8);
  EXPECT_EQ(g.total_state(), 8 * 8 + 2 * 512);
}

}  // namespace
}  // namespace ccs::workloads
