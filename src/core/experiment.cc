#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/cluster.h"
#include "core/server.h"
#include "iomodel/cache.h"
#include "schedule/schedule.h"
#include "util/error.h"
#include "util/format.h"

namespace ccs::core {

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

}  // namespace

struct Experiment::Coordinate {
  std::string workload;
  iomodel::CacheConfig cache;
  std::string strategy;
  bool is_baseline = false;
  bool is_online = false;
  bool is_cluster = false;
  std::string arrival;
  std::int32_t tenants = 0;
  std::int32_t workers = 0;
  std::string placement;
  std::string cost_model;
  std::int64_t t_multiplier = 1;
};

Experiment::Experiment(SweepSpec spec, const workloads::Registry* workload_registry,
                       const partition::Registry* partitioner_registry,
                       const schedule::Registry* scheduler_registry,
                       const workloads::ArrivalRegistry* arrival_registry)
    : spec_(std::move(spec)),
      workloads_(workload_registry != nullptr ? workload_registry
                                              : &workloads::Registry::global()),
      partitioners_(partitioner_registry != nullptr ? partitioner_registry
                                                    : &partition::Registry::global()),
      schedulers_(scheduler_registry != nullptr ? scheduler_registry
                                                : &schedule::Registry::global()),
      arrivals_(arrival_registry != nullptr ? arrival_registry
                                            : &workloads::ArrivalRegistry::global()) {}

std::vector<Experiment::Coordinate> Experiment::enumerate() const {
  std::vector<Coordinate> out;
  const std::vector<std::int64_t> t_mults =
      spec_.t_multipliers.empty() ? std::vector<std::int64_t>{1} : spec_.t_multipliers;
  const std::vector<std::int32_t> tenant_counts = spec_.online.tenant_counts.empty()
                                                      ? std::vector<std::int32_t>{1}
                                                      : spec_.online.tenant_counts;
  const std::vector<std::int32_t> cluster_tenant_counts =
      spec_.cluster.tenant_counts.empty() ? std::vector<std::int32_t>{1}
                                          : spec_.cluster.tenant_counts;
  const std::vector<std::int32_t> cluster_worker_counts =
      spec_.cluster.worker_counts.empty() ? std::vector<std::int32_t>{1}
                                          : spec_.cluster.worker_counts;
  const std::vector<std::string> cluster_placements =
      spec_.cluster.placements.empty() ? std::vector<std::string>{"round-robin"}
                                       : spec_.cluster.placements;
  const std::vector<std::string> cluster_cost_models =
      spec_.cluster.cost_models.empty() ? std::vector<std::string>{"uniform"}
                                        : spec_.cluster.cost_models;
  for (const std::string& workload : spec_.workloads) {
    for (const iomodel::CacheConfig& cache : spec_.caches) {
      for (const std::string& partitioner : spec_.partitioners) {
        for (const std::int64_t t : t_mults) {
          Coordinate at;
          at.workload = workload;
          at.cache = cache;
          at.strategy = partitioner;
          at.t_multiplier = t;
          out.push_back(std::move(at));
        }
      }
      for (const std::string& baseline : spec_.baselines) {
        Coordinate at;
        at.workload = workload;
        at.cache = cache;
        at.strategy = baseline;
        at.is_baseline = true;
        out.push_back(std::move(at));
      }
      for (const std::string& arrival : spec_.online.arrivals) {
        for (const std::int32_t tenants : tenant_counts) {
          Coordinate at;
          at.workload = workload;
          at.cache = cache;
          at.strategy = spec_.online.online_policy;
          at.is_online = true;
          at.arrival = arrival;
          at.tenants = tenants;
          out.push_back(std::move(at));
        }
      }
      for (const std::string& arrival : spec_.cluster.arrivals) {
        for (const std::int32_t tenants : cluster_tenant_counts) {
          for (const std::int32_t workers : cluster_worker_counts) {
            for (const std::string& placement : cluster_placements) {
              for (const std::string& cost_model : cluster_cost_models) {
                Coordinate at;
                at.workload = workload;
                at.cache = cache;
                at.strategy = spec_.cluster.online_policy;
                at.is_cluster = true;
                at.arrival = arrival;
                at.tenants = tenants;
                at.workers = workers;
                at.placement = placement;
                at.cost_model = cost_model;
                out.push_back(std::move(at));
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::size_t Experiment::cell_count() const { return enumerate().size(); }

CellResult Experiment::run_cell(const Coordinate& at) const {
  CellResult cell;
  cell.workload = at.workload;
  cell.cache = at.cache;
  cell.strategy = at.strategy;
  cell.is_baseline = at.is_baseline;
  cell.is_online = at.is_online;
  cell.is_cluster = at.is_cluster;
  cell.arrival = at.arrival;
  cell.tenants = at.tenants;
  cell.workers = at.workers;
  cell.placement = at.placement;
  cell.cost_model = at.cost_model;
  cell.t_multiplier = at.t_multiplier;
  try {
    if (at.is_online || at.is_cluster) {
      if (at.is_online) {
        run_online_cell(at, cell);
      } else {
        run_cluster_cell(at, cell);
      }
      cell.misses_per_input = cell.run.misses_per_input();
      cell.misses_per_output = cell.run.misses_per_output();
      cell.ok = true;
      return cell;
    }
    const sdf::SdfGraph graph = workloads_->build(at.workload);

    schedule::Schedule sched;
    if (at.is_baseline) {
      schedule::SchedulerContext ctx;
      ctx.cache_words = at.cache.capacity_words;
      ctx.block_words = at.cache.block_words;
      sched = schedulers_->build(at.strategy, graph, ctx);
      cell.resolved_strategy = at.strategy;
    } else {
      PlannerOptions opts;
      opts.cache = at.cache;
      opts.c_bound = spec_.c_bound;
      opts.partitioner = at.strategy;
      opts.t_multiplier = at.t_multiplier;
      opts.exact_max_nodes = spec_.exact_max_nodes;
      opts.seed = spec_.seed;
      const Planner planner(graph, opts, partitioners_);
      Plan plan = planner.plan();
      cell.resolved_strategy = plan.partitioner_name;
      cell.components = plan.partition.num_components;
      cell.batch_t = plan.batch_t;
      cell.bandwidth = plan.partition_bandwidth.to_double();
      cell.predicted_misses_per_input = plan.predicted.misses_per_input;
      sched = std::move(plan.schedule);
    }
    cell.schedule_name = sched.name;
    cell.buffer_words = sched.total_buffer_words();

    // Measure on the augmentation-factor cache (Theorem 5's regime). The
    // cell owns its graph, engine, and cache: nothing here is shared with
    // any other cell, which is what makes the sweep order- and
    // thread-count-independent.
    iomodel::CacheConfig sim = at.cache;
    sim.capacity_words = std::max<std::int64_t>(
        at.cache.block_words,
        static_cast<std::int64_t>(std::llround(spec_.sim_capacity_factor *
                                               static_cast<double>(at.cache.capacity_words))));
    validate_cache_geometry(sim);

    const std::int64_t rounds = schedule::periods_for_outputs(sched, spec_.target_outputs);
    iomodel::LruCache cache(sim);
    runtime::Engine engine(graph, sched.buffer_caps, cache, spec_.engine);
    const auto measure = [&]() {
      runtime::RunResult total;
      for (std::int64_t r = 0; r < rounds; ++r) total += engine.run(sched.period);
      return total;
    };
    cell.run = measure();
    // Further repetitions reuse the constructed engine against a fresh cold
    // cache (Engine::rebind_cache); every repetition must reproduce the
    // first bit-for-bit or the cell is flagged.
    for (std::int32_t rep = 1; rep < spec_.repetitions; ++rep) {
      iomodel::LruCache fresh(sim);
      engine.rebind_cache(fresh);
      const runtime::RunResult again = measure();
      if (again != cell.run) {
        throw Error("repetition " + std::to_string(rep) +
                    " diverged from the first measurement (nondeterministic strategy "
                    "or runtime)");
      }
    }
    cell.misses_per_input = cell.run.misses_per_input();
    cell.misses_per_output = cell.run.misses_per_output();
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
  }
  return cell;
}

void Experiment::run_online_cell(const Coordinate& at, CellResult& cell) const {
  const sdf::SdfGraph graph = workloads_->build(at.workload);

  // Plan once with the "auto" partitioner; every tenant serves this plan.
  PlannerOptions opts;
  opts.cache = at.cache;
  opts.c_bound = spec_.c_bound;
  opts.partitioner = "auto";
  opts.exact_max_nodes = spec_.exact_max_nodes;
  opts.seed = spec_.seed;
  const Planner planner(graph, opts, partitioners_);
  const Plan plan = planner.plan();
  cell.resolved_strategy = at.strategy == "auto"
                               ? schedule::resolve_auto_policy(graph)
                               : at.strategy;
  cell.components = plan.partition.num_components;
  cell.bandwidth = plan.partition_bandwidth.to_double();
  cell.schedule_name = "online:" + cell.resolved_strategy;

  // Tenants share one augmented cache (same regime as the batch cells) but
  // size their Theta(M) cross buffers for the planned M, not the shared
  // capacity.
  iomodel::CacheConfig sim = at.cache;
  sim.capacity_words = std::max<std::int64_t>(
      at.cache.block_words,
      static_cast<std::int64_t>(std::llround(spec_.sim_capacity_factor *
                                             static_cast<double>(at.cache.capacity_words))));
  validate_cache_geometry(sim);

  const workloads::ArrivalPattern pattern = arrivals_->build(at.arrival);
  std::int64_t buffer_words = 0;  // per-tenant budget under the online rule
  const auto measure = [&]() {
    ServerOptions server_opts;
    server_opts.cache = sim;
    server_opts.tenant_policy = spec_.online.tenant_policy;
    Server server(server_opts);
    StreamOptions stream_opts;
    stream_opts.policy = at.strategy;
    stream_opts.engine = spec_.engine;
    for (std::int32_t t = 0; t < at.tenants; ++t) {
      server.admit("tenant-" + std::to_string(t), graph, plan.partition, stream_opts,
                   at.cache.capacity_words);
    }
    if (server.tenant_count() > 0) {
      buffer_words = 0;
      for (const std::int64_t cap : server.stream(0).policy().buffer_caps()) {
        buffer_words += cap;
      }
    }
    for (std::int64_t tick = 0; tick < spec_.online.ticks; ++tick) {
      const std::int64_t items = pattern(tick);
      for (TenantId t = 0; t < server.tenant_count(); ++t) server.push(t, items);
      server.run_until_idle();
    }
    server.drain_all();
    return server.report();
  };

  ServerReport report = measure();
  for (std::int32_t rep = 1; rep < spec_.repetitions; ++rep) {
    const ServerReport again = measure();
    bool identical = again.aggregate == report.aggregate &&
                     again.tenants.size() == report.tenants.size();
    for (std::size_t i = 0; identical && i < report.tenants.size(); ++i) {
      identical = again.tenants[i].totals == report.tenants[i].totals;
    }
    if (!identical) {
      throw Error("repetition " + std::to_string(rep) +
                  " diverged from the first measurement (nondeterministic tenant "
                  "policy or runtime)");
    }
  }
  cell.run = report.aggregate;
  cell.server_steps = report.steps;
  cell.buffer_words = buffer_words;
}

void Experiment::run_cluster_cell(const Coordinate& at, CellResult& cell) const {
  const sdf::SdfGraph graph = workloads_->build(at.workload);

  // Plan once with the "auto" partitioner; every tenant serves this plan.
  PlannerOptions opts;
  opts.cache = at.cache;
  opts.c_bound = spec_.c_bound;
  opts.partitioner = "auto";
  opts.exact_max_nodes = spec_.exact_max_nodes;
  opts.seed = spec_.seed;
  const Planner planner(graph, opts, partitioners_);
  const Plan plan = planner.plan();
  cell.resolved_strategy = at.strategy == "auto"
                               ? schedule::resolve_auto_policy(graph)
                               : at.strategy;
  cell.components = plan.partition.num_components;
  cell.bandwidth = plan.partition_bandwidth.to_double();
  cell.schedule_name = "cluster:" + cell.resolved_strategy;

  // Each worker's private L1 gets the augmented geometry (same regime as
  // the batch/online cells); the optional shared LLC scales off it.
  iomodel::CacheConfig l1 = at.cache;
  l1.capacity_words = std::max<std::int64_t>(
      at.cache.block_words,
      static_cast<std::int64_t>(std::llround(spec_.sim_capacity_factor *
                                             static_cast<double>(at.cache.capacity_words))));
  validate_cache_geometry(l1);

  const workloads::ArrivalPattern pattern = arrivals_->build(at.arrival);
  std::int64_t buffer_words = 0;  // per-tenant budget under the online rule
  const auto measure = [&]() {
    ClusterOptions cluster_opts;
    cluster_opts.workers = at.workers;
    cluster_opts.l1 = l1;
    cluster_opts.llc_words =
        spec_.cluster.llc_factor > 0 ? spec_.cluster.llc_factor * l1.capacity_words : 0;
    cluster_opts.llc_shards = spec_.cluster.llc_shards;
    cluster_opts.placement = at.placement;
    cluster_opts.cost_model = at.cost_model;
    cluster_opts.slo_p99 = spec_.cluster.slo_p99;
    cluster_opts.adaptive = spec_.cluster.adaptive;
    cluster_opts.admission = spec_.cluster.admission;
    cluster_opts.budget.max_live_sessions = spec_.cluster.max_live_sessions;
    cluster_opts.swap = spec_.cluster.swap;
    cluster_opts.band_words = spec_.cluster.band_words;
    Cluster cluster(cluster_opts);
    StreamOptions stream_opts;
    stream_opts.policy = at.strategy;
    stream_opts.engine = spec_.engine;

    if (spec_.cluster.churn_sessions > 0) {
      // Churn mode: the lifecycle trace decides who opens, pushes, and
      // closes; sessions idle between their own bursts (swap-tier fodder).
      workloads::ChurnOptions churn;
      churn.sessions = spec_.cluster.churn_sessions;
      churn.max_concurrent = spec_.cluster.churn_max_live;
      churn.pushes_per_session = spec_.cluster.churn_pushes;
      churn.items_per_push = spec_.cluster.churn_items;
      churn.seed = spec_.seed;
      std::unordered_map<std::int64_t, TenantId> live_ids;
      for (const workloads::SessionEvent& e : workloads::churn_trace(churn)) {
        switch (e.kind) {
          case workloads::SessionEvent::Kind::kOpen: {
            const TenantId id =
                cluster.admit("sess-" + std::to_string(e.session), graph,
                              plan.partition, stream_opts, at.cache.capacity_words);
            if (id == kNoTenant) {
              throw Error("churn admission rejected session " +
                          std::to_string(e.session) +
                          " (budget too tight for the trace's concurrency)");
            }
            live_ids.emplace(e.session, id);
            if (e.session == 0) {
              buffer_words = 0;
              for (const std::int64_t cap :
                   cluster.stream(id).policy().buffer_caps()) {
                buffer_words += cap;
              }
            }
            break;
          }
          case workloads::SessionEvent::Kind::kPush:
            cluster.push(live_ids.at(e.session), e.items);
            cluster.run_until_idle();
            // With the swap tier on, every quiescent point sheds all idle
            // sessions -- the aggressive-eviction regime, so churn cells
            // actually round-trip sessions instead of merely allowing it.
            if (cluster_opts.swap) cluster.swap_out_idle();
            break;
          case workloads::SessionEvent::Kind::kClose:
            cluster.close(live_ids.at(e.session));
            live_ids.erase(e.session);
            break;
        }
      }
      cluster.drain_all();
      return cluster.report();
    }

    for (std::int32_t t = 0; t < at.tenants; ++t) {
      cluster.admit("tenant-" + std::to_string(t), graph, plan.partition, stream_opts,
                    at.cache.capacity_words);
    }
    if (cluster.tenant_count() > 0) {
      buffer_words = 0;
      for (const std::int64_t cap : cluster.stream(0).policy().buffer_caps()) {
        buffer_words += cap;
      }
    }
    // Deterministic virtual time; the placement policy is consulted at
    // every tick boundary, so migration-happy policies actually migrate.
    for (std::int64_t tick = 0; tick < spec_.cluster.ticks; ++tick) {
      const std::int64_t items = pattern(tick);
      for (TenantId t = 0; t < cluster.tenant_count(); ++t) cluster.push(t, items);
      cluster.rebalance();
      cluster.run_until_idle();
    }
    cluster.drain_all();
    return cluster.report();
  };

  ClusterReport report = measure();
  for (std::int32_t rep = 1; rep < spec_.repetitions; ++rep) {
    const ClusterReport again = measure();
    bool identical = again.aggregate == report.aggregate &&
                     again.llc == report.llc &&
                     again.migrations == report.migrations &&
                     again.auto_migrations == report.auto_migrations &&
                     again.retired == report.retired &&
                     again.lifecycle == report.lifecycle &&
                     again.tenants.size() == report.tenants.size();
    for (std::size_t i = 0; identical && i < report.tenants.size(); ++i) {
      identical = again.tenants[i].totals == report.tenants[i].totals &&
                  again.tenants[i].worker == report.tenants[i].worker;
    }
    if (!identical) {
      throw Error("repetition " + std::to_string(rep) +
                  " diverged from the first measurement (nondeterministic placement "
                  "policy or runtime)");
    }
  }
  cell.run = report.aggregate;
  cell.server_steps = report.steps;
  cell.cluster_makespan = report.makespan();
  cell.cluster_migrations = report.migrations;
  cell.cluster_auto_migrations = report.auto_migrations;
  cell.cluster_peak_live = report.lifecycle.peak_live;
  cell.cluster_p50 = report.aggregate.latency.p50();
  cell.cluster_p95 = report.aggregate.latency.p95();
  cell.cluster_p99 = report.aggregate.latency.p99();
  for (const ClusterTenantReport& t : report.tenants) {
    if (spec_.cluster.slo_p99 <= 0 || t.totals.latency.p99() <= spec_.cluster.slo_p99) {
      ++cell.cluster_slo_ok;
    }
  }
  cell.buffer_words = buffer_words;
}

ExperimentResult Experiment::run(std::int32_t threads) const {
  if (spec_.workloads.empty()) throw Error("sweep spec lists no workloads");
  if (spec_.caches.empty()) throw Error("sweep spec lists no cache geometries");
  if (spec_.partitioners.empty() && spec_.baselines.empty() &&
      spec_.online.arrivals.empty() && spec_.cluster.arrivals.empty()) {
    throw Error(
        "sweep spec lists no partitioners, no baseline schedulers, and no "
        "online or cluster arrival patterns");
  }
  if (spec_.repetitions < 1) throw Error("sweep spec needs repetitions >= 1");
  if (!spec_.online.arrivals.empty() && spec_.online.ticks < 1) {
    throw Error("online sweep needs ticks >= 1");
  }
  if (!spec_.cluster.arrivals.empty()) {
    if (spec_.cluster.ticks < 1) throw Error("cluster sweep needs ticks >= 1");
    if (spec_.cluster.llc_factor < 0) {
      throw Error("cluster sweep needs llc_factor >= 0");
    }
    if (spec_.cluster.llc_shards < 0) {
      throw Error("cluster sweep needs llc_shards >= 0");
    }
    if (spec_.cluster.churn_sessions < 0) {
      throw Error("cluster sweep needs churn_sessions >= 0");
    }
    if (spec_.cluster.churn_sessions > 0 &&
        (spec_.cluster.churn_max_live < 1 || spec_.cluster.churn_pushes < 1 ||
         spec_.cluster.churn_items < 1)) {
      throw Error("churn sweep needs churn_max_live, churn_pushes, and "
                  "churn_items all >= 1");
    }
  }

  const std::vector<Coordinate> grid = enumerate();
  ExperimentResult result;
  result.threads = std::max<std::int32_t>(1, threads);
  result.cells.resize(grid.size());

  // wall_seconds is diagnostic throughput metadata, never simulated
  // output: every cell's counters are clock-independent (the sweep is
  // differential-tested bit-identical across thread counts).
  const auto started = std::chrono::steady_clock::now();  // ccs-lint: allow(wall-clock)
  // Work-stealing by atomic index: workers claim cells dynamically but write
  // only their own pre-sized slot, so the output is in grid order and
  // identical for any pool size.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= grid.size()) break;
      result.cells[i] = run_cell(grid[i]);
    }
  };
  if (result.threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(result.threads));
    for (std::int32_t t = 0; t < result.threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.wall_seconds =  // ccs-lint: allow(wall-clock)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return result;
}

std::size_t ExperimentResult::failed_cells() const {
  std::size_t n = 0;
  for (const CellResult& c : cells) {
    if (!c.ok) ++n;
  }
  return n;
}

void ExperimentResult::write_csv(std::ostream& os) const {
  os << "workload,cache_words,block_words,strategy,kind,arrival,tenants,workers,"
        "placement,t_multiplier,ok,"
        "resolved,components,batch_t,bandwidth,predicted_misses_per_input,schedule,"
        "buffer_words,accesses,misses,writebacks,firings,source_firings,sink_firings,"
        "state_misses,channel_misses,io_misses,misses_per_input,misses_per_output,"
        "server_steps,cluster_makespan,cluster_migrations,cluster_auto_migrations,"
        "cluster_peak_live,error,"
        "cost_model,cluster_p50,cluster_p95,cluster_p99,cluster_slo_ok\n";
  for (const CellResult& c : cells) {
    os << csv_escape(c.workload) << ',' << c.cache.capacity_words << ','
       << c.cache.block_words << ',' << csv_escape(c.strategy) << ','
       << (c.is_cluster  ? "cluster"
           : c.is_online ? "online"
           : c.is_baseline ? "baseline"
                           : "partitioned")
       << ',' << csv_escape(c.arrival) << ',' << c.tenants << ',' << c.workers << ','
       << csv_escape(c.placement) << ',' << c.t_multiplier << ','
       << (c.ok ? 1 : 0) << ',' << csv_escape(c.resolved_strategy) << ',' << c.components
       << ',' << c.batch_t << ',' << fmt_double(c.bandwidth) << ','
       << fmt_double(c.predicted_misses_per_input) << ',' << csv_escape(c.schedule_name)
       << ',' << c.buffer_words << ',' << c.run.cache.accesses << ',' << c.run.cache.misses
       << ',' << c.run.cache.writebacks << ',' << c.run.firings << ','
       << c.run.source_firings << ',' << c.run.sink_firings << ',' << c.run.state_misses
       << ',' << c.run.channel_misses << ',' << c.run.io_misses << ','
       << fmt_double(c.misses_per_input) << ',' << fmt_double(c.misses_per_output) << ','
       << c.server_steps << ',' << c.cluster_makespan << ',' << c.cluster_migrations
       << ',' << c.cluster_auto_migrations << ',' << c.cluster_peak_live << ','
       << csv_escape(c.error) << ',' << csv_escape(c.cost_model) << ','
       << c.cluster_p50 << ',' << c.cluster_p95 << ',' << c.cluster_p99 << ','
       << c.cluster_slo_ok << '\n';
  }
}

void ExperimentResult::write_json(std::ostream& os) const {
  os << "{\n  \"threads\": " << threads << ",\n  \"wall_seconds\": "
     << fmt_double(wall_seconds) << ",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"workload\": \"" << json_escape(c.workload) << "\""
       << ", \"cache_words\": " << c.cache.capacity_words
       << ", \"block_words\": " << c.cache.block_words
       << ", \"strategy\": \"" << json_escape(c.strategy) << "\""
       << ", \"kind\": \""
       << (c.is_cluster  ? "cluster"
           : c.is_online ? "online"
           : c.is_baseline ? "baseline"
                           : "partitioned")
       << "\"";
    if (c.is_online || c.is_cluster) {
      os << ", \"arrival\": \"" << json_escape(c.arrival) << "\""
         << ", \"tenants\": " << c.tenants << ", \"server_steps\": " << c.server_steps;
    }
    if (c.is_cluster) {
      os << ", \"workers\": " << c.workers << ", \"placement\": \""
         << json_escape(c.placement) << "\""
         << ", \"cluster_makespan\": " << c.cluster_makespan
         << ", \"cluster_migrations\": " << c.cluster_migrations
         << ", \"cluster_auto_migrations\": " << c.cluster_auto_migrations
         << ", \"cluster_peak_live\": " << c.cluster_peak_live
         << ", \"cost_model\": \"" << json_escape(c.cost_model) << "\""
         << ", \"cluster_p50\": " << c.cluster_p50
         << ", \"cluster_p95\": " << c.cluster_p95
         << ", \"cluster_p99\": " << c.cluster_p99
         << ", \"cluster_slo_ok\": " << c.cluster_slo_ok;
    }
    os << ", \"t_multiplier\": " << c.t_multiplier
       << ", \"ok\": " << (c.ok ? "true" : "false");
    if (c.ok) {
      os << ", \"resolved\": \"" << json_escape(c.resolved_strategy) << "\""
         << ", \"components\": " << c.components << ", \"batch_t\": " << c.batch_t
         << ", \"bandwidth\": " << fmt_double(c.bandwidth)
         << ", \"predicted_misses_per_input\": " << fmt_double(c.predicted_misses_per_input)
         << ", \"schedule\": \"" << json_escape(c.schedule_name) << "\""
         << ", \"buffer_words\": " << c.buffer_words
         << ", \"accesses\": " << c.run.cache.accesses
         << ", \"misses\": " << c.run.cache.misses
         << ", \"writebacks\": " << c.run.cache.writebacks
         << ", \"firings\": " << c.run.firings
         << ", \"source_firings\": " << c.run.source_firings
         << ", \"sink_firings\": " << c.run.sink_firings
         << ", \"state_misses\": " << c.run.state_misses
         << ", \"channel_misses\": " << c.run.channel_misses
         << ", \"io_misses\": " << c.run.io_misses
         << ", \"misses_per_input\": " << fmt_double(c.misses_per_input)
         << ", \"misses_per_output\": " << fmt_double(c.misses_per_output);
    } else {
      os << ", \"error\": \"" << json_escape(c.error) << "\"";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace ccs::core
