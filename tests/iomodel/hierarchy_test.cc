#include "iomodel/hierarchy.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace ccs::iomodel {
namespace {

TEST(Hierarchy, SingleLevelBehavesLikeLru) {
  HierarchyCache h({64}, 8);
  LruCache lru(CacheConfig{64, 8});
  for (Addr a : {0, 8, 16, 0, 64, 72, 0, 8}) {
    h.access(a, AccessMode::kRead);
    lru.access(a, AccessMode::kRead);
  }
  EXPECT_EQ(h.stats().misses, lru.stats().misses);
  EXPECT_EQ(h.level_stats(0).hits, lru.stats().hits);
}

TEST(Hierarchy, L1HitNeverReachesL2) {
  HierarchyCache h({64, 1024}, 8);
  h.access(0, AccessMode::kRead);  // miss both levels
  EXPECT_EQ(h.level_stats(0).misses, 1);
  EXPECT_EQ(h.level_stats(1).misses, 1);
  h.access(1, AccessMode::kRead);  // L1 hit
  EXPECT_EQ(h.level_stats(0).hits, 1);
  EXPECT_EQ(h.level_stats(1).accesses, 1);  // L2 untouched by the hit
}

TEST(Hierarchy, L1EvictionServedByL2) {
  // L1 = 2 blocks, L2 = 8 blocks. Touch 3 blocks, come back to the first:
  // L1 misses again but L2 still holds it.
  HierarchyCache h({16, 64}, 8);
  for (Addr a : {0, 8, 16}) h.access(a, AccessMode::kRead);
  h.access(0, AccessMode::kRead);
  EXPECT_EQ(h.level_stats(0).misses, 4);  // 3 cold + 1 conflict
  EXPECT_EQ(h.level_stats(1).misses, 3);  // only the cold ones
  EXPECT_EQ(h.level_stats(1).hits, 1);    // refill from L2
}

TEST(Hierarchy, BackingStatsAreLastLevel) {
  HierarchyCache h({16, 64}, 8);
  for (Addr a : {0, 8, 16, 0}) h.access(a, AccessMode::kRead);
  EXPECT_EQ(h.stats().misses, h.level_stats(1).misses);
  EXPECT_EQ(h.depth(), 2u);
  EXPECT_EQ(h.level_words(0), 16);
  EXPECT_EQ(h.level_words(1), 64);
}

TEST(Hierarchy, FlushEmptiesAllLevels) {
  HierarchyCache h({16, 64}, 8);
  h.access(0, AccessMode::kWrite);
  h.flush();
  EXPECT_FALSE(h.contains(0));
  h.access(0, AccessMode::kRead);
  EXPECT_EQ(h.level_stats(1).misses, 2);
}

TEST(Hierarchy, ContainsChecksL1) {
  HierarchyCache h({16, 64}, 8);
  h.access(0, AccessMode::kRead);
  EXPECT_TRUE(h.contains(0));
  h.access(8, AccessMode::kRead);
  h.access(16, AccessMode::kRead);  // evicts block 0 from L1
  EXPECT_FALSE(h.contains(0));
}

TEST(Hierarchy, RejectsBadGeometry) {
  EXPECT_THROW(HierarchyCache({}, 8), ContractViolation);
  EXPECT_THROW(HierarchyCache({64, 64}, 8), ContractViolation);    // not increasing
  EXPECT_THROW(HierarchyCache({128, 64}, 8), ContractViolation);   // shrinking
}

TEST(Hierarchy, ThreeLevels) {
  HierarchyCache h({16, 64, 256}, 8);
  for (Addr a = 0; a < 32 * 8; a += 8) h.access(a, AccessMode::kRead);  // 32 blocks
  // L3 (32 blocks capacity) holds everything; L1 only the last 2.
  EXPECT_EQ(h.level_stats(2).misses, 32);
  h.access(0, AccessMode::kRead);
  EXPECT_EQ(h.level_stats(2).hits, 1);
}

}  // namespace
}  // namespace ccs::iomodel
