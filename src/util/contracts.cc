#include "util/contract.h"

#include <sstream>

namespace ccs::detail {

void contract_fail(const char* kind, const char* cond, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw ContractViolation(os.str());
}

}  // namespace ccs::detail
