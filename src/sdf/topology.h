// Topological utilities over streaming graphs: sorting, precedence,
// reachability, and component contraction (used to verify that partitions
// are "well ordered" per Definition 2 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.h"

namespace ccs::sdf {

/// Kahn topological sort. Throws GraphError if the graph has a cycle.
/// Deterministic: ties are broken by smallest node id.
std::vector<NodeId> topological_sort(const SdfGraph& g);

/// True iff the graph has no directed cycle.
bool is_acyclic(const SdfGraph& g);

/// Precomputed transitive reachability. precedes(u, v) answers "u ≺ v"
/// (a directed path u -> ... -> v exists, u != v) in O(1) after O(V·E/64)
/// construction using packed bitsets.
class Reachability {
 public:
  explicit Reachability(const SdfGraph& g);

  /// True iff there is a directed path from u to v (u != v).
  bool precedes(NodeId u, NodeId v) const {
    CCS_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_, "node id out of range");
    if (u == v) return false;
    const auto& row = bits_[static_cast<std::size_t>(u)];
    return (row[static_cast<std::size_t>(v) >> 6] >> (static_cast<std::size_t>(v) & 63)) & 1U;
  }

  /// True iff u and v are incomparable (neither precedes the other).
  bool incomparable(NodeId u, NodeId v) const {
    return u != v && !precedes(u, v) && !precedes(v, u);
  }

 private:
  std::int32_t n_;
  std::vector<std::vector<std::uint64_t>> bits_;  // bits_[u] = set of v with u ≺ v
};

/// An edge of the contracted multigraph: the component ids at both ends plus
/// the originating channel. Internal edges (same component) are omitted.
struct ContractedEdge {
  std::int32_t src_comp;
  std::int32_t dst_comp;
  EdgeId origin;
};

/// Contracts each component of `assignment` (node -> component id in
/// [0, num_components)) to a single vertex and returns all cross edges.
std::vector<ContractedEdge> contract(const SdfGraph& g,
                                     const std::vector<std::int32_t>& assignment,
                                     std::int32_t num_components);

/// True iff the contracted multigraph is acyclic, i.e. the partition
/// described by `assignment` is well ordered (Definition 2).
bool contraction_is_acyclic(const SdfGraph& g, const std::vector<std::int32_t>& assignment,
                            std::int32_t num_components);

/// Orders modules of a pipeline from source to sink. Throws GraphError if
/// the graph is not a pipeline.
std::vector<NodeId> pipeline_order(const SdfGraph& g);

}  // namespace ccs::sdf
