#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace ccs {

void Table::set_header(std::vector<std::string> header) {
  CCS_EXPECTS(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
  if (align_.empty()) align_.assign(header_.size(), Align::kRight);
}

void Table::set_align(std::vector<Align> align) {
  CCS_EXPECTS(align.size() == header_.size(), "alignment width must match header");
  align_ = std::move(align);
}

void Table::add_row(std::vector<std::string> row) {
  CCS_EXPECTS(!header_.empty(), "header must be set before rows");
  CCS_EXPECTS(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = width[c] - row[c].size();
      if (align_[c] == Align::kRight) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ratio(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "x";
  return os.str();
}

}  // namespace ccs
