// schedule::OnlinePolicy -- the stateful online rules and their registry.

#include "schedule/online.h"

#include <gtest/gtest.h>

#include "partition/pipeline_dp.h"
#include "schedule/dynamic.h"
#include "schedule/token_sim.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs::schedule {
namespace {

/// Minimal driver view over a TokenSim plus an explicit credit counter.
class TestView final : public EngineView {
 public:
  TestView(const TokenSim& sim, std::int64_t credit) : sim_(&sim), credit_(credit) {}

  std::int64_t tokens(sdf::EdgeId e) const override { return sim_->tokens(e); }
  std::int64_t capacity(sdf::EdgeId e) const override { return sim_->capacity(e); }
  std::int64_t fired(sdf::NodeId v) const override { return sim_->fired(v); }
  std::int64_t input_credit() const override { return credit_; }

  void set_credit(std::int64_t c) { credit_ = c; }
  void consume(std::int64_t n) {
    if (credit_ != kUnlimitedCredit) credit_ -= n;
  }

 private:
  const TokenSim* sim_;
  std::int64_t credit_;
};

TEST(OnlineRegistry, BuiltinsAndAutoResolution) {
  OnlineRegistry r;
  register_builtin_online_policies(r);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.contains("pipeline-half-full"));
  EXPECT_TRUE(r.contains("homogeneous-m-batch"));

  const auto pipe = ccs::workloads::uniform_pipeline(6, 50);
  EXPECT_EQ(resolve_auto_policy(pipe), "pipeline-half-full");
  // A uniform pipeline at rate 1 is also homogeneous, so both rules apply.
  EXPECT_EQ(r.applicable_keys(pipe).size(), 2u);

  Rng rng(7);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 2;
  const auto dag = ccs::workloads::layered_homogeneous_dag(spec, rng);
  EXPECT_EQ(resolve_auto_policy(dag), "homogeneous-m-batch");

  const auto multirate = ccs::workloads::hourglass_pipeline(8, 50, 2);
  EXPECT_EQ(resolve_auto_policy(multirate), "pipeline-half-full");

  try {
    r.build("bogus", pipe, partition::Partition::whole(pipe), {});
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("valid online rules"), std::string::npos);
  }
}

TEST(PipelinePolicy, BuffersMatchTheBatchWrapper) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 512);
  const auto policy = make_pipeline_half_full_policy(g, dp.partition, 512);
  const auto dyn = dynamic_pipeline_schedule(g, dp.partition, 512, 500);
  EXPECT_EQ(policy->buffer_caps(), dyn.buffer_caps);
  EXPECT_EQ(policy->name(), "pipeline-half-full");
  EXPECT_GT(policy->num_components(), 0);
}

TEST(PipelinePolicy, HalfFullScanDesignatesUpstreamOfFirstSlackEdge) {
  // Three 2-module segments over a 6-stage unit-rate pipeline.
  const auto g = ccs::workloads::uniform_pipeline(6, 50);
  const auto p =
      partition::Partition::from_components(g, {{0, 1}, {2, 3}, {4, 5}});
  const auto policy = make_pipeline_half_full_policy(g, p, 64);
  TokenSim sim(g, policy->buffer_caps());
  TestView view(sim, /*credit=*/0);

  // Empty buffers: the first cross edge is at most half full -> component 0.
  EXPECT_EQ(policy->next_component(view), 0);

  // Fill the first cross edge past half: component 1 becomes designated.
  const sdf::EdgeId first_cross = g.out_edges(1).front();
  const std::int64_t cap = sim.capacity(first_cross);
  TokenSim sim2(g, policy->buffer_caps());
  TestView view2(sim2, 0);
  for (std::int64_t i = 0; i < cap / 2 + 1; ++i) sim2.fire(0), sim2.fire(1);
  EXPECT_GT(sim2.tokens(first_cross) * 2, sim2.capacity(first_cross));
  EXPECT_EQ(policy->next_component(view2), 1);
}

TEST(PipelinePolicy, IdleWithoutCreditPlansNothingAndIsPure) {
  const auto g = ccs::workloads::uniform_pipeline(6, 50);
  const auto p = partition::Partition::from_components(g, {{0, 1, 2}, {3, 4, 5}});
  const auto policy = make_pipeline_half_full_policy(g, p, 64);
  TokenSim sim(g, policy->buffer_caps());
  TestView view(sim, /*credit=*/0);

  // No arrivals, empty channels: nothing can move.
  EXPECT_TRUE(policy->next_step(view).idle());

  // Planning is pure: asking twice with credit yields the identical plan,
  // because the policy never mutates the driver's state.
  view.set_credit(32);
  const StepPlan a = policy->next_step(view);
  const StepPlan b = policy->next_step(view);
  EXPECT_FALSE(a.idle());
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.firings, b.firings);
}

TEST(PipelinePolicy, DrainNeverPlansBeyondRemainingCredit) {
  const auto g = ccs::workloads::uniform_pipeline(6, 50);
  const auto p = partition::Partition::from_components(g, {{0, 1, 2}, {3, 4, 5}});
  const auto policy = make_pipeline_half_full_policy(g, p, 64);
  TokenSim sim(g, policy->buffer_caps());
  TestView view(sim, /*credit=*/0);
  // Unit repetition vector: fired(source) is already on an iteration
  // boundary, so a zero-credit drain plans no source firings at all.
  const auto drain = policy->plan_drain(view);
  EXPECT_TRUE(drain.empty());
}

TEST(HomogeneousPolicy, SchedulableNeedsFullInputsEmptyOutputsAndCredit) {
  Rng rng(11);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 2;
  spec.width = 2;
  const auto g = ccs::workloads::layered_homogeneous_dag(spec, rng);
  const auto p = partition::Partition::singletons(g);
  const std::int64_t m = 16;
  const auto policy = make_homogeneous_m_batch_policy(g, p, m);
  TokenSim sim(g, policy->buffer_caps());

  // Zero credit: even the source component cannot run.
  EXPECT_EQ(policy->next_component(TestView(sim, 0)), kNoComponent);
  // With m credits the source's component becomes schedulable.
  const std::int64_t c0 = policy->next_component(TestView(sim, m));
  ASSERT_NE(c0, kNoComponent);
  const StepPlan step = policy->next_step(TestView(sim, m));
  EXPECT_EQ(step.component, c0);
  // One execution = m local iterations of the component's members.
  EXPECT_EQ(step.firings.size(),
            static_cast<std::size_t>(m) * policy->members(c0).size());
}

TEST(HomogeneousPolicy, RejectsMultirateGraphs) {
  const auto g = ccs::workloads::hourglass_pipeline(8, 50, 2);
  EXPECT_THROW(make_homogeneous_m_batch_policy(g, partition::Partition::whole(g), 64),
               Error);
}

TEST(Wrappers, PipelineWrapperReproducesPolicyRunExactly) {
  // The wrapper is defined as "run the policy to completion"; verify the
  // equivalence independently by driving the policy by hand.
  const std::int64_t m = 256;
  const std::int64_t outputs = 600;
  Rng rng(99);
  const auto g = ccs::workloads::random_pipeline(12, 32, 200, 3, rng);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * m);
  const auto wrapper = dynamic_pipeline_schedule(g, dp.partition, m, outputs);

  const auto policy = make_pipeline_half_full_policy(g, dp.partition, m);
  TokenSim sim(g, policy->buffer_caps());
  TestView view(sim, policy->batch_credit(outputs));
  std::vector<sdf::NodeId> period;
  const auto execute = [&](const std::vector<sdf::NodeId>& firings) {
    for (const sdf::NodeId v : firings) {
      sim.fire(v);
      if (v == policy->source()) view.consume(1);
    }
    period.insert(period.end(), firings.begin(), firings.end());
  };
  while (sim.fired(policy->sink()) < outputs) {
    const StepPlan step = policy->next_step(view);
    ASSERT_FALSE(step.idle());
    execute(step.firings);
  }
  execute(policy->plan_drain(view));

  EXPECT_TRUE(sim.drained());
  EXPECT_EQ(period, wrapper.period);
  EXPECT_EQ(sim.fired(policy->source()), wrapper.inputs_per_period);
  EXPECT_EQ(sim.fired(policy->sink()), wrapper.outputs_per_period);
}

}  // namespace
}  // namespace ccs::schedule
