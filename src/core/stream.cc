#include "core/stream.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace ccs::core {

class Stream::EngineBackedView final : public schedule::EngineView {
 public:
  explicit EngineBackedView(const runtime::Engine& engine) : engine_(&engine) {}

  std::int64_t tokens(sdf::EdgeId e) const override { return engine_->tokens(e); }
  std::int64_t capacity(sdf::EdgeId e) const override {
    return engine_->tokens(e) + engine_->space(e);
  }
  std::int64_t fired(sdf::NodeId v) const override { return engine_->fired(v); }
  std::int64_t input_credit() const override { return engine_->input_credit(); }

 private:
  const runtime::Engine* engine_;
};

Stream::Stream(sdf::SdfGraph g, const partition::Partition& p, std::int64_t m,
               std::unique_ptr<iomodel::CacheSim> owned, iomodel::CacheSim* shared,
               StreamOptions options, const schedule::OnlineRegistry* registry)
    : graph_(std::move(g)),
      options_(std::move(options)),
      owned_cache_(std::move(owned)),
      cache_(owned_cache_ != nullptr ? owned_cache_.get() : shared) {
  CCS_EXPECTS(options_.max_pending_inputs >= 0, "negative backpressure bound");
  const schedule::OnlineRegistry& reg =
      registry != nullptr ? *registry : schedule::OnlineRegistry::global();
  schedule::OnlineContext ctx;
  ctx.m = m;
  policy_ = reg.build(options_.policy, graph_, p, ctx);
  options_.engine.credit_input = true;  // a Stream is always metered
  engine_ = std::make_unique<runtime::Engine>(graph_, policy_->buffer_caps(), *cache_,
                                              options_.engine);
  view_ = std::make_unique<EngineBackedView>(*engine_);
}

Stream::Stream(const sdf::SdfGraph& g, const partition::Partition& p,
               const iomodel::CacheConfig& cache, StreamOptions options,
               const schedule::OnlineRegistry* registry)
    : Stream(g, p, cache.capacity_words,
             (validate_cache_geometry(cache), std::make_unique<iomodel::LruCache>(cache)),
             nullptr, std::move(options), registry) {}

Stream::Stream(const sdf::SdfGraph& g, const partition::Partition& p,
               iomodel::CacheSim& cache, std::int64_t m, StreamOptions options,
               const schedule::OnlineRegistry* registry)
    : Stream(g, p, m, nullptr, &cache, std::move(options), registry) {}

Stream::Stream(const Planner& planner, const Plan& plan, StreamOptions options)
    : Stream(planner.graph(), plan.partition, planner.options().cache,
             std::move(options)) {}

Stream::~Stream() = default;

std::int64_t Stream::push(std::int64_t items) {
  CCS_EXPECTS(items >= 0, "cannot push a negative number of items");
  std::int64_t accepted = items;
  if (options_.max_pending_inputs > 0) {
    accepted = std::min(accepted,
                        std::max<std::int64_t>(
                            0, options_.max_pending_inputs - pending_inputs()));
  }
  engine_->push_input(accepted);
  return accepted;
}

StepResult Stream::step() {
  StepResult result;
  schedule::StepPlan plan = policy_->next_step(*view_);
  if (plan.idle()) return result;
  result.component = plan.component;
  // On a shared cache another tenant may have run since our last step; its
  // traffic must not be attributed to this session's delta window.
  engine_->resync_cache_baseline();
  result.run = engine_->run(plan.firings);
  if (cost_model_ != nullptr) {
    // Price the step's own delta window and record it as one latency
    // sample; totals_ then accumulates both through RunResult::operator+=.
    result.run.cost = cost_model_->step_cost(result.run.firings, result.run.cache);
    result.run.latency.record(result.run.cost);
  }
  totals_ += result.run;
  ++steps_;
  return result;
}

runtime::RunResult Stream::run_until_idle() {
  runtime::RunResult total;
  for (StepResult r = step(); r.progressed(); r = step()) total += r.run;
  return total;
}

runtime::RunResult Stream::drain() {
  const std::vector<sdf::NodeId> plan = policy_->plan_drain(*view_);
  engine_->resync_cache_baseline();
  runtime::RunResult result = engine_->run(plan);
  if (cost_model_ != nullptr) {
    // Priced so drain work advances a worker's virtual clock, but NOT
    // recorded as a histogram sample -- a terminal flush is not a serving
    // step, and one giant sample would distort the tail percentiles.
    result.cost = cost_model_->step_cost(result.firings, result.cache);
  }
  totals_ += result;
  return result;
}

void Stream::migrate_cache(iomodel::CacheSim& cache) {
  CCS_EXPECTS(owned_cache_ == nullptr,
              "cannot migrate a session that owns its cache (standalone streams "
              "are single-placement by construction)");
  engine_->migrate_cache(cache);
  cache_ = &cache;
}

StreamState Stream::save_state() const {
  StreamState state;
  state.engine = engine_->save_state();
  state.totals = totals_;
  state.steps = steps_;
  return state;
}

void Stream::restore_state(const StreamState& state) {
  engine_->restore_state(state.engine);
  totals_ = state.totals;
  steps_ = state.steps;
}

runtime::FootprintSample Stream::footprint_sample() const noexcept {
  runtime::FootprintSample sample = engine_->footprint_sample();
  sample.accesses = totals_.cache.accesses;
  sample.misses = totals_.cache.misses;
  return sample;
}

std::int64_t Stream::inputs_consumed() const { return engine_->fired(policy_->source()); }

std::int64_t Stream::outputs_produced() const { return engine_->fired(policy_->sink()); }

}  // namespace ccs::core
