// placement::FootprintEstimator -- online working-set estimation for
// adaptive session placement.
//
// The paper's gain analysis bounds each component's working set (state plus
// Theta(M) buffers), and a Stream's memory layout is exactly that bound made
// concrete: module state plus the channel rings the online policy sized from
// the partition. The estimator *seeds* each session's footprint with that
// layout span, then corrects it online from two observed signals:
//
//   * per-session miss rates (Engine::snapshot() counters, attributed per
//     tenant by core::Stream) -- a session whose window miss rate is at the
//     thrash threshold is cycling its whole layout through the cache, so the
//     live estimate snaps back up to the full span;
//   * residency (WorkerPool::resident_words over the session's layout span)
//     -- a warm session's live set is what its worker actually holds.
//
// On top of the estimate sits a hot/cold/express classifier in the mold of
// gem-forge's StreamPlacementManager (per-stream footprint decides which
// cache level a stream lives at, with an "express" bypass for streams too
// big to cache):
//
//   * hot     -- recently active and worth keeping cache-resident; hot
//                footprints are what a worker's L1 budget is charged with.
//   * cold    -- no recent activity; contributes nothing to cache pressure.
//   * express -- active but with a footprint far beyond the private-cache
//                budget; it thrashes wherever it runs, so placement treats
//                it as cold pressure-wise and leaves it to affinity.
//
// Everything is integer arithmetic on observed counters -- no wall clock, no
// floating point -- so estimates are bit-reproducible across repeat runs and
// across the cluster's virtual-time/thread execution modes (both feed the
// estimator identical per-tenant counters at identical quiescent points).
#pragma once

#include <cstdint>
#include <vector>

namespace ccs::placement {

/// Classifier and correction knobs. Rates are expressed per mille so the
/// whole estimator stays in exact integer arithmetic.
struct FootprintConfig {
  /// Private-cache words a session is classified against (a worker's L1
  /// capacity). 0 disables the express classification.
  std::int64_t budget_words = 0;

  /// Observation windows with fewer attributed accesses than this count as
  /// quiet: they update nothing and push the session toward cold.
  std::int64_t min_window_accesses = 64;

  /// Consecutive quiet windows before an active session demotes to cold.
  std::int64_t cold_windows = 2;

  /// A session whose live footprint exceeds budget_words * this / 1000 is
  /// "express": too big to keep resident, so it never counts as hot
  /// pressure (gem-forge's bypass for streams too big to cache).
  std::int64_t express_permille = 2000;

  /// Window miss rate (misses * 1000 / accesses) at or above which the
  /// session is treated as cycling its entire layout: the live estimate
  /// snaps to the full span instead of trusting residency.
  std::int64_t thrash_miss_permille = 500;
};

/// One counter observation for one session, polled at a quiescent point.
/// Counters are lifetime totals; the estimator windows them internally.
struct FootprintObservation {
  std::int64_t accesses = 0;        ///< Lifetime attributed cache accesses.
  std::int64_t misses = 0;          ///< Lifetime attributed cache misses.
  std::int64_t resident_words = 0;  ///< Layout words currently cache-resident.
};

/// Tracks the live working set of a fleet of sessions. Sessions are dense
/// indices in add_session() order (core::Cluster aligns them with its
/// TenantIds). Deterministic: identical observation sequences produce
/// identical estimates.
class FootprintEstimator {
 public:
  explicit FootprintEstimator(FootprintConfig config = {});

  /// Registers a session. `layout_words` is the gain-analysis seed (state +
  /// channel rings, the Stream's layout span); `state_words` is the module
  /// state share, kept as the floor of the live estimate while the session
  /// is active (a freshly migrated session has nothing resident yet but
  /// will reload at least its state). Returns the session's index.
  std::int32_t add_session(std::int64_t layout_words, std::int64_t state_words);

  std::int32_t session_count() const noexcept {
    return static_cast<std::int32_t>(sessions_.size());
  }

  /// Feeds one counter window. Quiet windows (fewer than
  /// min_window_accesses new accesses) only age the session toward cold;
  /// active windows re-classify it and correct the live estimate:
  /// thrash-rate windows snap it to the full layout span, otherwise it
  /// follows observed residency (floored at state_words, capped at the
  /// layout span).
  void observe(std::int32_t session, const FootprintObservation& o);

  /// Current live working-set estimate in words.
  std::int64_t footprint_words(std::int32_t session) const;

  /// Recently active, and small enough to be worth keeping resident. Hot
  /// footprints are what placement charges against a worker's L1 budget.
  bool hot(std::int32_t session) const;

  /// Active but too big for the budget (see FootprintConfig::
  /// express_permille); thrashes wherever it runs.
  bool express(std::int32_t session) const;

  /// Last active window's miss rate per mille (0 before the first active
  /// window).
  std::int64_t window_miss_permille(std::int32_t session) const;

  const FootprintConfig& config() const noexcept { return config_; }

 private:
  struct Session {
    std::int64_t layout = 0;  ///< Gain-analysis span (the estimate's cap).
    std::int64_t state = 0;   ///< Module-state share (the active floor).
    std::int64_t live = 0;    ///< Current working-set estimate.
    std::int64_t last_accesses = 0;  ///< Lifetime baseline of the window.
    std::int64_t last_misses = 0;
    std::int64_t quiet = 0;          ///< Consecutive quiet windows.
    std::int64_t miss_permille = 0;  ///< Last active window's miss rate.
    bool active = false;
  };

  const Session& session(std::int32_t s) const;

  FootprintConfig config_;
  std::vector<Session> sessions_;
};

/// Automatic-migration triggers for the cluster's "adaptive" placement key.
/// The estimator classifies; these thresholds decide when classification
/// turns into migration.
struct AdaptiveOptions {
  /// Master switch. false = thresholds never fire: the adaptive policy is
  /// consulted with every session cold, which makes it decision-for-
  /// decision identical to the "affinity" key (the differential-test
  /// baseline).
  bool migrate = true;

  /// A worker is oversubscribed when the sum of its resident hot sessions'
  /// footprints exceeds l1_words * this / 1000.
  std::int64_t oversub_permille = 1000;

  /// A worker whose private-L1 window miss rate reaches this is thrashing:
  /// under the inclusive hierarchy every private miss is a shared-LLC
  /// probe, so this is equally the worker's LLC pressure-delta signal.
  std::int64_t thrash_miss_permille = 850;

  /// Per-worker windows with fewer L1 accesses than this never signal
  /// thrash (avoids classifying warm-up traffic).
  std::int64_t min_window_accesses = 128;

  /// Estimator knobs. budget_words is filled by the cluster from its
  /// per-worker L1 capacity when left at 0.
  FootprintConfig footprint;
};

/// The differential-test baseline: adaptive placement whose migration
/// thresholds never fire (bit-identical to the "affinity" key).
inline AdaptiveOptions never_fire_adaptive() {
  AdaptiveOptions options;
  options.migrate = false;
  return options;
}

}  // namespace ccs::placement
