#include "partition/dag_greedy.h"

#include <vector>

#include "sdf/gain.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::partition {

namespace {

void check_feasible(const sdf::SdfGraph& g, std::int64_t state_bound) {
  CCS_EXPECTS(state_bound > 0, "state bound must be positive");
  if (g.max_state() > state_bound) {
    throw Error("a module exceeds the state bound; no bounded partition exists");
  }
}

}  // namespace

Partition dag_greedy_partition(const sdf::SdfGraph& g, std::int64_t state_bound) {
  check_feasible(g, state_bound);
  const auto order = sdf::topological_sort(g);
  std::vector<std::vector<sdf::NodeId>> comps;
  comps.emplace_back();
  std::int64_t current_state = 0;
  for (const sdf::NodeId v : order) {
    const std::int64_t s = g.node(v).state;
    if (current_state + s > state_bound && !comps.back().empty()) {
      comps.emplace_back();
      current_state = 0;
    }
    comps.back().push_back(v);
    current_state += s;
  }
  return Partition::from_components(g, comps);
}

Partition dag_greedy_gain_partition(const sdf::SdfGraph& g, std::int64_t state_bound) {
  check_feasible(g, state_bound);
  const auto order = sdf::topological_sort(g);
  const sdf::GainMap gains(g);
  const auto n = static_cast<std::int32_t>(order.size());

  // position of each node in the topological order
  std::vector<std::int32_t> pos(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  // cut_cost[i] = total gain of edges crossing the boundary between
  // positions i-1 and i (i.e. from pos < i to pos >= i).
  std::vector<Rational> cut_cost(static_cast<std::size_t>(n) + 1, Rational(0));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    const std::int32_t lo = pos[static_cast<std::size_t>(edge.src)] + 1;
    const std::int32_t hi = pos[static_cast<std::size_t>(edge.dst)];
    for (std::int32_t i = lo; i <= hi; ++i) {
      cut_cost[static_cast<std::size_t>(i)] += gains.edge_gain(e);
    }
  }

  // Pack greedily, but when the bound is hit at position i, place the actual
  // boundary at the cheapest cut in (start, i]; the overflow re-opens there.
  std::vector<std::int32_t> boundaries;  // segment start positions
  boundaries.push_back(0);
  std::int32_t start = 0;
  std::int64_t state = 0;
  std::vector<std::int64_t> node_state(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    node_state[static_cast<std::size_t>(i)] =
        g.node(order[static_cast<std::size_t>(i)]).state;
  }
  std::vector<std::int64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + node_state[static_cast<std::size_t>(i)];
  }

  for (std::int32_t i = 0; i < n; ++i) {
    state += node_state[static_cast<std::size_t>(i)];
    if (state <= state_bound) continue;
    // Must cut somewhere in (start, i]. Choose the cheapest boundary whose
    // trailing piece [cut, i] still fits the bound; ties keep the latest
    // position (fullest component) so retreating never shrinks components
    // without a strict bandwidth win.
    std::int32_t best = i;
    for (std::int32_t cut = i; cut > start; --cut) {
      const std::int64_t tail =
          prefix[static_cast<std::size_t>(i) + 1] - prefix[static_cast<std::size_t>(cut)];
      if (tail > state_bound) break;
      if (cut_cost[static_cast<std::size_t>(cut)] < cut_cost[static_cast<std::size_t>(best)]) {
        best = cut;
      }
    }
    boundaries.push_back(best);
    start = best;
    state = prefix[static_cast<std::size_t>(i) + 1] - prefix[static_cast<std::size_t>(best)];
  }

  std::vector<std::vector<sdf::NodeId>> comps;
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    const std::int32_t lo = boundaries[b];
    const std::int32_t hi =
        (b + 1 < boundaries.size()) ? boundaries[b + 1] : n;
    std::vector<sdf::NodeId> comp;
    for (std::int32_t i = lo; i < hi; ++i) comp.push_back(order[static_cast<std::size_t>(i)]);
    comps.push_back(std::move(comp));
  }
  return Partition::from_components(g, comps);
}

}  // namespace ccs::partition
