// E3 -- partitioner quality across pipeline families (Thm 5 vs the DP).
//
// For each pipeline family, compare the Theorem 5 greedy construction
// against the optimal DP: bandwidth of the partition and measured misses of
// the schedules built from each. Expected shape: bw(DP) <= bw(greedy)
// always; measured misses within a small constant of each other (the paper:
// the optimal partition "provides no more cache misses ... but not
// asymptotically fewer").

#include "bench/common.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "schedule/partitioned.h"
#include "sdf/gain.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t outputs = 2048;
  Rng rng(7);

  struct Family {
    std::string name;
    sdf::SdfGraph graph;
  };
  std::vector<Family> families;
  families.push_back({"uniform", workloads::uniform_pipeline(24, 256)});
  families.push_back({"random", workloads::random_pipeline(24, 64, 400, 3, rng)});
  families.push_back({"hourglass", workloads::hourglass_pipeline(24, 256, 2)});
  families.push_back({"heavy-tail", workloads::heavy_tail_pipeline(24, 64, 512, 6)});

  Table t("E3: Theorem-5 greedy vs optimal DP partitions (M=512, B=8)");
  t.set_header({"family", "bw greedy", "bw dp", "comps g/d", "misses/out greedy",
                "misses/out dp"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight});
  for (const auto& family : families) {
    const auto& g = family.graph;
    const sdf::GainMap gains(g);
    const auto greedy = partition::pipeline_greedy_partition(g, m);
    const auto dp = partition::pipeline_optimal_partition(
        g, partition::max_component_state(g, greedy.partition));
    schedule::PartitionedOptions sopts;
    sopts.m = m;
    const auto s_greedy = schedule::partitioned_schedule(g, greedy.partition, sopts);
    const auto s_dp = schedule::partitioned_schedule(g, dp.partition, sopts);
    const auto r_greedy = bench::run(g, s_greedy, 8 * m, b, outputs);
    const auto r_dp = bench::run(g, s_dp, 8 * m, b, outputs);
    t.add_row({family.name,
               partition::bandwidth(g, gains, greedy.partition).to_string(),
               dp.bandwidth.to_string(),
               std::to_string(greedy.partition.num_components) + "/" +
                   std::to_string(dp.partition.num_components),
               Table::num(r_greedy.misses_per_output(), 3),
               Table::num(r_dp.misses_per_output(), 3)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
