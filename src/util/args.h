// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment sweeps fail loudly instead of
// silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccs {

/// Declarative flag parser.
///
/// Usage:
///   ArgParser args("e01", "misses vs cache size");
///   args.add_int("cache-kw", 64, "cache size in kilo-words");
///   args.add_flag("csv", "emit CSV instead of aligned table");
///   args.parse(argc, argv);              // throws ccs::Error on bad input
///   const auto m = args.get_int("cache-kw");
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register flags (must precede parse()).
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws ccs::Error on unknown or malformed flags. If
  /// `--help` is present, prints usage and returns false.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Usage text (also printed by --help).
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Spec {
    Kind kind;
    std::string help;
    std::string value;  // current (default or parsed) textual value
  };

  const Spec& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
};

}  // namespace ccs
