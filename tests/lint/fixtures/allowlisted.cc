// Fixture: allowlist markers must suppress findings (same line and the line
// directly above), and an unrelated rule name must NOT suppress.
#include <chrono>
#include <cstdlib>

double allowed_same_line() {
  const auto t0 = std::chrono::steady_clock::now();  // ccs-lint: allow(wall-clock)
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

double allowed_line_above() {
  // ccs-lint: allow(wall-clock)
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

int allowed_multi() {
  return std::rand();  // ccs-lint: allow(raw-rand, wall-clock)
}

int wrong_rule_does_not_suppress() {
  return std::rand();  // ccs-lint: allow(wall-clock)  LINT-EXPECT(raw-rand)
}
