// Deterministic arrival-pattern generators for online sessions.
//
// A core::Stream consumes items as they arrive; an arrival pattern says how
// many arrive at each tick of a driving loop. Patterns are pure functions
// of the tick index -- deterministic and stateless -- so a sweep cell or a
// test replaying the same pattern sees the identical arrival sequence, and
// a pattern can be evaluated from any tick without replaying the prefix.
//
// The parametric factories build the three canonical serving shapes:
//  * steady  -- r items every tick (the paper's infinite-input idealization,
//               rate-limited);
//  * bursty  -- b items every p-th tick, nothing in between (same average
//               rate as steady(b/p) but maximally clumped);
//  * on_off  -- r items per tick for `on` ticks, then silence for `off`
//               (Markov-style duty cycling, the common traffic model).
//
// ArrivalRegistry names representative instances ("steady-1", "bursty-64",
// ...) so experiment specs can grid arrival shapes by key, exactly like
// workloads::Registry names graphs.
// Session churn (PR 8): where an ArrivalPattern modulates ONE session's
// rate, a ChurnTrace is the lifecycle schedule of a whole population --
// sessions open, push a few bursts (going idle in between), and close,
// with only a bounded number open at once. Deterministic via util/rng.h
// (splitmix64), so a trace regenerates bit-for-bit from its options.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/registry.h"

namespace ccs::workloads {

/// Items arriving at tick t (t >= 0). Implementations must be pure.
using ArrivalPattern = std::function<std::int64_t(std::int64_t tick)>;

/// `per_tick` items every tick.
ArrivalPattern steady_arrivals(std::int64_t per_tick);

/// `burst` items on every `period`-th tick (ticks 0, period, 2*period, ...),
/// zero otherwise. Requires burst >= 1 (a never-delivering pattern is a
/// misconfiguration; model an idle tenant with steady_arrivals(0)) and
/// period >= 1.
ArrivalPattern bursty_arrivals(std::int64_t burst, std::int64_t period);

/// `per_tick` items during on-phases: `on` ticks flowing, `off` ticks
/// silent, repeating. Requires on >= 1, off >= 0.
ArrivalPattern on_off_arrivals(std::int64_t per_tick, std::int64_t on, std::int64_t off);

/// `base` delayed by `shift` ticks: nothing arrives before tick `shift`,
/// then the base pattern plays from its own tick 0. Staggering the same
/// burst pattern across a cluster's tenants (tenant i shifted by i *
/// period / tenants) models out-of-phase sessions -- the regime where a
/// multicore's workers can overlap different tenants' bursts instead of
/// all stalling on the same silent ticks. Requires shift >= 0.
ArrivalPattern phase_shift_arrivals(ArrivalPattern base, std::int64_t shift);

/// Total arrivals over ticks [0, ticks).
std::int64_t total_arrivals(const ArrivalPattern& pattern, std::int64_t ticks);

/// A named arrival pattern.
struct ArrivalEntry {
  /// Builds the pattern (factories must be deterministic).
  std::function<ArrivalPattern()> build;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed arrival-pattern table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class ArrivalRegistry : public NamedRegistry<ArrivalEntry> {
 public:
  ArrivalRegistry() : NamedRegistry<ArrivalEntry>("arrival pattern") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static ArrivalRegistry& global();

  /// Looks up `name` and builds the pattern. Throws ccs::Error (listing
  /// valid keys) for unknown names.
  ArrivalPattern build(const std::string& name) const;
};

/// Registers the built-in patterns into `r` (used by global(); exposed so
/// tests can build isolated registries): steady-1, steady-16, bursty-64,
/// bursty-256, bursty-1024, on-off-8x8, on-off-16x48, bursty-64-shift-8.
void register_builtin_arrivals(ArrivalRegistry& r);

/// One lifecycle event in a churn trace. Sessions are logical indices
/// (0-based, in open order); the driver maps them to live tenant ids.
struct SessionEvent {
  enum class Kind {
    kOpen,   ///< Session `session` opens (admit).
    kPush,   ///< `items` arrivals for `session`, which then runs until idle
             ///< -- a push to a long-quiet session is its reactivation.
    kClose,  ///< Session `session` retires forever (close).
  };
  Kind kind = Kind::kOpen;
  std::int64_t session = 0;
  std::int64_t items = 0;  ///< Non-zero only for kPush.

  friend bool operator==(const SessionEvent&, const SessionEvent&) = default;
};

/// Churn-trace shape knobs.
struct ChurnOptions {
  std::int64_t sessions = 1024;          ///< Logical sessions over the trace.
  std::int64_t max_concurrent = 8;       ///< Open sessions at any instant.
  std::int64_t pushes_per_session = 4;   ///< Bursts each session receives.
  std::int64_t items_per_push = 64;      ///< Arrivals per burst.
  std::uint64_t seed = 1;                ///< splitmix64 seed.
};

/// Generates the full event stream of a churn workload: every session
/// opens exactly once, receives `pushes_per_session` bursts interleaved
/// with other sessions' activity (idling between its own bursts), and
/// closes after its last burst. At most `max_concurrent` sessions are open
/// at any prefix of the trace. Deterministic: identical options produce an
/// identical trace.
std::vector<SessionEvent> churn_trace(const ChurnOptions& options);

}  // namespace ccs::workloads
