#include "workloads/streamit.h"

#include <gtest/gtest.h>

#include "sdf/gain.h"
#include "sdf/repetition.h"
#include "sdf/validate.h"

namespace ccs::workloads {
namespace {

using sdf::NodeId;

TEST(StreamIt, SuiteHasTwelveApps) {
  const auto suite = streamit_suite();
  EXPECT_EQ(suite.size(), 12u);
}

TEST(StreamIt, AllAppsValidSingleSourceSink) {
  for (const auto& app : streamit_suite()) {
    const auto problems = sdf::validate(app.graph, sdf::ValidationOptions{});
    EXPECT_TRUE(problems.empty()) << app.name << ": "
                                  << (problems.empty() ? "" : problems.front());
  }
}

TEST(StreamIt, AllAppsHaveComputableRepetitionVectors) {
  for (const auto& app : streamit_suite()) {
    EXPECT_NO_THROW(sdf::RepetitionVector{app.graph}) << app.name;
  }
}

TEST(StreamIt, HomogeneousApps) {
  EXPECT_TRUE(bitonic_sort(3).is_homogeneous());
  EXPECT_TRUE(fft(4).is_homogeneous());
  EXPECT_TRUE(des(8).is_homogeneous());
  EXPECT_TRUE(serpent(8).is_homogeneous());
}

TEST(StreamIt, MultirateApps) {
  EXPECT_FALSE(fm_radio().is_homogeneous());
  EXPECT_FALSE(filter_bank().is_homogeneous());
  EXPECT_FALSE(matrix_mult().is_homogeneous());
  EXPECT_FALSE(vocoder().is_homogeneous());
  EXPECT_FALSE(tde().is_homogeneous());
  EXPECT_FALSE(radar().is_homogeneous());
}

TEST(StreamIt, SerpentIsLongLightPipeline) {
  const auto g = serpent(32);
  EXPECT_TRUE(g.is_pipeline());
  EXPECT_EQ(g.node_count(), 2 + 32 * 3);
  EXPECT_LT(g.max_state(), des(16).max_state());  // lighter rounds than DES
}

TEST(StreamIt, TdeIsMultiratePipelineWithFftState) {
  const auto g = tde(64);
  EXPECT_TRUE(g.is_pipeline());
  const sdf::NodeId fwd = g.find_node("FFTfwd");
  ASSERT_NE(fwd, sdf::kInvalidNode);
  EXPECT_EQ(g.node(fwd).state, 128);  // twiddle tables scale with block size
  const sdf::GainMap gains(g);
  EXPECT_EQ(gains.node_gain(fwd), Rational(1, 64));
}

TEST(StreamIt, VocoderBinsScaleWidth) {
  EXPECT_LT(vocoder(4).node_count(), vocoder(15).node_count());
  EXPECT_TRUE(sdf::is_rate_matched(vocoder(7)));
}

TEST(StreamIt, RadarChannelsDecimate) {
  const auto g = radar(8, 2);
  const sdf::GainMap gains(g);
  const sdf::NodeId cfar = g.find_node("CFAR0");
  ASSERT_NE(cfar, sdf::kInvalidNode);
  EXPECT_EQ(gains.node_gain(cfar), Rational(1, 2));  // 2:1 channel decimation
}

TEST(StreamIt, DesIsDeepPipeline) {
  const auto g = des(16);
  EXPECT_TRUE(g.is_pipeline());
  EXPECT_EQ(g.node_count(), 2 + 16 * 4);
}

TEST(StreamIt, MatrixMultIsPipeline) { EXPECT_TRUE(matrix_mult().is_pipeline()); }

TEST(StreamIt, FmRadioBandsScaleWidth) {
  const auto narrow = fm_radio(2);
  const auto wide = fm_radio(10);
  EXPECT_LT(narrow.node_count(), wide.node_count());
  EXPECT_EQ(wide.node_count() - narrow.node_count(), 8 * 2);  // 2 modules per band
}

TEST(StreamIt, FilterBankDecimatesByChannelCount) {
  const auto g = filter_bank(8);
  const sdf::GainMap gains(g);
  const NodeId down0 = g.find_node("Down0");
  ASSERT_NE(down0, sdf::kInvalidNode);
  EXPECT_EQ(gains.node_gain(down0), Rational(1, 8));
}

TEST(StreamIt, BeamformerFiltersCarryState) {
  const auto g = beamformer(4, 2);
  std::int64_t fir_state = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.node(v).name.rfind("CoarseFIR", 0) == 0) fir_state += g.node(v).state;
  }
  EXPECT_EQ(fir_state, 4 * 64);
}

TEST(StreamIt, SboxStateDominatesDes) {
  const auto g = des(16);
  std::int64_t sbox = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.node(v).name.rfind("Sbox", 0) == 0) sbox += g.node(v).state;
  }
  EXPECT_GT(sbox, g.total_state() / 2);
}

TEST(StreamIt, ButterflyNetworksAreDags) {
  EXPECT_TRUE(sdf::validate(bitonic_sort(3), sdf::ValidationOptions{}).empty());
  EXPECT_TRUE(sdf::validate(fft(4), sdf::ValidationOptions{}).empty());
}

}  // namespace
}  // namespace ccs::workloads
