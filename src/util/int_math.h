// Checked 64-bit integer arithmetic helpers.
//
// Gains, repetition vectors, and buffer sizes are products of user-supplied
// rates; silent wraparound would corrupt partitioning decisions, so every
// multiplication and addition that can grow goes through the checked helpers
// here (throwing ccs::OverflowError).
#pragma once

#include <cstdint>
#include <numeric>

#include "util/error.h"

namespace ccs {

/// Greatest common divisor of non-negative values; gcd(0, x) == x.
constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  return std::gcd(a, b);
}

/// a * b with overflow detection.
std::int64_t checked_mul(std::int64_t a, std::int64_t b);

/// a + b with overflow detection.
std::int64_t checked_add(std::int64_t a, std::int64_t b);

/// Least common multiple with overflow detection; lcm(0, x) == 0.
std::int64_t checked_lcm(std::int64_t a, std::int64_t b);

/// ceil(a / b) for a >= 0, b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Smallest multiple of `align` that is >= `v` (v >= 0, align > 0).
constexpr std::int64_t round_up(std::int64_t v, std::int64_t align) noexcept {
  return ceil_div(v, align) * align;
}

/// True if v is a power of two (v > 0).
constexpr bool is_pow2(std::int64_t v) noexcept { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace ccs
