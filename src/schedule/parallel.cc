#include "schedule/parallel.h"

#include <algorithm>
#include <queue>

#include "iomodel/cache.h"
#include "iomodel/layout.h"
#include "sdf/topology.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/stats.h"

namespace ccs::schedule {

double ParallelResult::imbalance() const { return busy_imbalance(worker_busy); }

namespace {

/// Shared memory image: one global layout for state and channel rings, so a
/// component executing on any worker touches the same addresses (moving a
/// component between workers therefore reloads its state on the new
/// worker's private cache, as on a real multicore).
struct SharedImage {
  explicit SharedImage(std::int64_t block_words) : layout(block_words) {}

  iomodel::MemoryLayout layout;
  std::vector<iomodel::Region> state;        // per node
  std::vector<iomodel::Region> ring;         // per edge
  std::vector<std::int64_t> ring_cap;        // per edge (tokens)
  std::vector<std::int64_t> head;            // per edge: absolute pop position
  std::vector<std::int64_t> tail;            // per edge: absolute push position
};

/// Touches the blocks of ring positions [from, from+count) (absolute,
/// wrapped modulo capacity) on `cache`.
void touch_ring(const SharedImage& image, sdf::EdgeId e, std::int64_t from,
                std::int64_t count, iomodel::CacheSim& cache, iomodel::AccessMode mode) {
  const auto ei = static_cast<std::size_t>(e);
  const std::int64_t cap = image.ring_cap[ei];
  const std::int64_t block = cache.config().block_words;
  std::int64_t pos = from % cap;
  std::int64_t remaining = count;
  while (remaining > 0) {
    const std::int64_t run = std::min(remaining, cap - pos);
    const iomodel::Addr first = image.ring[ei].base + pos;
    const iomodel::Addr last = first + run - 1;
    for (iomodel::BlockId b = first / block; b <= last / block; ++b) {
      cache.access(std::max(first, b * block), mode);
    }
    remaining -= run;
    pos = (pos + run) % cap;
  }
}

}  // namespace

ParallelResult simulate_parallel_homogeneous(const sdf::SdfGraph& g,
                                             const partition::Partition& p,
                                             std::int64_t m, std::int64_t cache_words,
                                             std::int64_t block_words, std::int32_t workers,
                                             std::int64_t min_outputs) {
  CCS_EXPECTS(workers >= 1, "need at least one worker");
  CCS_EXPECTS(cache_words > 0 && block_words > 0,
              "invalid parallel simulation parameters");
  std::vector<iomodel::LruCache> caches;
  caches.reserve(static_cast<std::size_t>(workers));
  std::vector<iomodel::CacheSim*> views;
  views.reserve(static_cast<std::size_t>(workers));
  for (std::int32_t w = 0; w < workers; ++w) {
    caches.emplace_back(iomodel::CacheConfig{cache_words, block_words});
  }
  for (auto& cache : caches) views.push_back(&cache);
  return simulate_parallel_homogeneous(g, p, m, views, min_outputs);
}

ParallelResult simulate_parallel_homogeneous(const sdf::SdfGraph& g,
                                             const partition::Partition& p, std::int64_t m,
                                             std::span<iomodel::CacheSim* const> worker_caches,
                                             std::int64_t min_outputs) {
  const std::int32_t workers = static_cast<std::int32_t>(worker_caches.size());
  CCS_EXPECTS(workers >= 1, "need at least one worker");
  for (const iomodel::CacheSim* cache : worker_caches) {
    CCS_EXPECTS(cache != nullptr, "null worker cache");
  }
  const std::int64_t block_words = worker_caches.front()->config().block_words;
  for (const iomodel::CacheSim* cache : worker_caches) {
    CCS_EXPECTS(cache->config().block_words == block_words,
                "worker caches must share one block size");
  }
  CCS_EXPECTS(m > 0 && min_outputs > 0, "invalid parallel simulation parameters");
  if (!g.is_homogeneous()) {
    throw Error("parallel component scheduling requires a homogeneous graph");
  }
  if (!partition::is_well_ordered(g, p)) {
    throw Error("parallel scheduling requires a well-ordered partition");
  }
  const partition::Partition topo_p = partition::renumber_topological(g, p);
  const auto global_topo = sdf::topological_sort(g);
  const std::int32_t k = topo_p.num_components;

  std::vector<std::vector<sdf::NodeId>> members(static_cast<std::size_t>(k));
  for (const sdf::NodeId v : global_topo) {
    members[static_cast<std::size_t>(topo_p.comp(v))].push_back(v);
  }

  // Shared memory image: block-aligned state, packed rings. Cross edges get
  // M tokens of ring; internal edges one burst (homogeneous: one word).
  SharedImage image(block_words);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    image.state.push_back(image.layout.allocate(g.node(v).state, "state:" + g.node(v).name));
  }
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const bool cross = topo_p.comp(g.edge(e).src) != topo_p.comp(g.edge(e).dst);
    const std::int64_t cap = cross ? m : 1;
    image.ring_cap.push_back(cap);
    image.ring.push_back(image.layout.allocate(cap, "ring:" + std::to_string(e), false));
  }
  image.head.assign(static_cast<std::size_t>(g.edge_count()), 0);
  image.tail.assign(static_cast<std::size_t>(g.edge_count()), 0);

  // Committed token counts per edge (tail - head of completed batches).
  std::vector<std::int64_t> tokens(static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<bool> running(static_cast<std::size_t>(k), false);

  auto schedulable = [&](std::int32_t c) {
    if (running[static_cast<std::size_t>(c)]) return false;
    for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
      for (const sdf::EdgeId e : g.in_edges(v)) {
        if (topo_p.comp(g.edge(e).src) != c && tokens[static_cast<std::size_t>(e)] < m) {
          return false;
        }
      }
      for (const sdf::EdgeId e : g.out_edges(v)) {
        if (topo_p.comp(g.edge(e).dst) != c && tokens[static_cast<std::size_t>(e)] != 0) {
          return false;
        }
      }
    }
    return true;
  };

  ParallelResult result;
  result.workers = workers;
  result.worker_misses.assign(static_cast<std::size_t>(workers), 0);
  result.worker_busy.assign(static_cast<std::size_t>(workers), 0);
  result.worker_batches.assign(static_cast<std::size_t>(workers), 0);

  struct Completion {
    std::int64_t time;
    std::int32_t worker;
    std::int32_t comp;
    bool operator>(const Completion& other) const { return time > other.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::vector<std::int64_t> worker_free(static_cast<std::size_t>(workers), 0);
  std::vector<bool> worker_idle(static_cast<std::size_t>(workers), true);

  const sdf::NodeId sink = g.sinks().front();
  std::int64_t sink_fired = 0;
  std::int64_t now = 0;

  // Executes component c's batch on worker w's private cache, returning the
  // firing count (= execution time units). Memory effects happen here; the
  // token-count commit is done by the caller at completion time.
  auto execute = [&](std::int32_t c, std::int32_t w) -> std::int64_t {
    iomodel::CacheSim& cache = *worker_caches[static_cast<std::size_t>(w)];
    const std::int64_t block = block_words;
    std::int64_t firings = 0;
    for (std::int64_t iter = 0; iter < m; ++iter) {
      for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
        for (const sdf::EdgeId e : g.in_edges(v)) {
          touch_ring(image, e, image.head[static_cast<std::size_t>(e)]++, 1, cache,
                     iomodel::AccessMode::kRead);
        }
        const iomodel::Region& st = image.state[static_cast<std::size_t>(v)];
        for (iomodel::Addr a = st.base; a < st.end(); a += block) {
          cache.access(a, iomodel::AccessMode::kRead);
        }
        for (const sdf::EdgeId e : g.out_edges(v)) {
          touch_ring(image, e, image.tail[static_cast<std::size_t>(e)]++, 1, cache,
                     iomodel::AccessMode::kWrite);
        }
        ++firings;
      }
    }
    return firings;
  };

  auto try_dispatch = [&]() {
    for (std::int32_t w = 0; w < workers; ++w) {
      if (!worker_idle[static_cast<std::size_t>(w)]) continue;
      for (std::int32_t c = 0; c < k; ++c) {
        if (!schedulable(c)) continue;
        // Reserve: claim tokens logically now so no other worker doubles up.
        running[static_cast<std::size_t>(c)] = true;
        for (const sdf::NodeId v : members[static_cast<std::size_t>(c)]) {
          for (const sdf::EdgeId e : g.in_edges(v)) {
            if (topo_p.comp(g.edge(e).src) != c) tokens[static_cast<std::size_t>(e)] -= m;
          }
        }
        const std::int64_t misses_before =
            worker_caches[static_cast<std::size_t>(w)]->stats().misses;
        const std::int64_t duration = execute(c, w);
        result.worker_misses[static_cast<std::size_t>(w)] +=
            worker_caches[static_cast<std::size_t>(w)]->stats().misses - misses_before;
        result.worker_busy[static_cast<std::size_t>(w)] += duration;
        ++result.worker_batches[static_cast<std::size_t>(w)];
        result.total_firings += duration;
        worker_idle[static_cast<std::size_t>(w)] = false;
        completions.push(Completion{now + duration, w, c});
        break;
      }
    }
  };

  try_dispatch();
  while (sink_fired < min_outputs) {
    if (completions.empty()) {
      throw DeadlockError("parallel scheduler stalled: no component schedulable "
                          "(is some component's state larger than a worker cache?)");
    }
    const Completion done = completions.top();
    completions.pop();
    now = done.time;
    // Commit outputs.
    for (const sdf::NodeId v : members[static_cast<std::size_t>(done.comp)]) {
      for (const sdf::EdgeId e : g.out_edges(v)) {
        if (topo_p.comp(g.edge(e).dst) != done.comp) {
          tokens[static_cast<std::size_t>(e)] += m;
        }
      }
    }
    if (topo_p.comp(sink) == done.comp) sink_fired += m;
    running[static_cast<std::size_t>(done.comp)] = false;
    worker_idle[static_cast<std::size_t>(done.worker)] = true;
    try_dispatch();
  }

  result.makespan = now;
  result.outputs = sink_fired;
  for (const auto misses : result.worker_misses) result.total_misses += misses;
  return result;
}

}  // namespace ccs::schedule
