// Textual serialization of streaming graphs.
//
// Format (one declaration per line, '#' comments, blank lines ignored):
//
//   node <name> state=<words>
//   edge <src> -> <dst> out=<rate> in=<rate>
//
// Nodes must be declared before edges that reference them. The writer emits
// nodes in id order and edges in id order, so write/read round-trips
// preserve ids exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "sdf/graph.h"

namespace ccs::sdf {

/// Serializes `g` to the text format.
void write_graph(const SdfGraph& g, std::ostream& os);

/// Convenience: serialization as a string.
std::string to_text(const SdfGraph& g);

/// Parses the text format. Throws ParseError with a line number on malformed
/// input; node/edge semantic errors surface as GraphError/RateError.
SdfGraph read_graph(std::istream& is);

/// Convenience: parse from a string.
SdfGraph from_text(const std::string& text);

}  // namespace ccs::sdf
