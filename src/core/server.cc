#include "core/server.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "util/contracts.h"
#include "util/error.h"
#include "util/format.h"

namespace ccs::core {

namespace {

// The engine reserves [2^40, ...) for external streams; tenant bands must
// stay below it (mirrors kExternalInBase in runtime/engine.cc).
constexpr std::int64_t kBandSpaceWords = std::int64_t{1} << 40;

/// Fair timesharing: rotate through runnable tenants in id order, resuming
/// after the last pick.
class RoundRobinPolicy final : public TenantPolicy {
 public:
  TenantId pick(const std::vector<TenantStatus>& runnable) override {
    // First runnable id strictly greater than the last pick, else wrap.
    const TenantStatus* best = nullptr;
    const TenantStatus* lowest = nullptr;
    for (const TenantStatus& t : runnable) {
      if (lowest == nullptr || t.id < lowest->id) lowest = &t;
      if (t.id > last_ && (best == nullptr || t.id < best->id)) best = &t;
    }
    last_ = (best != nullptr ? best : lowest)->id;
    return last_;
  }

 private:
  TenantId last_ = kNoTenant;
};

/// Cache affinity: keep running the tenant whose last step missed least per
/// firing (its working set is the one currently resident), ties broken by
/// lowest id so the rule is deterministic.
class MissAwarePolicy final : public TenantPolicy {
 public:
  TenantId pick(const std::vector<TenantStatus>& runnable) override {
    const TenantStatus* best = nullptr;
    for (const TenantStatus& t : runnable) {
      if (best == nullptr || t.last_miss_rate < best->last_miss_rate ||
          (t.last_miss_rate == best->last_miss_rate && t.id < best->id)) {
        best = &t;
      }
    }
    return best->id;
  }
};

void write_run_result_json(std::ostream& os, const runtime::RunResult& r) {
  os << "{\"accesses\": " << r.cache.accesses << ", \"hits\": " << r.cache.hits
     << ", \"misses\": " << r.cache.misses << ", \"writebacks\": " << r.cache.writebacks
     << ", \"firings\": " << r.firings << ", \"source_firings\": " << r.source_firings
     << ", \"sink_firings\": " << r.sink_firings
     << ", \"state_misses\": " << r.state_misses
     << ", \"channel_misses\": " << r.channel_misses
     << ", \"io_misses\": " << r.io_misses << "}";
}

}  // namespace

TenantRegistry& TenantRegistry::global() {
  static TenantRegistry instance;
  static const bool initialized = (register_builtin_tenant_policies(instance), true);
  (void)initialized;
  return instance;
}

void register_builtin_tenant_policies(TenantRegistry& r) {
  r.add("round-robin", {[] { return std::make_unique<RoundRobinPolicy>(); },
                        "fair timesharing: rotate through runnable tenants in id order"});
  r.add("miss-aware", {[] { return std::make_unique<MissAwarePolicy>(); },
                       "cache affinity: prefer the tenant whose last step missed least "
                       "per firing"});
}

void ServerReport::write_json(std::ostream& os) const {
  os << "{\n  \"steps\": " << steps << ", \"retired_sessions\": " << retired_sessions
     << ",\n  \"aggregate\": ";
  write_run_result_json(os, aggregate);
  os << ",\n  \"retired\": ";
  write_run_result_json(os, retired);
  os << ",\n  \"shared_cache\": {\"accesses\": " << shared_cache.accesses
     << ", \"hits\": " << shared_cache.hits << ", \"misses\": " << shared_cache.misses
     << ", \"writebacks\": " << shared_cache.writebacks << "}";
  // The whole lifecycle block on ONE line: swap-on vs swap-off
  // differentials strip it with `grep -v '"lifecycle"'` and byte-compare
  // the rest.
  os << ",\n  \"lifecycle\": {\"sessions_opened\": " << lifecycle.sessions_opened
     << ", \"sessions_closed\": " << lifecycle.sessions_closed
     << ", \"live_sessions\": " << lifecycle.live_sessions
     << ", \"swapped_sessions\": " << lifecycle.swapped_sessions
     << ", \"peak_live\": " << lifecycle.peak_live
     << ", \"resident_words\": " << lifecycle.resident_words
     << ", \"peak_resident_words\": " << lifecycle.peak_resident_words
     << ", \"swap_outs\": " << lifecycle.swap_outs
     << ", \"swap_ins\": " << lifecycle.swap_ins
     << ", \"admissions_rejected\": " << lifecycle.admissions_rejected
     << ", \"admissions_queued\": " << lifecycle.admissions_queued
     << ", \"swap_stored_bytes\": " << swap_stored_bytes
     << ", \"swap_peak_stored_bytes\": " << swap_peak_stored_bytes << "}";
  os << ",\n  \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantReport& t = tenants[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << t.id << ", \"name\": \""
       << json_escape(t.name) << "\", \"state\": \"" << session::to_string(t.state)
       << "\", \"steps\": " << t.steps << ", \"outputs\": " << t.outputs
       << ", \"totals\": ";
    write_run_result_json(os, t.totals);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

Server::Server(ServerOptions options, const TenantRegistry* registry)
    : options_(std::move(options)) {
  validate_cache_geometry(options_.cache);
  const TenantRegistry& reg = registry != nullptr ? *registry : TenantRegistry::global();
  policy_ = reg.find(options_.tenant_policy).build();
  admission_ = session::AdmissionRegistry::global().build(options_.admission,
                                                          options_.budget);
  if (options_.band_words < options_.cache.block_words ||
      options_.band_words % options_.cache.block_words != 0) {
    throw Error("band_words must be a positive multiple of the cache block size");
  }
  cache_ = std::make_unique<iomodel::LruCache>(options_.cache);
  baseline_ = cache_->stats();
}

session::AdmissionLoad Server::current_load() const {
  session::AdmissionLoad load;
  load.live_sessions = lifecycle_.live_sessions;
  load.resident_words = lifecycle_.resident_words;
  return load;
}

TenantId Server::admit(std::string name, const sdf::SdfGraph& g,
                       const partition::Partition& p, StreamOptions options,
                       std::int64_t m) {
  CCS_EXPECTS(!name.empty(), "tenant name must be non-empty");
  CCS_EXPECTS(m >= 0, "tenant cache share must be non-negative");
  for (const auto& [id, t] : tenants_) {
    if (t.name == name) throw Error("tenant '" + name + "' is already admitted");
  }
  const std::int64_t effective_m = m > 0 ? m : options_.cache.capacity_words;

  // Price the candidate before building anything: the admission decision
  // needs its layout footprint, which is a pure function of the graph and
  // the online policy's buffer capacities.
  schedule::OnlineContext ctx;
  ctx.m = effective_m;
  const auto pricing_policy =
      schedule::OnlineRegistry::global().build(options.policy, g, p, ctx);
  const std::int64_t layout_words = runtime::layout_footprint_words(
      g, pricing_policy->buffer_caps(), options_.cache.block_words,
      options.engine.block_align_buffers);
  if (layout_words > options_.band_words) {
    throw Error("session layout (" + std::to_string(layout_words) +
                " words) exceeds band_words (" + std::to_string(options_.band_words) +
                "); raise ServerOptions::band_words");
  }

  session::AdmissionRequest request;
  request.layout_words = layout_words;
  bool evicted_for_room = false;
  while (!admission_->admits(current_load(), request)) {
    // Make room by evicting the least-recently-active idle session; a
    // session doing work is never a victim (it would have to rehydrate
    // before its very next step).
    const session::SwapManager::SessionKey victim =
        options_.swap
            ? swap_.victim_if([this](session::SwapManager::SessionKey k) {
                return tenants_.at(static_cast<TenantId>(k)).idle;
              })
            : session::SwapManager::kNone;
    if (victim == session::SwapManager::kNone) {
      ++lifecycle_.admissions_rejected;
      return kNoTenant;
    }
    const TenantId vid = static_cast<TenantId>(victim);
    swap_out_tenant(vid, tenants_.at(vid));
    evicted_for_room = true;
  }
  if (evicted_for_room) ++lifecycle_.admissions_queued;

  // Band allocation: smallest free band first (deterministic), else extend.
  std::int64_t band;
  if (!free_bands_.empty()) {
    band = *free_bands_.begin();
    free_bands_.erase(free_bands_.begin());
  } else {
    if (next_band_ >= kBandSpaceWords / options_.band_words) {
      throw Error("server address space exhausted: at most " +
                  std::to_string(kBandSpaceWords / options_.band_words) +
                  " co-open sessions at band_words=" +
                  std::to_string(options_.band_words) +
                  " (close sessions or shrink band_words)");
    }
    band = next_band_++;
  }
  options.engine.address_base = band * options_.band_words;

  Tenant t;
  t.name = std::move(name);
  t.band = band;
  t.layout_words = layout_words;
  t.graph = g;
  t.partition = p;
  t.stream_options = options;
  t.m = effective_m;
  t.stream = std::make_unique<Stream>(g, p, *cache_, effective_m, std::move(options));
  CCS_CHECK(t.stream->layout_span().words == layout_words,
            "admission pricing disagrees with the built engine's layout");

  const TenantId id = next_id_++;
  tenants_.emplace(id, std::move(t));
  ++lifecycle_.sessions_opened;
  lifecycle_.on_resident(layout_words);
  swap_.admit(id);
  return id;
}

TenantId Server::admit(std::string name, const Planner& planner, const Plan& plan,
                       StreamOptions options) {
  return admit(std::move(name), planner.graph(), plan.partition, std::move(options));
}

void Server::throw_unknown_tenant(TenantId id) const {
  std::string msg = "unknown tenant id " + std::to_string(id) + "; live tenants:";
  if (tenants_.empty()) {
    msg += " (none)";
  } else {
    bool first = true;
    for (const auto& [tid, t] : tenants_) {
      msg += (first ? " " : ", ");
      msg += std::to_string(tid) + " '" + t.name + "'";
      first = false;
    }
  }
  throw Error(msg);
}

Server::Tenant& Server::tenant(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  return it->second;
}

const Server::Tenant& Server::tenant(TenantId id) const {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  return it->second;
}

Stream& Server::stream(TenantId id) {
  Tenant& t = tenant(id);
  if (t.stream == nullptr) rehydrate(id, t);
  return *t.stream;
}

const std::string& Server::tenant_name(TenantId id) const { return tenant(id).name; }

session::SessionState Server::state_of(TenantId id) const {
  const Tenant& t = tenant(id);
  if (t.stream == nullptr) return session::SessionState::kSwapped;
  return t.idle ? session::SessionState::kIdle : session::SessionState::kLive;
}

bool Server::swapped(TenantId id) const { return tenant(id).stream == nullptr; }

void Server::swap_out_tenant(TenantId id, Tenant& t) {
  CCS_EXPECTS(t.stream != nullptr, "tenant is already swapped out");
  const StreamState state = t.stream->save_state();
  // Cache the report summary so report() never needs to rehydrate.
  t.totals = state.totals;
  t.steps = state.steps;
  t.outputs = t.stream->outputs_produced();
  session::SessionSnapshot snapshot;
  snapshot.engine = state.engine;
  snapshot.totals = state.totals;
  snapshot.steps = state.steps;
  session::SwapImage image = session::SwapImage::pack(snapshot);
  // The packed image is the only copy of the session once the host objects
  // are freed; audit builds prove the codec round-trips this very snapshot
  // before the originals are destroyed.
  CCS_AUDIT(image.unpack() == snapshot,
            "swap image does not round-trip the session snapshot");
  swap_.swap_out(id, std::move(image));
  t.stream.reset();  // frees the engine, channels, and policy
  t.idle = true;     // swapped sessions are idle by construction
  lifecycle_.on_nonresident(t.layout_words);
  ++lifecycle_.swapped_sessions;
  ++lifecycle_.swap_outs;
}

void Server::rehydrate(TenantId id, Tenant& t) {
  CCS_EXPECTS(t.stream == nullptr, "tenant is not swapped out");
  const session::SessionSnapshot snapshot = swap_.swap_in(id).unpack();
  // Rebuilding the Stream issues no cache traffic, and restore_state only
  // rewrites host-side counters -- the simulated cache is untouched, so
  // the rehydrated session behaves bit-identically to one never swapped.
  StreamOptions options = t.stream_options;
  t.stream = std::make_unique<Stream>(t.graph, t.partition, *cache_, t.m,
                                      std::move(options));
  StreamState state;
  state.engine = snapshot.engine;
  state.totals = snapshot.totals;
  state.steps = snapshot.steps;
  t.stream->restore_state(state);
  lifecycle_.on_resident(t.layout_words);
  --lifecycle_.swapped_sessions;
  ++lifecycle_.swap_ins;
}

void Server::swap_out(TenantId id) {
  CCS_EXPECTS(options_.swap, "swap_out requires ServerOptions::swap");
  Tenant& t = tenant(id);
  if (t.stream == nullptr) throw Error("tenant " + std::to_string(id) + " is already swapped out");
  if (!t.idle) {
    throw Error("tenant " + std::to_string(id) +
                " is not idle; only idle sessions can be swapped out");
  }
  swap_out_tenant(id, t);
}

std::int64_t Server::swap_out_idle() {
  CCS_EXPECTS(options_.swap, "swap_out_idle requires ServerOptions::swap");
  std::int64_t evicted = 0;
  for (auto& [id, t] : tenants_) {
    if (t.stream != nullptr && t.idle) {
      swap_out_tenant(id, t);
      ++evicted;
    }
  }
  return evicted;
}

void Server::close(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  Tenant& t = it->second;
  if (t.stream != nullptr) {
    retired_ += t.stream->stats();
    lifecycle_.on_nonresident(t.layout_words);
  } else {
    // Swapped: the cached summary holds the totals; drop the image.
    retired_ += t.totals;
    --lifecycle_.swapped_sessions;
  }
  swap_.erase(id);
  free_bands_.insert(t.band);
  tenants_.erase(it);
  ++lifecycle_.sessions_closed;
}

std::int64_t Server::push(TenantId id, std::int64_t items) {
  Tenant& t = tenant(id);
  if (t.stream == nullptr) rehydrate(id, t);
  const std::int64_t accepted = t.stream->push(items);
  if (accepted > 0) {
    t.idle = false;  // new arrivals may unblock the session
    swap_.touch(id);
  }
  return accepted;
}

TenantId Server::step() {
  // Offer every not-known-idle tenant; a pick that turns out blocked is
  // marked idle and the offer repeats, so one step() call either progresses
  // some tenant or proves the whole server idle. Swapped tenants are idle
  // by construction and never appear.
  std::vector<TenantStatus> runnable;
  runnable.reserve(tenants_.size());
  for (;;) {
    runnable.clear();
    for (const auto& [id, t] : tenants_) {
      if (t.idle || t.stream == nullptr) continue;
      TenantStatus s;
      s.id = id;
      s.pending_inputs = t.stream->pending_inputs();
      s.outputs = t.stream->outputs_produced();
      s.steps = t.stream->steps();
      s.last_miss_rate = t.last_miss_rate;
      runnable.push_back(s);
    }
    if (runnable.empty()) return kNoTenant;

    const TenantId id = policy_->pick(runnable);
    const auto it = tenants_.find(id);
    CCS_CHECK(it != tenants_.end() && it->second.stream != nullptr,
              "tenant policy picked an invalid id");
    Tenant& t = it->second;
    const StepResult r = t.stream->step();
    if (!r.progressed()) {
      t.idle = true;
      continue;
    }
    t.last_miss_rate = r.run.firings > 0 ? static_cast<double>(r.run.cache.misses) /
                                               static_cast<double>(r.run.firings)
                                         : 0.0;
    swap_.touch(id);
    ++steps_;
    return id;
  }
}

std::int64_t Server::run_until_idle() {
  std::int64_t executed = 0;
  while (step() != kNoTenant) ++executed;
  return executed;
}

void Server::drain_all() {
  for (auto& [id, t] : tenants_) {
    if (t.stream == nullptr) rehydrate(id, t);
    t.stream->drain();
    t.idle = true;
  }
}

ServerReport Server::report() const {
  ServerReport report;
  report.steps = steps_;
  report.retired = retired_;
  report.retired_sessions = lifecycle_.sessions_closed;
  report.aggregate = retired_;
  report.lifecycle = lifecycle_;
  report.swap_stored_bytes = swap_.stored_bytes();
  report.swap_peak_stored_bytes = swap_.peak_stored_bytes();
  for (const auto& [id, t] : tenants_) {
    TenantReport row;
    row.id = id;
    row.name = t.name;
    if (t.stream != nullptr) {
      row.state = t.idle ? session::SessionState::kIdle : session::SessionState::kLive;
      row.totals = t.stream->stats();
      row.steps = t.stream->steps();
      row.outputs = t.stream->outputs_produced();
    } else {
      row.state = session::SessionState::kSwapped;
      row.totals = t.totals;
      row.steps = t.steps;
      row.outputs = t.outputs;
    }
    report.aggregate += row.totals;
    report.tenants.push_back(std::move(row));
  }
  const iomodel::CacheStats& now = cache_->stats();
  report.shared_cache.accesses = now.accesses - baseline_.accesses;
  report.shared_cache.hits = now.hits - baseline_.hits;
  report.shared_cache.misses = now.misses - baseline_.misses;
  report.shared_cache.writebacks = now.writebacks - baseline_.writebacks;
  return report;
}

}  // namespace ccs::core
