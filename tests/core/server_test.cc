// core::Server -- multi-tenant serving over one shared cache.
//
// The acceptance properties: a 2+ tenant run is deterministic (repeat runs
// are counter-identical), and per-tenant RunResults sum to the shared
// cache's aggregate (every access belongs to exactly one tenant's step).

#include "core/server.h"

#include <gtest/gtest.h>

#include "partition/pipeline_dp.h"
#include "util/error.h"
#include "workloads/arrivals.h"
#include "workloads/pipelines.h"

namespace ccs::core {
namespace {

using iomodel::CacheConfig;

/// Admits two pipelines, feeds both in an interleaved arrival pattern, runs
/// to idle, drains, and reports. The whole scenario is a deterministic
/// function of `tenant_policy`.
ServerReport run_two_tenant_scenario(const std::string& tenant_policy) {
  const auto g1 = workloads::uniform_pipeline(10, 150);
  const auto g2 = workloads::heavy_tail_pipeline(12, 32, 400, 4);
  const auto p1 = partition::pipeline_optimal_partition(g1, 3 * 512).partition;
  const auto p2 = partition::pipeline_optimal_partition(g2, 3 * 512).partition;

  ServerOptions opts;
  opts.cache = CacheConfig{2048, 8};
  opts.tenant_policy = tenant_policy;
  Server server(opts);
  const TenantId a = server.admit("uniform", g1, p1);
  const TenantId b = server.admit("heavy-tail", g2, p2);

  for (int round = 0; round < 8; ++round) {
    server.push(a, 96);
    server.push(b, round % 2 == 0 ? 192 : 0);  // bursty second tenant
    server.run_until_idle();
  }
  server.drain_all();
  return server.report();
}

TEST(Server, PerTenantResultsSumToSharedCacheAggregate) {
  for (const std::string policy : {"round-robin", "miss-aware"}) {
    const ServerReport report = run_two_tenant_scenario(policy);
    ASSERT_EQ(report.tenants.size(), 2u);
    EXPECT_GT(report.tenants[0].totals.cache.accesses, 0) << policy;
    EXPECT_GT(report.tenants[1].totals.cache.accesses, 0) << policy;
    // The shared cache saw exactly the union of tenant traffic.
    EXPECT_EQ(report.aggregate.cache, report.shared_cache) << policy;
  }
}

TEST(Server, RepeatRunsAreCounterIdentical) {
  for (const std::string policy : {"round-robin", "miss-aware"}) {
    const ServerReport first = run_two_tenant_scenario(policy);
    const ServerReport again = run_two_tenant_scenario(policy);
    ASSERT_EQ(first.tenants.size(), again.tenants.size());
    for (std::size_t i = 0; i < first.tenants.size(); ++i) {
      EXPECT_EQ(first.tenants[i].totals, again.tenants[i].totals)
          << policy << " tenant " << first.tenants[i].name;
      EXPECT_EQ(first.tenants[i].steps, again.tenants[i].steps);
    }
    EXPECT_EQ(first.aggregate, again.aggregate) << policy;
    EXPECT_EQ(first.steps, again.steps) << policy;
  }
}

TEST(Server, RoundRobinAlternatesBetweenRunnableTenants) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 512).partition;
  ServerOptions opts;
  opts.cache = CacheConfig{2048, 8};
  Server server(opts);
  const TenantId a = server.admit("a", g, p);
  const TenantId b = server.admit("b", g, p);
  // Keep both tenants runnable by re-feeding between decisions (a single-
  // component pipeline consumes its whole pending queue in one step).
  const auto feed = [&] {
    server.push(a, 64);
    server.push(b, 64);
  };
  feed();
  const TenantId first = server.step();
  feed();
  const TenantId second = server.step();
  feed();
  const TenantId third = server.step();
  ASSERT_NE(first, kNoTenant);
  ASSERT_NE(second, kNoTenant);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(Server, TenantsProgressIndependentlyOfEachOther) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 512).partition;
  ServerOptions opts;
  opts.cache = CacheConfig{2048, 8};
  Server server(opts);
  const TenantId fed = server.admit("fed", g, p);
  const TenantId starved = server.admit("starved", g, p);
  server.push(fed, 128);
  server.run_until_idle();
  server.drain_all();
  const ServerReport report = server.report();
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(fed)].outputs, 128);
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(starved)].outputs, 0);
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(starved)].totals.firings, 0);
}

TEST(Server, SharedCacheInterferenceRaisesMissesOverSoloRuns) {
  // The contention story: the same work on the same geometry misses more
  // when a second tenant is thrashing the cache in between.
  const auto g = workloads::uniform_pipeline(10, 150);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 512).partition;

  const auto run_with = [&](bool second_tenant) {
    ServerOptions opts;
    opts.cache = CacheConfig{2048, 8};
    Server server(opts);
    const TenantId a = server.admit("a", g, p);
    const TenantId b = second_tenant ? server.admit("b", g, p) : kNoTenant;
    for (int round = 0; round < 4; ++round) {
      server.push(a, 64);
      if (second_tenant) server.push(b, 64);
      server.run_until_idle();
    }
    server.drain_all();
    return server.report().tenants[0].totals;
  };

  const runtime::RunResult solo = run_with(false);
  const runtime::RunResult contended = run_with(true);
  // Identical work for tenant a either way...
  EXPECT_EQ(solo.firings, contended.firings);
  EXPECT_EQ(solo.sink_firings, contended.sink_firings);
  // ...but sharing the cache cannot reduce its misses.
  EXPECT_GE(contended.cache.misses, solo.cache.misses);
}

TEST(Server, DrainedTenantUnderMissAwareDoesNotStarveOthers) {
  // The hazard: a drained tenant's last_miss_rate can be 0.0 (it ran out of
  // input mid-step), which is exactly what miss-aware prefers. It must be
  // parked as idle -- not re-picked forever -- so fed tenants keep making
  // progress.
  const auto g = workloads::uniform_pipeline(8, 100);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 512).partition;
  ServerOptions opts;
  opts.cache = CacheConfig{2048, 8};
  opts.tenant_policy = "miss-aware";
  Server server(opts);
  const TenantId drained = server.admit("drained", g, p);
  const TenantId fed_b = server.admit("fed-b", g, p);
  const TenantId fed_c = server.admit("fed-c", g, p);

  // Warm all three, then stop feeding the first.
  for (const TenantId t : {drained, fed_b, fed_c}) server.push(t, 32);
  server.run_until_idle();
  for (int round = 0; round < 6; ++round) {
    server.push(fed_b, 48);
    server.push(fed_c, 48);
    const std::int64_t steps = server.run_until_idle();
    EXPECT_GT(steps, 0) << "fed tenants starved in round " << round;
  }
  server.drain_all();
  const ServerReport report = server.report();
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(drained)].outputs, 32);
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(fed_b)].outputs, 32 + 6 * 48);
  EXPECT_EQ(report.tenants[static_cast<std::size_t>(fed_c)].outputs, 32 + 6 * 48);
}

TEST(Server, PerTenantSumsEqualSharedAggregateUnderBurstyArrivals) {
  // The accounting invariant must survive maximally clumped arrivals: some
  // tenants idle for whole bursts while others monopolize the cache.
  const auto g1 = workloads::uniform_pipeline(10, 150);
  const auto g2 = workloads::heavy_tail_pipeline(12, 32, 400, 4);
  const auto p1 = partition::pipeline_optimal_partition(g1, 3 * 512).partition;
  const auto p2 = partition::pipeline_optimal_partition(g2, 3 * 512).partition;
  const auto burst_a = workloads::bursty_arrivals(128, 3);
  const auto burst_b = workloads::bursty_arrivals(192, 5);
  for (const std::string policy : {"round-robin", "miss-aware"}) {
    ServerOptions opts;
    opts.cache = CacheConfig{2048, 8};
    opts.tenant_policy = policy;
    Server server(opts);
    const TenantId a = server.admit("a", g1, p1);
    const TenantId b = server.admit("b", g2, p2);
    for (std::int64_t tick = 0; tick < 16; ++tick) {
      server.push(a, burst_a(tick));
      server.push(b, burst_b(tick));
      server.run_until_idle();
    }
    server.drain_all();
    const ServerReport report = server.report();
    runtime::RunResult sum;
    for (const auto& t : report.tenants) sum += t.totals;
    EXPECT_EQ(sum.cache, report.shared_cache) << policy;
    EXPECT_EQ(sum, report.aggregate) << policy;
  }
}

TEST(Server, RejectsDuplicateTenantNamesAndUnknownPolicies) {
  const auto g = workloads::uniform_pipeline(6, 50);
  const auto p = partition::pipeline_optimal_partition(g, 3 * 512).partition;
  ServerOptions opts;
  opts.cache = CacheConfig{2048, 8};
  Server server(opts);
  server.admit("a", g, p);
  EXPECT_THROW(server.admit("a", g, p), Error);

  ServerOptions bad;
  bad.cache = CacheConfig{2048, 8};
  bad.tenant_policy = "bogus";
  try {
    Server s(bad);
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("valid tenant policies"), std::string::npos);
  }
}

}  // namespace
}  // namespace ccs::core
