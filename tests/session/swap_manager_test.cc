// session::SwapImage codec + session::SwapManager LRU eviction policy.

#include "session/swap.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ccs::session {
namespace {

/// A snapshot with every field populated (mixed magnitudes so the varint
/// codec crosses its one-byte / multi-byte boundaries).
SessionSnapshot sample_snapshot() {
  SessionSnapshot s;
  s.engine.channel_heads = {0, 5, 127, 128, 1 << 20};
  s.engine.channel_sizes = {3, 0, 64, 1, 9999};
  s.engine.fired = {1, 2, 3, 400000, 5};
  s.engine.input_credit = 77;
  s.engine.external_in_cursor = (std::int64_t{1} << 40) + 12345;
  s.engine.external_out_cursor = (std::int64_t{1} << 41) + 678;
  s.engine.source_firings = 4096;
  s.engine.sink_firings = 1024;
  s.engine.total_firings = 123456789;
  s.engine.state_misses = 11;
  s.engine.channel_misses = 22;
  s.engine.io_misses = 33;
  s.totals.cache = {1000, 900, 100, 40};
  s.totals.firings = 123456789;
  s.totals.source_firings = 4096;
  s.totals.sink_firings = 1024;
  s.totals.node_misses = {10, 20, 0, 70};
  s.totals.state_misses = 30;
  s.totals.channel_misses = 50;
  s.totals.io_misses = 20;
  s.steps = 31337;
  return s;
}

TEST(SwapImage, PackUnpackIsExactInverse) {
  const SessionSnapshot before = sample_snapshot();
  const SwapImage image = SwapImage::pack(before);
  EXPECT_GT(image.size_bytes(), 0);
  const SessionSnapshot after = image.unpack();
  EXPECT_EQ(before, after);
}

TEST(SwapImage, PackIsDeterministic) {
  const SwapImage a = SwapImage::pack(sample_snapshot());
  const SwapImage b = SwapImage::pack(sample_snapshot());
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(SwapImage, ImagesAreCompact) {
  // Mostly-small counters should cost a few bytes each, not 8 -- the whole
  // point of the varint coding. The sample has ~35 fields; a fixed-width
  // encoding would need ~280 bytes.
  const SwapImage image = SwapImage::pack(sample_snapshot());
  EXPECT_LT(image.size_bytes(), 160);
}

TEST(SwapImage, UnpackingAnEmptyImageThrows) {
  const SwapImage empty;
  EXPECT_THROW(empty.unpack(), Error);
}

TEST(SwapManager, VictimIsLeastRecentlyActive) {
  SwapManager m;
  m.admit(1);
  m.admit(2);
  m.admit(3);
  EXPECT_EQ(m.victim(), 1);
  m.touch(1);  // 2 is now the coldest
  EXPECT_EQ(m.victim(), 2);
  EXPECT_EQ(m.resident_count(), 3);
}

TEST(SwapManager, VictimIfSkipsIneligibleSessions) {
  SwapManager m;
  m.admit(1);
  m.admit(2);
  m.admit(3);
  EXPECT_EQ(m.victim_if([](SwapManager::SessionKey k) { return k != 1; }), 2);
  EXPECT_EQ(m.victim_if([](SwapManager::SessionKey) { return false; }),
            SwapManager::kNone);
}

TEST(SwapManager, SwapOutAndInMoveSessionsBetweenTiers) {
  SwapManager m;
  m.admit(7);
  m.admit(8);
  const SwapImage image = SwapImage::pack(sample_snapshot());
  const std::int64_t bytes = image.size_bytes();
  m.swap_out(7, image);

  EXPECT_FALSE(m.resident(7));
  EXPECT_TRUE(m.swapped(7));
  EXPECT_EQ(m.resident_count(), 1);
  EXPECT_EQ(m.swapped_count(), 1);
  EXPECT_EQ(m.stored_bytes(), bytes);
  EXPECT_EQ(m.swap_outs(), 1);

  const SwapImage back = m.swap_in(7);
  EXPECT_EQ(back.bytes(), image.bytes());
  EXPECT_TRUE(m.resident(7));
  EXPECT_FALSE(m.swapped(7));
  EXPECT_EQ(m.stored_bytes(), 0);
  EXPECT_EQ(m.peak_stored_bytes(), bytes);
  EXPECT_EQ(m.swap_ins(), 1);
  // Rehydration re-enters at the MRU end: 8 is now the coldest.
  EXPECT_EQ(m.victim(), 8);
}

TEST(SwapManager, SwapInOfResidentSessionThrows) {
  SwapManager m;
  m.admit(1);
  EXPECT_THROW(m.swap_in(1), Error);
}

TEST(SwapManager, EraseDropsBothTiers) {
  SwapManager m;
  m.admit(1);
  m.admit(2);
  m.swap_out(2, SwapImage::pack(sample_snapshot()));
  m.erase(1);
  m.erase(2);
  EXPECT_EQ(m.resident_count(), 0);
  EXPECT_EQ(m.swapped_count(), 0);
  EXPECT_EQ(m.stored_bytes(), 0);
  EXPECT_FALSE(m.has_victim());
}

}  // namespace
}  // namespace ccs::session
