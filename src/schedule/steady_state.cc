#include "schedule/steady_state.h"

#include "schedule/token_sim.h"
#include "sdf/repetition.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::schedule {

std::vector<sdf::NodeId> demand_driven_iteration(const sdf::SdfGraph& g,
                                                 std::span<const std::int64_t> caps) {
  const sdf::RepetitionVector reps(g);
  const auto topo = sdf::topological_sort(g);
  TokenSim sim(g, caps);
  std::vector<sdf::NodeId> out;
  out.reserve(static_cast<std::size_t>(reps.total_firings()));

  std::int64_t outstanding = reps.total_firings();
  while (outstanding > 0) {
    bool progressed = false;
    for (const sdf::NodeId v : topo) {
      const std::int64_t want = reps.count(v) - sim.fired(v);
      if (want <= 0) continue;
      const std::int64_t batch = sim.max_batch(v, want);
      if (batch <= 0) continue;
      sim.fire(v, batch);
      out.insert(out.end(), static_cast<std::size_t>(batch), v);
      outstanding -= batch;
      progressed = true;
    }
    if (!progressed) {
      throw DeadlockError("steady-state iteration deadlocked under given capacities");
    }
  }
  CCS_ENSURES(sim.drained(), "iteration must return channels to empty");
  return out;
}

std::vector<sdf::NodeId> single_appearance_iteration(const sdf::SdfGraph& g,
                                                     std::vector<std::int64_t>* caps_out) {
  const sdf::RepetitionVector reps(g);
  const auto topo = sdf::topological_sort(g);
  if (caps_out != nullptr) {
    caps_out->resize(static_cast<std::size_t>(g.edge_count()));
    for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
      (*caps_out)[static_cast<std::size_t>(e)] = reps.edge_tokens(e);
    }
  }
  std::vector<sdf::NodeId> out;
  out.reserve(static_cast<std::size_t>(reps.total_firings()));
  for (const sdf::NodeId v : topo) {
    out.insert(out.end(), static_cast<std::size_t>(reps.count(v)), v);
  }
  return out;
}

}  // namespace ccs::schedule
