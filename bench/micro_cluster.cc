// Microbenchmark: multicore cluster serving throughput (google-benchmark).
//
// Sessions are independent, so a cluster's model throughput -- outputs per
// unit of virtual time, where makespan is the busiest worker's firings --
// should scale near-linearly with worker count while there are enough
// sessions to go around. BM_ClusterServe sweeps 1/2/4 workers over four
// tenant sessions and records two counters per run:
//
//   * model_throughput  -- outputs / virtual makespan (the paper-§7 scaling
//                          claim; recorded in BENCH_PR5.json);
//   * migrations        -- placements moved during the run.
//
// The 8- and 16-worker rows (BENCH_PR7.json) cover the oversubscribed tail:
// more workers than the four sessions can fill, so model throughput must
// plateau (not regress) while per-worker occupancy goes sparse.
//
// Wall-clock items/s measures simulator overhead (the virtual-time stepper
// is serial by construction, so it does NOT scale with workers -- the model
// counters are the scaling story). BM_ParallelPool covers the E14-style
// component-parallel simulator on the same WorkerPool substrate.
//
// BM_OversubscribedL1 is the adaptive-placement regime (BENCH_PR6.json):
// two heavy sessions whose working sets each nearly fill a small private
// L1, admitted onto the same worker by static striping. Adaptive placement
// must notice the oversubscription and shed one (misses_per_output drops vs
// round-robin); with nothing hot -- the same cluster under a cold trickle
// -- it must match affinity exactly.

#include <benchmark/benchmark.h>

#include "core/cluster.h"
#include "partition/dag_greedy.h"
#include "partition/pipeline_dp.h"
#include "runtime/worker_pool.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace {

using namespace ccs;

constexpr std::int64_t kM = 1024;
constexpr std::int64_t kTicks = 16;
constexpr std::int64_t kItemsPerTick = 256;
constexpr std::int32_t kTenants = 4;

/// Four independent pipeline sessions served for kTicks steady ticks.
void BM_ClusterServe(benchmark::State& state) {
  const auto workers = static_cast<std::int32_t>(state.range(0));
  const auto g = workloads::uniform_pipeline(12, 200);
  const auto p = partition::pipeline_optimal_partition(g, 3 * kM).partition;
  std::int64_t outputs = 0;
  double model_throughput = 0.0;
  std::int64_t migrations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ClusterOptions opts;
    opts.workers = workers;
    opts.l1 = {4 * kM, 8};
    opts.llc_words = 16 * kM;
    opts.placement = "affinity";
    core::Cluster cluster(opts);
    core::StreamOptions sopts;
    sopts.engine.per_node_attribution = false;
    for (std::int32_t t = 0; t < kTenants; ++t) {
      cluster.admit("t" + std::to_string(t), g, p, sopts, kM);
    }
    state.ResumeTiming();
    for (std::int64_t tick = 0; tick < kTicks; ++tick) {
      for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
        cluster.push(t, kItemsPerTick);
      }
      cluster.rebalance();
      cluster.run_until_idle();
    }
    cluster.drain_all();
    const auto report = cluster.report();
    outputs += report.aggregate.sink_firings;
    migrations = report.migrations;
    model_throughput = report.makespan() > 0
                           ? static_cast<double>(report.aggregate.sink_firings) /
                                 static_cast<double>(report.makespan())
                           : 0.0;
  }
  state.SetItemsProcessed(outputs);
  state.counters["model_throughput"] = model_throughput;
  state.counters["migrations"] = static_cast<double>(migrations);
}
BENCHMARK(BM_ClusterServe)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// The oversubscribed-L1 regime (range(1) == 1): heavy,light,heavy,light
/// admission on two workers with a small private cache, so both static
/// policies strand the two ~1600-word working sets on worker 0 while the
/// lights (1/8 the traffic) idle on worker 1. Adaptive placement must shed
/// one heavy session, winning both model throughput and misses/output. The
/// cold regime (range(1) == 0) serves four light sessions -- nothing is
/// ever oversubscribed, so adaptive's counters must equal affinity's.
/// Placement key is chosen by state.range(0).
void BM_OversubscribedL1(benchmark::State& state) {
  static const char* kPlacements[] = {"round-robin", "affinity", "adaptive"};
  const std::string placement = kPlacements[state.range(0)];
  const bool oversubscribed = state.range(1) == 1;
  const auto heavy = workloads::uniform_pipeline(4, 400);
  const auto light = workloads::uniform_pipeline(4, 40);
  const auto heavy_p = partition::pipeline_optimal_partition(heavy, 3 * kM).partition;
  const auto light_p = partition::pipeline_optimal_partition(light, 3 * kM).partition;
  std::int64_t outputs = 0;
  double model_throughput = 0.0;
  double misses_per_output = 0.0;
  std::int64_t migrations = 0;
  std::int64_t auto_migrations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ClusterOptions opts;
    opts.workers = 2;
    opts.l1 = {2 * kM, 8};  // holds one heavy working set, not two
    opts.llc_words = 32 * kM;
    opts.placement = placement;
    core::Cluster cluster(opts);
    core::StreamOptions sopts;
    sopts.engine.per_node_attribution = false;
    for (std::int32_t t = 0; t < kTenants; ++t) {
      const bool is_heavy = oversubscribed && t % 2 == 0;
      cluster.admit((is_heavy ? "heavy-" : "light-") + std::to_string(t),
                    is_heavy ? heavy : light, is_heavy ? heavy_p : light_p, sopts, kM);
    }
    state.ResumeTiming();
    for (std::int64_t tick = 0; tick < kTicks; ++tick) {
      for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
        const bool is_heavy = oversubscribed && t % 2 == 0;
        cluster.push(t, is_heavy ? kItemsPerTick : kItemsPerTick / 8);
      }
      cluster.run_until_idle();  // adaptive adapts at entry; statics just run
    }
    cluster.drain_all();
    const auto report = cluster.report();
    outputs += report.aggregate.sink_firings;
    migrations = report.migrations;
    auto_migrations = report.auto_migrations;
    model_throughput = report.makespan() > 0
                           ? static_cast<double>(report.aggregate.sink_firings) /
                                 static_cast<double>(report.makespan())
                           : 0.0;
    misses_per_output = report.aggregate.misses_per_output();
  }
  state.SetItemsProcessed(outputs);
  state.SetLabel(placement + (oversubscribed ? "/oversubscribed" : "/cold"));
  state.counters["model_throughput"] = model_throughput;
  state.counters["misses_per_output"] = misses_per_output;
  state.counters["migrations"] = static_cast<double>(migrations);
  state.counters["auto_migrations"] = static_cast<double>(auto_migrations);
}
BENCHMARK(BM_OversubscribedL1)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({1, 0})
    ->Args({2, 0});

/// E14-style component-parallel simulation on the WorkerPool substrate.
void BM_ParallelPool(benchmark::State& state) {
  const auto workers = static_cast<std::int32_t>(state.range(0));
  Rng rng(1414);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 6;
  spec.state_lo = 150;
  spec.state_hi = 300;
  spec.edge_prob = 0.15;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const auto p = partition::dag_greedy_partition(g, 900);
  std::int64_t outputs = 0;
  double model_throughput = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::WorkerPool pool(runtime::WorkerPoolOptions{workers, {4096, 8}, 65536});
    state.ResumeTiming();
    const auto r = core::simulate_parallel_on_pool(g, p, 128, pool, 4096);
    outputs += r.outputs;
    model_throughput = r.makespan > 0 ? static_cast<double>(r.outputs) /
                                            static_cast<double>(r.makespan)
                                      : 0.0;
  }
  state.SetItemsProcessed(outputs);
  state.counters["model_throughput"] = model_throughput;
}
BENCHMARK(BM_ParallelPool)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
