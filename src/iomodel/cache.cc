#include "iomodel/cache.h"

#include <algorithm>

#include "util/int_math.h"

namespace ccs::iomodel {

void CacheSim::access_range(Addr addr, std::int64_t count, AccessMode mode) {
  CCS_EXPECTS(count >= 0, "negative access count");
  for (std::int64_t i = 0; i < count; ++i) access(addr + i, mode);
}

LruCache::LruCache(const CacheConfig& config)
    : config_(config), capacity_blocks_(config.capacity_blocks()) {
  CCS_EXPECTS(capacity_blocks_ >= 1, "cache must hold at least one block");
}

void LruCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  ++stats_.accesses;
  const BlockId block = addr / config_.block_words;
  const auto it = map_.find(block);
  if (it != map_.end()) {
    ++stats_.hits;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    if (mode == AccessMode::kWrite) it->second->dirty = true;
    return;
  }
  ++stats_.misses;
  if (static_cast<std::int64_t>(lru_.size()) == capacity_blocks_) {
    const Line& victim = lru_.back();
    if (victim.dirty) ++stats_.writebacks;
    map_.erase(victim.block);
    lru_.pop_back();
  }
  lru_.push_front(Line{block, mode == AccessMode::kWrite});
  map_[block] = lru_.begin();
}

void LruCache::flush() {
  for (const Line& line : lru_) {
    if (line.dirty) ++stats_.writebacks;
  }
  lru_.clear();
  map_.clear();
}

bool LruCache::contains(Addr addr) const {
  return map_.count(addr / config_.block_words) > 0;
}

SetAssociativeCache::SetAssociativeCache(const CacheConfig& config, std::int32_t ways)
    : config_(config), ways_(ways) {
  CCS_EXPECTS(ways >= 1, "need at least one way");
  const std::int64_t blocks = config.capacity_blocks();
  CCS_EXPECTS(blocks % ways == 0, "capacity_blocks must be divisible by ways");
  num_sets_ = blocks / ways;
  CCS_EXPECTS(is_pow2(num_sets_), "number of sets must be a power of two");
  lines_.assign(static_cast<std::size_t>(num_sets_) * static_cast<std::size_t>(ways_), Way{});
}

void SetAssociativeCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  ++stats_.accesses;
  ++tick_;
  const BlockId block = addr / config_.block_words;
  const std::size_t base = set_index(block) * static_cast<std::size_t>(ways_);

  Way* lru_way = &lines_[base];
  for (std::int32_t w = 0; w < ways_; ++w) {
    Way& way = lines_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.block == block) {
      ++stats_.hits;
      way.last_use = tick_;
      if (mode == AccessMode::kWrite) way.dirty = true;
      return;
    }
    if (!way.valid) {
      lru_way = &way;  // prefer an empty way over evicting
    } else if (lru_way->valid && way.last_use < lru_way->last_use) {
      lru_way = &way;
    }
  }
  ++stats_.misses;
  if (lru_way->valid && lru_way->dirty) ++stats_.writebacks;
  *lru_way = Way{block, tick_, true, mode == AccessMode::kWrite};
}

void SetAssociativeCache::flush() {
  for (Way& way : lines_) {
    if (way.valid && way.dirty) ++stats_.writebacks;
    way = Way{};
  }
}

bool SetAssociativeCache::contains(Addr addr) const {
  const BlockId block = addr / config_.block_words;
  const std::size_t base = set_index(block) * static_cast<std::size_t>(ways_);
  for (std::int32_t w = 0; w < ways_; ++w) {
    const Way& way = lines_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.block == block) return true;
  }
  return false;
}

std::unique_ptr<CacheSim> make_lru(std::int64_t capacity_words, std::int64_t block_words) {
  return std::make_unique<LruCache>(CacheConfig{capacity_words, block_words});
}

std::unique_ptr<CacheSim> make_set_associative(std::int64_t capacity_words,
                                               std::int64_t block_words, std::int32_t ways) {
  return std::make_unique<SetAssociativeCache>(CacheConfig{capacity_words, block_words}, ways);
}

}  // namespace ccs::iomodel
