#include "schedule/registry.h"

#include <gtest/gtest.h>

#include "schedule/naive.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

TEST(SchedulerRegistry, BuiltinsBuildValidSchedules) {
  const auto g = workloads::uniform_pipeline(8, 100);
  const SchedulerContext ctx{1024, 8};
  auto& r = Registry::global();
  const auto keys = r.applicable_keys(g, ctx);
  EXPECT_EQ(keys.size(), r.keys().size());  // all apply to a pipeline
  for (const auto& name : keys) {
    const auto s = r.build(name, g, ctx);
    const auto report = check_schedule(g, s);
    EXPECT_TRUE(report.ok) << name << ": " << report.problem;
  }
}

TEST(SchedulerRegistry, KohliIsPipelineOnly) {
  const auto dag = workloads::fm_radio(6);
  const SchedulerContext ctx{1024, 8};
  auto& r = Registry::global();
  const auto keys = r.applicable_keys(dag, ctx);
  for (const auto& key : keys) EXPECT_NE(key, "kohli");
  EXPECT_EQ(keys.size(), r.keys().size() - 1);
  // An explicit request still runs (and throws the scheduler's own error).
  EXPECT_THROW(r.build("kohli", dag, ctx), GraphError);
}

TEST(SchedulerRegistry, UnknownKeyErrorListsValidKeys) {
  const auto g = workloads::uniform_pipeline(4, 50);
  try {
    Registry::global().build("bogus", g, SchedulerContext{});
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown scheduler 'bogus'"), std::string::npos) << what;
    EXPECT_NE(what.find("naive"), std::string::npos) << what;
    EXPECT_NE(what.find("scaled"), std::string::npos) << what;
  }
}

TEST(SchedulerRegistry, DuplicateAndCustomRegistration) {
  Registry r;
  register_builtin_schedulers(r);
  EXPECT_THROW(register_builtin_schedulers(r), Error);

  // A custom scheduler registered under a fresh key round-trips.
  r.add("naive-again", {[](const sdf::SdfGraph& g, const SchedulerContext&) {
                          return naive_minimal_buffer_schedule(g);
                        },
                        nullptr, "alias of naive"});
  const auto g = workloads::uniform_pipeline(6, 80);
  const auto s = r.build("naive-again", g, SchedulerContext{512, 8});
  EXPECT_TRUE(check_schedule(g, s).ok);
  EXPECT_FALSE(Registry::global().contains("naive-again"));
}

}  // namespace
}  // namespace ccs::schedule
