#include "sdf/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::sdf {
namespace {

SdfGraph diamond() {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(s, a, 1, 1);
  g.add_edge(s, b, 1, 1);
  g.add_edge(a, t, 1, 1);
  g.add_edge(b, t, 1, 1);
  return g;
}

TEST(Topology, SortRespectsEdges) {
  const auto g = diamond();
  const auto order = topological_sort(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_LT(pos[static_cast<std::size_t>(g.edge(e).src)],
              pos[static_cast<std::size_t>(g.edge(e).dst)]);
  }
}

TEST(Topology, SortIsDeterministicSmallestIdFirst) {
  const auto g = diamond();
  const auto order = topological_sort(g);
  // s=0 first, then a=1 before b=2 (tie broken by id), then t=3.
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Topology, AcyclicDetection) {
  EXPECT_TRUE(is_acyclic(diamond()));
}

TEST(Topology, ReachabilityOnDiamond) {
  const auto g = diamond();
  const Reachability r(g);
  EXPECT_TRUE(r.precedes(0, 3));
  EXPECT_TRUE(r.precedes(0, 1));
  EXPECT_TRUE(r.precedes(1, 3));
  EXPECT_FALSE(r.precedes(3, 0));
  EXPECT_FALSE(r.precedes(1, 2));
  EXPECT_TRUE(r.incomparable(1, 2));
  EXPECT_FALSE(r.precedes(1, 1));
}

TEST(Topology, ReachabilityTransitiveOnLongChain) {
  const auto g = ccs::workloads::uniform_pipeline(100, 1);
  const Reachability r(g);
  EXPECT_TRUE(r.precedes(0, 99));
  EXPECT_TRUE(r.precedes(42, 43));
  EXPECT_FALSE(r.precedes(43, 42));
}

TEST(Topology, ContractFindsCrossEdges) {
  const auto g = diamond();
  // {s,a} vs {b,t}: cross edges s->b and a->t.
  const std::vector<std::int32_t> assign{0, 0, 1, 1};
  const auto cross = contract(g, assign, 2);
  ASSERT_EQ(cross.size(), 2u);
  for (const auto& ce : cross) {
    EXPECT_EQ(ce.src_comp, 0);
    EXPECT_EQ(ce.dst_comp, 1);
  }
}

TEST(Topology, ContractionAcyclicityWellOrdered) {
  const auto g = diamond();
  // Interval partition along a topological order: well ordered.
  EXPECT_TRUE(contraction_is_acyclic(g, {0, 0, 1, 1}, 2));
  // {s,t} in one component and {a}, {b} alone: contracted graph has
  // 0 -> 1 -> 0 (via s->a, a->t), a cycle.
  EXPECT_FALSE(contraction_is_acyclic(g, {0, 1, 2, 0}, 3));
}

TEST(Topology, PipelineOrderWalksChain) {
  const auto g = ccs::workloads::uniform_pipeline(5, 1);
  const auto order = pipeline_order(g);
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Topology, PipelineOrderRejectsNonPipeline) {
  EXPECT_THROW(pipeline_order(diamond()), GraphError);
}

}  // namespace
}  // namespace ccs::sdf
