#include "runtime/channel.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::runtime {

Channel::Channel(iomodel::Region region, std::int64_t capacity)
    : region_(region), capacity_(capacity) {
  CCS_EXPECTS(capacity >= 1, "channel capacity must be positive");
  CCS_EXPECTS(region.words == capacity, "region must have one word per slot");
}

void Channel::push(std::int64_t count, iomodel::CacheSim& cache) {
  CCS_EXPECTS(count >= 0, "negative push count");
  if (count > space()) {
    throw ScheduleError("channel overflow: pushing " + std::to_string(count) + " into " +
                        std::to_string(space()) + " free slots");
  }
  std::int64_t offset = head_ + size_;
  if (offset >= capacity_) offset -= capacity_;
  touch(offset, count, cache, iomodel::AccessMode::kWrite);
  size_ += count;
}

void Channel::pop(std::int64_t count, iomodel::CacheSim& cache) {
  CCS_EXPECTS(count >= 0, "negative pop count");
  if (count > size_) {
    throw ScheduleError("channel underflow: popping " + std::to_string(count) + " of " +
                        std::to_string(size_) + " tokens");
  }
  touch(head_, count, cache, iomodel::AccessMode::kRead);
  head_ += count;
  if (head_ >= capacity_) head_ -= capacity_;
  size_ -= count;
}

void Channel::restore(std::int64_t head, std::int64_t size) {
  CCS_EXPECTS(head >= 0 && head < capacity_, "restored head out of range");
  CCS_EXPECTS(size >= 0 && size <= capacity_, "restored size exceeds capacity");
  head_ = head;
  size_ = size;
}

void Channel::touch(std::int64_t offset, std::int64_t count, iomodel::CacheSim& cache,
                    iomodel::AccessMode mode) const {
  // A ring span wraps at most once (count <= capacity), so the whole
  // operation is at most two bulk cache transactions.
  const std::int64_t run = std::min(count, capacity_ - offset);
  if (run > 0) cache.access_span(region_.base + offset, run, mode);
  if (count > run) cache.access_span(region_.base, count - run, mode);
}

}  // namespace ccs::runtime
