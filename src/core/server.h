// core::Server -- multi-tenant serving over one shared cache.
//
// The paper's cost model is about a *single* application owning the cache;
// serving-scale reality is several streaming applications timesharing one.
// A Server owns a shared CacheSim, admits multiple core::Stream sessions
// onto it, and multiplexes their component executions with a pluggable
// tenant policy -- round-robin (fair timesharing) or miss-aware (cache
// affinity: prefer the tenant whose working set is resident). Every tenant
// keeps its own RunResult, and because each cache access belongs to exactly
// one tenant's step, the per-tenant counters always sum to the shared
// cache's aggregate -- the interference between tenants shows up as each
// tenant's misses rising above its solo baseline, which is the paper's
// cache-contention story at serving scale.
//
//   core::ServerOptions sopts;
//   sopts.cache = {64 * 1024, 8};
//   core::Server server(sopts);
//   const auto a = server.admit("radio", g1, plan1.partition);
//   const auto b = server.admit("sort", g2, plan2.partition);
//   server.push(a, 4096); server.push(b, 4096);
//   server.run_until_idle();
//   server.drain_all();
//   for (const auto& t : server.report().tenants)
//     std::cout << t.name << ": " << t.totals.misses_per_output() << "\n";
//
// Determinism: admission order, arrival pushes, and both built-in tenant
// policies are deterministic, so repeated identical runs produce identical
// per-tenant and aggregate counters (asserted in tests/core/server_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/stream.h"
#include "iomodel/cache.h"
#include "iomodel/types.h"
#include "runtime/run_result.h"
#include "util/registry.h"

namespace ccs::core {

/// Dense tenant index within one Server. Valid ids are 0..tenant_count()-1.
using TenantId = std::int32_t;

inline constexpr TenantId kNoTenant = -1;

/// What a tenant policy may consult about one tenant when picking who runs
/// next. Only runnable tenants are offered.
struct TenantStatus {
  TenantId id = kNoTenant;
  std::int64_t pending_inputs = 0;    ///< Arrivals waiting to be consumed.
  std::int64_t outputs = 0;           ///< Sink firings so far.
  std::int64_t steps = 0;             ///< Component executions so far.
  double last_miss_rate = 0.0;        ///< Misses per firing of the last step.
};

/// A tenant-multiplexing rule. pick() must return one of the offered ids;
/// policies may keep state (e.g. a rotation cursor) but must be
/// deterministic -- the Server's repeat-run guarantee depends on it.
class TenantPolicy {
 public:
  virtual ~TenantPolicy() = default;
  virtual TenantId pick(const std::vector<TenantStatus>& runnable) = 0;
};

/// A named tenant-policy factory.
struct TenantPolicyEntry {
  std::function<std::unique_ptr<TenantPolicy>()> build;
  std::string description;  ///< One-line description for listings.
};

/// String-keyed tenant-policy table ("round-robin", "miss-aware"). See
/// util/registry.h for the shared add/find/keys semantics.
class TenantRegistry : public NamedRegistry<TenantPolicyEntry> {
 public:
  TenantRegistry()
      : NamedRegistry<TenantPolicyEntry>("tenant policy", "tenant policies") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static TenantRegistry& global();
};

/// Registers the built-in tenant policies into `r` (used by global();
/// exposed so tests can build isolated registries): round-robin, miss-aware.
void register_builtin_tenant_policies(TenantRegistry& r);

/// Server knobs.
struct ServerOptions {
  iomodel::CacheConfig cache{64 * 1024, 8};  ///< Shared cache geometry.
  std::string tenant_policy = "round-robin";  ///< TenantRegistry key.
};

/// One tenant's slice of a ServerReport.
struct TenantReport {
  std::string name;
  runtime::RunResult totals;   ///< This tenant's whole-session counters.
  std::int64_t steps = 0;      ///< Component executions granted.
  std::int64_t outputs = 0;    ///< Sink firings produced.
};

/// Per-tenant and aggregate accounting of everything the server executed.
struct ServerReport {
  std::vector<TenantReport> tenants;   ///< Admission order.
  runtime::RunResult aggregate;        ///< Sum over tenants.
  iomodel::CacheStats shared_cache;    ///< Shared-cache deltas since admission
                                       ///< began (== aggregate.cache).
  std::int64_t steps = 0;              ///< Multiplexing decisions executed.
};

/// Multi-tenant streaming server: one shared cache, many Stream sessions,
/// one multiplexing rule. Not thread-safe -- the shared cache makes tenant
/// steps inherently serial (that is the contention being modeled).
class Server {
 public:
  /// Throws MemoryError for a degenerate cache geometry and ccs::Error for
  /// an unknown tenant-policy key. `registry` defaults to
  /// TenantRegistry::global(); it must outlive the server.
  explicit Server(ServerOptions options, const TenantRegistry* registry = nullptr);

  /// Admits a new session over the shared cache and returns its id.
  /// `options.policy` resolves through the online registry as usual. `m` is
  /// the cache size the session's Theta(M) buffers amortize against; 0 (the
  /// default) uses the shared cache's full capacity, a smaller value sizes
  /// the tenant for its *share* of a contended cache.
  TenantId admit(std::string name, const sdf::SdfGraph& g, const partition::Partition& p,
                 StreamOptions options = {}, std::int64_t m = 0);

  /// Convenience: admit a Planner plan (graph and partition from the plan's
  /// session). The shared cache geometry still governs buffer sizing.
  TenantId admit(std::string name, const Planner& planner, const Plan& plan,
                 StreamOptions options = {});

  std::int32_t tenant_count() const noexcept {
    return static_cast<std::int32_t>(tenants_.size());
  }

  /// The tenant's session (for pushes, polls, or direct stepping).
  Stream& stream(TenantId id);
  const Stream& stream(TenantId id) const;

  const std::string& tenant_name(TenantId id) const;

  /// Forwards arrivals to tenant `id`; returns how many were accepted.
  std::int64_t push(TenantId id, std::int64_t items);

  /// One multiplexing decision: offers every possibly-runnable tenant to
  /// the tenant policy, steps the pick, and returns who ran (kNoTenant if
  /// every tenant is idle). A picked tenant that turns out to be blocked is
  /// remembered as idle until new arrivals wake it.
  TenantId step();

  /// Steps until every tenant is idle; returns multiplexing decisions made.
  std::int64_t run_until_idle();

  /// Drains every tenant, in admission order.
  void drain_all();

  /// Per-tenant totals, their sum, and the shared cache's own counters.
  ServerReport report() const;

  iomodel::CacheSim& cache() noexcept { return *cache_; }

 private:
  struct Tenant {
    std::string name;
    std::unique_ptr<Stream> stream;
    bool idle = false;           ///< Known-blocked until new arrivals.
    double last_miss_rate = 0.0;
  };

  Tenant& tenant(TenantId id);
  const Tenant& tenant(TenantId id) const;

  ServerOptions options_;
  std::unique_ptr<iomodel::CacheSim> cache_;
  std::unique_ptr<TenantPolicy> policy_;
  std::vector<Tenant> tenants_;
  iomodel::CacheStats baseline_;  ///< Shared-cache stats at construction.
  std::int64_t steps_ = 0;
};

}  // namespace ccs::core
