// Error-path coverage for the SwapImage codec: every malformed byte stream
// must be rejected with a recoverable ccs::Error (never UB, never a silent
// wrong snapshot) -- the swap tier trusts unpack() as its only validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "session/swap.h"
#include "util/error.h"

namespace ccs::session {
namespace {

SessionSnapshot representative_snapshot() {
  SessionSnapshot s;
  s.engine.channel_heads = {0, 3, 17, 1024};
  s.engine.channel_sizes = {2, 0, 5, 900};
  s.engine.fired = {10, 20, 30};
  s.engine.input_credit = runtime::Engine::kUnlimitedCredit;  // 10-byte varint
  s.engine.external_in_cursor = 123456;
  s.engine.external_out_cursor = 654321;
  s.engine.source_firings = 10;
  s.engine.sink_firings = 9;
  s.engine.total_firings = 60;
  s.engine.state_misses = 7;
  s.engine.channel_misses = 8;
  s.engine.io_misses = 3;
  s.totals.cache.accesses = 100000;
  s.totals.cache.hits = 90000;
  s.totals.cache.misses = 10000;
  s.totals.cache.writebacks = 42;
  s.totals.firings = 60;
  s.totals.source_firings = 10;
  s.totals.sink_firings = 9;
  s.totals.state_misses = 7;
  s.totals.channel_misses = 8;
  s.totals.io_misses = 3;
  s.totals.node_misses = {1, 2, 3};
  s.steps = 17;
  return s;
}

void append_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

TEST(SwapImageCodec, RoundTripIsExactAndDeterministic) {
  const SessionSnapshot snapshot = representative_snapshot();
  const SwapImage a = SwapImage::pack(snapshot);
  const SwapImage b = SwapImage::pack(snapshot);
  EXPECT_EQ(a.bytes(), b.bytes());  // equal snapshots -> byte-identical images
  EXPECT_EQ(a.unpack(), snapshot);
  EXPECT_EQ(SwapImage::from_bytes(a.bytes()).unpack(), snapshot);
}

TEST(SwapImageCodec, EveryTruncationThrows) {
  const SwapImage image = SwapImage::pack(representative_snapshot());
  const std::vector<std::uint8_t>& bytes = image.bytes();
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const SwapImage cut = SwapImage::from_bytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    EXPECT_THROW((void)cut.unpack(), Error) << "prefix length " << len;
  }
}

TEST(SwapImageCodec, TrailingBytesThrow) {
  const SwapImage image = SwapImage::pack(representative_snapshot());
  std::vector<std::uint8_t> padded = image.bytes();
  padded.push_back(0);
  EXPECT_THROW((void)SwapImage::from_bytes(padded).unpack(), Error);
}

TEST(SwapImageCodec, BadMagicThrows) {
  std::vector<std::uint8_t> bytes = SwapImage::pack(representative_snapshot()).bytes();
  bytes[0] ^= 0x01;
  EXPECT_THROW((void)SwapImage::from_bytes(bytes).unpack(), Error);
}

TEST(SwapImageCodec, UnsupportedVersionThrows) {
  std::vector<std::uint8_t> bytes;
  append_uvarint(bytes, 0xCC5);  // correct magic
  append_uvarint(bytes, 99);     // future version
  EXPECT_THROW((void)SwapImage::from_bytes(bytes).unpack(), Error);
}

TEST(SwapImageCodec, ImplausibleVectorLengthThrowsBeforeAllocating) {
  std::vector<std::uint8_t> bytes;
  append_uvarint(bytes, 0xCC5);
  append_uvarint(bytes, 1);
  // Channel count claiming 2^40 entries: must be rejected by the
  // plausibility cap, not die attempting a petabyte reserve.
  append_uvarint(bytes, std::uint64_t{1} << 40);
  EXPECT_THROW((void)SwapImage::from_bytes(bytes).unpack(), Error);
}

TEST(SwapImageCodec, OverlongVarintThrows) {
  std::vector<std::uint8_t> bytes;
  append_uvarint(bytes, 0xCC5);
  // A varint whose continuation bytes push past 64 bits of payload.
  for (int i = 0; i < 10; ++i) bytes.push_back(0xFF);
  bytes.push_back(0x7F);
  EXPECT_THROW((void)SwapImage::from_bytes(bytes).unpack(), Error);
}

TEST(SwapImageCodec, BitFlipsNeverYieldTheOriginalSnapshot) {
  // Exhaustive single-bit-flip sweep: each corrupted image must either be
  // rejected or decode to a visibly different snapshot. Decoding "success"
  // back to the original would mean the flipped bit carried no information
  // and corruption could pass unnoticed.
  const SessionSnapshot snapshot = representative_snapshot();
  const SwapImage image = SwapImage::pack(snapshot);
  int rejected = 0;
  int altered = 0;
  for (std::size_t byte = 0; byte < image.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = image.bytes();
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const SessionSnapshot decoded = SwapImage::from_bytes(bytes).unpack();
        EXPECT_FALSE(decoded == snapshot)
            << "flipping byte " << byte << " bit " << bit << " was undetectable";
        ++altered;
      } catch (const Error&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(altered, 0);
}

TEST(SwapManagerErrors, SwapInOfUnknownKeyThrows) {
  SwapManager mgr;
  EXPECT_THROW((void)mgr.swap_in(7), Error);
  mgr.admit(7);
  EXPECT_THROW((void)mgr.swap_in(7), Error);  // resident, not swapped
}

}  // namespace
}  // namespace ccs::session
