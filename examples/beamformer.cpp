// Beamformer (StreamIt-style): a two-level split-join dag, partitioned with
// each of the dag partitioners and executed with the two-level scheduler.
//
//   $ ./beamformer [--channels=12] [--beams=4] [--cache-words=2048]
//
// Demonstrates: dag partitioning (greedy / gain-aware / refined), partition
// quality metrics (bandwidth, degree, component states), and how partition
// quality translates into simulated cache misses (Corollary 9 in action).

#include <iostream>

#include "core/scheduler.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("beamformer", "dag partitioner comparison on the beamformer app");
  args.add_int("channels", 12, "input channels");
  args.add_int("beams", 4, "output beams");
  args.add_int("cache-words", 256, "cache size M in words");
  args.add_int("outputs", 1024, "sink firings per measurement");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::beamformer(static_cast<std::int32_t>(args.get_int("channels")),
                                         static_cast<std::int32_t>(args.get_int("beams")));
    const std::int64_t m = args.get_int("cache-words");
    const std::int64_t bound = 3 * m;
    const std::int64_t outputs = args.get_int("outputs");
    std::cout << "Beamformer: " << g << "\n\n";

    const sdf::GainMap gains(g);
    struct Entry {
      std::string name;
      partition::Partition partition;
    };
    std::vector<Entry> entries;
    entries.push_back({"dag-greedy", partition::dag_greedy_partition(g, bound)});
    entries.push_back({"dag-greedy-gain", partition::dag_greedy_gain_partition(g, bound)});
    partition::RefineOptions ropts;
    ropts.state_bound = bound;
    entries.push_back(
        {"dag-refined", partition::refine_partition(g, entries[1].partition, ropts)});

    Table t("partition quality and measured misses (M=" + std::to_string(m) + ")");
    t.set_header({"partitioner", "components", "bandwidth", "max state", "max degree",
                  "misses/output"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                 Align::kRight});
    {
      const auto naive = schedule::naive_minimal_buffer_schedule(g);
      const auto r = core::simulate(g, naive, iomodel::CacheConfig{4 * m, 8}, outputs);
      t.add_row({"(naive baseline)", "-", "-", "-", "-",
                 Table::num(r.misses_per_output(), 3)});
    }
    for (const auto& entry : entries) {
      const auto quality = partition::measure(g, gains, entry.partition);
      schedule::PartitionedOptions sopts;
      sopts.m = m;
      const auto sched = schedule::partitioned_schedule(g, entry.partition, sopts);
      const auto r = core::simulate(g, sched, iomodel::CacheConfig{4 * m, 8}, outputs);
      t.add_row({entry.name, Table::num(static_cast<std::int64_t>(quality.num_components)),
                 quality.bandwidth.to_string(), Table::num(quality.max_state),
                 Table::num(static_cast<std::int64_t>(quality.max_degree)),
                 Table::num(r.misses_per_output(), 3)});
    }
    t.print(std::cout);

    // Show the chosen (refined) partition's composition.
    std::cout << "\nrefined partition components:\n";
    const auto comps = entries[2].partition.components();
    for (std::size_t c = 0; c < comps.size(); ++c) {
      std::cout << "  [" << c << "]";
      std::int64_t state = 0;
      for (const auto v : comps[c]) state += g.node(v).state;
      for (const auto v : comps[c]) std::cout << " " << g.node(v).name;
      std::cout << "  (" << state << " words)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
