// E13 -- multi-level hierarchies (extension; Savage [24] generalizes the
// paper's two-level model).
//
// Run naive and partitioned schedules through an L1/L2 hierarchy where the
// partition targets the L2 size. Expected shape: partitioning leaves L1
// behaviour roughly unchanged (module-local traffic dominates L1) but
// slashes L2->memory transfers -- the level whose misses the paper's bounds
// govern. The per-level table also shows where each scheduler's traffic is
// absorbed.

#include "bench/common.h"
#include "iomodel/hierarchy.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t b = 8;
  const std::int64_t l1 = 256;
  const std::int64_t l2 = 2048;
  const std::int64_t outputs = 4096;
  const auto g = workloads::uniform_pipeline(24, 256);  // 6144 words of state

  core::PlannerOptions opts;
  opts.cache.capacity_words = l2 / 4;  // partition for (a fraction of) L2
  opts.cache.block_words = b;
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  Table t("E13: L1/L2 hierarchy (L1=256, L2=2048 words, B=8)");
  t.set_header({"scheduler", "L1 misses", "L2 misses (memory)", "L1 miss rate",
                "mem transfers/output"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto* s : {&naive, &plan.schedule}) {
    iomodel::HierarchyCache cache({l1, l2}, b);
    runtime::Engine engine(g, s->buffer_caps, cache);
    runtime::RunResult total;
    const auto rounds = schedule::periods_for_outputs(*s, outputs);
    for (std::int64_t i = 0; i < rounds; ++i) {
      total += engine.run(s->period);
    }
    const auto& l1s = cache.level_stats(0);
    const auto& l2s = cache.level_stats(1);
    t.add_row({s->name, Table::num(l1s.misses), Table::num(l2s.misses),
               Table::num(l1s.miss_rate(), 4),
               Table::num(static_cast<double>(l2s.misses) /
                              static_cast<double>(total.sink_firings),
                          3)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
