// Partition explorer: load a streaming graph from a text file (or generate a
// random one), run every applicable partitioner, and print a quality report.
// Useful for understanding what the partitioners do to *your* graph before
// committing to a schedule.
//
//   $ ./partition_explorer --file=app.sdf --cache-words=1024
//   $ ./partition_explorer --random-nodes=24 --seed=7 --dump
//
// Graph file format (see src/sdf/serialize.h):
//   node <name> state=<words>
//   edge <src> -> <dst> out=<rate> in=<rate>

#include <fstream>
#include <iostream>

#include "partition/agglomerative.h"
#include "partition/dag_anneal.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/dot.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "sdf/gain.h"
#include "sdf/serialize.h"
#include "sdf/validate.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("partition_explorer", "run all partitioners on a graph and report quality");
  args.add_string("file", "", "graph file to load (empty: generate random)");
  args.add_int("random-nodes", 24, "node budget for the generated graph");
  args.add_int("seed", 1, "random generator seed");
  args.add_int("cache-words", 1024, "cache size M in words");
  args.add_double("c-bound", 3.0, "components hold at most c*M state");
  args.add_flag("dump", "print the graph in serialized form");
  args.add_string("dot", "", "write the best partition as Graphviz DOT to this file");
  try {
    if (!args.parse(argc, argv)) return 0;

    sdf::SdfGraph g;
    if (const auto& path = args.get_string("file"); !path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      g = sdf::read_graph(in);
    } else {
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
      workloads::SeriesParallelSpec spec;
      spec.target_nodes = static_cast<std::int32_t>(args.get_int("random-nodes"));
      g = workloads::series_parallel_dag(spec, rng);
    }
    sdf::validate_or_throw(g, sdf::ValidationOptions{});
    if (args.get_flag("dump")) sdf::write_graph(g, std::cout);
    std::cout << "graph: " << g << "\n\n";

    const std::int64_t m = args.get_int("cache-words");
    const auto bound =
        static_cast<std::int64_t>(args.get_double("c-bound") * static_cast<double>(m));
    const sdf::GainMap gains(g);

    Table t("partitions at state bound " + std::to_string(bound) + " (M=" +
            std::to_string(m) + ")");
    t.set_header({"partitioner", "components", "bandwidth", "max state", "well-ordered"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    auto report = [&](const std::string& name, const partition::Partition& p) {
      const auto q = partition::measure(g, gains, p);
      t.add_row({name, Table::num(static_cast<std::int64_t>(q.num_components)),
                 q.bandwidth.to_string(), Table::num(q.max_state),
                 q.well_ordered ? "yes" : "NO"});
    };

    if (g.is_pipeline()) {
      report("pipeline-dp", partition::pipeline_optimal_partition(g, bound).partition);
      report("pipeline-greedy", partition::pipeline_greedy_partition(g, m).partition);
    }
    const auto greedy = partition::dag_greedy_partition(g, bound);
    report("dag-greedy", greedy);
    const auto gain_aware = partition::dag_greedy_gain_partition(g, bound);
    report("dag-greedy-gain", gain_aware);
    partition::RefineOptions ropts;
    ropts.state_bound = bound;
    const auto refined = partition::refine_partition(g, gain_aware, ropts);
    report("dag-refined", refined);
    partition::AnnealOptions aopts;
    aopts.state_bound = bound;
    aopts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    partition::Partition best = partition::anneal_partition(g, refined, aopts);
    report("annealed", best);
    report("agglomerative", partition::agglomerative_partition(g, bound));
    partition::ExactOptions eopts;
    eopts.state_bound = bound;
    if (const auto exact = partition::dag_exact_partition(g, eopts); exact.has_value()) {
      report("exact", exact->partition);
      best = exact->partition;
    } else {
      std::cout << "(exact partitioner skipped: graph exceeds its budget)\n";
    }
    t.print(std::cout);

    if (const auto& dot_path = args.get_string("dot"); !dot_path.empty()) {
      std::ofstream out(dot_path);
      partition::write_dot(g, best, out);
      std::cout << "\nwrote " << dot_path << " (render with: dot -Tsvg " << dot_path
                << " -o partition.svg)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
