// ShardedLruCache contracts: the differential gates behind the sharded LLC.
//
// The load-bearing property is ShardedVsFlat.*: a one-stripe sharded cache
// is bit-identical to a flat LruCache of the same geometry -- stats,
// residency, and replacement order -- so plumbing llc_shards=1 through
// WorkerPool/Cluster is a pure code-path change the thread≡virtual-time
// determinism gates can rely on. The rest pins the multi-stripe semantics:
// bulk == scalar order per stripe, stats() == sum of shard_stats(), stripe
// isolation (per-stripe LRU), and the constructor contracts.

#include "iomodel/sharded_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace ccs::iomodel {
namespace {

constexpr std::int64_t kBlock = 8;

void expect_stats_eq(const CacheStats& a, const CacheStats& b, const char* where) {
  EXPECT_EQ(a.accesses, b.accesses) << where;
  EXPECT_EQ(a.hits, b.hits) << where;
  EXPECT_EQ(a.misses, b.misses) << where;
  EXPECT_EQ(a.writebacks, b.writebacks) << where;
}

/// Random word-level trace: mixed reads/writes over `space` words, checked
/// step by step so the first divergence is localized.
void drive_random_words(CacheSim& a, CacheSim& b, std::uint64_t seed,
                        std::int64_t steps, std::int64_t space) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < steps; ++i) {
    const Addr addr = rng.uniform(0, space - 1);
    const AccessMode mode = rng.bernoulli(0.3) ? AccessMode::kWrite : AccessMode::kRead;
    a.access(addr, mode);
    b.access(addr, mode);
    ASSERT_EQ(a.stats().hits, b.stats().hits) << "step " << i << " addr " << addr;
  }
  expect_stats_eq(a.stats(), b.stats(), "random words");
}

/// Random bulk spans through the CacheSim block API.
void drive_random_spans(CacheSim& a, CacheSim& b, std::uint64_t seed,
                        std::int64_t steps, BlockId block_space) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < steps; ++i) {
    const BlockId first = rng.uniform(0, block_space - 1);
    const std::int64_t count = rng.uniform(0, 24);
    const AccessMode mode = rng.bernoulli(0.4) ? AccessMode::kWrite : AccessMode::kRead;
    a.access_blocks(first, count, mode);
    b.access_blocks(first, count, mode);
    ASSERT_EQ(a.stats().hits, b.stats().hits) << "span " << i << " first " << first;
  }
  expect_stats_eq(a.stats(), b.stats(), "random spans");
}

/// Residency must agree word-for-word over the touched address space.
void expect_same_residency(const CacheSim& a, const CacheSim& b, std::int64_t space) {
  for (Addr addr = 0; addr < space; addr += kBlock) {
    ASSERT_EQ(a.contains(addr), b.contains(addr)) << "addr " << addr;
  }
}

TEST(ShardedVsFlat, SingleShardMatchesLruOnRandomWordTrace) {
  ShardedLruCache sharded(CacheConfig{64 * kBlock, kBlock}, 1);
  LruCache flat(CacheConfig{64 * kBlock, kBlock});
  drive_random_words(sharded, flat, 9001, 4000, 4096);
  expect_same_residency(sharded, flat, 4096);
  EXPECT_EQ(sharded.resident_blocks(), flat.resident_blocks());
}

TEST(ShardedVsFlat, SingleShardMatchesLruThroughBulkSpans) {
  ShardedLruCache sharded(CacheConfig{48 * kBlock, kBlock}, 1);
  LruCache flat(CacheConfig{48 * kBlock, kBlock});
  drive_random_spans(sharded, flat, 9002, 1500, 300);
  expect_same_residency(sharded, flat, 300 * kBlock);
  EXPECT_EQ(sharded.resident_blocks(), flat.resident_blocks());
}

TEST(ShardedVsFlat, SingleShardMatchesLruThroughFlush) {
  ShardedLruCache sharded(CacheConfig{16 * kBlock, kBlock}, 1);
  LruCache flat(CacheConfig{16 * kBlock, kBlock});
  drive_random_words(sharded, flat, 9003, 500, 512);
  sharded.flush();
  flat.flush();
  expect_stats_eq(sharded.stats(), flat.stats(), "after flush");
  EXPECT_EQ(sharded.resident_blocks(), 0);
  drive_random_words(sharded, flat, 9004, 500, 512);  // warm again post-flush
}

TEST(ShardedLruCache, BulkMatchesScalarAcrossShardCounts) {
  for (std::int32_t shards : {1, 2, 4, 8}) {
    ShardedLruCache bulk(CacheConfig{64 * kBlock, kBlock}, shards);
    ShardedLruCache scalar(CacheConfig{64 * kBlock, kBlock}, shards);
    Rng rng(7000 + static_cast<std::uint64_t>(shards));
    for (std::int64_t i = 0; i < 800; ++i) {
      const BlockId first = rng.uniform(0, 255);
      const std::int64_t count = rng.uniform(0, 40);
      const AccessMode mode =
          rng.bernoulli(0.4) ? AccessMode::kWrite : AccessMode::kRead;
      bulk.access_blocks(first, count, mode);
      for (BlockId b = first; b < first + count; ++b) {
        scalar.access(b * kBlock, mode);
      }
      ASSERT_EQ(bulk.stats().hits, scalar.stats().hits)
          << "shards " << shards << " span " << i;
    }
    expect_stats_eq(bulk.stats(), scalar.stats(), "bulk vs scalar");
    EXPECT_EQ(bulk.resident_blocks(), scalar.resident_blocks()) << shards;
  }
}

TEST(ShardedLruCache, StatsAggregateSumsShardStats) {
  ShardedLruCache cache(CacheConfig{32 * kBlock, kBlock}, 4);
  Rng rng(7100);
  for (std::int64_t i = 0; i < 2000; ++i) {
    cache.access(rng.uniform(0, 2047), rng.bernoulli(0.3) ? AccessMode::kWrite
                                                          : AccessMode::kRead);
  }
  CacheStats sum;
  for (std::int32_t s = 0; s < cache.shard_count(); ++s) {
    const CacheStats& part = cache.shard_stats(s);
    sum.accesses += part.accesses;
    sum.hits += part.hits;
    sum.misses += part.misses;
    sum.writebacks += part.writebacks;
  }
  expect_stats_eq(cache.stats(), sum, "aggregate vs shard sum");
  EXPECT_EQ(cache.stats().accesses, 2000);
}

TEST(ShardedLruCache, ShardOfStripesConsecutiveBlocksByLowBits) {
  ShardedLruCache cache(CacheConfig{64 * kBlock, kBlock}, 8);
  for (BlockId b = 0; b < 64; ++b) {
    EXPECT_EQ(cache.shard_of(b), static_cast<std::int32_t>(b & 7));
  }
  // Every stripe sees exactly its own sub-sequence of a dense span.
  cache.access_blocks(0, 64, AccessMode::kRead);
  for (std::int32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(cache.shard_stats(s).accesses, 8) << "shard " << s;
    EXPECT_EQ(cache.shard_stats(s).misses, 8) << "shard " << s;
  }
}

TEST(ShardedLruCache, StripesEvictIndependently) {
  // 4 stripes x 4 blocks each. Hammer stripe 0 with 16 distinct blocks
  // (4x its stripe capacity): stripe 0 churns, the others keep their single
  // resident block untouched -- per-stripe LRU, not global LRU.
  ShardedLruCache cache(CacheConfig{16 * kBlock, kBlock}, 4);
  for (std::int32_t s = 1; s < 4; ++s) {
    cache.access_block(static_cast<BlockId>(s), AccessMode::kRead);
  }
  for (std::int64_t i = 0; i < 16; ++i) {
    cache.access_block(static_cast<BlockId>(4 * i), AccessMode::kRead);  // stripe 0
  }
  EXPECT_EQ(cache.shard_stats(0).misses, 16);  // all distinct, stripe churns
  for (std::int32_t s = 1; s < 4; ++s) {
    EXPECT_TRUE(cache.contains(static_cast<Addr>(s) * kBlock)) << "shard " << s;
    EXPECT_EQ(cache.shard_stats(s).accesses, 1) << "shard " << s;
  }
  // Stripe 0 holds its stripe-capacity share (4 blocks), not the whole cache.
  EXPECT_EQ(cache.resident_blocks(), 4 + 3);
}

TEST(ShardedLruCache, ConstructionContracts) {
  const CacheConfig cfg{16 * kBlock, kBlock};  // 16 blocks
  EXPECT_THROW(ShardedLruCache(cfg, 0), ContractViolation);
  EXPECT_THROW(ShardedLruCache(cfg, -4), ContractViolation);
  EXPECT_THROW(ShardedLruCache(cfg, 3), ContractViolation);   // not a power of two
  EXPECT_THROW(ShardedLruCache(cfg, 32), ContractViolation);  // 32 shards > 16 blocks
  EXPECT_NO_THROW(ShardedLruCache(cfg, 16));                  // one block per stripe
}

TEST(ShardedLruCache, FactoryMakesWorkingCache) {
  auto cache = make_sharded_lru(32 * kBlock, kBlock, 4);
  cache->access_blocks(0, 8, AccessMode::kRead);
  cache->access_blocks(0, 8, AccessMode::kRead);
  EXPECT_EQ(cache->stats().accesses, 16);
  EXPECT_EQ(cache->stats().hits, 8);
  EXPECT_EQ(cache->stats().misses, 8);
}

}  // namespace
}  // namespace ccs::iomodel
