// Schedule representation shared by all schedulers.
//
// A Schedule is a *periodic* plan: a firing sequence for one period plus a
// buffer-capacity assignment under which the period (a) never underflows or
// overflows a channel and (b) returns every channel to empty, so the period
// can repeat indefinitely -- the execution model of a long-running streaming
// application. Experiment harnesses repeat periods until a target output
// count is reached, which makes schedulers with different period lengths
// directly comparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/graph.h"

namespace ccs::schedule {

/// One periodic schedule for a specific graph.
struct Schedule {
  std::string name;                        ///< Scheduler label for tables.
  std::vector<sdf::NodeId> period;         ///< Firing order of one period.
  std::vector<std::int64_t> buffer_caps;   ///< Ring capacity per edge (tokens).
  std::int64_t inputs_per_period = 0;      ///< Source firings per period.
  std::int64_t outputs_per_period = 0;     ///< Sink firings per period.

  /// Total buffer words the schedule asks for.
  std::int64_t total_buffer_words() const {
    std::int64_t total = 0;
    for (const auto c : buffer_caps) total += c;
    return total;
  }
};

/// Number of period repetitions needed to produce at least `target_outputs`.
std::int64_t periods_for_outputs(const Schedule& s, std::int64_t target_outputs);

}  // namespace ccs::schedule
