// E5 -- homogeneous dags: partitioned vs naive vs the Theorem 7 bound.
//
// Workload: random layered homogeneous dags small enough for the exact
// minBW_3 solver. For each M, compute minBW_3(G) exactly, schedule with the
// exact partition, and compare against naive on the same augmented cache.
// Expected shape: measured(partitioned)/LB stays a small constant across M
// (Lemma 8), while naive's ratio grows as the cache shrinks relative to
// total state.

#include "analysis/lower_bound.h"
#include "bench/common.h"
#include "partition/dag_exact.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "util/rng.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t b = 8;
  const std::int64_t outputs = 2048;
  Rng rng(404);
  workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 200;
  spec.state_hi = 400;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);

  Table t("E5: homogeneous layered dag (11 modules) vs Theorem 7 bound (B=8, sim 4M)");
  t.set_header({"M", "minBW3", "LB misses", "partitioned", "part/LB", "naive", "naive/part"});
  for (const std::int64_t m : {256, 512, 1024}) {
    if (g.max_state() > m) continue;
    const auto bw = analysis::dag_min_bandwidth_3m(g, m);
    if (!bw.has_value()) continue;

    partition::ExactOptions eopts;
    eopts.state_bound = 3 * m;
    const auto exact = partition::dag_exact_partition(g, eopts);
    if (!exact.has_value()) continue;
    schedule::PartitionedOptions sopts;
    sopts.m = m;
    const auto sched = schedule::partitioned_schedule(g, exact->partition, sopts);
    const auto r_part = bench::run(g, sched, 4 * m, b, outputs);
    const auto r_naive =
        bench::run(g, schedule::naive_minimal_buffer_schedule(g), 4 * m, b, outputs);
    const double lb = analysis::bound_misses(*bw, r_part.source_firings, b);
    t.add_row({Table::num(m), bw->to_string(), Table::num(lb, 0),
               Table::num(static_cast<std::int64_t>(r_part.cache.misses)),
               bench::safe_ratio(static_cast<double>(r_part.cache.misses), lb),
               Table::num(static_cast<std::int64_t>(r_naive.cache.misses)),
               bench::safe_ratio(r_naive.misses_per_output(), r_part.misses_per_output(), 1)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
