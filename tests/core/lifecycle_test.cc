// Session lifecycle on core::Server and core::Cluster: close() semantics,
// band recycling, admission control under pressure, and the swap tier's
// headline guarantee -- a swap-on run is bit-identical to a swap-off run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/server.h"
#include "partition/pipeline_dp.h"
#include "session/lifecycle.h"
#include "util/contracts.h"
#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs::core {
namespace {

using session::SessionState;

/// A small pipeline + its optimal partition for the given cache size.
struct Workload {
  sdf::SdfGraph graph;
  partition::Partition partition;
};

Workload small_workload(std::int64_t m, std::int64_t state = 64) {
  Workload w;
  w.graph = workloads::uniform_pipeline(4, state);
  w.partition = partition::pipeline_optimal_partition(w.graph, 3 * m).partition;
  return w;
}

std::string numbered(const char* prefix, std::int64_t i) {
  std::string name = prefix;
  name += std::to_string(i);
  return name;
}

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

// ---------------------------------------------------------------------------
// Server: close() contract and O(live) bookkeeping.

TEST(ServerLifecycle, CloseRejectsTheIdForeverNamingLiveTenants) {
  ServerOptions o;
  o.cache = {2048, 8};
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  const TenantId a = server.admit("alpha", w.graph, w.partition);
  const TenantId b = server.admit("beta", w.graph, w.partition);
  ASSERT_EQ(server.tenant_count(), 2);

  server.close(a);
  EXPECT_EQ(server.tenant_count(), 1);
  EXPECT_EQ(error_of([&] { server.close(a); }),
            "unknown tenant id 0; live tenants: 1 'beta'");
  EXPECT_EQ(error_of([&] { server.push(a, 1); }),
            "unknown tenant id 0; live tenants: 1 'beta'");

  server.close(b);
  EXPECT_EQ(error_of([&] { server.close(b); }),
            "unknown tenant id 1; live tenants: (none)");
  EXPECT_EQ(server.lifecycle().sessions_opened, 2);
  EXPECT_EQ(server.lifecycle().sessions_closed, 2);
  EXPECT_EQ(server.lifecycle().live_sessions, 0);
  EXPECT_EQ(server.lifecycle().resident_words, 0);
}

TEST(ServerLifecycle, IdsAreNeverReused) {
  ServerOptions o;
  o.cache = {2048, 8};
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  std::vector<TenantId> seen;
  for (int i = 0; i < 6; ++i) {
    const TenantId id =
        server.admit(numbered("t", i), w.graph, w.partition);
    for (const TenantId old : seen) EXPECT_NE(id, old);
    seen.push_back(id);
    server.close(id);  // the slot frees but the id must not come back
  }
}

TEST(ServerLifecycle, ClosedTotalsFoldIntoRetiredAndTheAggregate) {
  ServerOptions o;
  o.cache = {2048, 8};
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  const TenantId a = server.admit("alpha", w.graph, w.partition);
  const TenantId b = server.admit("beta", w.graph, w.partition);
  server.push(a, 256);
  server.push(b, 256);
  server.run_until_idle();
  server.drain_all();

  const runtime::RunResult a_totals = server.stream(a).stats();
  ASSERT_GT(a_totals.cache.accesses, 0);
  server.close(a);
  server.push(b, 128);
  server.run_until_idle();
  server.drain_all();

  const ServerReport report = server.report();
  EXPECT_EQ(report.retired, a_totals);
  EXPECT_EQ(report.retired_sessions, 1);
  ASSERT_EQ(report.tenants.size(), 1u);
  // Closing loses no work: open rows + retired still equal the shared
  // cache's own ground-truth counters.
  EXPECT_EQ(report.aggregate.cache, report.shared_cache);
  runtime::RunResult sum = report.retired;
  sum += report.tenants[0].totals;
  EXPECT_EQ(sum, report.aggregate);
}

TEST(ServerLifecycle, BandsRecycleAndExhaustionThrows) {
  // The default 2^36-word band splits the 2^40 space into exactly 16 bands.
  ServerOptions o;
  o.cache = {2048, 8};
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  std::vector<TenantId> open;
  for (int i = 0; i < 16; ++i)
    open.push_back(server.admit(numbered("t", i), w.graph, w.partition));

  const std::string err =
      error_of([&] { server.admit("one-too-many", w.graph, w.partition); });
  EXPECT_NE(err.find("address space exhausted"), std::string::npos) << err;
  EXPECT_NE(err.find("16"), std::string::npos) << err;

  server.close(open[5]);  // frees a band mid-range...
  const TenantId again = server.admit("reuses-band", w.graph, w.partition);
  EXPECT_NE(again, kNoTenant);  // ...and the next admit picks it up
  EXPECT_EQ(server.tenant_count(), 16);
}

TEST(ServerLifecycle, BandWordsMustAlignToTheBlockSize) {
  ServerOptions o;
  o.cache = {2048, 8};
  o.band_words = (std::int64_t{1} << 20) + 4;  // not a multiple of 8
  EXPECT_THROW(Server{o}, Error);
}

// ---------------------------------------------------------------------------
// Server: admission control and the swap tier.

TEST(ServerLifecycle, BoundedLiveRejectsWhenSwapIsOff) {
  ServerOptions o;
  o.cache = {2048, 8};
  o.admission = "bounded-live";
  o.budget.max_live_sessions = 2;
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  EXPECT_NE(server.admit("a", w.graph, w.partition), kNoTenant);
  EXPECT_NE(server.admit("b", w.graph, w.partition), kNoTenant);
  EXPECT_EQ(server.admit("c", w.graph, w.partition), kNoTenant);
  EXPECT_EQ(server.lifecycle().admissions_rejected, 1);
  EXPECT_EQ(server.lifecycle().admissions_queued, 0);
  EXPECT_EQ(server.tenant_count(), 2);

  const ServerReport report = server.report();
  EXPECT_EQ(report.lifecycle.peak_live, 2);
}

TEST(ServerLifecycle, AdmissionPressureEvictsTheColdestIdleSession) {
  ServerOptions o;
  o.cache = {2048, 8};
  o.admission = "bounded-live";
  o.budget.max_live_sessions = 2;
  o.swap = true;
  Server server(o);
  const Workload w = small_workload(o.cache.capacity_words);
  const TenantId a = server.admit("a", w.graph, w.partition);
  const TenantId b = server.admit("b", w.graph, w.partition);
  server.push(a, 64);
  server.push(b, 64);
  server.run_until_idle();  // both idle -> both are eviction candidates

  const TenantId c = server.admit("c", w.graph, w.partition);
  EXPECT_NE(c, kNoTenant);
  EXPECT_EQ(server.lifecycle().admissions_queued, 1);
  EXPECT_EQ(server.lifecycle().admissions_rejected, 0);
  // `a` was touched before `b`, so it is the least-recently-active victim.
  EXPECT_TRUE(server.swapped(a));
  EXPECT_EQ(server.state_of(a), SessionState::kSwapped);
  EXPECT_FALSE(server.swapped(b));
  EXPECT_EQ(server.lifecycle().swap_outs, 1);
  EXPECT_EQ(server.lifecycle().swapped_sessions, 1);
  EXPECT_EQ(server.lifecycle().live_sessions, 2);  // b + c resident

  // The next push rehydrates `a` transparently -- but the budget still
  // holds, so someone else must go cold first.
  server.push(b, 64);
  server.push(c, 64);
  server.run_until_idle();
  const runtime::RunResult before = server.report().aggregate;
  server.swap_out(b);
  EXPECT_EQ(server.push(a, 64), 64);
  EXPECT_FALSE(server.swapped(a));
  EXPECT_EQ(server.lifecycle().swap_ins, 1);
  server.run_until_idle();
  EXPECT_GT(server.report().aggregate.cache.accesses, before.cache.accesses);
}

TEST(ServerLifecycle, SwapOutRequiresAnIdleResidentSessionAndSwapMode) {
  ServerOptions off;
  off.cache = {2048, 8};
  Server no_swap(off);
  const Workload w = small_workload(off.cache.capacity_words);
  const TenantId t = no_swap.admit("t", w.graph, w.partition);
  EXPECT_THROW(no_swap.swap_out(t), ContractViolation);

  ServerOptions on = off;
  on.swap = true;
  Server server(on);
  const TenantId u = server.admit("u", w.graph, w.partition);
  server.push(u, 16);  // live (has pending arrivals) -> not evictable
  EXPECT_THROW(server.swap_out(u), Error);
  server.run_until_idle();
  server.swap_out(u);
  EXPECT_THROW(server.swap_out(u), Error);  // already swapped
}

/// Drives one server through a fixed multi-round schedule; with `swap`, every
/// quiescent point evicts ALL idle sessions, so the next round's pushes all
/// rehydrate. Returns the final report (post-drain).
ServerReport drive_server(bool swap) {
  ServerOptions o;
  o.cache = {4096, 8};
  o.tenant_policy = "miss-aware";  // decisions depend on counters -> a real gate
  o.swap = swap;
  Server server(o);
  const Workload wa = small_workload(o.cache.capacity_words, 64);
  const Workload wb = small_workload(o.cache.capacity_words, 96);
  const TenantId a = server.admit("alpha", wa.graph, wa.partition);
  const TenantId b = server.admit("beta", wb.graph, wb.partition);
  for (int round = 0; round < 5; ++round) {
    server.push(a, 96);
    server.push(b, 64);
    server.run_until_idle();
    if (swap) {
      EXPECT_EQ(server.swap_out_idle(), 2);
    }
  }
  server.drain_all();
  return server.report();
}

TEST(ServerLifecycle, SwapOnRunIsBitIdenticalToSwapOff) {
  const ServerReport off = drive_server(false);
  const ServerReport on = drive_server(true);
  ASSERT_EQ(off.tenants.size(), on.tenants.size());
  for (std::size_t i = 0; i < off.tenants.size(); ++i) {
    EXPECT_EQ(off.tenants[i].id, on.tenants[i].id);
    EXPECT_EQ(off.tenants[i].state, on.tenants[i].state);
    EXPECT_EQ(off.tenants[i].totals, on.tenants[i].totals) << i;
    EXPECT_EQ(off.tenants[i].steps, on.tenants[i].steps) << i;
    EXPECT_EQ(off.tenants[i].outputs, on.tenants[i].outputs) << i;
  }
  EXPECT_EQ(off.aggregate, on.aggregate);
  EXPECT_EQ(off.shared_cache, on.shared_cache);  // not one extra cache access
  EXPECT_EQ(off.steps, on.steps);
  // ...and the swap-on run really did round-trip everything, repeatedly.
  EXPECT_EQ(on.lifecycle.swap_outs, 10);
  EXPECT_GE(on.lifecycle.swap_ins, 8);
  EXPECT_EQ(off.lifecycle.swap_outs, 0);
}

// ---------------------------------------------------------------------------
// Cluster: the same lifecycle over sharded workers.

TEST(ClusterLifecycle, CloseRejectsTheIdForeverNamingLiveTenants) {
  ClusterOptions o;
  o.workers = 2;
  o.l1 = {2048, 8};
  Cluster cluster(o);
  const Workload w = small_workload(o.l1.capacity_words);
  const TenantId a = cluster.admit("alpha", w.graph, w.partition);
  const TenantId b = cluster.admit("beta", w.graph, w.partition);
  cluster.push(a, 64);
  cluster.push(b, 64);
  cluster.run_until_idle();

  cluster.close(a);
  EXPECT_EQ(error_of([&] { cluster.close(a); }),
            "unknown tenant id 0; live tenants: 1 'beta'");
  const ClusterReport report = cluster.report();
  EXPECT_EQ(report.retired_sessions, 1);
  EXPECT_GT(report.retired.cache.accesses, 0);
  ASSERT_EQ(report.tenants.size(), 1u);
  runtime::RunResult sum = report.retired;
  sum += report.tenants[0].totals;
  EXPECT_EQ(sum, report.aggregate);

  cluster.close(b);
  EXPECT_EQ(error_of([&] { cluster.close(b); }),
            "unknown tenant id 1; live tenants: (none)");
  EXPECT_EQ(cluster.lifecycle().live_sessions, 0);
  EXPECT_EQ(cluster.lifecycle().resident_words, 0);
}

TEST(ClusterLifecycle, BoundedLiveCountsRejections) {
  ClusterOptions o;
  o.workers = 2;
  o.l1 = {2048, 8};
  o.admission = "bounded-live";
  o.budget.max_live_sessions = 3;
  Cluster cluster(o);
  const Workload w = small_workload(o.l1.capacity_words);
  for (int i = 0; i < 3; ++i)
    EXPECT_NE(cluster.admit(numbered("t", i), w.graph, w.partition),
              kNoTenant);
  EXPECT_EQ(cluster.admit("overflow", w.graph, w.partition), kNoTenant);
  EXPECT_EQ(cluster.lifecycle().admissions_rejected, 1);
  EXPECT_EQ(cluster.report().lifecycle.peak_live, 3);
}

/// Drives one cluster through a fixed schedule over 2 workers; with `swap`,
/// every quiescent point evicts all idle sessions.
ClusterReport drive_cluster(bool swap) {
  ClusterOptions o;
  o.workers = 2;
  o.l1 = {2048, 8};
  o.llc_words = 16 * 1024;
  o.placement = "affinity";
  o.swap = swap;
  Cluster cluster(o);
  const Workload wa = small_workload(o.l1.capacity_words, 64);
  const Workload wb = small_workload(o.l1.capacity_words, 96);
  std::vector<TenantId> ids;
  for (int i = 0; i < 4; ++i) {
    const Workload& w = (i % 2 == 0) ? wa : wb;
    ids.push_back(
        cluster.admit(numbered("t", i), w.graph, w.partition));
  }
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < ids.size(); ++i)
      cluster.push(ids[i], 48 + 16 * static_cast<std::int64_t>(i % 2));
    cluster.run_until_idle();
    cluster.rebalance();
    if (swap) {
      EXPECT_EQ(cluster.swap_out_idle(), 4);
    }
  }
  cluster.drain_all();
  return cluster.report();
}

TEST(ClusterLifecycle, SwapOnRunIsBitIdenticalToSwapOff) {
  const ClusterReport off = drive_cluster(false);
  const ClusterReport on = drive_cluster(true);
  ASSERT_EQ(off.tenants.size(), on.tenants.size());
  for (std::size_t i = 0; i < off.tenants.size(); ++i) {
    EXPECT_EQ(off.tenants[i].id, on.tenants[i].id);
    EXPECT_EQ(off.tenants[i].totals, on.tenants[i].totals) << i;
    EXPECT_EQ(off.tenants[i].steps, on.tenants[i].steps) << i;
    EXPECT_EQ(off.tenants[i].outputs, on.tenants[i].outputs) << i;
    // Swapped sessions stay pinned, so placement history is identical too.
    EXPECT_EQ(off.tenants[i].worker, on.tenants[i].worker) << i;
    EXPECT_EQ(off.tenants[i].migrations, on.tenants[i].migrations) << i;
  }
  ASSERT_EQ(off.workers.size(), on.workers.size());
  for (std::size_t wi = 0; wi < off.workers.size(); ++wi) {
    EXPECT_EQ(off.workers[wi].l1, on.workers[wi].l1) << wi;
    EXPECT_EQ(off.workers[wi].busy, on.workers[wi].busy) << wi;
    EXPECT_EQ(off.workers[wi].steps, on.workers[wi].steps) << wi;
  }
  EXPECT_EQ(off.aggregate, on.aggregate);
  EXPECT_EQ(off.llc, on.llc);
  EXPECT_EQ(off.makespan(), on.makespan());
  EXPECT_EQ(on.lifecycle.swap_outs, 16);
  EXPECT_EQ(off.lifecycle.swap_outs, 0);
}

TEST(ClusterLifecycle, ConstStreamAccessOfASwappedTenantThrows) {
  ClusterOptions o;
  o.workers = 1;
  o.l1 = {2048, 8};
  o.swap = true;
  Cluster cluster(o);
  const Workload w = small_workload(o.l1.capacity_words);
  const TenantId t = cluster.admit("t", w.graph, w.partition);
  cluster.push(t, 32);
  cluster.run_until_idle();
  cluster.swap_out(t);
  const Cluster& view = cluster;
  EXPECT_THROW(view.stream(t), Error);
  EXPECT_NO_THROW(cluster.stream(t));  // non-const rehydrates instead
  EXPECT_FALSE(cluster.swapped(t));
}

}  // namespace
}  // namespace ccs::core
