// The swap tier's core invariant, as a standalone property suite:
// serialize -> destroy -> rebuild -> restore at an arbitrary quiescent
// point is BIT-IDENTICAL to never having swapped -- counters, outputs, and
// even the shared cache's own statistics, because rebuilding a Stream
// issues no cache traffic and restore only rewrites host-side state.
//
// The suite sweeps random graphs (random pipelines and layered dags) x
// partial progress (saving mid-burst, with arrivals still queued and
// channels non-empty) x repeated round trips, against an undisturbed twin
// driven through the identical push/step schedule.

#include <gtest/gtest.h>

#include <memory>

#include "core/stream.h"
#include "iomodel/cache.h"
#include "partition/dag_greedy.h"
#include "partition/pipeline_dp.h"
#include "session/swap.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs::core {
namespace {

using iomodel::CacheConfig;
using iomodel::LruCache;

struct Scenario {
  sdf::SdfGraph graph;
  partition::Partition partition;
  std::int64_t m = 0;
  CacheConfig cache{2048, 8};
};

struct Outcome {
  runtime::RunResult totals;
  iomodel::CacheStats cache;
  std::int64_t steps = 0;
  std::int64_t outputs = 0;
  std::int64_t pending = 0;
};

/// Drives one session through `rounds` of (push, a few steps -- deliberately
/// too few to drain, so queues stay non-empty), then a final drain. With
/// `roundtrip`, every round ends with save -> pack -> unpack -> destroy ->
/// rebuild -> restore; without, the same Stream object survives throughout.
Outcome drive(const Scenario& s, std::int64_t rounds, std::int64_t items,
              std::int64_t steps_per_round, bool roundtrip) {
  LruCache cache(s.cache);
  auto stream = std::make_unique<Stream>(s.graph, s.partition, cache, s.m);
  for (std::int64_t round = 0; round < rounds; ++round) {
    stream->push(items);
    for (std::int64_t k = 0; k < steps_per_round; ++k) {
      if (!stream->step().progressed()) break;
    }
    if (roundtrip) {
      const StreamState state = stream->save_state();
      session::SessionSnapshot snapshot;
      snapshot.engine = state.engine;
      snapshot.totals = state.totals;
      snapshot.steps = state.steps;
      const session::SessionSnapshot back =
          session::SwapImage::pack(snapshot).unpack();
      EXPECT_EQ(snapshot, back);  // the codec itself is lossless
      stream.reset();             // the engine, channels, and policy die here
      stream = std::make_unique<Stream>(s.graph, s.partition, cache, s.m);
      StreamState restored;
      restored.engine = back.engine;
      restored.totals = back.totals;
      restored.steps = back.steps;
      stream->restore_state(restored);
    }
  }
  stream->drain();
  Outcome out;
  out.totals = stream->stats();
  out.cache = cache.stats();
  out.steps = stream->steps();
  out.outputs = stream->outputs_produced();
  out.pending = stream->pending_inputs();
  return out;
}

void expect_bit_identical(const Scenario& s, std::int64_t rounds, std::int64_t items,
                          std::int64_t steps_per_round) {
  const Outcome plain = drive(s, rounds, items, steps_per_round, false);
  const Outcome swapped = drive(s, rounds, items, steps_per_round, true);
  EXPECT_EQ(plain.totals, swapped.totals);
  EXPECT_EQ(plain.cache, swapped.cache);  // not one extra access from rebuilding
  EXPECT_EQ(plain.steps, swapped.steps);
  EXPECT_EQ(plain.outputs, swapped.outputs);
  EXPECT_EQ(plain.pending, swapped.pending);
  // The run did real work, so the equality above compares real counters.
  EXPECT_GT(plain.totals.cache.accesses, 0);
  EXPECT_GT(plain.outputs, 0);
}

TEST(SwapRoundtrip, RandomPipelinesAcrossPartialProgress) {
  Rng rng(20260807);
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s;
    const auto n = static_cast<std::int32_t>(rng.uniform(4, 12));
    s.graph = workloads::random_pipeline(n, 32, 256, 3, rng);
    s.m = 512;
    s.partition = partition::pipeline_optimal_partition(s.graph, 3 * s.m).partition;
    // Few steps per round: arrivals queue up and channels hold tokens when
    // the save happens -- partial progress, not a drained session.
    expect_bit_identical(s, /*rounds=*/6, /*items=*/64,
                         /*steps_per_round=*/rng.uniform(1, 5));
  }
}

TEST(SwapRoundtrip, LayeredDagsAcrossPartialProgress) {
  Rng rng(424242);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s;
    workloads::LayeredSpec spec;
    spec.layers = static_cast<std::int32_t>(rng.uniform(2, 4));
    spec.width = static_cast<std::int32_t>(rng.uniform(2, 4));
    s.graph = workloads::layered_homogeneous_dag(spec, rng);
    s.m = 512;
    s.partition = partition::dag_greedy_partition(s.graph, 3 * s.m);
    // The homogeneous-dag policy fires whole m-sized batches, so each round
    // must deliver at least one batch for the session to progress; the small
    // step count still leaves batches in flight at every save point.
    expect_bit_identical(s, /*rounds=*/5, /*items=*/s.m,
                         /*steps_per_round=*/rng.uniform(1, 4));
  }
}

TEST(SwapRoundtrip, RepeatedRoundTripsCompound) {
  // 12 consecutive swap cycles on one session: errors would accumulate if
  // any round trip lost a word.
  Scenario s;
  s.graph = workloads::heavy_tail_pipeline(10, 32, 300, 3);
  s.m = 512;
  s.partition = partition::pipeline_optimal_partition(s.graph, 3 * s.m).partition;
  expect_bit_identical(s, /*rounds=*/12, /*items=*/32, /*steps_per_round=*/2);
}

TEST(SwapRoundtrip, SaveWithEverythingQueuedRestoresExactly) {
  // Extreme partial progress: push a lot, step once, save immediately.
  Scenario s;
  s.graph = workloads::uniform_pipeline(6, 128);
  s.m = 256;
  s.partition = partition::pipeline_optimal_partition(s.graph, 3 * s.m).partition;
  expect_bit_identical(s, /*rounds=*/4, /*items=*/512, /*steps_per_round=*/1);
}

}  // namespace
}  // namespace ccs::core
