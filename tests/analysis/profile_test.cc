#include "analysis/profile.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "workloads/pipelines.h"

namespace ccs::analysis {
namespace {

TEST(Profile, SharesSumToOneAndCoverAllModules) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const auto r = core::simulate(g, plan.schedule,
                                iomodel::CacheConfig{4 * 512, 8},
                                plan.schedule.outputs_per_period);
  const auto profiles = profile_components(g, plan.partition, r);
  ASSERT_EQ(profiles.size(), static_cast<std::size_t>(plan.partition.num_components));
  double share = 0;
  std::int64_t misses = 0;
  std::int32_t modules = 0;
  std::int64_t state = 0;
  for (const auto& prof : profiles) {
    share += prof.miss_share;
    misses += prof.misses;
    modules += prof.modules;
    state += prof.state_words;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_EQ(misses, r.cache.misses);
  EXPECT_EQ(modules, g.node_count());
  EXPECT_EQ(state, g.total_state());
}

TEST(Profile, RequiresAttribution) {
  const auto g = ccs::workloads::uniform_pipeline(4, 8);
  const auto p = partition::Partition::whole(g);
  runtime::RunResult r;  // no node_misses
  EXPECT_THROW(profile_components(g, p, r), ContractViolation);
}

TEST(Profile, FormatsAsTable) {
  std::vector<ComponentProfile> profiles(2);
  profiles[0] = {0, 400, 2, 100, 0.25};
  profiles[1] = {1, 800, 4, 300, 0.75};
  const auto text = format_profiles(profiles);
  EXPECT_NE(text.find("component"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);
}

}  // namespace
}  // namespace ccs::analysis
