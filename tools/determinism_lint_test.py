#!/usr/bin/env python3
"""Unit tests for tools/determinism_lint.py, driven by annotated fixtures.

Each fixture in tests/lint/fixtures/ marks every line the linter must flag
with a trailing `// ... LINT-EXPECT(rule)` comment (one marker per expected
finding).  The test runs the linter over each fixture and requires the set of
(line, rule) findings to equal the set of markers exactly -- a missing
finding is a false negative, an extra one a false positive, and both fail.

Run directly (no framework needed):
    python3 tools/determinism_lint_test.py
"""

from __future__ import annotations

import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import determinism_lint  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent.parent / "tests" / "lint" / "fixtures"
EXPECT_RE = re.compile(r"LINT-EXPECT\((\w[\w-]*)\)")


def expected_findings(path: pathlib.Path) -> set[tuple[int, str]]:
    expected = set()
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            expected.add((i, m.group(1)))
    return expected


def check_fixture(path: pathlib.Path) -> list[str]:
    expected = expected_findings(path)
    actual = {
        (line, rule) for _, line, rule, _ in determinism_lint.lint_file(path)
    }
    errors = []
    for line, rule in sorted(expected - actual):
        errors.append(f"{path.name}:{line}: expected [{rule}] but the linter was silent")
    for line, rule in sorted(actual - expected):
        errors.append(f"{path.name}:{line}: unexpected [{rule}] finding")
    return errors


def main() -> int:
    fixtures = sorted(FIXTURES.glob("*.cc"))
    if len(fixtures) < 6:
        print(f"FAIL: expected at least 6 fixtures in {FIXTURES}, found {len(fixtures)}")
        return 1

    errors = []
    for fixture in fixtures:
        errors.extend(check_fixture(fixture))

    # The rule inventory itself is part of the contract: at least six rules,
    # and every rule exercised by at least one fixture marker.
    rule_names = {r for r, _, _ in determinism_lint.LINE_RULES}
    rule_names.update(determinism_lint.EXTRA_RULES)
    if len(rule_names) < 6:
        errors.append(f"rule inventory shrank to {len(rule_names)} (< 6): {sorted(rule_names)}")
    exercised = set()
    for fixture in fixtures:
        exercised.update(rule for _, rule in expected_findings(fixture))
    for rule in sorted(rule_names - exercised):
        errors.append(f"rule [{rule}] has no fixture exercising it")

    if errors:
        print("\n".join(errors))
        print(f"FAIL: {len(errors)} error(s) across {len(fixtures)} fixtures")
        return 1
    print(f"PASS: {len(fixtures)} fixtures, {len(rule_names)} rules, all exercised")
    return 0


if __name__ == "__main__":
    sys.exit(main())
