// E6 -- approximation quality transfers to schedule quality (Corollary 9).
//
// For one small dag, build partitions of increasing bandwidth (exact <=
// refined <= greedy <= singletons), schedule each, and report alpha =
// bw(P)/bw(OPT) next to the measured miss ratio vs the exact partition's
// schedule. Expected shape: the miss ratio tracks alpha (an
// alpha-approximate partition yields an O(alpha)-competitive schedule).

#include "bench/common.h"
#include "partition/agglomerative.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "schedule/partitioned.h"
#include "sdf/gain.h"
#include "util/rng.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t outputs = 4096;
  Rng rng(606);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 3;
  spec.state_lo = 250;
  spec.state_hi = 450;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const sdf::GainMap gains(g);
  const std::int64_t bound = 3 * m;

  partition::ExactOptions eopts;
  eopts.state_bound = bound;
  const auto exact = partition::dag_exact_partition(g, eopts);
  if (!exact.has_value()) {
    std::cout << "E6: exact partitioner exceeded budget; graph too large\n";
    return 0;
  }

  struct Entry {
    std::string name;
    partition::Partition partition;
  };
  std::vector<Entry> entries;
  entries.push_back({"exact", exact->partition});
  entries.push_back({"agglomerative", partition::agglomerative_partition(g, bound)});
  partition::RefineOptions ropts;
  ropts.state_bound = bound;
  entries.push_back({"refined", partition::refine_partition(
                                    g, partition::dag_greedy_partition(g, bound), ropts)});
  entries.push_back({"greedy", partition::dag_greedy_partition(g, bound)});
  entries.push_back({"singletons", partition::Partition::singletons(g)});

  schedule::PartitionedOptions sopts;
  sopts.m = m;
  double exact_misses = 0;

  Table t("E6: bandwidth ratio alpha vs measured miss ratio (layered dag, M=512, B=8)");
  t.set_header({"partition", "bandwidth", "alpha", "misses/output", "miss ratio"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& entry : entries) {
    const auto sched = schedule::partitioned_schedule(g, entry.partition, sopts);
    const auto r = bench::run(g, sched, 4 * m, b, outputs);
    const auto bw = partition::bandwidth(g, gains, entry.partition);
    if (entry.name == "exact") exact_misses = r.misses_per_output();
    t.add_row({entry.name, bw.to_string(),
               bench::safe_ratio(bw.to_double(), exact->bandwidth.to_double()),
               Table::num(r.misses_per_output(), 3),
               bench::safe_ratio(r.misses_per_output(), exact_misses)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
