#include "schedule/parallel.h"

#include <gtest/gtest.h>

#include "partition/dag_greedy.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

workloads::LayeredSpec wide_spec() {
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 4;
  spec.state_lo = 100;
  spec.state_hi = 200;
  return spec;
}

TEST(Parallel, SingleWorkerCompletesTarget) {
  Rng rng(1);
  const auto g = workloads::layered_homogeneous_dag(wide_spec(), rng);
  const auto p = partition::dag_greedy_partition(g, 600);
  const auto r = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 1, 512);
  EXPECT_GE(r.outputs, 512);
  EXPECT_GT(r.total_misses, 0);
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.workers, 1);
  EXPECT_EQ(r.worker_busy.size(), 1u);
  // One worker is the critical path; busy time may exceed the recorded
  // makespan by at most the final in-flight batch.
  EXPECT_GE(r.worker_busy[0], r.makespan);
}

TEST(Parallel, MoreWorkersShrinkMakespan) {
  Rng rng(2);
  const auto g = workloads::layered_homogeneous_dag(wide_spec(), rng);
  const auto p = partition::dag_greedy_partition(g, 400);  // more, smaller components
  const auto r1 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 1, 1024);
  const auto r4 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 4, 1024);
  EXPECT_LT(r4.makespan, r1.makespan);
}

TEST(Parallel, TotalMissesNearUniprocessor) {
  // The paper (Section 7): miss count is a uniprocessor notion; parallelism
  // should cost at most extra cold loads per worker. Allow 3x slack.
  Rng rng(3);
  const auto g = workloads::layered_homogeneous_dag(wide_spec(), rng);
  const auto p = partition::dag_greedy_partition(g, 600);
  const auto r1 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 1, 1024);
  const auto r4 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 4, 1024);
  EXPECT_LT(static_cast<double>(r4.total_misses),
            3.0 * static_cast<double>(r1.total_misses) + 1000.0);
}

TEST(Parallel, WorkerAccountingConsistent) {
  Rng rng(4);
  const auto g = workloads::layered_homogeneous_dag(wide_spec(), rng);
  const auto p = partition::dag_greedy_partition(g, 600);
  const auto r = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 3, 512);
  std::int64_t busy = 0;
  std::int64_t misses = 0;
  std::int64_t batches = 0;
  for (std::size_t w = 0; w < 3; ++w) {
    busy += r.worker_busy[w];
    misses += r.worker_misses[w];
    batches += r.worker_batches[w];
  }
  EXPECT_EQ(busy, r.total_firings);
  EXPECT_EQ(misses, r.total_misses);
  EXPECT_GT(batches, 0);
  EXPECT_GE(r.imbalance(), 1.0);
}

TEST(Parallel, RejectsMultirateGraphs) {
  const auto g = workloads::filter_bank(4);
  const auto p = partition::dag_greedy_partition(g, 100000);
  EXPECT_THROW(simulate_parallel_homogeneous(g, p, 64, 4096, 8, 2, 100), Error);
}

TEST(Parallel, RejectsNonWellOrderedPartition) {
  sdf::SdfGraph g;
  g.add_node("s", 8);
  g.add_node("a", 8);
  g.add_node("b", 8);
  g.add_node("t", 8);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  const auto bad = partition::Partition::from_components(g, {{0, 3}, {1}, {2}});
  EXPECT_THROW(simulate_parallel_homogeneous(g, bad, 16, 1024, 8, 2, 64), Error);
}

TEST(Parallel, PipelineGetsOnlyPipelineParallelism) {
  // A segmented pipeline offers *pipeline* parallelism (component i on
  // batch n while component i+2 works batch n-1) but adjacent components
  // alternate on their shared buffer, so speedup is bounded by the number
  // of components and can never exceed worker count.
  const auto g = workloads::uniform_pipeline(12, 100);
  const auto p = partition::dag_greedy_partition(g, 400);  // 3 segments
  const auto r1 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 1, 512);
  const auto r4 = simulate_parallel_homogeneous(g, p, 64, 4096, 8, 4, 512);
  EXPECT_LE(r4.makespan, r1.makespan);
  EXPECT_GE(static_cast<double>(r4.makespan),
            static_cast<double>(r1.makespan) / 4.0);
}

}  // namespace
}  // namespace ccs::schedule
