// Closed-form cost prediction for partitioned schedules (Lemmas 4 and 8).
//
// Per batch of T inputs, component Vi costs:
//   state term:   ceil(state(Vi)/B)            -- loading the component
//   buffer term:  ceil(internal_buffers(Vi)/B) -- its working buffers
//   cross term:   sum over incident cross edges of T*gain(e)/B
// Summed over components and divided by T this gives predicted misses per
// input, which the simulator should reproduce within a small constant
// (experiment E2 checks exactly this agreement).
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::analysis {

/// Breakdown of the Lemma 4/8 accounting.
struct CostPrediction {
  double state_term = 0;    ///< Misses/batch loading component state.
  double buffer_term = 0;   ///< Misses/batch touching internal buffers.
  double cross_term = 0;    ///< Misses/batch streaming cross-edge tokens.
  double misses_per_batch = 0;
  double misses_per_input = 0;  ///< misses_per_batch / T.
};

/// Predicts the partitioned scheduler's cost for batch size `t` source
/// firings on geometry (m, b). Uses the same internal buffer sizing as the
/// scheduler (sdf::feasible_buffers).
CostPrediction predict_partitioned_cost(const sdf::SdfGraph& g,
                                        const partition::Partition& p, std::int64_t t,
                                        std::int64_t b);

}  // namespace ccs::analysis
