// Address-striped sharded LRU -- the contention-free shared-LLC backend.
//
// A SharedLlcCache/WorkerPool configuration with one flat LruCache behind
// one mutex serializes every private-level miss of every worker; model
// counters still scale (BENCH_PR5), but wall-clock stops right where the
// paper's §7 multicore analysis begins. ShardedLruCache splits the flat-slab
// LruCache design into `shards` independent stripes -- block id -> stripe by
// low bits (`block & (shards-1)`, the way real LLC slices stripe physical
// addresses) -- each stripe owning its own slab, open-addressing table,
// recency list, statistics, and lock. Probes touch exactly one stripe, so
// workers missing on different stripes never contend, and the lock order is
// trivially deadlock-free (one lock held at a time, ever).
//
// Semantics and determinism:
//  * `shards == 1` is bit-identical to a plain LruCache of the same
//    geometry -- stats, residency, and replacement order (the differential
//    gate in tests/iomodel/bulk_access_test.cc). This is the configuration
//    the thread-mode ≡ virtual-time cluster gates re-use unchanged.
//  * `shards > 1` replaces global LRU with per-stripe LRU (capacity is
//    divided evenly across stripes), which is what hardware sliced LLCs do.
//    The stripe function is a pure function of the block id, so per-shard
//    counters -- and their sum -- are bit-identical across repeat runs under
//    a serialized (virtual-time) driver; under real threads the aggregate
//    access count still equals the summed private misses, and the hit/miss
//    split is interleaving-dependent exactly as for the single-mutex LLC.
//  * The CacheSim bulk path walks each stripe's sub-sequence in ascending
//    block order under one lock acquisition per stripe; stripes are
//    independent, so this is bit-identical to the per-block scalar order.
//
// stats() aggregates the per-shard counters into a per-call snapshot. Unlike
// LruCache::stats(), the returned reference does NOT track later accesses
// live -- re-call stats() for fresh counters (WorkerPool::llc_stats() and
// the cluster reports do). Engines hold live stats references only to the
// private L1s they run against, never to the shared LLC, so nothing on the
// hot path depends on live tracking here; shard_stats() returns live
// references for callers that need them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iomodel/cache.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccs::iomodel {

/// Striped LRU: `shards` independent LruCache stripes with per-stripe locks.
class ShardedLruCache final : public CacheSim {
 public:
  /// `shards` must be a power of two, and the geometry must give every
  /// stripe at least one block (capacity_blocks >= shards).
  ShardedLruCache(const CacheConfig& config, std::int32_t shards);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;

  /// Per-call aggregate of the shard counters (see the file comment: the
  /// reference is refreshed by each stats() call, not live-tracking).
  const CacheStats& stats() const override;

  const CacheConfig& config() const override { return config_; }

  /// Touches one whole block under its stripe's lock; returns true on a
  /// hit. This is the thread-safe probe SharedLlcCache forwards private
  /// misses to -- no pool-wide mutex required.
  bool access_block(BlockId block, AccessMode mode) {
    Shard& s = shard(shard_of(block));
    const MutexLock lock(s.mutex);
    return s.cache.access_block(block, mode);
  }

  std::int32_t shard_count() const noexcept { return shards_; }

  /// Stripe owning `block`: low bits, so consecutive blocks rotate stripes
  /// and a bulk span spreads across every lock.
  std::int32_t shard_of(BlockId block) const noexcept {
    return static_cast<std::int32_t>(block & shard_mask_);
  }

  /// Shard `s`'s live counters (its own stripe traffic). Returns a live
  /// reference without taking the stripe lock -- callers read it from the
  /// controlling thread at quiescent points (documented in the file
  /// comment), which the lock-based analysis cannot express.
  const CacheStats& shard_stats(std::int32_t s) const CCS_NO_THREAD_SAFETY_ANALYSIS;

  /// Blocks resident across all stripes (for tests).
  std::int64_t resident_blocks() const;

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override;

 private:
  struct Shard {
    explicit Shard(const CacheConfig& c) : cache(c) {}
    mutable ccs::Mutex mutex;
    LruCache cache CCS_GUARDED_BY(mutex);
  };

  Shard& shard(std::int32_t s) { return *shards_store_[static_cast<std::size_t>(s)]; }
  const Shard& shard(std::int32_t s) const {
    return *shards_store_[static_cast<std::size_t>(s)];
  }

  CacheConfig config_;
  std::int32_t shards_;
  std::int64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_store_;
  mutable CacheStats agg_;  ///< stats() snapshot target.
};

/// Factory helper, mirroring make_lru.
std::unique_ptr<CacheSim> make_sharded_lru(std::int64_t capacity_words,
                                           std::int64_t block_words,
                                           std::int32_t shards);

}  // namespace ccs::iomodel
