// Pure token-counting simulator (no cache, no memory).
//
// Schedulers *generate* firing sequences by simulating token counts, and the
// validator replays sequences the same way. Keeping this separate from the
// cache-simulating runtime::Engine means schedule construction never touches
// the measured cache, and the engine never needs scheduling logic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sdf/graph.h"

namespace ccs::schedule {

/// Channel token counts + firing bookkeeping for one graph.
class TokenSim {
 public:
  /// Starts with all channels empty under the given per-edge capacities
  /// (`caps` must have one entry per edge of `g`).
  TokenSim(const sdf::SdfGraph& g, std::span<const std::int64_t> caps);

  /// True iff inputs suffice and outputs have space.
  bool can_fire(sdf::NodeId v) const;

  /// Largest k such that v can fire k times back to back right now
  /// (bounded by `limit`).
  std::int64_t max_batch(sdf::NodeId v, std::int64_t limit) const;

  /// Fires v exactly `count` times. Throws ScheduleError on violation.
  void fire(sdf::NodeId v, std::int64_t count = 1);

  /// Tokens currently queued on edge e.
  std::int64_t tokens(sdf::EdgeId e) const {
    return tokens_[static_cast<std::size_t>(e)];
  }
  /// Remaining room on edge e (capacity - tokens).
  std::int64_t space(sdf::EdgeId e) const {
    return caps_[static_cast<std::size_t>(e)] - tokens_[static_cast<std::size_t>(e)];
  }
  /// Ring capacity of edge e, as passed at construction.
  std::int64_t capacity(sdf::EdgeId e) const {
    return caps_[static_cast<std::size_t>(e)];
  }
  /// Total firings of node v so far.
  std::int64_t fired(sdf::NodeId v) const {
    return fired_[static_cast<std::size_t>(v)];
  }

  /// Highest token count ever observed per edge (validates capacity sizing).
  std::int64_t peak(sdf::EdgeId e) const {
    return peak_[static_cast<std::size_t>(e)];
  }

  /// True iff every channel is empty.
  bool drained() const;

  const sdf::SdfGraph& graph() const noexcept { return *graph_; }

 private:
  const sdf::SdfGraph* graph_;
  std::vector<std::int64_t> caps_;
  std::vector<std::int64_t> tokens_;
  std::vector<std::int64_t> peak_;
  std::vector<std::int64_t> fired_;
};

}  // namespace ccs::schedule
