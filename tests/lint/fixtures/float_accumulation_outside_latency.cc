// Fixture (negative): float/double OUTSIDE the latency layer is not this
// rule's business -- analysis and reporting code legitimately computes
// ratios in double. This file neither lives under the latency source
// directory nor declares the latency namespace, so the linter must stay
// silent.

#include <cstdint>

namespace ccs::analysis {

inline double misses_per_output(std::int64_t misses, std::int64_t outputs) {
  if (outputs == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(outputs);
}

inline float blend(float a, float b) { return 0.5f * (a + b); }

}  // namespace ccs::analysis
