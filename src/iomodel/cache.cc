#include "iomodel/cache.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "iomodel/simd.h"
#include "util/int_math.h"

namespace ccs::iomodel {

namespace {

constexpr std::int64_t kMaxInt64 = std::numeric_limits<std::int64_t>::max();

inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

}  // namespace

CacheSim::CacheSim(std::int64_t block_words)
    : block_words_(block_words),
      block_shift_(is_pow2(block_words)
                       ? static_cast<std::int32_t>(
                             std::countr_zero(static_cast<std::uint64_t>(block_words)))
                       : -1) {
  CCS_EXPECTS(block_words > 0, "block size must be positive");
}

std::int64_t CacheSim::access_blocks(BlockId first, std::int64_t count, AccessMode mode) {
  CCS_EXPECTS(first >= 0, "negative block id");
  CCS_EXPECTS(count >= 0, "negative block count");
  CCS_EXPECTS(first <= kMaxInt64 - count, "block range overflows");
  if (count == 0) return 0;
  // Every block in the range must have an addressable first word, so the
  // bulk path and the word-at-a-time reference agree on their domain.
  CCS_EXPECTS(first + count - 1 <= kMaxInt64 / block_words_,
              "block range exceeds address space");
  if (!costs_.any()) {
    do_access_blocks(first, count, mode);
    return 0;
  }
  // Price the call from its own counter delta. The snapshot is four int64
  // loads; implementations never touch counters outside their own stats_,
  // so the delta covers exactly this call.
  const CacheStats before = stats();
  do_access_blocks(first, count, mode);
  CacheStats delta = stats();
  delta.accesses -= before.accesses;
  delta.hits -= before.hits;
  delta.misses -= before.misses;
  delta.writebacks -= before.writebacks;
  return costs_.price(delta);
}

std::int64_t CacheSim::access_span(Addr addr, std::int64_t words, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  CCS_EXPECTS(words >= 0, "negative span length");
  CCS_EXPECTS(addr <= kMaxInt64 - words, "span overflows address space");
  if (words == 0) return 0;
  const BlockId first = block_of(addr);
  const BlockId last = block_of(addr + words - 1);
  return access_blocks(first, last - first + 1, mode);
}

void CacheSim::access_range(Addr addr, std::int64_t count, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  CCS_EXPECTS(count >= 0, "negative access count");
  CCS_EXPECTS(addr <= kMaxInt64 - count, "range overflows address space");
  for (std::int64_t i = 0; i < count; ++i) access(addr + i, mode);
}

void CacheSim::do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) {
  for (BlockId b = first, e = first + count; b != e; ++b) access(b * block_words_, mode);
}

LruCache::LruCache(const CacheConfig& config)
    : CacheSim(config.block_words),
      config_(config),
      capacity_blocks_(config.capacity_blocks()) {
  CCS_EXPECTS(capacity_blocks_ >= 1, "cache must hold at least one block");
  CCS_EXPECTS(capacity_blocks_ < (std::int64_t{1} << 31) - 1,
              "LRU capacity too large for the flat node slab");
  // Size the probe table for the full capacity up front when it is modest
  // (<= 2^16 blocks: load factor <= 1/2 forever, no rehash ever). Larger
  // capacities start there and double as the working set grows; growth
  // stops once it stabilizes, so the steady state is allocation-free
  // either way.
  const auto eager = static_cast<std::uint64_t>(
      std::min<std::int64_t>(capacity_blocks_, std::int64_t{1} << 16));
  const std::size_t table_size = std::bit_ceil(std::max<std::uint64_t>(16, 2 * eager));
  table_.assign(table_size, kNil);
  table_mask_ = table_size - 1;
  table_shift_ = static_cast<std::int32_t>(
      64 - std::countr_zero(static_cast<std::uint64_t>(table_size)));
  slab_.reserve(static_cast<std::size_t>(eager) + 1);
  slab_.push_back(Node{-1, 0, 0, false});  // sentinel; empty circular list
}

std::size_t LruCache::find_slot(BlockId block) const {
  std::size_t slot = home_slot(block);
  while (table_[slot] != kNil &&
         slab_[static_cast<std::size_t>(table_[slot])].block != block) {
    slot = (slot + 1) & table_mask_;
  }
  return slot;
}

void LruCache::erase_slot(std::size_t slot) {
  // Backward-shift deletion keeps probe sequences contiguous without
  // tombstones: walk forward from the hole, moving back every entry whose
  // home slot does not lie strictly inside (hole, probe].
  std::size_t hole = slot;
  std::size_t probe = slot;
  while (true) {
    probe = (probe + 1) & table_mask_;
    const std::int32_t idx = table_[probe];
    if (idx == kNil) break;
    const std::size_t home = home_slot(slab_[static_cast<std::size_t>(idx)].block);
    if (((probe - home) & table_mask_) >= ((probe - hole) & table_mask_)) {
      table_[hole] = idx;
      hole = probe;
    }
  }
  table_[hole] = kNil;
}

void LruCache::grow_table() {
  const std::size_t table_size = table_.size() * 2;
  table_.assign(table_size, kNil);
  table_mask_ = table_size - 1;
  table_shift_ = static_cast<std::int32_t>(
      64 - std::countr_zero(static_cast<std::uint64_t>(table_size)));
  for (std::int32_t i = 1; i <= size_; ++i) {
    std::size_t slot = home_slot(slab_[static_cast<std::size_t>(i)].block);
    while (table_[slot] != kNil) slot = (slot + 1) & table_mask_;
    table_[slot] = i;
  }
}

void LruCache::move_to_front(std::int32_t idx) {
  if (slab_[0].next == idx) return;  // already MRU
  Node& n = slab_[static_cast<std::size_t>(idx)];
  // Branch-free circular relink through the sentinel.
  slab_[static_cast<std::size_t>(n.prev)].next = n.next;
  slab_[static_cast<std::size_t>(n.next)].prev = n.prev;
  const std::int32_t old_head = slab_[0].next;
  n.prev = 0;
  n.next = old_head;
  slab_[static_cast<std::size_t>(old_head)].prev = idx;
  slab_[0].next = idx;
}

bool LruCache::touch_block(BlockId block, bool write) {
  std::size_t slot = find_slot(block);
  std::int32_t idx = table_[slot];
  if (idx != kNil) {
    if (write) slab_[static_cast<std::size_t>(idx)].dirty = true;
    move_to_front(idx);
    return true;
  }
  if (size_ == capacity_blocks_) {
    // Evict the LRU block in place: reuse its node for the incoming block.
    idx = slab_[0].prev;
    Node& victim = slab_[static_cast<std::size_t>(idx)];
    if (victim.dirty) ++stats_.writebacks;
    erase_slot(find_slot(victim.block));
    slot = find_slot(block);  // erase may have shifted entries
    victim.block = block;
    victim.dirty = write;
    move_to_front(idx);
  } else {
    if (2 * static_cast<std::size_t>(size_ + 1) > table_.size()) {
      grow_table();
      slot = find_slot(block);
    }
    idx = static_cast<std::int32_t>(++size_);
    if (static_cast<std::size_t>(idx) == slab_.size()) {
      slab_.push_back(Node{block, 0, 0, write});
    } else {
      slab_[static_cast<std::size_t>(idx)] = Node{block, 0, 0, write};
    }
    const std::int32_t old_head = slab_[0].next;
    slab_[static_cast<std::size_t>(idx)].next = old_head;
    slab_[static_cast<std::size_t>(old_head)].prev = idx;
    slab_[0].next = idx;
  }
  table_[slot] = idx;
  return false;
}

void LruCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  ++stats_.accesses;
  if (touch_block(block_of(addr), mode == AccessMode::kWrite)) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
}

void LruCache::do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) {
  const bool write = mode == AccessMode::kWrite;
  std::int64_t hits = 0;
  // Keep the MRU head in a register across the span: the per-block relink
  // otherwise carries a store/load dependency through slab_[0].next.
  std::int32_t head = slab_[0].next;

  // Scalar per-block body: exact hit/miss handling, shared by the group
  // tail and the fallback when a probe group is not all home-slot hits.
  const auto scalar_block = [&](BlockId b) {
    prefetch(&table_[home_slot(b + 1)]);  // harmless one-past-the-end probe
    const std::int32_t idx = table_[find_slot(b)];
    if (idx != kNil) {
      ++hits;
      Node& n = slab_[static_cast<std::size_t>(idx)];
      if (write) n.dirty = true;
      if (head != idx) {
        // idx is not the head, so n.prev != 0 and nothing here reads the
        // (stale) slab_[0].next; n.next may be the sentinel, whose .prev
        // (the LRU tail) stays exact.
        slab_[static_cast<std::size_t>(n.prev)].next = n.next;
        slab_[static_cast<std::size_t>(n.next)].prev = n.prev;
        n.prev = 0;
        n.next = head;
        slab_[static_cast<std::size_t>(head)].prev = idx;
        head = idx;
      }
    } else {
      // The miss path walks the list through the sentinel (eviction, table
      // maintenance): sync the cached head around it.
      slab_[0].next = head;
      touch_block(b, write);
      head = slab_[0].next;
    }
  };

  constexpr std::int64_t kGroup = simd::kProbeBatch;
  BlockId b = first;
  const BlockId e = first + count;
  while (e - b >= kGroup) {
    if (!batch_hint_) {
      // Recent groups were not all home-slot hits (a streaming or
      // collision-heavy phase): a batch probe would be pure overhead on top
      // of the scalar work. Run scalar, and re-arm batching only when a
      // whole group hits again.
      const std::int64_t before = hits;
      for (std::int64_t i = 0; i < kGroup; ++i) scalar_block(b + i);
      batch_hint_ = hits - before == kGroup;
      b += kGroup;
      continue;
    }
    // Probe kGroup consecutive blocks' home slots in one constant-trip,
    // dependence-free pass (hash multiply, table gather, tag compare): the
    // stage a one-block loop serializes on its load-to-use chain. Nothing
    // mutates here, so the probes are independent by construction. An entry
    // found at its exact home slot is what find_slot() would return without
    // probing; mapping kNil to the sentinel (whose block is -1, never a
    // valid id) makes the compare branch-free.
    std::int32_t idx[simd::kProbeBatch];
    bool all_home_hit = true;
    CCS_SIMD_LOOP
    for (std::int64_t i = 0; i < kGroup; ++i) {
      const std::int32_t cand = table_[home_slot(b + i)];
      idx[i] = cand;
      all_home_hit &=
          slab_[static_cast<std::size_t>(std::max(cand, 0))].block == b + i;
    }
    prefetch(&table_[home_slot(b + kGroup)]);
    if (all_home_hit) {
      // Every block hit at its home slot: only the (inherently serial) LRU
      // relink remains, in the same ascending order as the scalar loop --
      // probing never mutates, so state and counters stay bit-identical.
      for (std::int64_t i = 0; i < kGroup; ++i) {
        const std::int32_t id = idx[i];
        Node& n = slab_[static_cast<std::size_t>(id)];
        if (write) n.dirty = true;
        if (head != id) {
          slab_[static_cast<std::size_t>(n.prev)].next = n.next;
          slab_[static_cast<std::size_t>(n.next)].prev = n.prev;
          n.prev = 0;
          n.next = head;
          slab_[static_cast<std::size_t>(head)].prev = id;
          head = id;
        }
      }
      hits += kGroup;
    } else {
      for (std::int64_t i = 0; i < kGroup; ++i) scalar_block(b + i);
      batch_hint_ = false;
    }
    b += kGroup;
  }
  for (; b != e; ++b) scalar_block(b);

  slab_[0].next = head;
  stats_.accesses += count;
  stats_.hits += hits;
  stats_.misses += count - hits;
  CCS_AUDIT_BLOCK(if ((++audit_tick_ & 63) == 0) audit_invariants(););
}

void LruCache::flush() {
  CCS_AUDIT_BLOCK(audit_invariants(););
  for (std::int32_t i = 1; i <= size_; ++i) {
    if (slab_[static_cast<std::size_t>(i)].dirty) ++stats_.writebacks;
  }
  std::fill(table_.begin(), table_.end(), kNil);
  slab_[0].prev = slab_[0].next = 0;
  size_ = 0;
}

void LruCache::audit_invariants() const {
  CCS_CHECK(size_ >= 0 && size_ <= capacity_blocks_,
            "resident count outside [0, capacity]");
  // Recency plane: exactly size_ nodes reachable forward from the sentinel,
  // back links consistent at every hop, circle closed by the sentinel's LRU
  // link. The walk is bounded by size_ so a corrupt cycle fails fast
  // instead of spinning.
  std::int64_t walked = 0;
  std::int32_t prev = 0;
  for (std::int32_t idx = slab_[0].next; idx != 0;
       idx = slab_[static_cast<std::size_t>(idx)].next) {
    CCS_CHECK(idx >= 1 && idx <= size_, "recency link points outside the live slab");
    const Node& n = slab_[static_cast<std::size_t>(idx)];
    CCS_CHECK(n.prev == prev, "recency list back link broken");
    CCS_CHECK(n.block >= 0, "resident node holds an invalid block id");
    CCS_CHECK(walked++ < size_, "recency list longer than resident count (cycle?)");
    // Table plane: every resident block must be findable at the slot the
    // probe sequence ends on, mapping back to this very node.
    CCS_CHECK(table_[find_slot(n.block)] == idx,
              "table does not map a resident block to its node");
    prev = idx;
  }
  CCS_CHECK(walked == size_, "recency list shorter than resident count");
  CCS_CHECK(slab_[0].prev == prev, "sentinel LRU link does not close the circle");
  // Table plane: exactly size_ live entries, all within the live slab range
  // (a duplicate table entry would already have failed the walk above,
  // since two slots cannot both be find_slot of one block).
  std::int64_t live = 0;
  for (const std::int32_t idx : table_) {
    if (idx == kNil) continue;
    ++live;
    CCS_CHECK(idx >= 1 && idx <= size_, "table entry outside the live slab range");
  }
  CCS_CHECK(live == size_, "table entry count disagrees with resident count");
}

bool LruCache::contains(Addr addr) const {
  if (addr < 0) return false;
  return table_[find_slot(block_of(addr))] != kNil;
}

SetAssociativeCache::SetAssociativeCache(const CacheConfig& config, std::int32_t ways)
    : CacheSim(config.block_words), config_(config), ways_(ways) {
  CCS_EXPECTS(ways >= 1, "need at least one way");
  const std::int64_t blocks = config.capacity_blocks();
  CCS_EXPECTS(blocks % ways == 0, "capacity_blocks must be divisible by ways");
  num_sets_ = blocks / ways;
  CCS_EXPECTS(is_pow2(num_sets_), "number of sets must be a power of two");
  const auto lines = static_cast<std::size_t>(num_sets_) * static_cast<std::size_t>(ways_);
  tags_.assign(lines, kEmptyTag);
  meta_.assign(lines, 0);
}

void SetAssociativeCache::fill_way(std::size_t base, BlockId block, bool write) {
  const BlockId* tags = tags_.data() + base;
  // Victim: the last empty way if any way is empty, else the unique
  // least-recently-used way (meta compares as the stamp because stamps are
  // distinct and sit above the dirty bit).
  std::int32_t victim = 0;
  for (std::int32_t w = 1; w < ways_; ++w) {
    if (tags[w] == kEmptyTag) {
      victim = w;
    } else if (tags[victim] != kEmptyTag &&
               meta_[base + static_cast<std::size_t>(w)] <
                   meta_[base + static_cast<std::size_t>(victim)]) {
      victim = w;
    }
  }
  const std::size_t line = base + static_cast<std::size_t>(victim);
  if (tags_[line] != kEmptyTag && (meta_[line] & 1) != 0) ++stats_.writebacks;
  tags_[line] = block;
  meta_[line] = (tick_ << 1) | (write ? 1 : 0);
}

bool SetAssociativeCache::touch_block(BlockId block, bool write) {
  ++tick_;
  const std::size_t base = set_index(block) * static_cast<std::size_t>(ways_);
  const BlockId* tags = tags_.data() + base;
  // One-pass early-exit scan tracking the victim as it goes: on the random
  // single-access path the simulator's own cache misses dominate, so
  // touching the fewest lines beats a branch-free sweep. Empty ways never
  // match a valid id.
  std::int32_t victim = 0;
  for (std::int32_t w = 0; w < ways_; ++w) {
    if (tags[w] == block) {
      const std::size_t line = base + static_cast<std::size_t>(w);
      meta_[line] = (tick_ << 1) | (meta_[line] & 1) | (write ? 1 : 0);
      return true;
    }
    if (tags[w] == kEmptyTag) {
      victim = w;
    } else if (w > 0 && tags[victim] != kEmptyTag &&
               meta_[base + static_cast<std::size_t>(w)] <
                   meta_[base + static_cast<std::size_t>(victim)]) {
      victim = w;
    }
  }
  const std::size_t line = base + static_cast<std::size_t>(victim);
  if (tags_[line] != kEmptyTag && (meta_[line] & 1) != 0) ++stats_.writebacks;
  tags_[line] = block;
  meta_[line] = (tick_ << 1) | (write ? 1 : 0);
  return false;
}

void SetAssociativeCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  ++stats_.accesses;
  if (touch_block(block_of(addr), mode == AccessMode::kWrite)) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
}

void SetAssociativeCache::do_access_blocks(BlockId first, std::int64_t count,
                                           AccessMode mode) {
  const bool write = mode == AccessMode::kWrite;
  std::int64_t hits = 0;
  constexpr std::int64_t kGroup = simd::kProbeBatch;
  BlockId b = first;
  const BlockId e = first + count;

  // Consecutive blocks map to consecutive sets, so when a group of kGroup
  // blocks neither wraps the set index nor exceeds the set count, its tag
  // rows are one contiguous, mutually disjoint stretch of the tag plane:
  // probe them in a single dependence-free sweep (kGroup * ways_ compares),
  // then apply the per-block updates in order. Disjointness makes the
  // precomputed probe exact -- updating row i cannot change row j -- and
  // the tick stamps advance per block exactly as in the scalar loop.
  while (e - b >= kGroup) {
    const std::size_t set0 = set_index(b);
    if (set0 + kGroup > static_cast<std::size_t>(num_sets_)) {
      // Group would wrap past the last set; step one block scalar.
      hits += touch_block(b, write) ? 1 : 0;
      ++b;
      continue;
    }
    const BlockId* tags = tags_.data() + set0 * static_cast<std::size_t>(ways_);
    std::int32_t hit_way[simd::kProbeBatch];
    for (std::int64_t i = 0; i < kGroup; ++i) {
      const BlockId* row = tags + i * ways_;
      std::int32_t found = -1;
      CCS_SIMD_LOOP
      for (std::int32_t w = 0; w < ways_; ++w) {
        if (row[w] == b + i) found = w;  // at most one way matches
      }
      hit_way[i] = found;
    }
    for (std::int64_t i = 0; i < kGroup; ++i) {
      ++tick_;
      const std::size_t base =
          (set0 + static_cast<std::size_t>(i)) * static_cast<std::size_t>(ways_);
      if (hit_way[i] >= 0) {
        ++hits;
        const std::size_t line = base + static_cast<std::size_t>(hit_way[i]);
        meta_[line] = (tick_ << 1) | (meta_[line] & 1) | (write ? 1 : 0);
      } else {
        fill_way(base, b + i, write);
      }
    }
    b += kGroup;
  }
  for (; b != e; ++b) {
    hits += touch_block(b, write) ? 1 : 0;
  }
  stats_.accesses += count;
  stats_.hits += hits;
  stats_.misses += count - hits;
  CCS_AUDIT_BLOCK(if ((++audit_tick_ & 63) == 0) audit_invariants(););
}

void SetAssociativeCache::flush() {
  CCS_AUDIT_BLOCK(audit_invariants(););
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != kEmptyTag && (meta_[i] & 1) != 0) ++stats_.writebacks;
  }
  std::fill(tags_.begin(), tags_.end(), kEmptyTag);
  std::fill(meta_.begin(), meta_.end(), std::uint64_t{0});
}

void SetAssociativeCache::audit_invariants() const {
  CCS_CHECK(stats_.hits + stats_.misses == stats_.accesses,
            "hit/miss split disagrees with the access count");
  for (std::int64_t set = 0; set < num_sets_; ++set) {
    const std::size_t base =
        static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_);
    for (std::int32_t w = 0; w < ways_; ++w) {
      const BlockId tag = tags_[base + static_cast<std::size_t>(w)];
      if (tag == kEmptyTag) continue;
      CCS_CHECK(tag >= 0, "resident tag holds an invalid block id");
      CCS_CHECK(set_index(tag) == static_cast<std::size_t>(set),
                "resident tag indexes a different set");
      CCS_CHECK(meta_[base + static_cast<std::size_t>(w)] >> 1 <= tick_,
                "recency stamp is newer than the current tick");
      for (std::int32_t w2 = w + 1; w2 < ways_; ++w2) {
        CCS_CHECK(tags_[base + static_cast<std::size_t>(w2)] != tag,
                  "one block resident in two ways of a set");
      }
    }
  }
}

bool SetAssociativeCache::contains(Addr addr) const {
  const BlockId block = addr / config_.block_words;
  const std::size_t base = set_index(block) * static_cast<std::size_t>(ways_);
  const BlockId* tags = tags_.data() + base;
  for (std::int32_t w = 0; w < ways_; ++w) {
    if (tags[w] == block) return true;
  }
  return false;
}

std::unique_ptr<CacheSim> make_lru(std::int64_t capacity_words, std::int64_t block_words) {
  return std::make_unique<LruCache>(CacheConfig{capacity_words, block_words});
}

std::unique_ptr<CacheSim> make_set_associative(std::int64_t capacity_words,
                                               std::int64_t block_words, std::int32_t ways) {
  return std::make_unique<SetAssociativeCache>(CacheConfig{capacity_words, block_words}, ways);
}

}  // namespace ccs::iomodel
