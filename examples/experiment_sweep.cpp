// Scenario-sweep driver: run a workloads x cache-sizes x partitioners (x
// baselines) grid through core::Experiment's thread pool and emit the
// result as a table, CSV, or JSON.
//
//   $ ./experiment_sweep                         # default paper-style grid
//   $ ./experiment_sweep --threads=8 --csv
//   $ ./experiment_sweep --workloads=FMRadio,DES --cache-words=256,512
//         --partitioners=auto,dag-greedy --baselines=naive --json
//   $ ./experiment_sweep --list                  # show registry keys
//
// Every coordinate is a registry key, so workloads and strategies
// registered by an application are sweepable here with no code changes.
// Cells that fail (inapplicable strategy, unknown key, no bounded
// partition) are reported per cell; the sweep itself always completes.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/experiment.h"
#include "partition/registry.h"
#include "workloads/arrivals.h"
#include "schedule/registry.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/registry.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("experiment_sweep", "parallel scenario sweep over the registries");
  args.add_string("workloads", "uniform-pipeline,FMRadio",
                  "comma-separated workload registry keys");
  args.add_string("cache-words", "256,512,1024", "comma-separated cache sizes M (words)");
  args.add_int("block-words", 8, "block size B in words");
  args.add_string("partitioners", "auto,dag-greedy,dag-refined,agglomerative",
                  "comma-separated partitioner registry keys");
  args.add_string("baselines", "", "comma-separated baseline scheduler registry keys");
  args.add_string("t-multipliers", "1", "comma-separated batch multipliers");
  args.add_int("outputs", 1024, "sink firings per cell");
  args.add_int("threads", 1, "worker threads for the sweep");
  args.add_int("repetitions", 1, "measurements per cell (engine reuse + rebind)");
  args.add_double("sim-factor", 4.0, "simulate on sim-factor * M (memory augmentation)");
  args.add_string("cluster-arrivals", "",
                  "comma-separated arrival keys enabling multicore cluster cells");
  args.add_string("cluster-workers", "1,2,4", "comma-separated cluster worker counts");
  args.add_string("cluster-tenants", "4", "comma-separated cluster tenant counts");
  args.add_string("cluster-placements", "round-robin",
                  "comma-separated placement registry keys (round-robin, "
                  "least-loaded, affinity, adaptive)");
  args.add_string("cluster-cost-models", "uniform",
                  "comma-separated latency cost models for cluster cells "
                  "(uniform, two-level, llc-shared)");
  args.add_int("cluster-slo-p99", 0,
               "per-step p99 latency target in modeled cycles for cluster "
               "cells (0 = no SLO)");
  args.add_int("cluster-ticks", 64, "arrival ticks per cluster cell");
  args.add_int("cluster-llc-factor", 8,
               "shared LLC as a multiple of the per-worker L1 (0 = no LLC)");
  args.add_int("cluster-llc-shards", 0,
               "LLC stripes (power of two; 0 = single-mutex flat LLC)");
  args.add_int("cluster-churn", 0,
               "churn mode: logical sessions per cluster cell (0 = steady "
               "tick loop; > 0 replaces it with an open/push/close trace)");
  args.add_int("cluster-churn-max-live", 8,
               "concurrent-open bound of the churn trace");
  args.add_int("cluster-max-live-sessions", 0,
               "bounded-live admission budget for cluster cells (0 = unbounded)");
  args.add_flag("cluster-swap", "enable the idle-session swap tier in cluster cells");
  args.add_flag("csv", "emit CSV");
  args.add_flag("json", "emit JSON");
  args.add_flag("list", "list registry keys and exit");
  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.get_flag("list")) {
      std::cout << "workloads:";
      for (const auto& k : workloads::Registry::global().keys()) std::cout << " " << k;
      std::cout << "\npartitioners: auto";
      for (const auto& k : partition::Registry::global().keys()) std::cout << " " << k;
      std::cout << "\nbaselines:";
      for (const auto& k : schedule::Registry::global().keys()) std::cout << " " << k;
      std::cout << "\narrivals:";
      for (const auto& k : workloads::ArrivalRegistry::global().keys()) std::cout << " " << k;
      std::cout << "\nplacements:";
      for (const auto& k : core::PlacementRegistry::global().keys()) std::cout << " " << k;
      std::cout << "\n";
      return 0;
    }

    core::SweepSpec spec;
    spec.workloads = split_csv(args.get_string("workloads"));
    for (const auto& m : split_csv(args.get_string("cache-words"))) {
      spec.caches.push_back({std::stoll(m), args.get_int("block-words")});
    }
    spec.partitioners = split_csv(args.get_string("partitioners"));
    spec.baselines = split_csv(args.get_string("baselines"));
    spec.t_multipliers.clear();
    for (const auto& t : split_csv(args.get_string("t-multipliers"))) {
      spec.t_multipliers.push_back(std::stoll(t));
    }
    spec.target_outputs = args.get_int("outputs");
    spec.repetitions = static_cast<std::int32_t>(args.get_int("repetitions"));
    spec.sim_capacity_factor = args.get_double("sim-factor");
    spec.cluster.arrivals = split_csv(args.get_string("cluster-arrivals"));
    spec.cluster.worker_counts.clear();
    for (const auto& w : split_csv(args.get_string("cluster-workers"))) {
      spec.cluster.worker_counts.push_back(static_cast<std::int32_t>(std::stoi(w)));
    }
    spec.cluster.tenant_counts.clear();
    for (const auto& t : split_csv(args.get_string("cluster-tenants"))) {
      spec.cluster.tenant_counts.push_back(static_cast<std::int32_t>(std::stoi(t)));
    }
    spec.cluster.placements = split_csv(args.get_string("cluster-placements"));
    spec.cluster.cost_models = split_csv(args.get_string("cluster-cost-models"));
    spec.cluster.slo_p99 = args.get_int("cluster-slo-p99");
    spec.cluster.ticks = args.get_int("cluster-ticks");
    spec.cluster.llc_factor = args.get_int("cluster-llc-factor");
    spec.cluster.llc_shards =
        static_cast<std::int32_t>(args.get_int("cluster-llc-shards"));
    spec.cluster.churn_sessions = args.get_int("cluster-churn");
    spec.cluster.churn_max_live = args.get_int("cluster-churn-max-live");
    if (args.get_int("cluster-max-live-sessions") > 0) {
      spec.cluster.admission = "bounded-live";
      spec.cluster.max_live_sessions = args.get_int("cluster-max-live-sessions");
    }
    spec.cluster.swap = args.get_flag("cluster-swap");

    const core::Experiment experiment(spec);
    const auto result =
        experiment.run(static_cast<std::int32_t>(args.get_int("threads")));

    if (args.get_flag("csv")) {
      result.write_csv(std::cout);
    } else if (args.get_flag("json")) {
      result.write_json(std::cout);
    } else {
      Table t(std::to_string(result.cells.size()) + " cells, " +
              std::to_string(result.threads) + " threads, " +
              Table::num(result.wall_seconds, 2) + "s");
      t.set_header({"workload", "M", "strategy", "T-mult", "components", "predicted m/i",
                    "measured m/i", "status"});
      t.set_align({Align::kLeft, Align::kRight, Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kLeft});
      for (const auto& c : result.cells) {
        t.add_row({c.workload, Table::num(c.cache.capacity_words),
                   c.is_cluster ? c.placement + " (cluster " +
                                      std::to_string(c.workers) + "w x " +
                                      std::to_string(c.tenants) + "t)"
                                : c.strategy + (c.is_baseline ? " (baseline)" : ""),
                   Table::num(c.t_multiplier),
                   c.ok && !c.is_baseline
                       ? Table::num(static_cast<std::int64_t>(c.components))
                       : "-",
                   c.ok && !c.is_baseline ? Table::num(c.predicted_misses_per_input, 4) : "-",
                   c.ok ? Table::num(c.misses_per_input, 4) : "-",
                   c.ok ? "ok" : c.error});
      }
      t.print(std::cout);
      if (result.failed_cells() > 0) {
        std::cout << "\n" << result.failed_cells() << " cell(s) failed (see status column)\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
