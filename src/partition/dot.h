// Graphviz DOT export for streaming graphs and partitions.
//
// Renders modules as boxes labelled "name / state", channels as edges
// labelled "out:in", and (optionally) a partition as colored clusters with
// cross edges drawn bold. Feed the output to `dot -Tsvg` to inspect what
// the partitioners decided.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::partition {

/// Writes the plain graph.
void write_dot(const sdf::SdfGraph& g, std::ostream& os);

/// Writes the graph with partition clusters. The partition must be a valid
/// cover of g (validated; throws ccs::Error otherwise).
void write_dot(const sdf::SdfGraph& g, const Partition& p, std::ostream& os);

/// Convenience: DOT text as a string (partition optional).
std::string to_dot(const sdf::SdfGraph& g,
                   const std::optional<Partition>& p = std::nullopt);

}  // namespace ccs::partition
