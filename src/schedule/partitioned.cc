#include "schedule/partitioned.h"

#include <algorithm>
#include <vector>

#include "schedule/token_sim.h"
#include "sdf/gain.h"
#include "sdf/min_buffer.h"
#include "sdf/topology.h"
#include "util/error.h"
#include "util/int_math.h"

namespace ccs::schedule {

std::int64_t compute_batch_t(const sdf::SdfGraph& g, const PartitionedOptions& options) {
  CCS_EXPECTS(options.m > 0 && options.t_multiplier > 0, "invalid batch options");
  const sdf::GainMap gains(g);

  // Divisibility: T * gain(e) must be an integer multiple of lcm(out, in).
  std::int64_t t0 = 1;
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    const Rational& ge = gains.edge_gain(e);
    const std::int64_t le = checked_lcm(edge.out_rate, edge.in_rate);
    const std::int64_t need =
        checked_mul(ge.den(), le) / gcd64(ge.num(), checked_mul(ge.den(), le));
    t0 = checked_lcm(t0, need);
  }
  // Magnitude: T * gain(e) >= m * multiplier on every edge.
  const std::int64_t floor_tokens = checked_mul(options.m, options.t_multiplier);
  std::int64_t t_min = 1;
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const Rational& ge = gains.edge_gain(e);
    const Rational needed = Rational(floor_tokens) / ge;
    t_min = std::max(t_min, needed.ceil());
  }
  return checked_mul(t0, ceil_div(t_min, t0));
}

Schedule partitioned_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                              const PartitionedOptions& options) {
  const auto problems = partition::validate_partition(g, p);
  if (!problems.empty()) throw Error("invalid partition: " + problems.front());
  if (!partition::is_well_ordered(g, p)) {
    throw Error("partitioned scheduling requires a well-ordered partition");
  }
  const partition::Partition topo_p = partition::renumber_topological(g, p);
  const sdf::GainMap gains(g);
  const std::int64_t t = compute_batch_t(g, options);

  Schedule out;
  out.name = "partitioned";
  out.inputs_per_period = t;

  // Buffers: exact batch traffic on cross edges, minimal feasible inside.
  const auto internal_caps = sdf::feasible_buffers(g);
  out.buffer_caps.resize(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    if (topo_p.comp(edge.src) != topo_p.comp(edge.dst)) {
      const Rational batch_tokens = gains.edge_gain(e) * Rational(t);
      CCS_CHECK(batch_tokens.is_integer(), "T was chosen to make batch traffic integral");
      out.buffer_caps[static_cast<std::size_t>(e)] = batch_tokens.num();
    } else {
      out.buffer_caps[static_cast<std::size_t>(e)] = internal_caps[static_cast<std::size_t>(e)];
    }
  }

  // Per-batch firing target of every module: T * gain(v).
  std::vector<std::int64_t> target(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    const Rational f = gains.node_gain(v) * Rational(t);
    CCS_CHECK(f.is_integer(), "T was chosen to make firing counts integral");
    target[static_cast<std::size_t>(v)] = f.num();
  }

  // Generate one batch: components in topological order; inside a component,
  // repeated topological sweeps with maximal batching until every member
  // reaches its target. Pre-stocked inputs + exact-capacity outputs mean a
  // sweep that makes no progress indicates a real infeasibility.
  const auto comps = topo_p.components();
  const auto global_topo = sdf::topological_sort(g);
  TokenSim sim(g, out.buffer_caps);

  for (const auto& comp_nodes : comps) {
    // Sweep order = global topological order restricted to this component.
    std::vector<sdf::NodeId> order;
    order.reserve(comp_nodes.size());
    for (const sdf::NodeId v : global_topo) {
      if (topo_p.comp(v) == topo_p.comp(comp_nodes.front())) order.push_back(v);
    }
    std::int64_t outstanding = 0;
    for (const sdf::NodeId v : order) {
      outstanding += target[static_cast<std::size_t>(v)] - sim.fired(v);
    }
    while (outstanding > 0) {
      bool progressed = false;
      for (const sdf::NodeId v : order) {
        const std::int64_t want = target[static_cast<std::size_t>(v)] - sim.fired(v);
        if (want <= 0) continue;
        const std::int64_t batch = sim.max_batch(v, want);
        if (batch <= 0) continue;
        sim.fire(v, batch);
        out.period.insert(out.period.end(), static_cast<std::size_t>(batch), v);
        outstanding -= batch;
        progressed = true;
      }
      if (!progressed) {
        throw DeadlockError("component could not complete its batch share");
      }
    }
  }
  CCS_ENSURES(sim.drained(), "a full batch must drain every channel");
  out.outputs_per_period = sim.fired(g.sinks().front());
  return out;
}

}  // namespace ccs::schedule
