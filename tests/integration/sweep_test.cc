// Parameterized grids over scheduler knobs: every (c-bound, T-multiplier,
// B) combination must yield a valid, lower-bound-respecting plan, and the
// classified miss counters must stay coherent across the whole app suite.
#include <gtest/gtest.h>

#include <tuple>

#include "core/scheduler.h"
#include "schedule/validate.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace ccs {
namespace {

class PlannerGrid
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t, std::int64_t>> {};

TEST_P(PlannerGrid, PlansValidateAndSimulate) {
  const auto [c_bound, t_mult, b] = GetParam();
  const auto g = workloads::uniform_pipeline(16, 200);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = b;
  opts.c_bound = c_bound;
  opts.t_multiplier = t_mult;
  const auto plan = core::plan(g, opts);

  EXPECT_TRUE(partition::is_well_ordered(g, plan.partition));
  EXPECT_LE(partition::max_component_state(g, plan.partition),
            static_cast<std::int64_t>(c_bound * 512.0));
  const auto report = schedule::check_schedule(g, plan.schedule);
  EXPECT_TRUE(report.ok) << report.problem;
  EXPECT_GE(plan.batch_t, 512 * t_mult);  // T >= M * multiplier for unit gains

  const auto r = core::simulate(g, plan.schedule,
                                iomodel::CacheConfig{8 * 512, b},
                                plan.schedule.outputs_per_period);
  EXPECT_EQ(r.state_misses + r.channel_misses + r.io_misses, r.cache.misses);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlannerGrid,
    ::testing::Combine(::testing::Values(1.0, 2.0, 3.0),
                       ::testing::Values<std::int64_t>(1, 2),
                       ::testing::Values<std::int64_t>(4, 16)));

class SuiteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteSweep, EveryAppPlansAndClassifiesCoherently) {
  const auto suite = workloads::streamit_suite();
  ASSERT_LT(GetParam(), suite.size());
  const auto& app = suite[GetParam()];
  const auto& g = app.graph;
  core::PlannerOptions opts;
  opts.cache.capacity_words = std::max<std::int64_t>(g.max_state(), g.total_state() / 4);
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok) << app.name;
  const auto r = core::simulate(g, plan.schedule,
                                iomodel::CacheConfig{4 * opts.cache.capacity_words, 8},
                                plan.schedule.outputs_per_period);
  EXPECT_EQ(r.state_misses + r.channel_misses + r.io_misses, r.cache.misses) << app.name;
  EXPECT_GT(r.sink_firings, 0) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, SuiteSweep,
                         ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace ccs
