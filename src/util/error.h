// Error hierarchy for the ccs library.
//
// Contract violations (programming errors) throw ccs::ContractViolation; the
// exceptions below report *input* problems -- malformed graphs, infeasible
// schedules, deadlocks -- that a caller can meaningfully catch and handle.
#pragma once

#include <stdexcept>
#include <string>

namespace ccs {

/// Base class for all recoverable ccs errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A structurally invalid streaming graph (cycles, dangling edges, bad ids).
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

/// A graph whose rates are inconsistent (not rate matched) or non-positive.
class RateError : public Error {
 public:
  explicit RateError(const std::string& what) : Error(what) {}
};

/// A schedule that violates firing rules (buffer underflow/overflow).
class ScheduleError : public Error {
 public:
  explicit ScheduleError(const std::string& what) : Error(what) {}
};

/// Execution can make no progress (insufficient buffers or circular waits).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Invalid cache/memory configuration or layout overflow.
class MemoryError : public Error {
 public:
  explicit MemoryError(const std::string& what) : Error(what) {}
};

/// Arithmetic overflow in exact rational/integer computations.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed textual graph description.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace ccs
