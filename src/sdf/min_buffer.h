// Minimum channel buffer sizes (the paper's minBuf(e), via [17]).
//
// Two results are provided:
//  * edge_min_buffer(p, c): the classical per-edge lower bound
//    p + c - gcd(p, c) -- the smallest capacity under which a producer with
//    rate p and consumer with rate c can sustain a periodic schedule when
//    the edge is considered in isolation.
//  * feasible_buffers(g): a per-edge capacity assignment under which at
//    least one full steady-state iteration of the *whole graph* completes
//    without deadlock. Per-edge minima are not always jointly sufficient in
//    dags with reconvergent paths, so this routine starts from the lower
//    bounds and grows blocked channels until a demand-driven simulation of
//    one iteration succeeds. Growth is bounded by the per-iteration token
//    count of each edge, so the procedure always terminates.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace ccs::sdf {

/// Minimum capacity of a lone channel with production rate p, consumption
/// rate c: p + c - gcd(p, c). For homogeneous edges this is 1... + 1 - 1 = 1,
/// matching the paper's pipeline/homogeneous observation that
/// minBuf is O(in + out).
std::int64_t edge_min_buffer(std::int64_t out_rate, std::int64_t in_rate);

/// Per-edge buffer capacities sufficient to complete one steady-state
/// iteration, found by iterative relaxation from the per-edge lower bounds.
/// The returned vector is indexed by EdgeId. Requires an acyclic,
/// rate-matched graph (throws GraphError/RateError otherwise).
std::vector<std::int64_t> feasible_buffers(const SdfGraph& g);

/// Total words needed by the buffers of all edges internal to the node set
/// `member` (member[v] true for modules in the component), using the
/// capacities in `buf`.
std::int64_t internal_buffer_total(const SdfGraph& g, const std::vector<bool>& member,
                                   const std::vector<std::int64_t>& buf);

}  // namespace ccs::sdf
