// Compatibility shim: the contract layer moved to util/contract.h when the
// audit mode (CCS_AUDIT) was added. Existing includes keep working; new code
// should include "util/contract.h" directly.
#pragma once

#include "util/contract.h"
