// Runtime contract checking (C++ Core Guidelines I.6 / I.8 style) plus the
// heavy-audit layer behind the repo's correctness-tooling matrix.
//
// Always-on macros (enabled in every build type, including Release -- this
// library is a research artifact whose correctness claims matter more than
// the last few percent of simulator throughput):
//   CCS_EXPECTS(cond, msg)  -- precondition at an API boundary
//   CCS_ENSURES(cond, msg)  -- postcondition at an API boundary
//   CCS_CHECK(cond, msg)    -- internal invariant
//   CCS_ASSERT(cond, msg)   -- cheap (O(1)) sanity check on a hot path
//
// CCS_ASSERT is for checks cheap enough to keep in the hottest loops: a
// bounds comparison, a sign check. Anything that walks a data structure
// belongs in CCS_AUDIT instead.
//
// Audit-mode macros (compiled in only when the build enables
// -DCCS_AUDIT=ON, which defines CCS_AUDIT_ENABLED):
//   CCS_AUDIT(cond, msg)    -- heavy invariant, e.g. an O(n) structure walk
//   CCS_AUDIT_BLOCK(stmts)  -- statement block that exists only under audit,
//                              for walks that need locals or loops
//   ccs::kAuditEnabled      -- constexpr flag for `if constexpr` gating
//
// Audit checks cross-validate whole structures: the LRU slab/table/recency
// planes agree, a sharded cache's per-stripe counters are self-consistent,
// an engine's channel credits never go negative, a swap image unpacks back
// to the exact snapshot that was packed. The Audit CI configuration runs
// the full test suite with every heavy check live; production builds pay
// nothing for them.
//
// All failures throw ccs::ContractViolation naming the kind, condition,
// and location.
#pragma once

#include <stdexcept>
#include <string>

namespace ccs {

/// Thrown when a CCS_EXPECTS / CCS_ENSURES / CCS_CHECK / CCS_ASSERT /
/// CCS_AUDIT contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* cond, const char* file,
                                int line, const std::string& msg);
}  // namespace detail

#define CCS_CONTRACT_IMPL(kind, cond, msg)                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ccs::detail::contract_fail(kind, #cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (false)

#define CCS_EXPECTS(cond, msg) CCS_CONTRACT_IMPL("precondition", cond, msg)
#define CCS_ENSURES(cond, msg) CCS_CONTRACT_IMPL("postcondition", cond, msg)
#define CCS_CHECK(cond, msg) CCS_CONTRACT_IMPL("invariant", cond, msg)
#define CCS_ASSERT(cond, msg) CCS_CONTRACT_IMPL("assertion", cond, msg)

#ifdef CCS_AUDIT_ENABLED
inline constexpr bool kAuditEnabled = true;
#define CCS_AUDIT(cond, msg) CCS_CONTRACT_IMPL("audit", cond, msg)
#define CCS_AUDIT_BLOCK(...) \
  do {                       \
    __VA_ARGS__              \
  } while (false)
#else
inline constexpr bool kAuditEnabled = false;
#define CCS_AUDIT(cond, msg) ((void)0)
#define CCS_AUDIT_BLOCK(...) ((void)0)
#endif

}  // namespace ccs
