// Quickstart: build a streaming pipeline, let the cache-conscious scheduler
// plan it, and compare its simulated cache misses against a naive schedule.
//
//   $ ./quickstart [--cache-words=512] [--block-words=8] [--outputs=4096]
//
// This walks the full public API surface in ~60 lines:
//   sdf::SdfGraph        -- describe the application
//   core::Planner        -- session: validate once, partition + schedule +
//                           predictions per call
//   core::simulate       -- run any schedule on the simulated cache
//   schedule::Registry   -- baseline schedulers by name

#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "schedule/registry.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("quickstart", "plan and simulate a simple pipeline");
  args.add_int("cache-words", 512, "cache size M in words");
  args.add_int("block-words", 8, "block size B in words");
  args.add_int("outputs", 4096, "sink firings to simulate");
  try {
    if (!args.parse(argc, argv)) return 0;

    // An 12-stage pipeline of 200-word filters: 2400 words of state, far
    // more than the 512-word cache -- the regime the paper is about.
    sdf::SdfGraph g;
    sdf::NodeId prev = g.add_node("source", 200);
    for (int i = 1; i < 11; ++i) {
      const sdf::NodeId cur = g.add_node("filter" + std::to_string(i), 200);
      g.add_edge(prev, cur, 1, 1);
      prev = cur;
    }
    const sdf::NodeId sink = g.add_node("sink", 200);
    g.add_edge(prev, sink, 1, 1);

    core::PlannerOptions opts;
    opts.cache.capacity_words = args.get_int("cache-words");
    opts.cache.block_words = args.get_int("block-words");

    // The Planner validates the graph and cache geometry once at
    // construction; plan() picks a partitioner ("auto" here: the pipeline
    // DP) and builds the two-level schedule plus its cost prediction.
    const core::Planner planner(g, opts);
    const core::Plan plan = planner.plan();
    std::cout << core::explain(g, plan) << "\n";

    // Simulate on a constant-factor larger cache (Theorem 5's augmentation).
    const iomodel::CacheConfig sim{4 * opts.cache.capacity_words, opts.cache.block_words};
    const std::int64_t outputs = args.get_int("outputs");
    const auto naive = schedule::Registry::global().build(
        "naive", g, {opts.cache.capacity_words, opts.cache.block_words});
    const auto r_part = core::simulate(g, plan.schedule, sim, outputs);
    const auto r_naive = core::simulate(g, naive, sim, outputs);

    Table t("cache misses for " + std::to_string(outputs) + " outputs, M=" +
            std::to_string(sim.capacity_words) + " B=" + std::to_string(sim.block_words));
    t.set_header({"scheduler", "misses", "misses/output", "speedup"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
    t.add_row({naive.name, Table::num(r_naive.cache.misses),
               Table::num(r_naive.misses_per_output(), 3), "1.0x"});
    t.add_row({plan.schedule.name, Table::num(r_part.cache.misses),
               Table::num(r_part.misses_per_output(), 3),
               Table::ratio(r_naive.misses_per_output() / r_part.misses_per_output(), 1)});
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
