#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "schedule/naive.h"
#include "schedule/validate.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::core {
namespace {

PlannerOptions small_cache() {
  PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  return opts;
}

TEST(Planner, AutoPicksPipelineDpForPipelines) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto plan = core::plan(g, small_cache());
  EXPECT_EQ(plan.partitioner_name, "pipeline-dp");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
  EXPECT_GT(plan.batch_t, 0);
}

TEST(Planner, AutoPicksExactForSmallDags) {
  Rng rng(71);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 50;
  spec.state_hi = 120;
  const auto g = layered_homogeneous_dag(spec, rng);
  const auto plan = core::plan(g, small_cache());
  EXPECT_EQ(plan.partitioner_name, "exact");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
}

TEST(Planner, AutoPicksRefinedForLargeDags) {
  const auto g = ccs::workloads::fm_radio(10);  // 25 nodes > exact threshold
  auto opts = small_cache();
  opts.cache.capacity_words = 1024;
  const auto plan = core::plan(g, opts);
  EXPECT_EQ(plan.partitioner_name, "dag-refined");
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);
}

TEST(Planner, AllExplicitPartitionersWork) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  for (const auto kind :
       {PartitionerKind::kPipelineDp, PartitionerKind::kPipelineGreedy,
        PartitionerKind::kDagGreedy, PartitionerKind::kDagGreedyGain,
        PartitionerKind::kDagRefined, PartitionerKind::kExact}) {
    auto opts = small_cache();
    opts.partitioner = kind;
    const auto plan = core::plan(g, opts);
    EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok)
        << "partitioner " << static_cast<int>(kind);
    EXPECT_TRUE(partition::is_well_ordered(g, plan.partition));
  }
}

TEST(Planner, RejectsInvalidGraphs) {
  sdf::SdfGraph empty;
  EXPECT_THROW(core::plan(empty, small_cache()), GraphError);

  sdf::SdfGraph oversized;
  oversized.add_node("a", 100000);
  oversized.add_node("b", 8);
  oversized.add_edge(0, 1, 1, 1);
  EXPECT_THROW(core::plan(oversized, small_cache()), GraphError);
}

TEST(Planner, RejectsRateMismatchedGraph) {
  // Diamond with inconsistent rates: the b->d and c->d edges demand
  // different repetition counts for d, so no repetition vector exists.
  // validate_or_throw aggregates all problems into one GraphError.
  sdf::SdfGraph g;
  const auto a = g.add_node("a", 8);
  const auto b = g.add_node("b", 8);
  const auto c = g.add_node("c", 8);
  const auto d = g.add_node("d", 8);
  g.add_edge(a, b, 1, 1);
  g.add_edge(a, c, 1, 1);
  g.add_edge(b, d, 1, 1);
  g.add_edge(c, d, 2, 1);
  EXPECT_THROW(core::plan(g, small_cache()), GraphError);
}

TEST(Planner, RejectsZeroCapacityCache) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  auto opts = small_cache();
  opts.cache.capacity_words = 0;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
  opts.cache.capacity_words = -64;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
  // A cache smaller than one block is equally degenerate.
  opts.cache.capacity_words = 4;
  opts.cache.block_words = 8;
  EXPECT_THROW(core::plan(g, opts), MemoryError);
}

TEST(Simulate, RejectsZeroCapacityCache) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{0, 8}, 100),
               MemoryError);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 0}, 100),
               MemoryError);
}

TEST(Simulate, RejectsNonPositiveOutputTarget) {
  const auto g = ccs::workloads::uniform_pipeline(4, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 8}, 0),
               ContractViolation);
}

TEST(Planner, PredictionPopulated) {
  const auto g = ccs::workloads::uniform_pipeline(12, 200);
  const auto plan = core::plan(g, small_cache());
  EXPECT_GT(plan.predicted.misses_per_input, 0.0);
  EXPECT_GE(plan.partition_bandwidth, Rational(0));
}

TEST(Simulate, ReachesOutputTarget) {
  const auto g = ccs::workloads::uniform_pipeline(8, 64);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  const auto r = core::simulate(g, s, iomodel::CacheConfig{512, 8}, 500);
  EXPECT_GE(r.sink_firings, 500);
  EXPECT_GT(r.cache.misses, 0);
}

TEST(Simulate, PartitionedBeatsNaiveWhenStateExceedsCache) {
  // 16 modules x 200 words = 3200 words total state against a 512-word
  // cache: naive reloads everything every iteration, partitioned amortizes.
  const auto g = ccs::workloads::uniform_pipeline(16, 200);
  const auto opts = small_cache();
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  // Partitioned runs on the augmented cache (c * M), per Theorem 5's
  // memory-augmentation guarantee; naive gets the same augmented cache.
  const iomodel::CacheConfig sim_cache{4 * opts.cache.capacity_words,
                                       opts.cache.block_words};
  const std::int64_t target = 4096;
  const auto r_part = core::simulate(g, plan.schedule, sim_cache, target);
  const auto r_naive = core::simulate(g, naive, sim_cache, target);
  EXPECT_LT(r_part.misses_per_output() * 2, r_naive.misses_per_output());
}

TEST(Simulate, MergeAccumulates) {
  runtime::RunResult a;
  a.cache.misses = 10;
  a.firings = 5;
  a.node_misses = {1, 2};
  runtime::RunResult b;
  b.cache.misses = 7;
  b.firings = 3;
  b.node_misses = {4, 4};
  const auto m = core::merge(a, b);
  EXPECT_EQ(m.cache.misses, 17);
  EXPECT_EQ(m.firings, 8);
  EXPECT_EQ(m.node_misses, (std::vector<std::int64_t>{5, 6}));
}

TEST(Planner, ExplainMentionsEveryComponentAndModule) {
  const auto g = ccs::workloads::uniform_pipeline(8, 200);
  const auto plan = core::plan(g, small_cache());
  const auto text = core::explain(g, plan);
  EXPECT_NE(text.find("partitioner : pipeline-dp"), std::string::npos);
  EXPECT_NE(text.find("batch T"), std::string::npos);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_NE(text.find(g.node(v).name), std::string::npos) << g.node(v).name;
  }
  for (std::int32_t c = 0; c < plan.partition.num_components; ++c) {
    EXPECT_NE(text.find("V" + std::to_string(c)), std::string::npos);
  }
}

TEST(Simulate, MeasuredCostNearPrediction) {
  const auto g = ccs::workloads::uniform_pipeline(16, 200);
  const auto opts = small_cache();
  const auto plan = core::plan(g, opts);
  const iomodel::CacheConfig sim_cache{4 * opts.cache.capacity_words,
                                       opts.cache.block_words};
  const auto r = core::simulate(g, plan.schedule, sim_cache, 2048);
  const double measured = r.misses_per_input();
  const double predicted = plan.predicted.misses_per_input;
  // Same order of magnitude: the model ignores external IO and cold misses.
  EXPECT_LT(measured, predicted * 4 + 1.0);
  EXPECT_GT(measured * 8, predicted);
}

}  // namespace
}  // namespace ccs::core
