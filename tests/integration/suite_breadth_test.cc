// Breadth sweeps across the full application suite: every auxiliary
// facility (stats, DOT, schedule serialization, hierarchy equivalences)
// must handle every workload, not just the ones its unit tests picked.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "iomodel/hierarchy.h"
#include "partition/dag_greedy.h"
#include "partition/dot.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "schedule/serialize.h"
#include "schedule/validate.h"
#include "sdf/graph_stats.h"
#include "sdf/serialize.h"
#include "workloads/streamit.h"

namespace ccs {
namespace {

class AppSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  const workloads::NamedGraph& app() const {
    static const auto suite = workloads::streamit_suite();
    return suite[GetParam()];
  }
};

TEST_P(AppSweep, StatsAreInternallyConsistent) {
  const auto& g = app().graph;
  const auto stats = sdf::compute_stats(g);
  EXPECT_EQ(stats.nodes, g.node_count());
  EXPECT_EQ(stats.edges, g.edge_count());
  EXPECT_EQ(stats.total_state, g.total_state());
  EXPECT_GE(stats.depth, 2);
  EXPECT_GE(stats.width, 1);
  EXPECT_LE(stats.width, stats.nodes);
  EXPECT_LE(stats.min_edge_gain, stats.max_edge_gain);
  EXPECT_EQ(stats.pipeline, g.is_pipeline());
  EXPECT_EQ(stats.homogeneous, g.is_homogeneous());
}

TEST_P(AppSweep, DotExportMentionsEveryModule) {
  const auto& g = app().graph;
  const auto p = partition::dag_greedy_partition(g, std::max<std::int64_t>(
                                                        g.total_state() / 3, g.max_state()));
  const auto dot = partition::to_dot(g, p);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_NE(dot.find('"' + g.node(v).name + '"'), std::string::npos)
        << app().name << " / " << g.node(v).name;
  }
}

TEST_P(AppSweep, GraphSerializationRoundTrips) {
  const auto& g = app().graph;
  const auto parsed = sdf::from_text(sdf::to_text(g));
  EXPECT_EQ(parsed.node_count(), g.node_count());
  EXPECT_EQ(parsed.edge_count(), g.edge_count());
  EXPECT_EQ(sdf::to_text(parsed), sdf::to_text(g));  // canonical form is a fixpoint
}

TEST_P(AppSweep, ScheduleSerializationRoundTrips) {
  const auto& g = app().graph;
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  const auto parsed = schedule::from_text(g, schedule::to_text(g, s));
  EXPECT_EQ(parsed.period, s.period);
  EXPECT_TRUE(schedule::check_schedule(g, parsed).ok) << app().name;
}

TEST_P(AppSweep, SingleLevelHierarchyMatchesFlatLru) {
  const auto& g = app().graph;
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  const std::int64_t words = std::max<std::int64_t>(2 * g.max_state(), 1024);

  iomodel::LruCache flat(iomodel::CacheConfig{words, 8});
  runtime::Engine flat_engine(g, s.buffer_caps, flat);
  const auto flat_run = flat_engine.run(s.period);

  iomodel::HierarchyCache stacked({words}, 8);
  runtime::Engine stacked_engine(g, s.buffer_caps, stacked);
  const auto stacked_run = stacked_engine.run(s.period);

  EXPECT_EQ(flat_run.cache.misses, stacked_run.cache.misses) << app().name;
}

TEST_P(AppSweep, DeeperLevelsMissLess) {
  const auto& g = app().graph;
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  iomodel::HierarchyCache cache({256, 1024, 8192}, 8);
  runtime::Engine engine(g, s.buffer_caps, cache);
  (void)engine.run(s.period);
  EXPECT_LE(cache.level_stats(1).misses, cache.level_stats(0).misses) << app().name;
  EXPECT_LE(cache.level_stats(2).misses, cache.level_stats(1).misses) << app().name;
}

INSTANTIATE_TEST_SUITE_P(Apps, AppSweep, ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace ccs
