#!/usr/bin/env python3
"""Merge every BENCH_PR*.json into one wall-clock perf trajectory.

Each PR records its benchmark evidence in a BENCH_PR<N>.json at the repo
root; shapes differ by era (PR2/PR3 are hand-rolled summaries, PR4+ are raw
google-benchmark --benchmark_format=json dumps). This script normalizes all
of them into one long-format table -- one row per (pr, benchmark, metric) --
and emits it as CSV plus a grouped markdown report, so CI can publish the
whole perf trajectory as a single artifact on every run.

Parsing is strict on purpose: a BENCH file that fails to parse, or whose
shape is not one this script knows, is a hard error (nonzero exit), not a
silent skip -- a trajectory with holes reads as "this PR had no perf story"
when it actually recorded one.

Usage:
    python3 bench/trajectory.py [--root DIR] [--csv OUT.csv] [--markdown OUT.md]

With no output flags, prints the markdown report to stdout. Exits 0 only if
every BENCH_PR*.json parsed and normalized.
"""

import argparse
import csv
import glob
import json
import os
import re
import sys

COLUMNS = ["pr", "source", "benchmark", "metric", "value", "unit", "note"]

# google-benchmark appends run modifiers to names (BM_x/iterations:1,
# BM_x/repeats:3, BM_x/real_time, ...), and PRs recorded the same family
# with different modifiers across eras.  Strip them so one benchmark forms
# ONE cross-PR series instead of several singletons.
RUN_MODIFIER_RE = re.compile(
    r"/(?:iterations|repeats|min_time|min_warmup_time|threads):[^/]+"
    r"|/(?:real_time|process_time|manual_time)\b"
)


def normalize_benchmark_name(name):
    return RUN_MODIFIER_RE.sub("", name)


class TrajectoryError(Exception):
    """A BENCH file that exists but cannot be read or understood."""


def rows_from_google_benchmark(pr, source, doc):
    """Raw google-benchmark dump: keep median aggregates (or plain rows when
    a family has no aggregates), one row per recorded throughput/time."""
    rows = []
    benches = doc["benchmarks"]
    has_aggregates = any(b.get("run_type") == "aggregate" for b in benches)
    for b in benches:
        if has_aggregates and b.get("aggregate_name") != "median":
            continue
        name = normalize_benchmark_name(b.get("run_name") or b["name"])
        label = b.get("label", "")
        if b.get("items_per_second") is not None:
            rows.append([pr, source, name, "items_per_second",
                         float(b["items_per_second"]), "items/s", label])
        if b.get("real_time") is not None:
            rows.append([pr, source, name, "real_time_median",
                         float(b["real_time"]), b.get("time_unit", "ns"), label])
        for counter in ("model_throughput", "misses_per_output", "speedup",
                        "p50_steady", "p99_steady", "p50_mixed", "p99_mixed",
                        "tail_gap_x", "p99_round_robin", "p99_affinity",
                        "p99_adaptive", "p95_spread", "p99_spread"):
            if b.get(counter) is not None:
                rows.append([pr, source, name, counter, float(b[counter]), "", label])
    if not rows:
        raise TrajectoryError(f"{source}: google-benchmark dump has no usable rows")
    return rows


def rows_from_pr2(pr, source, doc):
    """PR2 summary: gated before/after items/s pairs per microbenchmark."""
    rows = []
    for name, cell in doc["gated"].items():
        rows.append([pr, source, name, "items_per_second",
                     float(cell["after_items_per_second"]), "items/s", ""])
        rows.append([pr, source, name, "speedup_vs_before",
                     float(cell["speedup"]), "x", ""])
    if not rows:
        raise TrajectoryError(f"{source}: 'gated' table is empty")
    return rows


def rows_from_pr3(pr, source, doc):
    """PR3 summary: sweep wall-clock medians per thread count."""
    rows = []
    for key, seconds in doc["wall_seconds_median"].items():
        rows.append([pr, source, f"experiment_sweep/{key}", "wall_seconds_median",
                     float(seconds), "s", ""])
    for key, speedup in doc.get("speedup_vs_1_thread", {}).items():
        rows.append([pr, source, f"experiment_sweep/{key}", "speedup_vs_1_thread",
                     float(speedup), "x", ""])
    if not rows:
        raise TrajectoryError(f"{source}: 'wall_seconds_median' table is empty")
    return rows


def normalize(path):
    source = os.path.basename(path)
    match = re.match(r"BENCH_PR(\d+)\.json$", source)
    if not match:
        raise TrajectoryError(f"{source}: not a BENCH_PR<N>.json name")
    pr = int(match.group(1))
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise TrajectoryError(f"{source}: failed to parse: {err}") from err
    try:
        if isinstance(doc, dict) and "benchmarks" in doc:
            return rows_from_google_benchmark(pr, source, doc)
        if isinstance(doc, dict) and "gated" in doc:
            return rows_from_pr2(pr, source, doc)
        if isinstance(doc, dict) and "wall_seconds_median" in doc:
            return rows_from_pr3(pr, source, doc)
    except (KeyError, TypeError, ValueError) as err:
        raise TrajectoryError(f"{source}: malformed fields: {err}") from err
    raise TrajectoryError(f"{source}: unrecognized shape "
                          f"(top-level keys: {sorted(doc)[:8] if isinstance(doc, dict) else type(doc).__name__})")


def write_csv(rows, out):
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(COLUMNS)
    writer.writerows(rows)


def write_markdown(rows, out):
    out.write("# Wall-clock perf trajectory\n\n")
    out.write("One row per recorded (PR, benchmark, metric); medians unless "
              "noted. Regenerate with `python3 bench/trajectory.py`.\n")
    by_pr = {}
    for row in rows:
        by_pr.setdefault(row[0], []).append(row)
    for pr in sorted(by_pr):
        out.write(f"\n## PR {pr} ({by_pr[pr][0][1]})\n\n")
        out.write("| benchmark | metric | value | unit | note |\n")
        out.write("|---|---|---:|---|---|\n")
        for _, _, bench, metric, value, unit, note in by_pr[pr]:
            shown = f"{value:,.4g}" if isinstance(value, float) else value
            out.write(f"| {bench} | {metric} | {shown} | {unit} | {note} |\n")

    # Cross-PR series: every (benchmark, metric) measured by two or more
    # PRs, so the actual trajectory -- not just per-PR snapshots -- is
    # visible in one table.
    series = {}
    for pr, _, bench, metric, value, unit, _ in rows:
        series.setdefault((bench, metric, unit), {})[pr] = value
    multi = {k: v for k, v in series.items() if len(v) >= 2}
    out.write("\n## Cross-PR series\n\n")
    if not multi:
        out.write("(no benchmark/metric pair recorded by more than one PR)\n")
        return
    out.write("| benchmark | metric | unit | values by PR |\n")
    out.write("|---|---|---|---|\n")
    for (bench, metric, unit), by in sorted(multi.items()):
        shown = ", ".join(
            f"PR{pr}: {value:,.4g}" if isinstance(value, float) else f"PR{pr}: {value}"
            for pr, value in sorted(by.items())
        )
        out.write(f"| {bench} | {metric} | {unit} | {shown} |\n")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.join(os.path.dirname(__file__), ".."),
                        help="directory holding BENCH_PR*.json (default: repo root)")
    parser.add_argument("--csv", help="write the long-format CSV here")
    parser.add_argument("--markdown", help="write the markdown report here")
    args = parser.parse_args(argv)

    paths = sorted(glob.glob(os.path.join(args.root, "BENCH_PR*.json")),
                   key=lambda p: int(re.search(r"PR(\d+)", os.path.basename(p)).group(1)))
    if not paths:
        print(f"error: no BENCH_PR*.json under {args.root}", file=sys.stderr)
        return 1

    rows, failures = [], []
    for path in paths:
        try:
            rows.extend(normalize(path))
        except TrajectoryError as err:
            failures.append(str(err))
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    if not rows:
        # Belt and braces: every normalize() either returns rows or raises,
        # but an empty merged table must never pass silently -- it would
        # publish a trajectory that says "no PR ever had a perf story".
        print("error: zero data rows after normalizing "
              f"{len(paths)} BENCH files", file=sys.stderr)
        return 1

    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as f:
            write_csv(rows, f)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as f:
            write_markdown(rows, f)
    if not args.csv and not args.markdown:
        write_markdown(rows, sys.stdout)
    covered = sorted({row[0] for row in rows})
    print(f"trajectory: {len(rows)} rows from {len(paths)} files "
          f"(PRs {', '.join(map(str, covered))})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
