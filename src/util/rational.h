// Exact rational arithmetic for stream gains.
//
// The gain of a module is a product of out/in rate ratios along a path from
// the source (Definition 1 of the paper). Partitioning decisions compare and
// sum gains, and the gain-minimizing edge of a pipeline segment must be found
// *exactly*: floating point would mis-rank edges whose gains differ by tiny
// relative amounts after long chains of multiplications. Rational keeps
// int64 numerator/denominator in lowest terms and uses __int128 intermediates
// so products of realistic rate chains cannot silently overflow.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/error.h"

namespace ccs {

// __int128 is a GCC/Clang extension; silence -Wpedantic at the declaration.
__extension__ typedef __int128 Int128;

/// An exact rational number. Always normalized: gcd(num, den) == 1, den > 0.
/// Arithmetic throws ccs::OverflowError if a result cannot be represented in
/// 64 bits after normalization.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Integer value.
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}  // NOLINT

  /// num/den reduced to lowest terms. Throws RateError if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  constexpr std::int64_t num() const noexcept { return num_; }
  constexpr std::int64_t den() const noexcept { return den_; }

  bool is_integer() const noexcept { return den_ == 1; }
  bool is_zero() const noexcept { return num_ == 0; }
  bool is_positive() const noexcept { return num_ > 0; }

  /// Numeric value as double (for reporting only; never for decisions).
  double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Largest integer <= value.
  std::int64_t floor() const noexcept;
  /// Smallest integer >= value.
  std::int64_t ceil() const noexcept;

  /// Multiplicative inverse. Throws RateError when zero.
  Rational reciprocal() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b) noexcept;

  /// "3/4", or "3" when integral.
  std::string to_string() const;

 private:
  static Rational from_i128(Int128 num, Int128 den);

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace ccs
