// Differential property tests for the block-granular bulk cache API.
//
// Two invariants, checked on randomized traces across every cache model:
//  1. Bulk path == per-access reference: access_span / access_blocks must
//     produce exactly the same CacheStats and residency as issuing one
//     access() per touched block, on random spans, streaming scans, and
//     wrapping-ring (channel-shaped) patterns.
//  2. Flat LRU == textbook LRU: the intrusive-slab LruCache must behave
//     bit-identically to a straightforward std::list + std::unordered_map
//     implementation on random word traces with eviction pressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "iomodel/cache.h"
#include "iomodel/hierarchy.h"
#include "iomodel/sharded_cache.h"
#include "iomodel/trace.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace ccs::iomodel {
namespace {

constexpr std::int64_t kBlock = 8;

/// Reference for the bulk API: one access() per block overlapping the span,
/// touching the first covered word of each block (what the runtime did
/// before the bulk API existed).
void reference_span(CacheSim& cache, Addr addr, std::int64_t words, AccessMode mode) {
  if (words <= 0) return;
  const std::int64_t block = cache.config().block_words;
  const Addr last = addr + words - 1;
  for (BlockId b = addr / block; b <= last / block; ++b) {
    cache.access(std::max(addr, b * block), mode);
  }
}

void expect_stats_eq(const CacheStats& a, const CacheStats& b, const std::string& where) {
  EXPECT_EQ(a.accesses, b.accesses) << where;
  EXPECT_EQ(a.hits, b.hits) << where;
  EXPECT_EQ(a.misses, b.misses) << where;
  EXPECT_EQ(a.writebacks, b.writebacks) << where;
}

struct CachePair {
  std::string name;
  std::unique_ptr<CacheSim> bulk;
  std::unique_ptr<CacheSim> ref;
};

std::vector<CachePair> make_pairs(std::int64_t capacity_words) {
  std::vector<CachePair> pairs;
  pairs.push_back({"lru", std::make_unique<LruCache>(CacheConfig{capacity_words, kBlock}),
                   std::make_unique<LruCache>(CacheConfig{capacity_words, kBlock})});
  pairs.push_back(
      {"set4", std::make_unique<SetAssociativeCache>(CacheConfig{capacity_words, kBlock}, 4),
       std::make_unique<SetAssociativeCache>(CacheConfig{capacity_words, kBlock}, 4)});
  pairs.push_back(
      {"hier",
       std::make_unique<HierarchyCache>(
           std::vector<std::int64_t>{capacity_words / 4, capacity_words}, kBlock),
       std::make_unique<HierarchyCache>(
           std::vector<std::int64_t>{capacity_words / 4, capacity_words}, kBlock)});
  // One-stripe sharded LRU against a plain flat LruCache reference: the
  // bit-identity contract (same stats, residency, and replacement order)
  // that lets the cluster determinism gates treat llc_shards=1 as a pure
  // code-path change. The bulk side additionally exercises the sharded
  // stripe-walk bulk loop against the flat per-access order.
  pairs.push_back(
      {"sharded1-vs-flat",
       std::make_unique<ShardedLruCache>(CacheConfig{capacity_words, kBlock}, 1),
       std::make_unique<LruCache>(CacheConfig{capacity_words, kBlock})});
  // Four stripes: bulk stripe-walk vs per-access scalar order on the same
  // geometry (per-stripe LRU differs from global LRU, so the reference must
  // be another sharded instance).
  pairs.push_back(
      {"sharded4",
       std::make_unique<ShardedLruCache>(CacheConfig{capacity_words, kBlock}, 4),
       std::make_unique<ShardedLruCache>(CacheConfig{capacity_words, kBlock}, 4)});
  return pairs;
}

void check_residency(const CachePair& pair, Addr max_addr, const std::string& where) {
  for (Addr a = 0; a < max_addr; a += kBlock) {
    ASSERT_EQ(pair.bulk->contains(a), pair.ref->contains(a)) << where << " addr " << a;
  }
}

TEST(BulkAccess, RandomSpansMatchPerAccessReference) {
  for (auto& pair : make_pairs(512)) {  // 64 blocks; heavy eviction pressure
    Rng rng(101);
    const Addr space = 4096;
    for (int step = 0; step < 3000; ++step) {
      const std::int64_t words = rng.uniform(0, 100);
      const Addr addr = rng.uniform(0, space - 1);
      const AccessMode mode = rng.bernoulli(0.3) ? AccessMode::kWrite : AccessMode::kRead;
      pair.bulk->access_span(addr, words, mode);
      reference_span(*pair.ref, addr, words, mode);
    }
    expect_stats_eq(pair.bulk->stats(), pair.ref->stats(), pair.name + " random spans");
    check_residency(pair, space + 128, pair.name + " random spans");
  }
}

TEST(BulkAccess, StreamingScanMatchesPerAccessReference) {
  for (auto& pair : make_pairs(256)) {
    Addr a = 3;  // deliberately unaligned
    for (int step = 0; step < 2000; ++step) {
      pair.bulk->access_span(a, 37, AccessMode::kWrite);
      reference_span(*pair.ref, a, 37, AccessMode::kWrite);
      a += 37;
    }
    pair.bulk->flush();
    pair.ref->flush();
    expect_stats_eq(pair.bulk->stats(), pair.ref->stats(), pair.name + " streaming");
  }
}

TEST(BulkAccess, WrappingRingMatchesPerAccessReference) {
  // Replay a channel-shaped pattern: pushes and pops against a ring whose
  // spans split in two at the wrap point, exactly as runtime::Channel
  // issues them.
  const std::int64_t ring_cap = 50;  // not block-aligned on purpose
  const Addr base = 13;
  for (auto& pair : make_pairs(256)) {
    Rng rng(202);
    std::int64_t head = 0, size = 0;
    auto ring_touch = [&](CacheSim& cache, bool bulk, std::int64_t offset,
                          std::int64_t count, AccessMode mode) {
      const std::int64_t run = std::min(count, ring_cap - offset);
      if (bulk) {
        if (run > 0) cache.access_span(base + offset, run, mode);
        if (count > run) cache.access_span(base, count - run, mode);
      } else {
        reference_span(cache, base + offset, run, mode);
        if (count > run) reference_span(cache, base, count - run, mode);
      }
    };
    for (int step = 0; step < 4000; ++step) {
      if (rng.bernoulli(0.5)) {
        const std::int64_t n = rng.uniform(0, ring_cap - size);
        ring_touch(*pair.bulk, true, (head + size) % ring_cap, n, AccessMode::kWrite);
        ring_touch(*pair.ref, false, (head + size) % ring_cap, n, AccessMode::kWrite);
        size += n;
      } else {
        const std::int64_t n = rng.uniform(0, size);
        ring_touch(*pair.bulk, true, head, n, AccessMode::kRead);
        ring_touch(*pair.ref, false, head, n, AccessMode::kRead);
        head = (head + n) % ring_cap;
        size -= n;
      }
    }
    expect_stats_eq(pair.bulk->stats(), pair.ref->stats(), pair.name + " ring");
    check_residency(pair, base + ring_cap + kBlock, pair.name + " ring");
  }
}

TEST(BulkAccess, AccessBlocksMatchesBlockLoop) {
  LruCache bulk(CacheConfig{256, kBlock});
  LruCache ref(CacheConfig{256, kBlock});
  Rng rng(303);
  for (int step = 0; step < 2000; ++step) {
    const BlockId first = rng.uniform(0, 200);
    const std::int64_t count = rng.uniform(0, 12);
    const AccessMode mode = rng.bernoulli(0.5) ? AccessMode::kWrite : AccessMode::kRead;
    bulk.access_blocks(first, count, mode);
    for (BlockId b = first; b < first + count; ++b) ref.access(b * kBlock, mode);
  }
  expect_stats_eq(bulk.stats(), ref.stats(), "access_blocks");
  EXPECT_EQ(bulk.resident_blocks(), ref.resident_blocks());
}

TEST(BulkAccess, RecordingCacheRecordsOneAddressPerBlock) {
  LruCache inner(CacheConfig{256, kBlock});
  RecordingCache rec(inner);
  rec.access_span(3, 20, AccessMode::kRead);  // words 3..22: blocks 0,1,2
  EXPECT_EQ(rec.trace(), (std::vector<Addr>{0, 8, 16}));
  EXPECT_EQ(rec.stats().accesses, 3);
  EXPECT_EQ(rec.stats().misses, 3);
}

// --- Flat LRU vs textbook LRU -------------------------------------------

/// The pre-rewrite LruCache, kept as an executable specification.
class TextbookLru {
 public:
  explicit TextbookLru(std::int64_t capacity_blocks) : capacity_(capacity_blocks) {}

  void access(Addr addr, AccessMode mode) {
    ++stats_.accesses;
    const BlockId block = addr / kBlock;
    const auto it = map_.find(block);
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      if (mode == AccessMode::kWrite) it->second->dirty = true;
      return;
    }
    ++stats_.misses;
    if (static_cast<std::int64_t>(lru_.size()) == capacity_) {
      if (lru_.back().dirty) ++stats_.writebacks;
      map_.erase(lru_.back().block);
      lru_.pop_back();
    }
    lru_.push_front(Line{block, mode == AccessMode::kWrite});
    map_[block] = lru_.begin();
  }

  void flush() {
    for (const Line& line : lru_) {
      if (line.dirty) ++stats_.writebacks;
    }
    lru_.clear();
    map_.clear();
  }

  bool contains(Addr addr) const { return map_.count(addr / kBlock) > 0; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Line {
    BlockId block;
    bool dirty;
  };
  std::int64_t capacity_;
  CacheStats stats_;
  std::list<Line> lru_;
  std::unordered_map<BlockId, std::list<Line>::iterator> map_;
};

TEST(FlatLru, MatchesTextbookLruOnRandomTraces) {
  for (const std::int64_t capacity_blocks : {1, 2, 7, 64}) {
    LruCache flat(CacheConfig{capacity_blocks * kBlock, kBlock});
    TextbookLru text(capacity_blocks);
    Rng rng(404 + static_cast<std::uint64_t>(capacity_blocks));
    for (int step = 0; step < 20000; ++step) {
      const Addr a = rng.uniform(0, 4 * capacity_blocks * kBlock);
      const AccessMode mode = rng.bernoulli(0.3) ? AccessMode::kWrite : AccessMode::kRead;
      flat.access(a, mode);
      text.access(a, mode);
      if (step % 4096 == 0) {
        flat.flush();
        text.flush();
      }
    }
    expect_stats_eq(flat.stats(), text.stats(),
                    "capacity " + std::to_string(capacity_blocks));
    for (Addr a = 0; a < 5 * capacity_blocks * kBlock; a += kBlock) {
      ASSERT_EQ(flat.contains(a), text.contains(a)) << "addr " << a;
    }
  }
}

TEST(FlatLru, MatchesTextbookThroughBulkSpans) {
  // Drive the flat cache only through the bulk API while the textbook
  // reference sees the equivalent per-block accesses.
  const std::int64_t capacity_blocks = 16;
  LruCache flat(CacheConfig{capacity_blocks * kBlock, kBlock});
  TextbookLru text(capacity_blocks);
  Rng rng(505);
  for (int step = 0; step < 5000; ++step) {
    const Addr addr = rng.uniform(0, 1024);
    const std::int64_t words = rng.uniform(1, 80);
    const AccessMode mode = rng.bernoulli(0.4) ? AccessMode::kWrite : AccessMode::kRead;
    flat.access_span(addr, words, mode);
    const Addr last = addr + words - 1;
    for (BlockId b = addr / kBlock; b <= last / kBlock; ++b) {
      text.access(std::max(addr, b * kBlock), mode);
    }
  }
  expect_stats_eq(flat.stats(), text.stats(), "bulk spans");
}

// --- Contracts -----------------------------------------------------------

TEST(BulkAccessContracts, RejectsSignedOverflow) {
  LruCache cache(CacheConfig{256, kBlock});
  const Addr huge = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(cache.access_range(huge - 2, 10, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_span(huge - 2, 10, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_blocks(huge - 2, 10, AccessMode::kRead), ContractViolation);
  // The last block of the range must still have an addressable first word.
  EXPECT_THROW(cache.access_blocks(huge / kBlock + 1, 1, AccessMode::kRead),
               ContractViolation);
}

TEST(BulkAccessContracts, RejectsNegativeArguments) {
  LruCache cache(CacheConfig{256, kBlock});
  EXPECT_THROW(cache.access_span(-1, 4, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_span(0, -4, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_blocks(-1, 4, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_blocks(0, -4, AccessMode::kRead), ContractViolation);
  EXPECT_THROW(cache.access_range(0, -1, AccessMode::kRead), ContractViolation);
}

TEST(BulkAccessContracts, EmptyRangesAreNoOps) {
  LruCache cache(CacheConfig{256, kBlock});
  cache.access_span(40, 0, AccessMode::kRead);
  cache.access_blocks(5, 0, AccessMode::kRead);
  cache.access_range(40, 0, AccessMode::kRead);
  EXPECT_EQ(cache.stats().accesses, 0);
}

}  // namespace
}  // namespace ccs::iomodel
