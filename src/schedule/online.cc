#include "schedule/online.h"

#include <algorithm>
#include <utility>

#include "sdf/min_buffer.h"
#include "sdf/repetition.h"
#include "sdf/topology.h"
#include "util/error.h"
#include "util/int_math.h"

namespace ccs::schedule {

namespace {

/// Token-count scratchpad for planning: seeded from a view, mutated while a
/// policy simulates a burst, then discarded. Mirrors TokenSim::max_batch /
/// fire arithmetic so planned bursts are exactly what a TokenSim (or the
/// engine) will accept.
class ScratchSim {
 public:
  ScratchSim(const sdf::SdfGraph& g, const std::vector<std::int64_t>& caps)
      : graph_(&g), caps_(&caps) {
    tokens_.resize(static_cast<std::size_t>(g.edge_count()));
  }

  void seed(const EngineView& view) {
    for (sdf::EdgeId e = 0; e < graph_->edge_count(); ++e) {
      tokens_[static_cast<std::size_t>(e)] = view.tokens(e);
    }
  }

  std::int64_t tokens(sdf::EdgeId e) const { return tokens_[static_cast<std::size_t>(e)]; }

  std::int64_t max_batch(sdf::NodeId v, std::int64_t limit) const {
    std::int64_t batch = limit;
    for (const sdf::EdgeId e : graph_->in_edges(v)) {
      batch = std::min(batch, tokens(e) / graph_->edge(e).in_rate);
    }
    for (const sdf::EdgeId e : graph_->out_edges(v)) {
      const std::int64_t space = (*caps_)[static_cast<std::size_t>(e)] - tokens(e);
      batch = std::min(batch, space / graph_->edge(e).out_rate);
    }
    return std::max<std::int64_t>(batch, 0);
  }

  void fire(sdf::NodeId v, std::int64_t count) {
    for (const sdf::EdgeId e : graph_->in_edges(v)) {
      tokens_[static_cast<std::size_t>(e)] -= count * graph_->edge(e).in_rate;
    }
    for (const sdf::EdgeId e : graph_->out_edges(v)) {
      tokens_[static_cast<std::size_t>(e)] += count * graph_->edge(e).out_rate;
    }
  }

 private:
  const sdf::SdfGraph* graph_;
  const std::vector<std::int64_t>* caps_;
  std::vector<std::int64_t> tokens_;
};

/// Section 3's pipeline rule. Cross buffers hold Theta(M); the continuity
/// scan designates the first at-most-half-full cross edge's upstream
/// component (default: the sink's); a designated component runs until its
/// input cross edge empties or its output cross edge fills.
class PipelineHalfFullPolicy final : public OnlinePolicy {
 public:
  PipelineHalfFullPolicy(const sdf::SdfGraph& g, const partition::Partition& p,
                         std::int64_t m)
      : OnlinePolicy("pipeline-half-full", g), reps_(g), scratch_(g, caps_) {
    CCS_EXPECTS(m > 0, "online policy requires a positive cache size");
    chain_ = sdf::pipeline_order(g);  // throws if not a pipeline
    if (!partition::is_well_ordered(g, p)) {
      throw Error("dynamic scheduling requires a well-ordered partition");
    }
    const partition::Partition topo_p = partition::renumber_topological(g, p);
    k_ = topo_p.num_components;
    source_ = chain_.front();
    sink_ = chain_.back();

    // Segments must be contiguous runs of the chain (true for any
    // well-ordered pipeline partition); record each component's member order
    // and its incoming/outgoing cross edge.
    members_.resize(static_cast<std::size_t>(k_));
    for (const sdf::NodeId v : chain_) {
      members_[static_cast<std::size_t>(topo_p.comp(v))].push_back(v);
    }
    for (std::int64_t i = 0; i + 1 < k_; ++i) {
      const sdf::NodeId last = members_[static_cast<std::size_t>(i)].back();
      CCS_CHECK(!g.out_edges(last).empty(), "non-final segment must continue the chain");
      const sdf::EdgeId e = g.out_edges(last).front();
      CCS_CHECK(topo_p.comp(g.edge(e).dst) == i + 1,
                "pipeline partition must be contiguous segments");
      cross_.push_back(e);
    }

    caps_ = sdf::feasible_buffers(g);
    for (const sdf::EdgeId e : cross_) {
      const sdf::Edge& edge = g.edge(e);
      caps_[static_cast<std::size_t>(e)] =
          std::max(m, sdf::edge_min_buffer(edge.out_rate, edge.in_rate) * 2);
    }
  }

  std::int64_t next_component(const EngineView& view) const override {
    // The continuity rule: scan cross edges in order; the first at-most-
    // half-full edge designates its upstream component; if none qualifies,
    // the sink's component runs (its output is always "empty").
    for (std::size_t i = 0; i < cross_.size(); ++i) {
      const sdf::EdgeId e = cross_[i];
      if (view.tokens(e) * 2 <= view.capacity(e)) return static_cast<std::int64_t>(i);
    }
    return k_ - 1;
  }

  StepPlan next_step(const EngineView& view) override {
    StepPlan plan;
    plan.component = next_component(view);
    plan_component(plan.component, view, plan.firings);
    if (!plan.firings.empty()) return plan;
    // The idealized rule assumes an infinite input stream; when arrivals run
    // dry the designated component may be stuck -- push the in-flight tokens
    // through whichever component can still move.
    for (std::int64_t c = 0; c < k_; ++c) {
      plan_component(c, view, plan.firings);
      if (!plan.firings.empty()) {
        plan.component = c;
        return plan;
      }
    }
    plan.component = kNoComponent;
    return plan;
  }

  std::vector<sdf::NodeId> plan_drain(const EngineView& view) override {
    // Align the source on a whole number of steady-state iterations, then
    // greedy-sweep the chain until nothing moves. With enough remaining
    // input credit (a batch driver always has it) this empties every
    // channel; a starved stream drains as far as its arrivals allow.
    const std::int64_t reps_src = reps_.count(source_);
    const std::int64_t fired_src = view.fired(source_);
    const std::int64_t target = ceil_div(fired_src, reps_src) * reps_src;
    std::int64_t allowance = std::min(target - fired_src, view.input_credit());

    std::vector<sdf::NodeId> out;
    scratch_.seed(view);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const sdf::NodeId v : chain_) {
        std::int64_t limit = std::numeric_limits<std::int64_t>::max();
        if (v == source_) {
          limit = allowance;
          if (limit <= 0) continue;
        }
        const std::int64_t batch = scratch_.max_batch(v, limit);
        if (batch > 0) {
          scratch_.fire(v, batch);
          if (v == source_) allowance -= batch;
          out.insert(out.end(), static_cast<std::size_t>(batch), v);
          progressed = true;
        }
      }
    }
    return out;
  }

  std::int64_t batch_credit(std::int64_t min_outputs) const override {
    // Enough steady-state iterations for min_outputs sink firings, plus one
    // so the designated component never starves before the target is met.
    return checked_mul(ceil_div(min_outputs, reps_.count(sink_)) + 1,
                       reps_.count(source_));
  }

 private:
  /// Simulates one run-to-blocking execution of component c from `view`
  /// (the source limited to the remaining input credit), appending the
  /// firings. Leaves `out` untouched when c cannot move at all.
  void plan_component(std::int64_t c, const EngineView& view,
                      std::vector<sdf::NodeId>& out) {
    scratch_.seed(view);
    std::int64_t credit = view.input_credit();
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const sdf::NodeId v : members_[static_cast<std::size_t>(c)]) {
        std::int64_t limit = std::numeric_limits<std::int32_t>::max();
        if (v == source_) {
          limit = credit;
          if (limit <= 0) continue;
        }
        const std::int64_t batch = scratch_.max_batch(v, limit);
        if (batch > 0) {
          scratch_.fire(v, batch);
          if (v == source_ && credit != kUnlimitedCredit) credit -= batch;
          out.insert(out.end(), static_cast<std::size_t>(batch), v);
          progressed = true;
        }
      }
    }
  }

  std::vector<sdf::NodeId> chain_;
  std::vector<sdf::EdgeId> cross_;  ///< cross_[i] = edge from comp i to i+1.
  sdf::RepetitionVector reps_;
  ScratchSim scratch_;
};

/// The asynchronous homogeneous-dag rule: incoming cross buffers full (M
/// tokens), outgoing empty => run M local iterations.
class HomogeneousMBatchPolicy final : public OnlinePolicy {
 public:
  HomogeneousMBatchPolicy(const sdf::SdfGraph& g, const partition::Partition& p,
                          std::int64_t m)
      : OnlinePolicy("homogeneous-m-batch", g), m_(m), scratch_(g, caps_) {
    CCS_EXPECTS(m > 0, "online policy requires a positive cache size");
    if (!g.is_homogeneous()) {
      throw Error("dynamic homogeneous scheduling requires unit rates everywhere");
    }
    if (!partition::is_well_ordered(g, p)) {
      throw Error("dynamic scheduling requires a well-ordered partition");
    }
    const partition::Partition topo_p = partition::renumber_topological(g, p);
    const auto global_topo = sdf::topological_sort(g);
    k_ = topo_p.num_components;
    source_ = g.sources().front();
    sink_ = g.sinks().front();

    members_.resize(static_cast<std::size_t>(k_));
    for (const sdf::NodeId v : global_topo) {
      members_[static_cast<std::size_t>(topo_p.comp(v))].push_back(v);
    }
    comp_ = topo_p.assignment;

    caps_.assign(static_cast<std::size_t>(g.edge_count()), 1);
    for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
      if (comp_of(g.edge(e).src) != comp_of(g.edge(e).dst)) {
        caps_[static_cast<std::size_t>(e)] = m;
      }
    }
  }

  std::int64_t next_component(const EngineView& view) const override {
    for (std::int64_t c = 0; c < k_; ++c) {
      if (schedulable(c, view)) return c;
    }
    return kNoComponent;
  }

  StepPlan next_step(const EngineView& view) override {
    StepPlan plan;
    plan.component = next_component(view);
    if (plan.component == kNoComponent) return plan;
    // Execute = m local iterations, each one topological pass over members
    // (schedulability guarantees the whole burst is feasible).
    const auto& mem = members_[static_cast<std::size_t>(plan.component)];
    plan.firings.reserve(static_cast<std::size_t>(m_) * mem.size());
    for (std::int64_t iter = 0; iter < m_; ++iter) {
      plan.firings.insert(plan.firings.end(), mem.begin(), mem.end());
    }
    return plan;
  }

  std::vector<sdf::NodeId> plan_drain(const EngineView& view) override {
    // Drain component-major (run each component to exhaustion before moving
    // on) so every component's state is loaded O(1) times; the source admits
    // no new inputs while draining.
    std::vector<sdf::NodeId> out;
    scratch_.seed(view);
    bool draining = true;
    while (draining) {
      draining = false;
      for (std::int64_t c = 0; c < k_; ++c) {
        bool progressed = true;
        while (progressed) {
          progressed = false;
          for (const sdf::NodeId v : members_[static_cast<std::size_t>(c)]) {
            if (v == source_) continue;
            const std::int64_t batch =
                scratch_.max_batch(v, std::numeric_limits<std::int64_t>::max());
            if (batch > 0) {
              scratch_.fire(v, batch);
              out.insert(out.end(), static_cast<std::size_t>(batch), v);
              progressed = true;
              draining = true;
            }
          }
        }
      }
    }
    return out;
  }

  std::int64_t batch_credit(std::int64_t) const override {
    // The M-batch rule self-limits: the source component is schedulable only
    // while its outgoing cross buffers are empty, so no cap is needed.
    return kUnlimitedCredit;
  }

 private:
  std::int32_t comp_of(sdf::NodeId v) const { return comp_[static_cast<std::size_t>(v)]; }

  bool schedulable(std::int64_t c, const EngineView& view) const {
    for (const sdf::NodeId v : members_[static_cast<std::size_t>(c)]) {
      for (const sdf::EdgeId e : graph_->in_edges(v)) {
        if (comp_of(graph_->edge(e).src) != c && view.tokens(e) < m_) return false;
      }
      for (const sdf::EdgeId e : graph_->out_edges(v)) {
        if (comp_of(graph_->edge(e).dst) != c && view.tokens(e) != 0) return false;
      }
    }
    // One execution fires the source m_ times; a metered driver must have
    // the arrivals to cover it.
    if (comp_of(source_) == c && view.input_credit() < m_) return false;
    return true;
  }

  std::int64_t m_;
  std::vector<std::int32_t> comp_;  ///< node -> topologically renumbered component.
  ScratchSim scratch_;
};

}  // namespace

std::unique_ptr<OnlinePolicy> make_pipeline_half_full_policy(const sdf::SdfGraph& g,
                                                             const partition::Partition& p,
                                                             std::int64_t m) {
  return std::make_unique<PipelineHalfFullPolicy>(g, p, m);
}

std::unique_ptr<OnlinePolicy> make_homogeneous_m_batch_policy(const sdf::SdfGraph& g,
                                                              const partition::Partition& p,
                                                              std::int64_t m) {
  return std::make_unique<HomogeneousMBatchPolicy>(g, p, m);
}

OnlineRegistry& OnlineRegistry::global() {
  static OnlineRegistry instance;
  static const bool initialized = (register_builtin_online_policies(instance), true);
  (void)initialized;
  return instance;
}

std::vector<std::string> OnlineRegistry::applicable_keys(const sdf::SdfGraph& g) const {
  std::vector<std::string> out;
  for (const std::string& key : keys()) {
    const OnlinePolicyEntry entry = find(key);
    if (!entry.applicable || entry.applicable(g)) out.push_back(key);
  }
  return out;
}

std::unique_ptr<OnlinePolicy> OnlineRegistry::build(const std::string& name,
                                                    const sdf::SdfGraph& g,
                                                    const partition::Partition& p,
                                                    const OnlineContext& ctx) const {
  const std::string resolved = name == "auto" ? resolve_auto_policy(g) : name;
  return find(resolved).build(g, p, ctx);
}

std::string resolve_auto_policy(const sdf::SdfGraph& g) {
  if (g.is_pipeline()) return "pipeline-half-full";
  if (g.is_homogeneous()) return "homogeneous-m-batch";
  throw GraphError(
      "no online rule applies: the graph is neither a pipeline nor homogeneous "
      "(the paper's dynamic schedules cover exactly those classes)");
}

void register_builtin_online_policies(OnlineRegistry& r) {
  r.add("pipeline-half-full",
        {[](const sdf::SdfGraph& g, const partition::Partition& p, const OnlineContext& ctx) {
           return make_pipeline_half_full_policy(g, p, ctx.m);
         },
         [](const sdf::SdfGraph& g) { return g.is_pipeline(); },
         "Section 3 pipeline rule: run the first component whose input cross "
         "buffer is at least half full and output at most half full"});
  r.add("homogeneous-m-batch",
        {[](const sdf::SdfGraph& g, const partition::Partition& p, const OnlineContext& ctx) {
           return make_homogeneous_m_batch_policy(g, p, ctx.m);
         },
         [](const sdf::SdfGraph& g) { return g.is_homogeneous(); },
         "asynchronous homogeneous-dag rule: incoming cross buffers full (M "
         "tokens), outgoing empty => run M local iterations"});
}

}  // namespace ccs::schedule
