// Microbenchmark: partitioner runtime scaling (google-benchmark).
//
// The paper argues partitioning happens at compile time, so even the
// exponential exact solver is acceptable on small graphs. These benches
// put numbers on that: the pipeline DP is quadratic, the greedy linear-ish,
// refinement a few sweeps, exact exponential in width.

#include <benchmark/benchmark.h>

#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace {

using namespace ccs;

void BM_PipelineDp(benchmark::State& state) {
  Rng rng(1);
  const auto g = workloads::random_pipeline(static_cast<std::int32_t>(state.range(0)), 10,
                                            200, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::pipeline_optimal_partition(g, 600));
  }
}
BENCHMARK(BM_PipelineDp)->Arg(32)->Arg(128)->Arg(512);

void BM_PipelineGreedy(benchmark::State& state) {
  Rng rng(2);
  const auto g = workloads::random_pipeline(static_cast<std::int32_t>(state.range(0)), 10,
                                            200, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::pipeline_greedy_partition(g, 200));
  }
}
BENCHMARK(BM_PipelineGreedy)->Arg(32)->Arg(128)->Arg(512);

void BM_DagGreedyGain(benchmark::State& state) {
  Rng rng(3);
  workloads::SeriesParallelSpec spec;
  spec.target_nodes = static_cast<std::int32_t>(state.range(0));
  const auto g = workloads::series_parallel_dag(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::dag_greedy_gain_partition(g, 600));
  }
}
BENCHMARK(BM_DagGreedyGain)->Arg(32)->Arg(128);

void BM_DagRefine(benchmark::State& state) {
  Rng rng(4);
  workloads::SeriesParallelSpec spec;
  spec.target_nodes = static_cast<std::int32_t>(state.range(0));
  const auto g = workloads::series_parallel_dag(spec, rng);
  const auto start = partition::dag_greedy_partition(g, 600);
  partition::RefineOptions opts;
  opts.state_bound = 600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::refine_partition(g, start, opts));
  }
}
BENCHMARK(BM_DagRefine)->Arg(32)->Arg(128);

void BM_DagExact(benchmark::State& state) {
  Rng rng(5);
  workloads::LayeredSpec spec;
  spec.layers = static_cast<std::int32_t>(state.range(0));
  spec.width = 3;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  partition::ExactOptions opts;
  opts.state_bound = 900;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::dag_exact_partition(g, opts));
  }
}
BENCHMARK(BM_DagExact)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
