// E12 -- ablating well-ordering (Definition 2 and footnote 3).
//
// Why must the contracted graph be acyclic? Because a component of a
// non-well-ordered partition cannot execute its batch in isolation: some
// other component must run in between, so the one-load-per-batch schedule
// does not exist. This experiment (a) confirms the scheduler rejects
// non-well-ordered partitions outright, and (b) quantifies the cost of the
// *best* well-ordered partition versus an (invalid) lower-bandwidth
// non-well-ordered cut on a graph engineered to make that gap visible --
// justifying why Definition 2 restricts the partition space.

#include "bench/common.h"
#include "partition/dag_exact.h"
#include "schedule/partitioned.h"
#include "sdf/gain.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;

  // Diamond with heavy endpoints and light middles: grouping {s,t} would
  // minimize raw cut bandwidth but creates a contracted cycle.
  sdf::SdfGraph g;
  const sdf::NodeId s = g.add_node("s", 400);
  const sdf::NodeId x = g.add_node("x", 100);
  const sdf::NodeId y = g.add_node("y", 100);
  const sdf::NodeId t_node = g.add_node("t", 400);
  g.add_edge(s, x, 1, 1);
  g.add_edge(s, y, 4, 4);
  g.add_edge(x, t_node, 1, 1);
  g.add_edge(y, t_node, 4, 4);
  const sdf::GainMap gains(g);

  Table t("E12: well-ordering ablation (diamond, M=512, B=8)");
  t.set_header({"partition", "bandwidth", "well-ordered", "schedulable", "misses/output"});
  t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});

  auto report = [&](const std::string& name, const partition::Partition& p) {
    const auto bw = partition::bandwidth(g, gains, p);
    const bool ordered = partition::is_well_ordered(g, p);
    std::string schedulable = "yes";
    std::string misses = "-";
    try {
      schedule::PartitionedOptions sopts;
      sopts.m = m;
      const auto sched = schedule::partitioned_schedule(g, p, sopts);
      const auto r = bench::run(g, sched, 4 * m, b, 2048);
      misses = Table::num(r.misses_per_output(), 3);
    } catch (const Error&) {
      schedulable = "NO (rejected)";
    }
    t.add_row({name, bw.to_string(), ordered ? "yes" : "no", schedulable, misses});
  };

  // The tempting but illegal cut: endpoints together (bandwidth 2: s->x and
  // x->t cross; s->y, y->t internal... actually s,y,t vs x).
  report("{s,y,t} | {x}  (cycle)",
         partition::Partition::from_components(g, {{s, y, t_node}, {x}}));
  report("{s,t} | {x} | {y}  (cycle)",
         partition::Partition::from_components(g, {{s, t_node}, {x}, {y}}));
  // Legal alternatives.
  report("{s} | {x,y} | {t}",
         partition::Partition::from_components(g, {{s}, {x, y}, {t_node}}));
  report("{s,x,y} | {t}",
         partition::Partition::from_components(g, {{s, x, y}, {t_node}}));
  // What the exact solver picks under the same bound.
  partition::ExactOptions eopts;
  eopts.state_bound = 3 * m;
  const auto exact = partition::dag_exact_partition(g, eopts);
  if (exact.has_value()) report("exact optimum", exact->partition);

  bench::emit(t, argc, argv);
  return 0;
}
