// Gain computation and rate-match verification (Definition 1 of the paper).
//
// gain(v) = number of firings of v per firing of the source, i.e. the
// product of out/in ratios along any source-to-v path. A graph is *rate
// matched* iff every path between a fixed pair of vertices yields the same
// product; this is necessary and sufficient for deadlock-free bounded-buffer
// execution (Lee & Messerschmitt). Gains are exact rationals.
#pragma once

#include <vector>

#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::sdf {

/// Per-node and per-edge gains of a rate-matched graph.
class GainMap {
 public:
  /// Computes gains by propagating from the (unique) source. Throws
  /// GraphError if the graph is empty, cyclic, or has multiple sources;
  /// throws RateError if two paths disagree (not rate matched).
  explicit GainMap(const SdfGraph& g);

  /// gain(v): firings of v per source firing.
  const Rational& node_gain(NodeId v) const {
    CCS_EXPECTS(v >= 0 && v < static_cast<NodeId>(node_gain_.size()), "node id out of range");
    return node_gain_[static_cast<std::size_t>(v)];
  }

  /// gain(u, v) = gain(u) * out(u, v): tokens crossing the edge per source
  /// firing.
  const Rational& edge_gain(EdgeId e) const {
    CCS_EXPECTS(e >= 0 && e < static_cast<EdgeId>(edge_gain_.size()), "edge id out of range");
    return edge_gain_[static_cast<std::size_t>(e)];
  }

  /// The source whose firing rate defines gain 1.
  NodeId source() const noexcept { return source_; }

 private:
  NodeId source_;
  std::vector<Rational> node_gain_;
  std::vector<Rational> edge_gain_;
};

/// True iff all source-to-v paths agree for every v (rate matched). Never
/// throws RateError; structural errors (cycle, no/multiple sources) still
/// throw GraphError.
bool is_rate_matched(const SdfGraph& g);

}  // namespace ccs::sdf
