#include "schedule/schedule.h"

#include "util/contracts.h"
#include "util/int_math.h"

namespace ccs::schedule {

std::int64_t periods_for_outputs(const Schedule& s, std::int64_t target_outputs) {
  CCS_EXPECTS(s.outputs_per_period > 0, "schedule produces no outputs per period");
  CCS_EXPECTS(target_outputs >= 0, "negative output target");
  return ceil_div(target_outputs, s.outputs_per_period);
}

}  // namespace ccs::schedule
