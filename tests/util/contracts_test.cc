#include "util/contracts.h"

#include <gtest/gtest.h>

namespace ccs {
namespace {

TEST(Contracts, PassingCheckIsSilent) {
  EXPECT_NO_THROW(CCS_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(CCS_EXPECTS(true, ""));
  EXPECT_NO_THROW(CCS_ENSURES(true, ""));
}

TEST(Contracts, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(CCS_CHECK(false, "boom"), ContractViolation);
  EXPECT_THROW(CCS_EXPECTS(false, "boom"), ContractViolation);
  EXPECT_THROW(CCS_ENSURES(false, "boom"), ContractViolation);
}

TEST(Contracts, MessageNamesKindConditionAndLocation) {
  try {
    CCS_EXPECTS(2 < 1, "custom context");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cc"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  CCS_CHECK(bump(), "");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ccs
