// core::Stream -- a true online streaming session.
//
// A Stream is the serving-side counterpart of a Planner plan: where the
// batch path materializes a whole firing list and replays it, a Stream
// executes *incrementally* against real arrivals. Items are pushed in as
// they arrive (push), the session advances one schedulable component
// execution at a time (step), and counters are polled live (stats) -- no
// output count is fixed in advance, which is exactly the regime of the
// paper's Section 3/4 dynamic rule. The decision rule is a pluggable
// schedule::OnlinePolicy resolved by name, and execution happens on a
// credit-metered runtime::Engine, so the source can never fire ahead of the
// input that actually arrived.
//
//   core::Planner planner(graph, opts);
//   core::Plan plan = planner.plan();
//   core::Stream stream(planner, plan);        // owns a cache of opts.cache
//   while (items_left) {
//     stream.push(arrivals());                 // admit what arrived
//     while (stream.step().progressed()) {}    // run whatever is schedulable
//   }
//   stream.drain();
//   std::cout << stream.stats().misses_per_output() << "\n";
//
// Driven with the policy's own batch allowance, a Stream reproduces the
// corresponding schedule::dynamic_*_schedule counters bit-identically (the
// golden equivalence gate in tests/core/stream_test.cc). Streams sharing
// one CacheSim model concurrent applications contending for a cache --
// core::Server multiplexes them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/planner.h"
#include "iomodel/cache.h"
#include "iomodel/types.h"
#include "latency/cost_model.h"
#include "runtime/engine.h"
#include "runtime/run_result.h"
#include "schedule/online.h"
#include "sdf/graph.h"

namespace ccs::core {

/// Streaming-session knobs.
struct StreamOptions {
  /// schedule::OnlineRegistry key, or "auto" (pipeline rule for pipelines,
  /// M-batch rule for homogeneous dags).
  std::string policy = "auto";

  /// Arrivals the session will hold un-consumed before push() starts
  /// refusing items (the backpressure signal). 0 = unbounded queue.
  std::int64_t max_pending_inputs = 0;

  /// Engine knobs. credit_input is forced on -- a Stream is always metered.
  runtime::EngineOptions engine;
};

/// The complete mutable state of a Stream at a quiescent point: the
/// engine's execution state plus the session-level accumulators. An
/// OnlinePolicy keeps no cross-step state (it replans from the live
/// EngineView on every call), so rebuilding the policy from
/// (graph, partition, m) reproduces identical decisions and nothing of it
/// needs saving — this struct plus the construction inputs IS the session.
/// session::SwapImage packs it into a compact byte buffer.
struct StreamState {
  runtime::EngineState engine;
  runtime::RunResult totals;  ///< stats() accumulator.
  std::int64_t steps = 0;     ///< Progressing step() calls.
};

/// What one step() did.
struct StepResult {
  /// Component the policy executed, or schedule::kNoComponent when the
  /// session was idle (every component blocked on arrivals or space).
  std::int64_t component = schedule::kNoComponent;

  /// Counters of exactly this step (empty when idle).
  runtime::RunResult run;

  bool progressed() const noexcept { return component != schedule::kNoComponent; }
};

/// One online streaming session: graph + partition + online policy + a
/// credit-metered engine. Self-contained (the graph is copied); not
/// thread-safe -- one session belongs to one driver (core::Server
/// serializes access for shared-cache tenants).
class Stream {
 public:
  /// Standalone session owning a fresh fully-associative LRU cache of
  /// `cache` geometry. The policy is bound with M = cache.capacity_words.
  Stream(const sdf::SdfGraph& g, const partition::Partition& p,
         const iomodel::CacheConfig& cache, StreamOptions options = {},
         const schedule::OnlineRegistry* registry = nullptr);

  /// Shared-cache session (multi-tenant serving): executes on `cache`,
  /// which must outlive the stream. The policy's M is still `m` -- under
  /// contention a tenant sizes its buffers for its *share*, not for the
  /// whole cache.
  Stream(const sdf::SdfGraph& g, const partition::Partition& p, iomodel::CacheSim& cache,
         std::int64_t m, StreamOptions options = {},
         const schedule::OnlineRegistry* registry = nullptr);

  /// Convenience: a session for a Planner plan, on the planner's cache
  /// geometry (the common "plan it, then serve it" path).
  Stream(const Planner& planner, const Plan& plan, StreamOptions options = {});

  ~Stream();  // out of line: members are incomplete types here

  /// Admits up to `items` arrivals, returning how many were accepted --
  /// fewer than `items` (the backpressure signal) when the pending queue
  /// would exceed StreamOptions::max_pending_inputs.
  std::int64_t push(std::int64_t items);

  /// Arrivals admitted but not yet consumed by the source.
  std::int64_t pending_inputs() const noexcept { return engine_->input_credit(); }

  /// True when push() would refuse at least one item.
  bool backpressured() const noexcept {
    return options_.max_pending_inputs > 0 &&
           pending_inputs() >= options_.max_pending_inputs;
  }

  /// Runs the next schedulable component execution (the policy's unit of
  /// work), or reports idle. Counters in the result cover exactly this
  /// step; they are also accumulated into stats().
  StepResult step();

  /// Steps until idle; returns the counters accumulated across the burst.
  runtime::RunResult run_until_idle();

  /// End of stream: aligns the source on a whole steady-state iteration
  /// (never beyond pending arrivals) and flushes every channel. Returns the
  /// drain's counters.
  runtime::RunResult drain();

  /// Counters accumulated over the whole session so far.
  const runtime::RunResult& stats() const noexcept { return totals_; }

  /// Attaches a latency cost model: every subsequent progressing step() is
  /// priced (RunResult::cost = model cycles over the step's own counters)
  /// and recorded as one sample in RunResult::latency; drain() is priced
  /// but not sampled (a terminal flush is not a serving-latency event).
  /// Null (the default) leaves cost at 0 and the histogram empty, so
  /// model-free sessions stay bit-comparable to the batch golden paths.
  /// `model` must outlive the stream; core::Cluster re-attaches its model
  /// after every rehydration.
  void set_cost_model(const latency::CostModel* model) noexcept {
    cost_model_ = model;
  }
  const latency::CostModel* cost_model() const noexcept { return cost_model_; }

  /// Items consumed (source firings) and results produced (sink firings).
  std::int64_t inputs_consumed() const;
  std::int64_t outputs_produced() const;

  /// Component executions performed (progressing step() calls).
  std::int64_t steps() const noexcept { return steps_; }

  /// Live migration onto a different cache (core::Cluster moving this
  /// session to another worker's private L1): tokens, counters, and credit
  /// all survive; the working set does not, so the next steps pay real
  /// reload misses. Only valid for shared-cache sessions -- a session that
  /// owns its cache has nowhere else to go. `cache` must outlive the stream.
  void migrate_cache(iomodel::CacheSim& cache);

  /// Address range of this session's state and channel rings (placement
  /// affinity probes rank workers by how much of it their cache holds).
  iomodel::Region layout_span() const noexcept { return engine_->layout_span(); }

  /// Footprint observation for adaptive placement: the engine's layout
  /// geometry with the counter fields replaced by this session's *attributed*
  /// totals, so tenants sharing a worker cache never window each other's
  /// traffic.
  runtime::FootprintSample footprint_sample() const noexcept;

  /// Captures the session's complete mutable state at a quiescent point
  /// (between steps). The swap tier destroys the Stream afterwards and
  /// rebuilds it from the same (graph, partition, m, options) later.
  StreamState save_state() const;

  /// Restores a save_state() capture into a freshly constructed twin
  /// (same graph, partition, m, and options). No cache traffic; after it,
  /// pushes and steps behave bit-identically to a never-destroyed session.
  void restore_state(const StreamState& state);

  const schedule::OnlinePolicy& policy() const noexcept { return *policy_; }
  const sdf::SdfGraph& graph() const noexcept { return graph_; }
  iomodel::CacheSim& cache() noexcept { return *cache_; }

 private:
  /// schedule::EngineView over the metered engine.
  class EngineBackedView;

  Stream(sdf::SdfGraph g, const partition::Partition& p, std::int64_t m,
         std::unique_ptr<iomodel::CacheSim> owned, iomodel::CacheSim* shared,
         StreamOptions options, const schedule::OnlineRegistry* registry);

  sdf::SdfGraph graph_;
  StreamOptions options_;
  std::unique_ptr<iomodel::CacheSim> owned_cache_;  ///< Null for shared-cache sessions.
  iomodel::CacheSim* cache_;
  std::unique_ptr<schedule::OnlinePolicy> policy_;
  std::unique_ptr<runtime::Engine> engine_;
  std::unique_ptr<EngineBackedView> view_;
  const latency::CostModel* cost_model_ = nullptr;  ///< Not owned; may be null.
  runtime::RunResult totals_;
  std::int64_t steps_ = 0;
};

}  // namespace ccs::core
