#include "util/int_math.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.h"

namespace ccs {
namespace {

TEST(IntMath, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(1, 1), 1);
}

TEST(IntMath, CheckedMul) {
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20), std::int64_t{1} << 40);
  EXPECT_THROW(checked_mul(std::numeric_limits<std::int64_t>::max(), 2), OverflowError);
  EXPECT_EQ(checked_mul(-5, 7), -35);
}

TEST(IntMath, CheckedAdd) {
  EXPECT_EQ(checked_add(1, 2), 3);
  EXPECT_THROW(checked_add(std::numeric_limits<std::int64_t>::max(), 1), OverflowError);
}

TEST(IntMath, CheckedLcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(0, 6), 0);
  EXPECT_EQ(checked_lcm(7, 7), 7);
  EXPECT_THROW(checked_lcm(std::int64_t{1} << 62, (std::int64_t{1} << 62) - 1),
               OverflowError);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
}

TEST(IntMath, RoundUp) {
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
  EXPECT_EQ(round_up(0, 8), 0);
}

TEST(IntMath, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(48));
}

}  // namespace
}  // namespace ccs
