// Connects the executing engine to the offline-optimal yardstick: record a
// real schedule's block trace, then check the Sleator-Tarjan-style relation
// between the engine's LRU misses and Belady OPT on the same trace.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "iomodel/opt_cache.h"
#include "iomodel/trace.h"
#include "runtime/engine.h"
#include "schedule/naive.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

namespace ccs {
namespace {

/// Runs `s` under a recording LRU cache of `cache_words`, returning the
/// block trace and the LRU miss count.
std::pair<std::vector<iomodel::BlockId>, std::int64_t> record_run(
    const sdf::SdfGraph& g, const schedule::Schedule& s, std::int64_t cache_words,
    std::int64_t rounds) {
  iomodel::LruCache lru(iomodel::CacheConfig{cache_words, 8});
  iomodel::RecordingCache recorder(lru);
  runtime::Engine engine(g, s.buffer_caps, recorder);
  for (std::int64_t r = 0; r < rounds; ++r) (void)engine.run(s.period);
  return {iomodel::to_block_trace(recorder.trace(), 8), lru.stats().misses};
}

TEST(OptProperty, LruNeverBeatsOptOnScheduleTraces) {
  Rng rng(515);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = workloads::random_pipeline(10, 16, 120, 3, rng);
    const auto s = schedule::naive_minimal_buffer_schedule(g);
    const auto [trace, lru_misses] = record_run(g, s, 1024, 4);
    const auto opt = iomodel::opt_misses(trace, 1024 / 8);
    EXPECT_GE(lru_misses, opt) << "trial " << trial;
  }
}

TEST(OptProperty, LruWithDoubleCacheWithinTwoXOfOpt) {
  // Sleator-Tarjan: LRU(2k) <= 2 * OPT(k) + k on any trace. Check it on a
  // partitioned schedule's real trace.
  const auto g = workloads::uniform_pipeline(12, 128);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 256;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const std::int64_t k_blocks = 128;  // OPT's capacity (in blocks)
  const auto [trace, lru_misses] = record_run(g, plan.schedule, 2 * k_blocks * 8, 3);
  const auto opt = iomodel::opt_misses(trace, k_blocks);
  EXPECT_LE(static_cast<double>(lru_misses),
            2.0 * static_cast<double>(opt) + static_cast<double>(k_blocks));
}

TEST(OptProperty, PartitionedScheduleTraceNearOptimalForItsCache) {
  // The partitioned schedule is designed so LRU behaves like an ideal
  // cache on its trace: LRU misses should sit within a small factor of
  // OPT at the same capacity (no pathological LRU blowup).
  const auto g = workloads::uniform_pipeline(12, 128);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 256;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const std::int64_t cache_words = 4 * 256;
  const auto [trace, lru_misses] = record_run(g, plan.schedule, cache_words, 3);
  const auto opt = iomodel::opt_misses(trace, cache_words / 8);
  EXPECT_LE(static_cast<double>(lru_misses), 3.0 * static_cast<double>(opt) + 64.0);
}

}  // namespace
}  // namespace ccs
