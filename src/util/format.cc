#include "util/format.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace ccs {

std::string format_count(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out += ',';
      run = 0;
    }
    out += *it;
    ++run;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_words(std::int64_t words) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const double w = static_cast<double>(words);
  if (words < 1024) os << words << " w";
  else if (w < 1024.0 * 1024.0) os << w / 1024.0 << " Kw";
  else os << w / (1024.0 * 1024.0) << " Mw";
  return os.str();
}

}  // namespace ccs
