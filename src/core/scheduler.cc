#include "core/scheduler.h"

#include <cmath>
#include <sstream>

#include "iomodel/cache.h"
#include "partition/agglomerative.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "schedule/partitioned.h"
#include "schedule/schedule.h"
#include "sdf/gain.h"
#include "sdf/validate.h"
#include "util/error.h"

namespace ccs::core {

namespace {

struct ChosenPartition {
  partition::Partition partition;
  std::string name;
};

// Both facade entry points take a caller-supplied cache geometry; reject
// degenerate ones as recoverable input errors before any contract deep in
// the cache simulator can fire.
void check_cache_geometry(const iomodel::CacheConfig& cache) {
  if (cache.block_words <= 0) {
    throw MemoryError("cache block size must be positive");
  }
  if (cache.capacity_words < cache.block_words) {
    throw MemoryError("cache must hold at least one block (capacity " +
                      std::to_string(cache.capacity_words) + " words, block " +
                      std::to_string(cache.block_words) + " words)");
  }
}

ChosenPartition choose_partition(const sdf::SdfGraph& g, const PlannerOptions& options) {
  const auto state_bound =
      static_cast<std::int64_t>(options.c_bound *
                                static_cast<double>(options.cache.capacity_words));
  PartitionerKind kind = options.partitioner;
  if (kind == PartitionerKind::kAuto) {
    if (g.is_pipeline()) {
      kind = PartitionerKind::kPipelineDp;
    } else if (g.node_count() <= options.exact_max_nodes) {
      kind = PartitionerKind::kExact;
    } else {
      kind = PartitionerKind::kDagRefined;
    }
  }
  switch (kind) {
    case PartitionerKind::kPipelineDp:
      return {partition::pipeline_optimal_partition(g, state_bound).partition,
              "pipeline-dp"};
    case PartitionerKind::kPipelineGreedy:
      return {partition::pipeline_greedy_partition(g, options.cache.capacity_words).partition,
              "pipeline-greedy"};
    case PartitionerKind::kDagGreedy:
      return {partition::dag_greedy_partition(g, state_bound), "dag-greedy"};
    case PartitionerKind::kDagGreedyGain:
      return {partition::dag_greedy_gain_partition(g, state_bound), "dag-greedy-gain"};
    case PartitionerKind::kDagRefined: {
      // Refine from both greedy starts and keep the lower-bandwidth result:
      // neither start dominates across graph families.
      partition::RefineOptions refine;
      refine.state_bound = state_bound;
      const sdf::GainMap gains(g);
      auto a = partition::refine_partition(
          g, partition::dag_greedy_partition(g, state_bound), refine);
      auto b = partition::refine_partition(
          g, partition::dag_greedy_gain_partition(g, state_bound), refine);
      const bool pick_a =
          partition::bandwidth(g, gains, a) <= partition::bandwidth(g, gains, b);
      return {pick_a ? std::move(a) : std::move(b), "dag-refined"};
    }
    case PartitionerKind::kAgglomerative:
      return {partition::agglomerative_partition(g, state_bound), "agglomerative"};
    case PartitionerKind::kExact: {
      partition::ExactOptions exact;
      exact.state_bound = state_bound;
      exact.max_nodes = std::max(options.exact_max_nodes, g.node_count());
      const auto result = partition::dag_exact_partition(g, exact);
      if (!result.has_value()) {
        throw Error("exact partitioner exceeded its budget; use a heuristic partitioner");
      }
      return {result->partition, "exact"};
    }
    case PartitionerKind::kAuto:
      break;  // unreachable: resolved above
  }
  throw Error("unknown partitioner kind");
}

}  // namespace

Plan plan(const sdf::SdfGraph& g, const PlannerOptions& options) {
  check_cache_geometry(options.cache);
  sdf::ValidationOptions validation;
  validation.max_module_state = options.cache.capacity_words;
  sdf::validate_or_throw(g, validation);

  Plan out;
  auto chosen = choose_partition(g, options);
  out.partition = std::move(chosen.partition);
  out.partitioner_name = std::move(chosen.name);

  schedule::PartitionedOptions sched;
  sched.m = options.cache.capacity_words;
  sched.t_multiplier = options.t_multiplier;
  out.batch_t = schedule::compute_batch_t(g, sched);
  out.schedule = schedule::partitioned_schedule(g, out.partition, sched);
  out.schedule.name = "partitioned/" + out.partitioner_name;

  const sdf::GainMap gains(g);
  out.partition_bandwidth = partition::bandwidth(g, gains, out.partition);
  out.predicted = analysis::predict_partitioned_cost(g, out.partition, out.batch_t,
                                                     options.cache.block_words);
  return out;
}

runtime::RunResult simulate(const sdf::SdfGraph& g, const schedule::Schedule& s,
                            const iomodel::CacheConfig& cache_config,
                            std::int64_t target_outputs,
                            runtime::EngineOptions engine_options) {
  check_cache_geometry(cache_config);
  CCS_EXPECTS(target_outputs > 0, "output target must be positive");
  iomodel::LruCache cache(cache_config);
  runtime::Engine engine(g, s.buffer_caps, cache, engine_options);
  const std::int64_t rounds = schedule::periods_for_outputs(s, target_outputs);
  runtime::RunResult total;
  for (std::int64_t r = 0; r < rounds; ++r) {
    total = merge(std::move(total), engine.run(s.period));
  }
  return total;
}

runtime::RunResult merge(runtime::RunResult a, const runtime::RunResult& b) {
  a.cache.accesses += b.cache.accesses;
  a.cache.hits += b.cache.hits;
  a.cache.misses += b.cache.misses;
  a.cache.writebacks += b.cache.writebacks;
  a.firings += b.firings;
  a.source_firings += b.source_firings;
  a.sink_firings += b.sink_firings;
  a.state_misses += b.state_misses;
  a.channel_misses += b.channel_misses;
  a.io_misses += b.io_misses;
  if (a.node_misses.size() < b.node_misses.size()) {
    a.node_misses.resize(b.node_misses.size(), 0);
  }
  for (std::size_t i = 0; i < b.node_misses.size(); ++i) {
    a.node_misses[i] += b.node_misses[i];
  }
  return a;
}

std::string explain(const sdf::SdfGraph& g, const Plan& plan) {
  std::ostringstream os;
  os << "plan for " << g << "\n"
     << "  partitioner : " << plan.partitioner_name << "\n"
     << "  components  : " << plan.partition.num_components << " (bandwidth "
     << plan.partition_bandwidth << ")\n"
     << "  batch T     : " << plan.batch_t << " source firings per component load\n"
     << "  period      : " << plan.schedule.period.size() << " firings, "
     << plan.schedule.outputs_per_period << " outputs\n"
     << "  buffers     : " << plan.schedule.total_buffer_words() << " words total\n"
     << "  predicted   : " << plan.predicted.misses_per_input
     << " misses/input (state " << plan.predicted.state_term << " + buffers "
     << plan.predicted.buffer_term << " + cross " << plan.predicted.cross_term
     << " per batch)\n";
  const auto states = partition::component_states(g, plan.partition);
  const auto comps = plan.partition.components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    os << "  V" << c << " (" << states[c] << " words):";
    for (const sdf::NodeId v : comps[c]) os << " " << g.node(v).name;
    os << "\n";
  }
  return os.str();
}

}  // namespace ccs::core
