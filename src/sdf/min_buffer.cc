#include "sdf/min_buffer.h"

#include <algorithm>

#include "sdf/topology.h"
#include "util/error.h"
#include "util/int_math.h"

namespace ccs::sdf {

std::int64_t edge_min_buffer(std::int64_t out_rate, std::int64_t in_rate) {
  CCS_EXPECTS(out_rate > 0 && in_rate > 0, "rates must be positive");
  return out_rate + in_rate - gcd64(out_rate, in_rate);
}

namespace {

/// Simulates one steady-state iteration with the given capacities using a
/// batched topological sweep. Returns true on completion; on deadlock,
/// `blocked_edge` receives an output edge to enlarge.
bool simulate_iteration(const SdfGraph& g, const RepetitionVector& reps,
                        const std::vector<NodeId>& topo,
                        const std::vector<std::int64_t>& cap, EdgeId* blocked_edge) {
  std::vector<std::int64_t> tokens(static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<std::int64_t> remaining(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    remaining[static_cast<std::size_t>(v)] = reps.count(v);
  }
  std::int64_t outstanding = reps.total_firings();

  while (outstanding > 0) {
    bool progressed = false;
    for (const NodeId v : topo) {
      const auto vi = static_cast<std::size_t>(v);
      if (remaining[vi] == 0) continue;
      // Largest batch of firings possible right now.
      std::int64_t batch = remaining[vi];
      for (const EdgeId e : g.in_edges(v)) {
        batch = std::min(batch, tokens[static_cast<std::size_t>(e)] / g.edge(e).in_rate);
      }
      for (const EdgeId e : g.out_edges(v)) {
        const std::int64_t space = cap[static_cast<std::size_t>(e)] -
                                   tokens[static_cast<std::size_t>(e)];
        batch = std::min(batch, space / g.edge(e).out_rate);
      }
      if (batch <= 0) continue;
      for (const EdgeId e : g.in_edges(v)) {
        tokens[static_cast<std::size_t>(e)] -= batch * g.edge(e).in_rate;
      }
      for (const EdgeId e : g.out_edges(v)) {
        tokens[static_cast<std::size_t>(e)] += batch * g.edge(e).out_rate;
      }
      remaining[vi] -= batch;
      outstanding -= batch;
      progressed = true;
    }
    if (!progressed) {
      // Deadlock. The topologically-first unfinished module has all of its
      // producers finished, so by the balance equations its inputs are
      // sufficient; it must be output-blocked. Grow its fullest blocked edge.
      for (const NodeId v : topo) {
        const auto vi = static_cast<std::size_t>(v);
        if (remaining[vi] == 0) continue;
        for (const EdgeId e : g.out_edges(v)) {
          const std::int64_t space =
              cap[static_cast<std::size_t>(e)] - tokens[static_cast<std::size_t>(e)];
          if (space < g.edge(e).out_rate) {
            *blocked_edge = e;
            return false;
          }
        }
        // Input-blocked topologically-first module: producers all finished
        // yet tokens are short -- impossible for a rate-matched graph.
        throw RateError("module '" + g.node(v).name +
                        "' starved in steady state; graph is not rate matched");
      }
      CCS_CHECK(false, "outstanding firings with no unfinished module");
    }
  }

  for (std::size_t e = 0; e < tokens.size(); ++e) {
    CCS_CHECK(tokens[e] == 0, "steady-state iteration must drain all channels");
  }
  return true;
}

}  // namespace

std::vector<std::int64_t> feasible_buffers(const SdfGraph& g) {
  const RepetitionVector reps(g);
  const auto topo = topological_sort(g);

  std::vector<std::int64_t> cap(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    // A capacity below max(out, in) can never pass a token; the classical
    // single-edge bound is a valid starting point.
    cap[static_cast<std::size_t>(e)] =
        std::min(edge_min_buffer(edge.out_rate, edge.in_rate), reps.edge_tokens(e));
    cap[static_cast<std::size_t>(e)] =
        std::max(cap[static_cast<std::size_t>(e)], std::max(edge.out_rate, edge.in_rate));
  }

  EdgeId blocked = kInvalidEdge;
  while (!simulate_iteration(g, reps, topo, cap, &blocked)) {
    auto& c = cap[static_cast<std::size_t>(blocked)];
    // Grow by one producer burst, never beyond one full iteration's traffic
    // (which is always sufficient: the producer can then finish outright).
    const std::int64_t limit = std::max(reps.edge_tokens(blocked),
                                        g.edge(blocked).out_rate + g.edge(blocked).in_rate);
    CCS_CHECK(c < limit, "buffer growth exceeded steady-state traffic");
    c = std::min(limit, checked_add(c, g.edge(blocked).out_rate));
  }
  return cap;
}

std::int64_t internal_buffer_total(const SdfGraph& g, const std::vector<bool>& member,
                                   const std::vector<std::int64_t>& buf) {
  CCS_EXPECTS(member.size() == static_cast<std::size_t>(g.node_count()),
              "member mask size must equal node count");
  CCS_EXPECTS(buf.size() == static_cast<std::size_t>(g.edge_count()),
              "buffer vector size must equal edge count");
  std::int64_t total = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (member[static_cast<std::size_t>(edge.src)] &&
        member[static_cast<std::size_t>(edge.dst)]) {
      total = checked_add(total, buf[static_cast<std::size_t>(e)]);
    }
  }
  return total;
}

}  // namespace ccs::sdf
