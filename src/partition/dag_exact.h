// Exact minimum-bandwidth well-ordered c-bounded partitioning.
//
// Finding this partition is NP-complete for general dags [Garey & Johnson,
// ND15: Acyclic Partition], but the paper argues an exponential exact solver
// is reasonable at compile time for small graphs -- and the lower-bound
// experiments (Theorem 7) need the exact minBW_3(G).
//
// Method: dynamic programming over *ideals* (downward-closed vertex sets) of
// the dag. A partition is well ordered iff its components can be peeled in
// an order whose prefixes are all ideals; so
//     dp[S] = min over ideals S' < S of dp[S'] + gain(edges from S' into S\S')
// subject to state(S\S') <= bound. dp[V] is minBW. Transitions are
// enumerated by growing T = S\S' one available node at a time with a
// visited-set, which reaches exactly the sets T for which S' + T stays an
// ideal. Complexity is exponential in the dag's width; the solver gives up
// (returns nullopt) beyond the configured node/transition budgets.
#pragma once

#include <cstdint>
#include <optional>

#include "partition/partition.h"
#include "sdf/graph.h"
#include "util/rational.h"

namespace ccs::partition {

/// Budgets for the exact search.
struct ExactOptions {
  std::int64_t state_bound = 0;         ///< c*M.
  std::int32_t max_nodes = 24;          ///< Refuse larger graphs outright.
  std::int64_t max_transitions = 5'000'000;  ///< Abort budget for DP edges.
};

/// Optimal partition and its bandwidth.
struct ExactResult {
  Partition partition;
  Rational bandwidth;
};

/// Exact optimum, or nullopt when the graph exceeds the budgets. Throws
/// ccs::Error if a single module exceeds the state bound (infeasible).
std::optional<ExactResult> dag_exact_partition(const sdf::SdfGraph& g,
                                               const ExactOptions& options);

/// Convenience: minBW_c(G) with c*M = state_bound, or nullopt over budget.
std::optional<Rational> min_bandwidth(const sdf::SdfGraph& g, std::int64_t state_bound,
                                      std::int32_t max_nodes = 24);

}  // namespace ccs::partition
