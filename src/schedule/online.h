// Online scheduling policies (Sections 3-4, the dynamic rule as a session).
//
// The paper's dynamic rule is *online*: no output count is fixed in advance,
// and the next component to execute is decided from live buffer occupancy
// (half-full/half-empty for pipelines, the M-batch rule for homogeneous
// dags). An OnlinePolicy is that decision rule made stateful and reusable:
// it is bound to one (graph, partition, M) at construction, dictates the
// buffer capacities execution must provide, and -- consulted through a
// read-only EngineView of whatever is executing (a cache-measuring
// runtime::Engine behind core::Stream, or a bare TokenSim behind the batch
// wrappers in schedule/dynamic.h) -- plans one component execution at a
// time. Policies are pure planners: they never mutate the execution state,
// so a driver may discard or replay a plan, and the same policy object
// drives both the online serving path and the batch materialization
// bit-identically.
//
// Policies are string-keyed in OnlineRegistry ("pipeline-half-full",
// "homogeneous-m-batch"); resolve_auto_policy() picks the applicable rule
// for a graph the way core::Planner's "auto" picks a partitioner.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "partition/partition.h"
#include "sdf/graph.h"
#include "util/registry.h"

namespace ccs::schedule {

/// next_component() result when no component is schedulable right now.
inline constexpr std::int64_t kNoComponent = -1;

/// input_credit() value of a driver whose external input is unbounded.
/// Matches runtime::Engine::kUnlimitedCredit (the layers cannot share the
/// constant without inverting the runtime -> schedule dependency).
inline constexpr std::int64_t kUnlimitedCredit =
    std::numeric_limits<std::int64_t>::max();

/// Read-only view of a driver's execution state -- everything an online
/// policy may consult when deciding what to run next.
class EngineView {
 public:
  virtual ~EngineView() = default;

  /// Tokens currently queued on edge e.
  virtual std::int64_t tokens(sdf::EdgeId e) const = 0;

  /// Ring capacity of edge e (as dictated by OnlinePolicy::buffer_caps).
  virtual std::int64_t capacity(sdf::EdgeId e) const = 0;

  /// Lifetime firings of module v.
  virtual std::int64_t fired(sdf::NodeId v) const = 0;

  /// Source firings the external input can still cover, or kUnlimitedCredit
  /// when arrivals are not metered.
  virtual std::int64_t input_credit() const = 0;
};

/// One planned component execution: the firings of a single run-to-blocking
/// (pipeline) or M-iteration (homogeneous) burst, in execution order. An
/// empty plan means the policy is idle -- every component is blocked on
/// arrivals or downstream space.
struct StepPlan {
  std::int64_t component = kNoComponent;  ///< Which component the burst runs.
  std::vector<sdf::NodeId> firings;       ///< Firing order of the burst.

  bool idle() const noexcept { return firings.empty(); }
};

/// A stateful online scheduling rule bound to one (graph, partition, M).
/// Construction validates the partition against the rule's requirements and
/// fixes the buffer sizing; subsequent calls are pure planning against a
/// caller-supplied view. The bound graph and partition must outlive the
/// policy.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  OnlinePolicy(const OnlinePolicy&) = delete;
  OnlinePolicy& operator=(const OnlinePolicy&) = delete;

  /// Registry key this policy was built as ("pipeline-half-full", ...).
  const std::string& name() const noexcept { return name_; }

  /// Per-edge ring capacities the rule requires (Theta(M) cross buffers,
  /// minimal internal buffers). Drivers must execute under exactly these.
  const std::vector<std::int64_t>& buffer_caps() const noexcept { return caps_; }

  /// Components of the bound partition, renumbered topologically.
  std::int64_t num_components() const noexcept { return k_; }

  /// The designated external-input module of the bound graph.
  sdf::NodeId source() const noexcept { return source_; }

  /// The designated external-output module of the bound graph.
  sdf::NodeId sink() const noexcept { return sink_; }

  /// Members of component c in the rule's intra-component execution order.
  const std::vector<sdf::NodeId>& members(std::int64_t c) const {
    return members_[static_cast<std::size_t>(c)];
  }

  /// The bare decision rule: which component the paper's scan designates
  /// under `view` (pipelines always designate one; homogeneous dags return
  /// kNoComponent when nothing is schedulable). Exposed for introspection;
  /// next_step() already folds it in.
  virtual std::int64_t next_component(const EngineView& view) const = 0;

  /// Plans the next component execution from `view`: picks the component
  /// (including the pipeline progress fallback when the designated one is
  /// blocked) and simulates its full burst. Idle plan = nothing can move.
  virtual StepPlan next_step(const EngineView& view) = 0;

  /// Plans the end-of-stream drain from `view`: aligns the source on whole
  /// steady-state iterations (never beyond the remaining input credit) and
  /// flushes every channel. Executing the plan empties all buffers whenever
  /// the alignment was reachable.
  virtual std::vector<sdf::NodeId> plan_drain(const EngineView& view) = 0;

  /// Source-firing allowance a batch driver should grant so the rule can
  /// produce at least `min_outputs` sink firings and still drain on a whole
  /// steady-state boundary (kUnlimitedCredit when the rule needs no cap).
  virtual std::int64_t batch_credit(std::int64_t min_outputs) const = 0;

 protected:
  OnlinePolicy(std::string name, const sdf::SdfGraph& g) : name_(std::move(name)), graph_(&g) {}

  std::string name_;
  const sdf::SdfGraph* graph_;
  std::vector<std::int64_t> caps_;                 ///< Per-edge capacities.
  std::vector<std::vector<sdf::NodeId>> members_;  ///< Per component.
  std::int64_t k_ = 0;
  sdf::NodeId source_ = sdf::kInvalidNode;
  sdf::NodeId sink_ = sdf::kInvalidNode;
};

/// The paper's pipeline rule (Section 3): a component is schedulable when
/// its input cross buffer is at least half full and its output cross buffer
/// at most half full; it runs until one of them blocks. Requires a
/// well-ordered segmentation of a pipeline graph (throws GraphError /
/// ccs::Error otherwise).
std::unique_ptr<OnlinePolicy> make_pipeline_half_full_policy(const sdf::SdfGraph& g,
                                                             const partition::Partition& p,
                                                             std::int64_t m);

/// The asynchronous homogeneous-dag rule (Section 5 variant): a component is
/// schedulable when every incoming cross buffer holds M tokens and every
/// outgoing one is empty; it then runs M local iterations. Requires a
/// well-ordered partition of a homogeneous graph.
std::unique_ptr<OnlinePolicy> make_homogeneous_m_batch_policy(const sdf::SdfGraph& g,
                                                              const partition::Partition& p,
                                                              std::int64_t m);

/// What an online policy may consult at build time: the cache size M the
/// rule's Theta(M) buffers amortize against.
struct OnlineContext {
  std::int64_t m = 64 * 1024;  ///< Cache capacity in words.
};

/// A named online-policy factory.
struct OnlinePolicyEntry {
  /// Binds the rule to (g, p, ctx) or throws a ccs::Error subclass when the
  /// graph/partition is outside the rule's class.
  std::function<std::unique_ptr<OnlinePolicy>(
      const sdf::SdfGraph&, const partition::Partition&, const OnlineContext&)>
      build;

  /// True iff the rule makes sense for this graph; null = always.
  std::function<bool(const sdf::SdfGraph&)> applicable;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed online-policy table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class OnlineRegistry : public NamedRegistry<OnlinePolicyEntry> {
 public:
  OnlineRegistry() : NamedRegistry<OnlinePolicyEntry>("online rule") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static OnlineRegistry& global();

  /// Keys of every rule applicable to `g`, sorted.
  std::vector<std::string> applicable_keys(const sdf::SdfGraph& g) const;

  /// Looks up `name` ("auto" resolves via resolve_auto_policy) and binds it.
  /// Throws ccs::Error (listing valid keys) for unknown names; propagates
  /// the rule's own validation errors.
  std::unique_ptr<OnlinePolicy> build(const std::string& name, const sdf::SdfGraph& g,
                                      const partition::Partition& p,
                                      const OnlineContext& ctx) const;
};

/// The registry key "auto" resolves to for `g`: the pipeline rule for
/// pipelines, the M-batch rule for homogeneous dags. Throws GraphError for
/// graphs in neither class (no online rule is known for general multirate
/// dags; see docs/ARCHITECTURE.md).
std::string resolve_auto_policy(const sdf::SdfGraph& g);

/// Registers the built-in rules into `r` (used by global(); exposed so tests
/// can build isolated registries): pipeline-half-full, homogeneous-m-batch.
void register_builtin_online_policies(OnlineRegistry& r);

}  // namespace ccs::schedule
