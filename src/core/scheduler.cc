#include "core/scheduler.h"

#include "iomodel/cache.h"
#include "util/contracts.h"

namespace ccs::core {

Plan plan(const sdf::SdfGraph& g, const PlannerOptions& options) {
  return Planner(g, options).plan();
}

runtime::RunResult simulate(const sdf::SdfGraph& g, const schedule::Schedule& s,
                            const iomodel::CacheConfig& cache_config,
                            std::int64_t target_outputs,
                            runtime::EngineOptions engine_options) {
  validate_cache_geometry(cache_config);
  CCS_EXPECTS(target_outputs > 0, "output target must be positive");
  iomodel::LruCache cache(cache_config);
  runtime::Engine engine(g, s.buffer_caps, cache, engine_options);
  const std::int64_t rounds = schedule::periods_for_outputs(s, target_outputs);
  runtime::RunResult total;
  for (std::int64_t r = 0; r < rounds; ++r) {
    total += engine.run(s.period);
  }
  return total;
}

}  // namespace ccs::core
