// Agglomerative (heavy-edge clustering) partitioner.
//
// The paper's conclusion points at multilevel partitioners [Hendrickson &
// Leland 95; Karypis & Kumar 98] as the practical tool for large graphs.
// Their core idea -- contract heavy edges first so expensive traffic stays
// inside components -- adapts to the well-ordered constraint directly:
//
//   start from singletons;
//   visit edges in descending gain order;
//   merge the endpoint components when (a) the merged state fits the
//   bound and (b) the contracted multigraph stays acyclic;
//   repeat until a pass commits no merge, then run FM refinement.
//
// Keeping the heaviest edges internal greedily minimizes the bandwidth the
// schedule must pay (Definition 3); the acyclicity check preserves
// schedulability (Definition 2). Complexity is O(passes * E * (V + E)) from
// the per-merge acyclicity checks -- comfortably offline for the graph
// sizes streaming compilers see.
#pragma once

#include <cstdint>

#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::partition {

/// Clustering + refinement. Throws ccs::Error if a single module exceeds
/// `state_bound` (no bounded partition exists). The result is always a
/// valid, well-ordered, bounded partition.
Partition agglomerative_partition(const sdf::SdfGraph& g, std::int64_t state_bound);

}  // namespace ccs::partition
