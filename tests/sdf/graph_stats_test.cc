#include "sdf/graph_stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(GraphStats, PipelineShape) {
  const auto g = ccs::workloads::uniform_pipeline(8, 50);
  const auto stats = compute_stats(g);
  EXPECT_EQ(stats.nodes, 8);
  EXPECT_EQ(stats.edges, 7);
  EXPECT_EQ(stats.depth, 8);
  EXPECT_EQ(stats.width, 1);
  EXPECT_EQ(stats.max_degree, 2);
  EXPECT_EQ(stats.total_state, 400);
  EXPECT_TRUE(stats.pipeline);
  EXPECT_TRUE(stats.homogeneous);
  EXPECT_EQ(stats.min_edge_gain, Rational(1));
  EXPECT_EQ(stats.max_edge_gain, Rational(1));
}

TEST(GraphStats, SplitJoinWidth) {
  const auto g = ccs::workloads::fm_radio(10);
  const auto stats = compute_stats(g);
  EXPECT_GE(stats.width, 10);  // ten equalizer bands side by side
  EXPECT_FALSE(stats.pipeline);
  EXPECT_GE(stats.max_degree, 10);  // the split fans out to every band
}

TEST(GraphStats, GainRangeOnDecimatingApp) {
  const auto g = ccs::workloads::fm_radio(4);
  const auto stats = compute_stats(g);
  // The 4:1 low-pass decimator makes downstream edge gains 1/4.
  EXPECT_EQ(stats.min_edge_gain, Rational(1, 4));
  EXPECT_EQ(stats.max_edge_gain, Rational(1));
}

TEST(GraphStats, HourglassGainSpread) {
  const auto g = ccs::workloads::hourglass_pipeline(9, 10, 2);
  const auto stats = compute_stats(g);
  EXPECT_LT(stats.min_edge_gain, Rational(1, 8));
  EXPECT_EQ(stats.max_edge_gain, Rational(1));
}

TEST(GraphStats, StreamOperator) {
  const auto g = ccs::workloads::uniform_pipeline(3, 10);
  std::ostringstream os;
  os << compute_stats(g);
  EXPECT_NE(os.str().find("nodes=3"), std::string::npos);
  EXPECT_NE(os.str().find("pipeline"), std::string::npos);
}

TEST(GraphStats, DepthWidthOfButterfly) {
  const auto g = ccs::workloads::fft(3);  // 3 stages of 4 units over 8 wires
  const auto stats = compute_stats(g);
  EXPECT_EQ(stats.depth, 3 + 4);  // src, fan, 3 unit stages, merge, sink
  EXPECT_GE(stats.width, 4);
}

}  // namespace
}  // namespace ccs::sdf
