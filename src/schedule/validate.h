// Schedule validation by token-level replay.
//
// A Schedule claims to be a repeatable period under its buffer capacities.
// check_schedule replays the period (several times) on a TokenSim and
// verifies every claim: no underflow/overflow, the declared input/output
// counts, and full drain at each period boundary. Every scheduler in this
// library is property-tested through this gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Outcome of replaying a schedule.
struct ScheduleReport {
  bool ok = false;
  std::string problem;                ///< Empty when ok.
  std::vector<std::int64_t> peak;     ///< Max tokens ever queued per edge.
  std::int64_t source_firings = 0;    ///< Per period (from the last replay).
  std::int64_t sink_firings = 0;      ///< Per period (from the last replay).
};

/// Replays `repeats` periods. Never throws; failures land in `problem`.
ScheduleReport check_schedule(const sdf::SdfGraph& g, const Schedule& s,
                              std::int32_t repeats = 2);

}  // namespace ccs::schedule
