// Cache simulators for the I/O model.
//
// CacheSim is the interface the streaming runtime drives; implementations:
//  * LruCache          -- fully associative LRU (the paper's analysis model;
//                         an ideal cache in the sense of Frigo et al.)
//  * SetAssociativeCache -- k-way set-associative LRU, for checking that the
//                         paper's conclusions survive on realistic geometry.
//
// All implementations count *block transfers*: an access to an uncached
// block is one miss; evicting a dirty block is one writeback.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "iomodel/types.h"

namespace ccs::iomodel {

/// Abstract word-addressed cache.
class CacheSim {
 public:
  virtual ~CacheSim() = default;

  /// Touches one word; loads the containing block on a miss.
  virtual void access(Addr addr, AccessMode mode) = 0;

  /// Evicts everything (dirty blocks count as writebacks). Statistics are
  /// preserved; only contents are dropped.
  virtual void flush() = 0;

  /// True if the containing block is resident.
  virtual bool contains(Addr addr) const = 0;

  /// Cumulative transfer counters.
  virtual const CacheStats& stats() const = 0;

  /// Geometry this cache was built with.
  virtual const CacheConfig& config() const = 0;

  /// Convenience: touch `count` consecutive words starting at addr.
  void access_range(Addr addr, std::int64_t count, AccessMode mode);
};

/// Fully associative LRU with write-back/write-allocate.
class LruCache final : public CacheSim {
 public:
  explicit LruCache(const CacheConfig& config);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;
  const CacheStats& stats() const override { return stats_; }
  const CacheConfig& config() const override { return config_; }

  /// Blocks currently resident (for tests).
  std::int64_t resident_blocks() const {
    return static_cast<std::int64_t>(lru_.size());
  }

 private:
  struct Line {
    BlockId block;
    bool dirty;
  };

  CacheConfig config_;
  std::int64_t capacity_blocks_;
  CacheStats stats_;
  std::list<Line> lru_;  // front = most recently used
  std::unordered_map<BlockId, std::list<Line>::iterator> map_;
};

/// k-way set-associative LRU. `ways == 1` gives a direct-mapped cache.
class SetAssociativeCache final : public CacheSim {
 public:
  /// Requires capacity_blocks % ways == 0 and a power-of-two set count (so
  /// the index function is a mask, as in real hardware).
  SetAssociativeCache(const CacheConfig& config, std::int32_t ways);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;
  const CacheStats& stats() const override { return stats_; }
  const CacheConfig& config() const override { return config_; }

  std::int32_t ways() const noexcept { return ways_; }
  std::int64_t sets() const noexcept { return num_sets_; }

 private:
  struct Way {
    BlockId block = -1;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(BlockId block) const {
    return static_cast<std::size_t>(block & (num_sets_ - 1));
  }

  CacheConfig config_;
  std::int32_t ways_;
  std::int64_t num_sets_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  std::vector<Way> lines_;  // num_sets_ * ways_, row-major by set
};

/// Factory helpers.
std::unique_ptr<CacheSim> make_lru(std::int64_t capacity_words, std::int64_t block_words);
std::unique_ptr<CacheSim> make_set_associative(std::int64_t capacity_words,
                                               std::int64_t block_words, std::int32_t ways);

}  // namespace ccs::iomodel
