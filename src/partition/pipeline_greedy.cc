#include "partition/pipeline_greedy.h"

#include "sdf/gain.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::partition {

PipelineGreedyResult pipeline_greedy_partition(const sdf::SdfGraph& g, std::int64_t m) {
  CCS_EXPECTS(m > 0, "cache size must be positive");
  const auto chain = sdf::pipeline_order(g);  // throws if not a pipeline
  if (g.max_state() > m) {
    throw Error("a module exceeds the cache size; no partition can schedule it");
  }
  const sdf::GainMap gains(g);
  const auto n = static_cast<std::int32_t>(chain.size());

  // Chain-position edge i connects chain[i] -> chain[i+1].
  std::vector<sdf::EdgeId> chain_edge(static_cast<std::size_t>(n - 1));
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    chain_edge[static_cast<std::size_t>(i)] =
        g.out_edges(chain[static_cast<std::size_t>(i)]).front();
  }

  std::vector<std::int64_t> suffix_state(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t i = n; i-- > 0;) {
    suffix_state[static_cast<std::size_t>(i)] =
        suffix_state[static_cast<std::size_t>(i) + 1] +
        g.node(chain[static_cast<std::size_t>(i)]).state;
  }

  // Accrete segments Wi: close a segment once its state exceeds 2M, unless
  // the remaining tail itself has at most 2M state, in which case the tail
  // joins the current segment.
  PipelineGreedyResult result;
  std::int32_t seg_first = 0;
  std::int64_t seg_state = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    seg_state += g.node(chain[static_cast<std::size_t>(i)]).state;
    const std::int64_t remaining = suffix_state[static_cast<std::size_t>(i) + 1];
    if (seg_state > 2 * m && remaining > 2 * m) {
      result.segments.push_back(ChainSegment{seg_first, i});
      seg_first = i + 1;
      seg_state = 0;
    }
  }
  if (seg_first < n) result.segments.push_back(ChainSegment{seg_first, n - 1});

  // Cut at the gain-minimizing edge inside each segment that both (a) has an
  // internal edge and (b) is not the final segment-closing position (a cut
  // after the last module would be vacuous).
  std::vector<bool> cut_after(static_cast<std::size_t>(n - 1 > 0 ? n - 1 : 0), false);
  for (const ChainSegment& seg : result.segments) {
    if (seg.last <= seg.first) continue;  // single module: no internal edge
    // Theorem 3 only charges segments with at least 2M state; an undersized
    // segment (possible only when the whole pipeline is light) is not cut.
    const std::int64_t seg_state = suffix_state[static_cast<std::size_t>(seg.first)] -
                                   suffix_state[static_cast<std::size_t>(seg.last) + 1];
    if (seg_state < 2 * m) continue;
    std::int32_t best = seg.first;
    for (std::int32_t i = seg.first; i < seg.last; ++i) {
      const Rational& cand = gains.edge_gain(chain_edge[static_cast<std::size_t>(i)]);
      if (cand < gains.edge_gain(chain_edge[static_cast<std::size_t>(best)])) best = i;
    }
    // A cut at the very end of the pipeline would split off nothing.
    result.cut_edges.push_back(chain_edge[static_cast<std::size_t>(best)]);
    cut_after[static_cast<std::size_t>(best)] = true;
  }

  // Components are the chain intervals between cuts.
  std::vector<std::vector<sdf::NodeId>> comps;
  comps.emplace_back();
  for (std::int32_t i = 0; i < n; ++i) {
    comps.back().push_back(chain[static_cast<std::size_t>(i)]);
    if (i + 1 < n && cut_after[static_cast<std::size_t>(i)]) comps.emplace_back();
  }
  result.partition = Partition::from_components(g, comps);
  return result;
}

}  // namespace ccs::partition
