// E9 -- block size scaling (the 1/B in every bound).
//
// All of the paper's bounds carry a 1/B factor: cross-edge tokens stream
// through the cache at one miss per block. Sweep B at fixed M on the
// partitioned pipeline schedule. Expected shape: misses/output roughly
// halves per doubling of B while streaming dominates; the product
// (misses/output * B) stays near-constant.

#include "bench/common.h"
#include "workloads/pipelines.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 1024;
  const std::int64_t outputs = 4096;
  const auto g = workloads::uniform_pipeline(24, 256);

  Table t("E9: block size sweep (pipeline 24x256, M=1024, sim 4M)");
  t.set_header({"B", "misses/output", "misses/output * B"});
  for (const std::int64_t b : {4, 8, 16, 32, 64}) {
    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const auto r = bench::run(g, plan.schedule, 4 * m, b, outputs);
    t.add_row({Table::num(b), Table::num(r.misses_per_output(), 3),
               Table::num(r.misses_per_output() * static_cast<double>(b), 2)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
