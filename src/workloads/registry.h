// String-keyed workload-factory registry.
//
// Experiment sweep specs name their subjects ("FMRadio", "uniform-pipeline",
// ...) instead of constructing graphs by hand, so a sweep over the whole
// StreamIt-style suite is a list of keys. Built-ins cover the twelve suite
// applications at their default parameters plus the parametric pipeline and
// dag families at representative sizes; callers register their own factories
// (any nullary callable producing an SdfGraph) to make custom applications
// sweepable by name. Factories are deterministic: randomized generators are
// registered with fixed seeds so equal specs produce equal graphs. Unknown
// names throw a recoverable ccs::Error listing every valid key.
#pragma once

#include <functional>
#include <string>

#include "sdf/graph.h"
#include "util/registry.h"

namespace ccs::workloads {

/// A named application factory.
struct WorkloadEntry {
  /// Builds a fresh graph (factories must be pure: thread-safe and
  /// deterministic, returning equal graphs on every call).
  std::function<sdf::SdfGraph()> build;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed workload table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error).
class Registry : public NamedRegistry<WorkloadEntry> {
 public:
  Registry() : NamedRegistry<WorkloadEntry>("workload") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static Registry& global();

  /// Looks up `name` and builds the graph. Throws ccs::Error (listing valid
  /// keys) for unknown names.
  sdf::SdfGraph build(const std::string& name) const;
};

/// Registers the built-in factories into `r` (used by global(); exposed so
/// tests can build isolated registries): the twelve streamit_suite() apps
/// under their suite names, plus uniform-pipeline, hourglass-pipeline,
/// heavy-tail-pipeline, layered-dag, and series-parallel-dag.
void register_builtin_workloads(Registry& r);

}  // namespace ccs::workloads
