// Multi-level cache hierarchy simulation.
//
// The paper analyzes a two-level hierarchy (cache + memory); Savage's
// extension of Hong–Kung to deeper hierarchies [24] is cited as the natural
// generalization. HierarchyCache stacks fully-associative LRU levels:
// an access probes L1; on a miss it probes L2, and so on; the block is then
// installed in every level above the one that hit (inclusive hierarchy).
// Per-level stats expose where the partitioned scheduler's savings land —
// experiment E13 shows partitioning built for the L2 size removes L2/memory
// traffic while leaving L1 behaviour unchanged.
//
// Probing goes through LruCache::access_block — the non-virtual per-block
// fast path — and the bulk override walks a span one block at a time so a
// resident run stays inside L1's hit path.
#pragma once

#include <memory>
#include <vector>

#include "iomodel/cache.h"
#include "iomodel/sharded_cache.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccs::iomodel {

/// Inclusive multi-level LRU hierarchy. Level 0 is the smallest/fastest.
class HierarchyCache final : public CacheSim {
 public:
  /// `level_words` are capacities from L1 upward, strictly increasing; all
  /// levels share one block size.
  HierarchyCache(std::vector<std::int64_t> level_words, std::int64_t block_words);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;

  /// CacheSim::stats() reports the *last* level (transfers from backing
  /// memory) so the hierarchy drops into any harness expecting a two-level
  /// model whose cost is block transfers from slow memory.
  const CacheStats& stats() const override { return levels_.back()->stats(); }
  const CacheConfig& config() const override { return levels_.back()->config(); }

  std::size_t depth() const noexcept { return levels_.size(); }

  /// Per-level counters; level 0 counts all word accesses, level i>0 only
  /// sees accesses that missed every level below.
  const CacheStats& level_stats(std::size_t level) const;

  /// Capacity of one level, in words.
  std::int64_t level_words(std::size_t level) const;

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override;

 private:
  /// Probes levels downward until one hits; every probed level installs the
  /// block, giving an inclusive hierarchy.
  void probe_block(BlockId block, AccessMode mode) {
    for (auto& level : levels_) {
      if (level->access_block(block, mode)) return;
    }
  }

  std::vector<std::unique_ptr<LruCache>> levels_;
};

/// One core's view of a multicore cache hierarchy: a private LRU level in
/// front of an optional *shared* last-level cache owned by someone else
/// (runtime::WorkerPool). The private level behaves exactly like a
/// standalone LruCache of the same geometry -- stats(), config(),
/// contains(), and replacement state are the private level's, so per-worker
/// counters are independent of who else shares the LLC. A private miss
/// additionally probes-and-installs the shared LLC (inclusive, like
/// HierarchyCache); that probe is the only synchronization a pool of worker
/// threads needs, because private levels are single-owner by construction.
/// Two shared-LLC backends are supported:
///
///  * a flat LruCache guarded by a pool-wide `llc_mutex` (the original
///    single-mutex design -- every cross-worker miss serializes), or
///  * a ShardedLruCache, which locks only the stripe owning the missed
///    block internally, so workers missing on different stripes proceed in
///    parallel.
///
/// With a null LLC the class degenerates to a plain private LRU, so one
/// worker type covers the flat-cache and both shared-LLC configurations.
class SharedLlcCache final : public CacheSim {
 public:
  /// `llc` and `llc_mutex` must either both be provided (and outlive this
  /// cache) or both be null; the LLC must share the private block size and
  /// be strictly larger than the private level.
  SharedLlcCache(const CacheConfig& private_config, LruCache* llc, Mutex* llc_mutex);

  /// Sharded backend: `llc` (may be null for no LLC) locks per stripe
  /// internally, so no pool-wide mutex exists at all. Same geometry
  /// requirements as the single-mutex ctor.
  SharedLlcCache(const CacheConfig& private_config, ShardedLruCache* llc);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;  ///< Flushes the private level only; the LLC is shared.
  bool contains(Addr addr) const override { return l1_.contains(addr); }

  /// The private level's counters/geometry: a worker's own traffic.
  const CacheStats& stats() const override { return l1_.stats(); }
  const CacheConfig& config() const override { return l1_.config(); }

  bool has_llc() const noexcept { return llc_ != nullptr || sharded_llc_ != nullptr; }

  /// Resident blocks in the private level (for placement-affinity probes).
  LruCache& private_level() noexcept { return l1_; }
  const LruCache& private_level() const noexcept { return l1_; }

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override;

 private:
  /// Private probe; on a miss, forwards to the shared LLC -- under the
  /// pool-wide mutex (flat backend) or the owning stripe's internal lock
  /// (sharded backend).
  void probe_block(BlockId block, AccessMode mode) {
    if (l1_.access_block(block, mode)) return;
    if (sharded_llc_ != nullptr) {
      sharded_llc_->access_block(block, mode);
    } else if (llc_ != nullptr) {
      const MutexLock lock(*llc_mutex_);
      llc_->access_block(block, mode);
    }
  }

  LruCache l1_;
  LruCache* llc_ CCS_PT_GUARDED_BY(llc_mutex_);  ///< Pointee guarded by the pool mutex.
  Mutex* llc_mutex_;
  ShardedLruCache* sharded_llc_ = nullptr;
};

}  // namespace ccs::iomodel
