// core::Experiment -- the declarative scenario-sweep driver.
//
// The paper's results are sweeps: miss rates across cache sizes,
// partitioners, and benchmark graphs (Figs. 6-9). An Experiment takes that
// grid as data -- workloads x cache geometries x partitioners x batch
// multipliers, all addressed through the registries -- and executes every
// cell on a thread pool, producing a structured result with CSV/JSON
// emission that reproduces a paper table in one call.
//
//   core::SweepSpec spec;
//   spec.workloads = {"FMRadio", "DES"};
//   spec.caches = {{256, 8}, {512, 8}, {1024, 8}};
//   spec.partitioners = {"auto", "dag-greedy", "dag-refined", "agglomerative"};
//   spec.baselines = {"naive", "scaled"};
//   core::ExperimentResult result = core::Experiment(spec).run(/*threads=*/8);
//   result.write_csv(std::cout);
//
// Determinism: cells are enumerated in a fixed grid order and every cell is
// hermetic -- its own graph instance, planner, engine, and cache; no shared
// mutable state -- so the counters are bit-identical no matter how many
// threads execute the sweep (a property the tests assert). A cell that
// fails (unknown key, inapplicable strategy, no bounded partition) records
// its error string instead of aborting the sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/planner.h"
#include "iomodel/types.h"
#include "partition/registry.h"
#include "placement/footprint.h"
#include "runtime/engine.h"
#include "runtime/run_result.h"
#include "schedule/registry.h"
#include "workloads/arrivals.h"
#include "workloads/registry.h"

namespace ccs::core {

/// The online-serving slice of a sweep: arrival patterns x tenant counts,
/// each cell a multi-tenant core::Server scenario (N identical tenants of
/// the workload on one shared cache, fed by the pattern for `ticks` ticks,
/// then drained). Empty `arrivals` disables online cells.
struct OnlineSweep {
  std::vector<std::string> arrivals;        ///< workloads::ArrivalRegistry keys.
  std::vector<std::int32_t> tenant_counts{1};
  std::string tenant_policy = "round-robin";  ///< core::TenantRegistry key.
  std::string online_policy = "auto";         ///< schedule::OnlineRegistry key.
  std::int64_t ticks = 128;                   ///< Pushes per tenant.
};

/// The multicore slice of a sweep: arrival patterns x tenant counts x
/// worker counts x placement policies, each cell a core::Cluster scenario
/// (N identical tenants of the workload sharded over W workers, fed by the
/// pattern for `ticks` ticks in deterministic virtual time with a
/// rebalance() at every tick boundary, then drained). Empty `arrivals`
/// disables cluster cells.
struct ClusterSweep {
  std::vector<std::string> arrivals;          ///< workloads::ArrivalRegistry keys.
  std::vector<std::int32_t> tenant_counts{2};
  std::vector<std::int32_t> worker_counts{2};
  std::vector<std::string> placements{"round-robin"};  ///< PlacementRegistry keys.
  std::string online_policy = "auto";         ///< schedule::OnlineRegistry key.

  /// Shared-LLC capacity as a multiple of the (augmented) per-worker L1;
  /// 0 runs the workers on independent flat caches.
  std::int64_t llc_factor = 8;

  /// LLC lock strategy for every cluster cell: 0 = single-mutex flat LLC,
  /// >= 1 = address-striped ShardedLruCache with that many stripes (power
  /// of two). Ignored when llc_factor == 0. See WorkerPoolOptions.
  std::int32_t llc_shards = 0;

  std::int64_t ticks = 128;                   ///< Pushes per tenant.

  /// Latency/SLO axis: cost models to sweep (latency::CostModelRegistry
  /// keys; empty = {"uniform"}, which keeps every legacy counter
  /// bit-identical) and an optional per-step p99 target in modeled cycles
  /// (0 = no SLO; attainment is then trivially all tenants).
  std::vector<std::string> cost_models;
  std::int64_t slo_p99 = 0;

  /// Trigger thresholds for "adaptive" placement cells (ignored by the
  /// static keys), so a sweep can put adaptive-with-migration-disabled next
  /// to "affinity" in the same grid and diff the rows.
  placement::AdaptiveOptions adaptive;

  /// Churn lifecycle axis: 0 (the default) keeps the steady tick loop
  /// above. > 0 replaces it -- every cluster cell drives a
  /// workloads::churn_trace of that many logical sessions (open / bursty
  /// push / close, at most churn_max_live open at once), exercising
  /// admission control and -- with `swap` -- the idle-session swap tier.
  /// `tenant_counts` is ignored for churn cells (the trace decides).
  std::int64_t churn_sessions = 0;
  std::int64_t churn_max_live = 8;    ///< Concurrent-open bound of the trace.
  std::int64_t churn_pushes = 4;      ///< Bursts per session.
  std::int64_t churn_items = 64;      ///< Arrivals per burst.

  /// Lifecycle knobs forwarded to every cluster cell's ClusterOptions
  /// (meaningful with or without churn).
  std::string admission = "unbounded";  ///< session::AdmissionRegistry key.
  std::int64_t max_live_sessions = 0;   ///< Budget for "bounded-live"; 0 = no limit.
  bool swap = false;                    ///< Enable the idle-session swap tier.
  std::int64_t band_words = std::int64_t{1} << 36;  ///< Per-session address band.
};

/// The sweep grid, by registry keys. Cells are enumerated workload-major:
/// for each workload, for each cache, every partitioner at every
/// t_multiplier, then every baseline scheduler (baselines have no batch
/// parameter, so they run once per cache), then every online cell (arrival
/// pattern x tenant count), then every cluster cell (arrival pattern x
/// tenant count x worker count x placement).
struct SweepSpec {
  std::vector<std::string> workloads;      ///< workloads::Registry keys.
  std::vector<iomodel::CacheConfig> caches;
  std::vector<std::string> partitioners;   ///< partition::Registry keys or "auto".
  std::vector<std::string> baselines;      ///< schedule::Registry keys (optional).
  OnlineSweep online;                      ///< Online-serving cells (optional).
  ClusterSweep cluster;                    ///< Multicore cluster cells (optional).
  std::vector<std::int64_t> t_multipliers{1};

  double c_bound = 3.0;                ///< Planner state bound (c * M).
  std::int32_t exact_max_nodes = 20;   ///< Gate for "auto"/plan_all exact.
  std::uint64_t seed = 1;              ///< For randomized partitioners.

  /// Simulate on sim_capacity_factor * M (the paper's constant-factor
  /// memory augmentation; Theorem 5 regime). 1.0 measures at M itself.
  double sim_capacity_factor = 4.0;

  std::int64_t target_outputs = 1024;  ///< Sink firings per measurement.

  /// Measurements per cell (>= 1). Repetitions reuse the cell's engine via
  /// Engine::rebind_cache against a fresh cache; all repetitions must agree
  /// counter-for-counter or the cell is marked failed (a tripwire for
  /// non-determinism in strategies or the runtime).
  std::int32_t repetitions = 1;

  runtime::EngineOptions engine;       ///< Per-cell engine knobs.
};

/// One evaluated grid cell. Coordinate fields are always filled; result
/// fields only when ok.
struct CellResult {
  // -- coordinates --
  std::string workload;
  iomodel::CacheConfig cache;
  std::string strategy;             ///< Partitioner key or baseline scheduler key.
  bool is_baseline = false;         ///< True: strategy names a baseline scheduler.
  bool is_online = false;           ///< True: an online multi-tenant serving cell.
  bool is_cluster = false;          ///< True: a multicore cluster cell.
  std::string arrival;              ///< Arrival-pattern key (online/cluster cells).
  std::int32_t tenants = 0;         ///< Tenant count (online/cluster cells).
  std::int32_t workers = 0;         ///< Worker count (cluster cells only).
  std::string placement;            ///< Placement key (cluster cells only).
  std::string cost_model;           ///< Latency cost model (cluster cells only).
  std::int64_t t_multiplier = 1;    ///< Always 1 for baselines and online cells.

  // -- outcome --
  bool ok = false;
  std::string error;                ///< Why the cell failed (ok == false).

  // -- plan statistics (partitioner cells only) --
  std::string resolved_strategy;    ///< "auto" resolved to this key.
  std::int32_t components = 0;
  std::int64_t batch_t = 0;
  double bandwidth = 0.0;           ///< Partition bandwidth (as double).
  double predicted_misses_per_input = 0.0;

  // -- measurement --
  std::string schedule_name;
  std::int64_t buffer_words = 0;
  runtime::RunResult run;           ///< Accumulated counters (online cells:
                                    ///< the shared-cache aggregate).
  double misses_per_input = 0.0;
  double misses_per_output = 0.0;
  std::int64_t server_steps = 0;    ///< Multiplexing decisions (online/cluster cells).
  std::int64_t cluster_makespan = 0;    ///< Max worker busy time (cluster cells).
  std::int64_t cluster_migrations = 0;  ///< Sessions moved (cluster cells).
  std::int64_t cluster_auto_migrations = 0;  ///< Moves adaptive placement triggered.
  std::int64_t cluster_peak_live = 0;   ///< Peak resident sessions (cluster cells)
                                        ///< -- the O(live) claim, machine-checkable.
  std::int64_t cluster_p50 = 0;     ///< Aggregate per-step latency percentiles in
  std::int64_t cluster_p95 = 0;     ///< modeled cycles (cluster cells; 0 when the
  std::int64_t cluster_p99 = 0;     ///< histogram is empty).
  std::int32_t cluster_slo_ok = 0;  ///< Tenants whose p99 met ClusterSweep::slo_p99
                                    ///< (all tenants when no SLO is set).
};

/// Structured sweep output.
struct ExperimentResult {
  std::vector<CellResult> cells;  ///< Grid order (independent of threads).
  std::int32_t threads = 1;       ///< Pool size this result was produced with.
  double wall_seconds = 0.0;      ///< Sweep wall-clock (depends on threads).

  std::size_t failed_cells() const;

  /// One row per cell with a header line. Stable column set, suitable for
  /// plotting scripts; strings are quoted only when they need escaping.
  void write_csv(std::ostream& os) const;

  /// `{"threads": ..., "wall_seconds": ..., "cells": [{...}, ...]}`.
  void write_json(std::ostream& os) const;
};

/// A configured sweep. Construction only captures the spec and registries;
/// run() executes the grid.
class Experiment {
 public:
  /// Null registries default to the process-wide instances; pass isolated
  /// registries to pin exactly which strategies a sweep can see. The
  /// registries must outlive the experiment.
  explicit Experiment(SweepSpec spec,
                      const workloads::Registry* workload_registry = nullptr,
                      const partition::Registry* partitioner_registry = nullptr,
                      const schedule::Registry* scheduler_registry = nullptr,
                      const workloads::ArrivalRegistry* arrival_registry = nullptr);

  const SweepSpec& spec() const noexcept { return spec_; }

  /// Number of grid cells run() will evaluate.
  std::size_t cell_count() const;

  /// Executes every cell on `threads` pool workers (clamped to >= 1) and
  /// returns the filled grid. Cell failures are recorded per cell; this
  /// only throws for a structurally empty spec (no workloads, no caches, or
  /// no strategies at all).
  ExperimentResult run(std::int32_t threads = 1) const;

 private:
  struct Coordinate;  // defined in experiment.cc

  std::vector<Coordinate> enumerate() const;
  CellResult run_cell(const Coordinate& at) const;
  void run_online_cell(const Coordinate& at, CellResult& cell) const;
  void run_cluster_cell(const Coordinate& at, CellResult& cell) const;

  SweepSpec spec_;
  const workloads::Registry* workloads_;
  const partition::Registry* partitioners_;
  const schedule::Registry* schedulers_;
  const workloads::ArrivalRegistry* arrivals_;
};

}  // namespace ccs::core
