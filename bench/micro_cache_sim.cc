// Microbenchmark: cache simulator throughput (google-benchmark).
//
// The experiment harness's wall-clock time is dominated by simulated memory
// accesses; these benches track accesses/second for each cache variant so
// regressions in the hot path are caught.

#include <benchmark/benchmark.h>

#include "iomodel/cache.h"
#include "iomodel/opt_cache.h"
#include "util/rng.h"

namespace {

using namespace ccs::iomodel;

void BM_LruSequential(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  Addr a = 0;
  for (auto _ : state) {
    cache.access(a, AccessMode::kRead);
    a = (a + 8) % (256 * 1024);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruSequential);

void BM_LruRandom(benchmark::State& state) {
  LruCache cache(CacheConfig{64 * 1024, 8});
  ccs::Rng rng(1);
  for (auto _ : state) {
    cache.access(rng.uniform(0, 1 << 22), AccessMode::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruRandom);

void BM_LruHot(benchmark::State& state) {
  // All hits: the common case when a component is resident.
  LruCache cache(CacheConfig{64 * 1024, 8});
  ccs::Rng rng(2);
  for (auto _ : state) {
    cache.access(rng.uniform(0, 32 * 1024), AccessMode::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruHot);

void BM_SetAssociativeRandom(benchmark::State& state) {
  SetAssociativeCache cache(CacheConfig{64 * 1024, 8}, 8);
  ccs::Rng rng(3);
  for (auto _ : state) {
    cache.access(rng.uniform(0, 1 << 22), AccessMode::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssociativeRandom);

void BM_OptOffline(benchmark::State& state) {
  ccs::Rng rng(4);
  std::vector<BlockId> trace;
  trace.reserve(100000);
  for (int i = 0; i < 100000; ++i) trace.push_back(rng.uniform(0, 4096));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_misses(trace, 512));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_OptOffline);

}  // namespace

BENCHMARK_MAIN();
