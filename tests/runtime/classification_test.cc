// Classified miss accounting: state vs channel vs external IO.
#include <gtest/gtest.h>

#include "iomodel/cache.h"
#include "runtime/engine.h"
#include "sdf/min_buffer.h"
#include "workloads/pipelines.h"

namespace ccs::runtime {
namespace {

using iomodel::CacheConfig;
using iomodel::LruCache;
using sdf::NodeId;

TEST(Classification, PartsSumToTotal) {
  const auto g = ccs::workloads::uniform_pipeline(6, 64);
  LruCache cache(CacheConfig{1024, 8});
  Engine engine(g, sdf::feasible_buffers(g), cache);
  std::vector<NodeId> seq;
  for (int iter = 0; iter < 5; ++iter) {
    for (NodeId v = 0; v < 6; ++v) seq.push_back(v);
  }
  const RunResult r = engine.run(seq);
  EXPECT_EQ(r.state_misses + r.channel_misses + r.io_misses, r.cache.misses);
  EXPECT_GT(r.state_misses, 0);
}

TEST(Classification, ThrashingShowsUpAsStateMisses) {
  // Cache holds one module's state at a time: every firing reloads state.
  const auto g = ccs::workloads::uniform_pipeline(4, 512);
  LruCache cache(CacheConfig{1024, 8});
  EngineOptions opts;
  opts.model_external_io = false;
  Engine engine(g, sdf::feasible_buffers(g), cache, opts);
  std::vector<NodeId> seq;
  for (int iter = 0; iter < 4; ++iter) {
    for (NodeId v = 0; v < 4; ++v) seq.push_back(v);
  }
  const RunResult r = engine.run(seq);
  EXPECT_GT(r.state_misses, r.channel_misses * 10);
  EXPECT_EQ(r.io_misses, 0);
}

TEST(Classification, ExternalIoIsolated) {
  const auto g = ccs::workloads::uniform_pipeline(2, 8);
  LruCache cache(CacheConfig{4096, 8});
  Engine engine(g, sdf::feasible_buffers(g), cache);
  std::vector<NodeId> seq;
  for (int i = 0; i < 64; ++i) {
    seq.push_back(0);
    seq.push_back(1);
  }
  const RunResult r = engine.run(seq);
  // 64 reads (8 blocks) + 64 writes (8 blocks) of external streams.
  EXPECT_EQ(r.io_misses, 16);
}

TEST(Classification, DeltasResetBetweenRuns) {
  const auto g = ccs::workloads::uniform_pipeline(2, 64);
  LruCache cache(CacheConfig{4096, 8});
  Engine engine(g, sdf::feasible_buffers(g), cache);
  const std::vector<NodeId> seq{0, 1};
  const RunResult r1 = engine.run(seq);
  const RunResult r2 = engine.run(seq);
  EXPECT_GT(r1.state_misses, 0);
  EXPECT_EQ(r2.state_misses, 0);  // resident on the second run
}

}  // namespace
}  // namespace ccs::runtime
