#include "sdf/gain.h"

#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::sdf {

GainMap::GainMap(const SdfGraph& g) : source_(kInvalidNode) {
  if (g.node_count() == 0) throw GraphError("gain of empty graph");
  const auto sources = g.sources();
  if (sources.size() != 1) {
    throw GraphError("gain computation requires exactly one source, found " +
                     std::to_string(sources.size()));
  }
  source_ = sources.front();

  node_gain_.assign(static_cast<std::size_t>(g.node_count()), Rational(0));
  edge_gain_.assign(static_cast<std::size_t>(g.edge_count()), Rational(0));
  std::vector<bool> assigned(static_cast<std::size_t>(g.node_count()), false);

  const auto order = topological_sort(g);
  CCS_CHECK(order.front() == source_, "single source must lead the topological order");
  node_gain_[static_cast<std::size_t>(source_)] = Rational(1);
  assigned[static_cast<std::size_t>(source_)] = true;

  for (const NodeId u : order) {
    const auto ui = static_cast<std::size_t>(u);
    if (!assigned[ui]) {
      // Unreachable from the source; with a unique source this means a
      // disconnected piece, which has no well-defined gain.
      throw GraphError("module '" + g.node(u).name + "' unreachable from source");
    }
    for (const EdgeId e : g.out_edges(u)) {
      const Edge& edge = g.edge(e);
      const Rational through =
          node_gain_[ui] * Rational(edge.out_rate, edge.in_rate);
      edge_gain_[static_cast<std::size_t>(e)] = node_gain_[ui] * Rational(edge.out_rate);
      const auto di = static_cast<std::size_t>(edge.dst);
      if (!assigned[di]) {
        node_gain_[di] = through;
        assigned[di] = true;
      } else if (node_gain_[di] != through) {
        throw RateError("graph is not rate matched: paths to '" + g.node(edge.dst).name +
                        "' disagree (" + node_gain_[di].to_string() + " vs " +
                        through.to_string() + ")");
      }
    }
  }
}

bool is_rate_matched(const SdfGraph& g) {
  try {
    GainMap gains(g);
    return true;
  } catch (const RateError&) {
    return false;
  }
}

}  // namespace ccs::sdf
