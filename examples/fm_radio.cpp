// FM radio frontend (StreamIt-style): a realistic multirate application run
// through the planner and the registered baseline schedulers across a sweep
// of cache sizes.
//
//   $ ./fm_radio [--bands=10] [--outputs=2048] [--csv]
//
// Demonstrates: workload registry, baseline schedulers by name
// (schedule::Registry), one Planner session reused per cache size,
// per-module miss attribution, and CSV output for plotting.

#include <algorithm>
#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "schedule/registry.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("fm_radio", "scheduler comparison on the FM radio app");
  args.add_int("bands", 10, "equalizer bands");
  args.add_int("outputs", 2048, "sink firings per measurement");
  args.add_flag("csv", "emit CSV instead of an aligned table");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::fm_radio(static_cast<std::int32_t>(args.get_int("bands")));
    const std::int64_t outputs = args.get_int("outputs");
    std::cout << "FMRadio: " << g << "\n\n";

    auto& schedulers = schedule::Registry::global();
    Table t("misses/output vs cache size (B = 8 words)");
    t.set_header({"M (words)", "naive", "scaled", "partitioned", "naive/partitioned"});
    for (const std::int64_t m : {128, 256, 512, 1024}) {
      if (g.max_state() > m) continue;
      core::PlannerOptions opts;
      opts.cache.capacity_words = m;
      opts.cache.block_words = 8;
      const core::Planner planner(g, opts);
      const auto plan = planner.plan();
      const iomodel::CacheConfig sim{4 * m, 8};
      const schedule::SchedulerContext ctx{m, 8};
      const auto r_naive = core::simulate(g, schedulers.build("naive", g, ctx), sim, outputs);
      const auto r_scaled = core::simulate(g, schedulers.build("scaled", g, ctx), sim, outputs);
      const auto r_part = core::simulate(g, plan.schedule, sim, outputs);
      t.add_row({Table::num(m), Table::num(r_naive.misses_per_output(), 3),
                 Table::num(r_scaled.misses_per_output(), 3),
                 Table::num(r_part.misses_per_output(), 3),
                 Table::ratio(r_naive.misses_per_output() / r_part.misses_per_output(), 1)});
    }
    if (args.get_flag("csv")) t.print_csv(std::cout);
    else t.print(std::cout);

    // Show where the misses land: per-module attribution under the naive
    // schedule at the smallest cache.
    const auto naive = schedulers.build("naive", g, {1024, 8});
    const auto r = core::simulate(g, naive, iomodel::CacheConfig{1024, 8}, outputs);
    Table hot("hottest modules under naive scheduling (M=1024)");
    hot.set_header({"module", "misses"});
    hot.set_align({Align::kLeft, Align::kRight});
    std::vector<std::pair<std::int64_t, sdf::NodeId>> ranked;
    for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
      ranked.emplace_back(r.node_misses[static_cast<std::size_t>(v)], v);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
      hot.add_row({g.node(ranked[i].second).name, Table::num(ranked[i].first)});
    }
    std::cout << "\n";
    hot.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
