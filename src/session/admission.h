// Admission control: should this serving endpoint accept another session?
//
// An AdmissionPolicy answers one question at admit() time -- given the
// endpoint's current load and a budget, may a candidate session become
// resident? -- and is deliberately ignorant of *how* the endpoint makes
// room (that is the swap tier's job). Policies are resolved by name
// through AdmissionRegistry, exactly like partitioners and placements:
//
//  * "unbounded"      -- always admit (the pre-lifecycle behaviour);
//  * "bounded-live"   -- at most `max_live_sessions` resident sessions;
//  * "bounded-memory" -- resident layout words (state + rings) must stay
//                        within `max_resident_words` after the admit.
//
// A refusal is not final: when the endpoint has a swap tier, it evicts the
// least-recently-active idle session and retries, counting the admission
// as "queued" rather than "rejected" (LifecycleCounters).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/registry.h"

namespace ccs::session {

/// Limits an AdmissionPolicy enforces. A zero field means "no limit on
/// this axis" (so the default budget admits everything under every
/// built-in policy).
struct AdmissionBudget {
  std::int64_t max_live_sessions = 0;   ///< Cap on resident sessions; 0 = none.
  std::int64_t max_resident_words = 0;  ///< Cap on resident layout words; 0 = none.
};

/// The endpoint's load at the moment of the admission decision.
struct AdmissionLoad {
  std::int64_t live_sessions = 0;   ///< Resident sessions right now.
  std::int64_t resident_words = 0;  ///< Their summed layout words.
};

/// The candidate session.
struct AdmissionRequest {
  std::int64_t layout_words = 0;  ///< State + channel rings it would occupy.
};

/// One admission decision rule. Implementations must be pure functions of
/// (budget, load, request) -- determinism gates byte-diff report JSON.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// True iff the candidate may become resident right now.
  virtual bool admits(const AdmissionLoad& load, const AdmissionRequest& request) const = 0;

  /// The registry key this policy was built under.
  virtual std::string name() const = 0;
};

/// A named admission policy factory.
struct AdmissionEntry {
  /// Builds the policy for a budget (must be deterministic).
  std::function<std::unique_ptr<AdmissionPolicy>(const AdmissionBudget&)> build;

  /// One-line description for --help style listings.
  std::string description;
};

/// String-keyed admission-policy table. See util/registry.h for the shared
/// add/find/keys semantics (duplicate and unknown keys throw ccs::Error
/// listing the valid alternatives).
class AdmissionRegistry : public NamedRegistry<AdmissionEntry> {
 public:
  AdmissionRegistry()
      : NamedRegistry<AdmissionEntry>("admission policy", "admission policies") {}

  /// The process-wide registry, seeded with the built-ins on first use.
  static AdmissionRegistry& global();

  /// Looks up `name` and builds the policy for `budget`. Throws ccs::Error
  /// (listing valid keys) for unknown names.
  std::unique_ptr<AdmissionPolicy> build(const std::string& name,
                                         const AdmissionBudget& budget) const;
};

/// Registers the built-ins into `r` (used by global(); exposed so tests can
/// build isolated registries): unbounded, bounded-live, bounded-memory.
void register_builtin_admission(AdmissionRegistry& r);

}  // namespace ccs::session
