#include "latency/cost_model.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace ccs::latency {

namespace {

/// Deterministic contenders-per-stripe estimate for the llc-shared model:
/// of `workers` cores, up to workers - 1 others can collide with a given
/// miss, spread over the LLC's lock stripes (a flat single-mutex backend is
/// one stripe). Pure configuration -- measured stripe occupancy would vary
/// with thread interleaving and break the determinism gates.
std::int64_t contenders_per_stripe(const CostContext& ctx) {
  const std::int64_t others = std::max(0, ctx.workers - 1);
  const std::int64_t stripes = std::max(1, ctx.llc_shards);
  return (others + stripes - 1) / stripes;
}

}  // namespace

CostModel::CostModel(std::string key, std::int64_t firing_cycles,
                     const std::vector<LevelCost>& levels,
                     std::int64_t contention_cycles)
    : key_(std::move(key)), firing_cycles_(firing_cycles) {
  CCS_EXPECTS(firing_cycles_ >= 0, "firing cycles must be non-negative");
  CCS_EXPECTS(contention_cycles >= 0, "contention cycles must be non-negative");
  if (!levels.empty()) {
    const LevelCost& l1 = levels.front();
    CCS_EXPECTS(l1.lookup >= 0 && l1.hit >= 0 && l1.miss >= 0 && l1.writeback >= 0,
                "level costs must be non-negative");
    access_costs_.access = l1.lookup;
    access_costs_.hit = l1.hit;
    access_costs_.miss = l1.miss;
    access_costs_.writeback = l1.writeback;
  }
  // Levels beyond the private L1 are modeled, not measured: each L1 miss is
  // charged the deeper level's lookup + miss service (its own hit/miss
  // split is interleaving-dependent under threads, so pricing it would
  // break determinism -- see the file comment).
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const LevelCost& deeper = levels[i];
    CCS_EXPECTS(deeper.lookup >= 0 && deeper.hit >= 0 && deeper.miss >= 0 &&
                    deeper.writeback >= 0,
                "level costs must be non-negative");
    access_costs_.miss += deeper.lookup + deeper.miss;
    access_costs_.writeback += deeper.writeback;
  }
  access_costs_.miss += contention_cycles;
}

CostModelRegistry& CostModelRegistry::global() {
  static CostModelRegistry instance;
  static const bool initialized = (register_builtin_cost_models(instance), true);
  (void)initialized;
  return instance;
}

CostModel CostModelRegistry::build(const std::string& name, const CostContext& ctx) const {
  return find(name).build(ctx);
}

void register_builtin_cost_models(CostModelRegistry& r) {
  r.add("uniform",
        {[](const CostContext&) { return CostModel(); },
         "1 cycle per firing, zero cache cost (cost == firings; the "
         "strict-extension baseline)"});
  r.add("two-level",
        {[](const CostContext&) {
           // L1: 1-cycle lookup, 1 more on a hit, 4 per dirty eviction.
           // Next level (LLC or memory): 30-cycle modeled service per L1
           // miss. Round numbers on purpose -- the model's job is to spread
           // step costs across orders of magnitude so tails are visible,
           // not to mimic one microarchitecture.
           return CostModel("two-level", 1,
                            {{/*lookup=*/1, /*hit=*/1, /*miss=*/0, /*writeback=*/4},
                             {/*lookup=*/10, /*hit=*/0, /*miss=*/20, /*writeback=*/0}},
                            /*contention_cycles=*/0);
         },
         "1-cycle L1 lookup + 1-cycle hit; an L1 miss pays a modeled "
         "30-cycle next level; 4 cycles per writeback"});
  r.add("llc-shared",
        {[](const CostContext& ctx) {
           // two-level plus 4 cycles per expected contender on the LLC
           // stripe an L1 miss serializes through. With one worker (or no
           // LLC to contend on) the surcharge is zero and the model prices
           // exactly like two-level.
           const std::int64_t surcharge =
               ctx.has_llc ? 4 * contenders_per_stripe(ctx) : 0;
           return CostModel("llc-shared", 1,
                            {{/*lookup=*/1, /*hit=*/1, /*miss=*/0, /*writeback=*/4},
                             {/*lookup=*/10, /*hit=*/0, /*miss=*/20, /*writeback=*/0}},
                            surcharge);
         },
         "two-level plus a deterministic contention surcharge per L1 miss: "
         "4 cycles x ceil((workers-1)/stripes), from configuration only"});
}

}  // namespace ccs::latency
