#include "partition/dag_exact.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sdf/gain.h"
#include "util/error.h"

namespace ccs::partition {

namespace {

using Mask = std::uint64_t;

struct DpEntry {
  Rational cost;
  Mask parent_ideal = 0;  // the ideal this one extends
  bool reached = false;
};

}  // namespace

std::optional<ExactResult> dag_exact_partition(const sdf::SdfGraph& g,
                                               const ExactOptions& options) {
  CCS_EXPECTS(options.state_bound > 0, "state bound must be positive");
  const std::int32_t n = g.node_count();
  if (n > options.max_nodes || n > 63) return std::nullopt;
  if (g.max_state() > options.state_bound) {
    throw Error("a module exceeds the state bound; no bounded partition exists");
  }
  const sdf::GainMap gains(g);

  std::vector<Mask> preds(static_cast<std::size_t>(n), 0);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    preds[static_cast<std::size_t>(g.edge(e).dst)] |= Mask{1}
                                                      << static_cast<std::uint32_t>(
                                                             g.edge(e).src);
  }
  std::vector<std::int64_t> state(static_cast<std::size_t>(n));
  for (sdf::NodeId v = 0; v < n; ++v) state[static_cast<std::size_t>(v)] = g.node(v).state;

  const Mask full = (n == 63) ? ~Mask{0} >> 1 : (Mask{1} << static_cast<std::uint32_t>(n)) - 1;

  // Cost of adding component T on top of ideal S: gains of edges from S to T.
  auto extension_cost = [&](Mask s, Mask t) {
    Rational cost(0);
    Mask rest = t;
    while (rest != 0) {
      const auto v = static_cast<sdf::NodeId>(std::countr_zero(rest));
      rest &= rest - 1;
      for (const sdf::EdgeId e : g.in_edges(v)) {
        if (s & (Mask{1} << static_cast<std::uint32_t>(g.edge(e).src))) {
          cost += gains.edge_gain(e);
        }
      }
    }
    return cost;
  };

  std::unordered_map<Mask, DpEntry> dp;
  dp[0] = DpEntry{Rational(0), 0, true};
  // Process ideals in increasing popcount so every predecessor is final
  // before its extensions are generated.
  std::vector<Mask> frontier{0};
  std::unordered_set<Mask> queued{0};
  std::int64_t transitions = 0;

  for (std::int32_t level = 0; level <= n; ++level) {
    std::vector<Mask> next_frontier;
    for (const Mask s : frontier) {
      if (std::popcount(s) != level) continue;
      const DpEntry base = dp.at(s);

      // Grow T node-by-node; every partial T with state within bound is a
      // legal component, so each growth step both records a transition and
      // recurses. Visited-set avoids re-walking permutations of the same T.
      std::unordered_set<Mask> seen_t;
      std::vector<Mask> stack{0};
      seen_t.insert(0);
      while (!stack.empty()) {
        const Mask t = stack.back();
        stack.pop_back();
        const Mask st = s | t;
        for (sdf::NodeId v = 0; v < n; ++v) {
          const Mask bit = Mask{1} << static_cast<std::uint32_t>(v);
          if (st & bit) continue;
          if ((preds[static_cast<std::size_t>(v)] & ~st) != 0) continue;  // not available
          const Mask t2 = t | bit;
          if (!seen_t.insert(t2).second) continue;
          // State bound check.
          std::int64_t t_state = 0;
          Mask rest = t2;
          while (rest != 0) {
            t_state += state[static_cast<std::size_t>(std::countr_zero(rest))];
            rest &= rest - 1;
          }
          if (t_state > options.state_bound) continue;
          stack.push_back(t2);

          if (++transitions > options.max_transitions) return std::nullopt;
          const Mask s2 = s | t2;
          const Rational cost = base.cost + extension_cost(s, t2);
          auto [it, inserted] = dp.try_emplace(s2, DpEntry{cost, s, true});
          if (!inserted && cost < it->second.cost) {
            it->second.cost = cost;
            it->second.parent_ideal = s;
          }
          if (queued.insert(s2).second) next_frontier.push_back(s2);
        }
      }
    }
    // Merge: ideals of popcount level+1 .. appear in next_frontier; keep all
    // pending ideals around until their level is processed.
    frontier.insert(frontier.end(), next_frontier.begin(), next_frontier.end());
    if (dp.count(full) && level == n) break;
  }

  const auto it = dp.find(full);
  CCS_CHECK(it != dp.end(), "full ideal must be reachable (singletons always work)");

  // Walk parents to recover components (in reverse peel order).
  std::vector<std::vector<sdf::NodeId>> comps;
  Mask cur = full;
  while (cur != 0) {
    const Mask parent = dp.at(cur).parent_ideal;
    Mask t = cur & ~parent;
    std::vector<sdf::NodeId> comp;
    while (t != 0) {
      comp.push_back(static_cast<sdf::NodeId>(std::countr_zero(t)));
      t &= t - 1;
    }
    comps.push_back(std::move(comp));
    cur = parent;
  }
  std::reverse(comps.begin(), comps.end());

  ExactResult result;
  result.partition = Partition::from_components(g, comps);
  result.bandwidth = it->second.cost;
  return result;
}

std::optional<Rational> min_bandwidth(const sdf::SdfGraph& g, std::int64_t state_bound,
                                      std::int32_t max_nodes) {
  ExactOptions options;
  options.state_bound = state_bound;
  options.max_nodes = max_nodes;
  const auto result = dag_exact_partition(g, options);
  if (!result.has_value()) return std::nullopt;
  return result->bandwidth;
}

}  // namespace ccs::partition
