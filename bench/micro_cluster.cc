// Microbenchmark: multicore cluster serving throughput (google-benchmark).
//
// Sessions are independent, so a cluster's model throughput -- outputs per
// unit of virtual time, where makespan is the busiest worker's firings --
// should scale near-linearly with worker count while there are enough
// sessions to go around. BM_ClusterServe sweeps 1/2/4 workers over four
// tenant sessions and records two counters per run:
//
//   * model_throughput  -- outputs / virtual makespan (the paper-§7 scaling
//                          claim; recorded in BENCH_PR5.json);
//   * migrations        -- placements moved during the run.
//
// Wall-clock items/s measures simulator overhead (the virtual-time stepper
// is serial by construction, so it does NOT scale with workers -- the model
// counters are the scaling story). BM_ParallelPool covers the E14-style
// component-parallel simulator on the same WorkerPool substrate.

#include <benchmark/benchmark.h>

#include "core/cluster.h"
#include "partition/dag_greedy.h"
#include "partition/pipeline_dp.h"
#include "runtime/worker_pool.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace {

using namespace ccs;

constexpr std::int64_t kM = 1024;
constexpr std::int64_t kTicks = 16;
constexpr std::int64_t kItemsPerTick = 256;
constexpr std::int32_t kTenants = 4;

/// Four independent pipeline sessions served for kTicks steady ticks.
void BM_ClusterServe(benchmark::State& state) {
  const auto workers = static_cast<std::int32_t>(state.range(0));
  const auto g = workloads::uniform_pipeline(12, 200);
  const auto p = partition::pipeline_optimal_partition(g, 3 * kM).partition;
  std::int64_t outputs = 0;
  double model_throughput = 0.0;
  std::int64_t migrations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ClusterOptions opts;
    opts.workers = workers;
    opts.l1 = {4 * kM, 8};
    opts.llc_words = 16 * kM;
    opts.placement = "affinity";
    core::Cluster cluster(opts);
    core::StreamOptions sopts;
    sopts.engine.per_node_attribution = false;
    for (std::int32_t t = 0; t < kTenants; ++t) {
      cluster.admit("t" + std::to_string(t), g, p, sopts, kM);
    }
    state.ResumeTiming();
    for (std::int64_t tick = 0; tick < kTicks; ++tick) {
      for (core::TenantId t = 0; t < cluster.tenant_count(); ++t) {
        cluster.push(t, kItemsPerTick);
      }
      cluster.rebalance();
      cluster.run_until_idle();
    }
    cluster.drain_all();
    const auto report = cluster.report();
    outputs += report.aggregate.sink_firings;
    migrations = report.migrations;
    model_throughput = report.makespan() > 0
                           ? static_cast<double>(report.aggregate.sink_firings) /
                                 static_cast<double>(report.makespan())
                           : 0.0;
  }
  state.SetItemsProcessed(outputs);
  state.counters["model_throughput"] = model_throughput;
  state.counters["migrations"] = static_cast<double>(migrations);
}
BENCHMARK(BM_ClusterServe)->Arg(1)->Arg(2)->Arg(4);

/// E14-style component-parallel simulation on the WorkerPool substrate.
void BM_ParallelPool(benchmark::State& state) {
  const auto workers = static_cast<std::int32_t>(state.range(0));
  Rng rng(1414);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 6;
  spec.state_lo = 150;
  spec.state_hi = 300;
  spec.edge_prob = 0.15;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const auto p = partition::dag_greedy_partition(g, 900);
  std::int64_t outputs = 0;
  double model_throughput = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::WorkerPool pool(runtime::WorkerPoolOptions{workers, {4096, 8}, 65536});
    state.ResumeTiming();
    const auto r = core::simulate_parallel_on_pool(g, p, 128, pool, 4096);
    outputs += r.outputs;
    model_throughput = r.makespan > 0 ? static_cast<double>(r.outputs) /
                                            static_cast<double>(r.makespan)
                                      : 0.0;
  }
  state.SetItemsProcessed(outputs);
  state.counters["model_throughput"] = model_throughput;
}
BENCHMARK(BM_ParallelPool)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
