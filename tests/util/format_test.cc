#include "util/format.h"

#include <gtest/gtest.h>

namespace ccs {
namespace {

TEST(Format, CountGrouping) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-1234), "-1,234");
}

TEST(Format, Words) {
  EXPECT_EQ(format_words(12), "12 w");
  EXPECT_EQ(format_words(2048), "2.0 Kw");
  EXPECT_EQ(format_words(3 * 1024 * 1024), "3.0 Mw");
}

}  // namespace
}  // namespace ccs
