// Runtime contract checking (C++ Core Guidelines I.6 / I.8 style).
//
// The library uses three macros:
//   CCS_EXPECTS(cond, msg)  -- precondition at an API boundary
//   CCS_ENSURES(cond, msg)  -- postcondition at an API boundary
//   CCS_CHECK(cond, msg)    -- internal invariant
//
// All three throw ccs::ContractViolation on failure. Contracts stay enabled
// in release builds: this library is a research artifact whose correctness
// claims matter more than the last few percent of simulator throughput. Hot
// loops that have been profiled may use CCS_ASSERT, which compiles away in
// NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace ccs {

/// Thrown when a CCS_EXPECTS / CCS_ENSURES / CCS_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* cond, const char* file,
                                int line, const std::string& msg);
}  // namespace detail

#define CCS_CONTRACT_IMPL(kind, cond, msg)                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ccs::detail::contract_fail(kind, #cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (false)

#define CCS_EXPECTS(cond, msg) CCS_CONTRACT_IMPL("precondition", cond, msg)
#define CCS_ENSURES(cond, msg) CCS_CONTRACT_IMPL("postcondition", cond, msg)
#define CCS_CHECK(cond, msg) CCS_CONTRACT_IMPL("invariant", cond, msg)

#ifdef NDEBUG
#define CCS_ASSERT(cond, msg) ((void)0)
#else
#define CCS_ASSERT(cond, msg) CCS_CONTRACT_IMPL("assertion", cond, msg)
#endif

}  // namespace ccs
