#include "runtime/worker_pool.h"

#include "util/contracts.h"
#include "util/error.h"
#include "util/int_math.h"

namespace ccs::runtime {

WorkerPool::WorkerPool(WorkerPoolOptions options) : options_(options) {
  if (options_.workers < 1) throw Error("worker pool needs at least one worker");
  if (options_.l1.block_words <= 0) {
    throw MemoryError("worker cache block size must be positive");
  }
  if (options_.l1.capacity_words < options_.l1.block_words) {
    throw MemoryError("worker cache must hold at least one block");
  }
  if (options_.llc_words < 0) throw Error("shared LLC capacity must be non-negative");
  if (options_.llc_shards < 0) throw Error("LLC shard count must be non-negative");
  if (options_.llc_words > 0) {
    if (options_.llc_words <= options_.l1.capacity_words) {
      throw Error("shared LLC must be strictly larger than a worker's private cache");
    }
    const iomodel::CacheConfig llc_config{options_.llc_words, options_.l1.block_words};
    if (options_.llc_shards >= 1) {
      if (!is_pow2(options_.llc_shards)) {
        throw Error("LLC shard count must be a power of two");
      }
      if (llc_config.capacity_blocks() < options_.llc_shards) {
        throw Error("LLC too small: every shard needs at least one block");
      }
      sharded_llc_ =
          std::make_unique<iomodel::ShardedLruCache>(llc_config, options_.llc_shards);
    } else {
      llc_ = std::make_unique<iomodel::LruCache>(llc_config);
    }
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (std::int32_t w = 0; w < options_.workers; ++w) {
    if (sharded_llc_ != nullptr) {
      workers_.push_back(
          std::make_unique<iomodel::SharedLlcCache>(options_.l1, sharded_llc_.get()));
    } else {
      workers_.push_back(std::make_unique<iomodel::SharedLlcCache>(
          options_.l1, llc_.get(), llc_ != nullptr ? &llc_mutex_ : nullptr));
    }
  }
}

iomodel::SharedLlcCache& WorkerPool::worker_cache(std::int32_t w) {
  CCS_EXPECTS(w >= 0 && w < size(), "worker id out of range");
  return *workers_[static_cast<std::size_t>(w)];
}

const iomodel::SharedLlcCache& WorkerPool::worker_cache(std::int32_t w) const {
  CCS_EXPECTS(w >= 0 && w < size(), "worker id out of range");
  return *workers_[static_cast<std::size_t>(w)];
}

const iomodel::CacheStats& WorkerPool::llc_stats() const {
  CCS_EXPECTS(has_llc(), "pool has no shared LLC");
  if (sharded_llc_ != nullptr) return sharded_llc_->stats();
  // The flat backend's counters live inside the mutex-guarded cache; take
  // the lock for the read so a stats poll never races an in-flight probe.
  const MutexLock lock(llc_mutex_);
  return llc_->stats();
}

std::int64_t WorkerPool::resident_blocks(std::int32_t w, const iomodel::Region& region) const {
  const iomodel::SharedLlcCache& cache = worker_cache(w);
  const std::int64_t block = cache.block_words();
  std::int64_t resident = 0;
  if (region.words <= 0) return 0;
  const iomodel::Addr last = region.end() - 1;
  for (iomodel::Addr a = (region.base / block) * block; a <= last; a += block) {
    if (cache.contains(a)) ++resident;
  }
  return resident;
}

std::int64_t WorkerPool::resident_words(std::int32_t w, const iomodel::Region& region) const {
  return resident_blocks(w, region) * worker_cache(w).block_words();
}

}  // namespace ccs::runtime
