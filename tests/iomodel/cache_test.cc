#include "iomodel/cache.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace ccs::iomodel {
namespace {

CacheConfig small_config() { return CacheConfig{32, 8}; }  // 4 blocks of 8 words

TEST(LruCache, ColdMissThenHit) {
  LruCache cache(small_config());
  cache.access(0, AccessMode::kRead);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.access(1, AccessMode::kRead);  // same block
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().accesses, 2);
}

TEST(LruCache, DistinctBlocksMissSeparately) {
  LruCache cache(small_config());
  for (Addr a : {0, 8, 16, 24}) cache.access(a, AccessMode::kRead);
  EXPECT_EQ(cache.stats().misses, 4);
  EXPECT_EQ(cache.resident_blocks(), 4);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(small_config());
  for (Addr a : {0, 8, 16, 24}) cache.access(a, AccessMode::kRead);
  cache.access(0, AccessMode::kRead);   // refresh block 0; LRU is now block 1
  cache.access(32, AccessMode::kRead);  // evicts block 1 (addr 8..15)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(8));
  EXPECT_TRUE(cache.contains(16));
  EXPECT_TRUE(cache.contains(32));
}

TEST(LruCache, CapacityBoundsResidency) {
  LruCache cache(small_config());
  for (Addr a = 0; a < 100 * 8; a += 8) cache.access(a, AccessMode::kRead);
  EXPECT_EQ(cache.resident_blocks(), 4);
  EXPECT_EQ(cache.stats().misses, 100);
}

TEST(LruCache, SequentialScanMissesOncePerBlock) {
  LruCache cache(CacheConfig{1024, 8});
  for (Addr a = 0; a < 256; ++a) cache.access(a, AccessMode::kRead);
  EXPECT_EQ(cache.stats().misses, 256 / 8);
  EXPECT_EQ(cache.stats().hits, 256 - 256 / 8);
}

TEST(LruCache, DirtyEvictionCountsWriteback) {
  LruCache cache(small_config());
  cache.access(0, AccessMode::kWrite);
  for (Addr a : {8, 16, 24, 32}) cache.access(a, AccessMode::kRead);  // evicts block 0
  EXPECT_EQ(cache.stats().writebacks, 1);
}

TEST(LruCache, CleanEvictionNoWriteback) {
  LruCache cache(small_config());
  for (Addr a = 0; a < 6 * 8; a += 8) cache.access(a, AccessMode::kRead);
  EXPECT_EQ(cache.stats().writebacks, 0);
}

TEST(LruCache, FlushWritesBackDirtyAndEmpties) {
  LruCache cache(small_config());
  cache.access(0, AccessMode::kWrite);
  cache.access(8, AccessMode::kRead);
  cache.flush();
  EXPECT_EQ(cache.stats().writebacks, 1);
  EXPECT_EQ(cache.resident_blocks(), 0);
  cache.access(0, AccessMode::kRead);
  EXPECT_EQ(cache.stats().misses, 3);  // 2 cold + 1 after flush
}

TEST(LruCache, AccessRangeTouchesEveryWord) {
  LruCache cache(CacheConfig{1024, 8});
  cache.access_range(3, 20, AccessMode::kRead);  // words 3..22: blocks 0,1,2
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().accesses, 20);
}

TEST(LruCache, RejectsNegativeAddress) {
  LruCache cache(small_config());
  EXPECT_THROW(cache.access(-1, AccessMode::kRead), ContractViolation);
}

TEST(LruCache, MissRate) {
  LruCache cache(CacheConfig{1024, 8});
  for (Addr a = 0; a < 8; ++a) cache.access(a, AccessMode::kRead);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 1.0 / 8.0);
}

TEST(SetAssociative, HitsWithinSet) {
  SetAssociativeCache cache(CacheConfig{32, 8}, 2);  // 2 sets x 2 ways
  cache.access(0, AccessMode::kRead);
  cache.access(0, AccessMode::kRead);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(SetAssociative, ConflictMissesDespiteCapacity) {
  // Blocks 0, 2, 4 all map to set 0 of a 2-set cache; 3 > 2 ways thrashes.
  SetAssociativeCache cache(CacheConfig{32, 8}, 2);
  for (int round = 0; round < 3; ++round) {
    for (Addr a : {0, 16, 32}) cache.access(a, AccessMode::kRead);
  }
  // A fully associative cache of the same size would miss only 3 times.
  EXPECT_GT(cache.stats().misses, 3);
}

TEST(SetAssociative, LruWithinSet) {
  SetAssociativeCache cache(CacheConfig{32, 8}, 2);
  cache.access(0, AccessMode::kRead);   // set 0
  cache.access(16, AccessMode::kRead);  // set 0
  cache.access(0, AccessMode::kRead);   // refresh block 0
  cache.access(32, AccessMode::kRead);  // set 0: evicts block 2 (addr 16)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(16));
}

TEST(SetAssociative, DirectMappedIsOneWay) {
  SetAssociativeCache cache(CacheConfig{32, 8}, 1);
  EXPECT_EQ(cache.ways(), 1);
  EXPECT_EQ(cache.sets(), 4);
  cache.access(0, AccessMode::kRead);
  cache.access(32, AccessMode::kRead);  // same set, evicts
  cache.access(0, AccessMode::kRead);
  EXPECT_EQ(cache.stats().misses, 3);
}

TEST(SetAssociative, RejectsBadGeometry) {
  EXPECT_THROW(SetAssociativeCache(CacheConfig{24, 8}, 2), ContractViolation);  // 3 blocks % 2
  EXPECT_THROW(SetAssociativeCache(CacheConfig{48, 8}, 2), ContractViolation);  // 3 sets !pow2
}

TEST(SetAssociative, FullyAssociativeMatchesLruOnSmallTrace) {
  // ways == capacity_blocks makes the set-associative cache fully
  // associative; on any trace it must then match LruCache exactly.
  const CacheConfig config{64, 8};
  LruCache lru(config);
  SetAssociativeCache sa(config, static_cast<std::int32_t>(config.capacity_blocks()));
  ASSERT_EQ(sa.sets(), 1);
  std::uint64_t seed = 42;
  for (int i = 0; i < 2000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Addr a = static_cast<Addr>(seed % 512);
    lru.access(a, AccessMode::kRead);
    sa.access(a, AccessMode::kRead);
  }
  EXPECT_EQ(lru.stats().misses, sa.stats().misses);
}

TEST(Factories, ProduceWorkingCaches) {
  auto lru = make_lru(1024, 8);
  lru->access(0, AccessMode::kRead);
  EXPECT_EQ(lru->stats().misses, 1);
  auto sa = make_set_associative(1024, 8, 4);
  sa->access(0, AccessMode::kRead);
  EXPECT_EQ(sa->stats().misses, 1);
}

TEST(CacheConfig, CapacityBlocks) {
  EXPECT_EQ((CacheConfig{64, 8}).capacity_blocks(), 8);
  EXPECT_THROW((CacheConfig{4, 8}).capacity_blocks(), ContractViolation);
}

}  // namespace
}  // namespace ccs::iomodel
