// session::AdmissionPolicy -- the registry and the three built-in budgets.

#include "session/admission.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace ccs::session {
namespace {

AdmissionLoad load(std::int64_t live, std::int64_t resident) {
  AdmissionLoad l;
  l.live_sessions = live;
  l.resident_words = resident;
  return l;
}

AdmissionRequest request(std::int64_t layout) {
  AdmissionRequest r;
  r.layout_words = layout;
  return r;
}

TEST(AdmissionRegistry, ListsBuiltins) {
  const auto& reg = AdmissionRegistry::global();
  EXPECT_TRUE(reg.contains("unbounded"));
  EXPECT_TRUE(reg.contains("bounded-live"));
  EXPECT_TRUE(reg.contains("bounded-memory"));
}

TEST(AdmissionRegistry, UnknownKeyThrowsListingValidKeys) {
  try {
    AdmissionRegistry::global().build("no-such-policy", {});
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-policy"), std::string::npos);
    EXPECT_NE(what.find("bounded-live"), std::string::npos);
  }
}

TEST(Admission, UnboundedAdmitsEverything) {
  const auto policy = AdmissionRegistry::global().build("unbounded", {});
  EXPECT_EQ(policy->name(), "unbounded");
  EXPECT_TRUE(policy->admits(load(0, 0), request(1)));
  EXPECT_TRUE(policy->admits(load(1 << 20, std::int64_t{1} << 40),
                             request(std::int64_t{1} << 30)));
}

TEST(Admission, BoundedLiveEnforcesSessionBudget) {
  AdmissionBudget budget;
  budget.max_live_sessions = 3;
  const auto policy = AdmissionRegistry::global().build("bounded-live", budget);
  EXPECT_EQ(policy->name(), "bounded-live");
  EXPECT_TRUE(policy->admits(load(0, 0), request(100)));
  EXPECT_TRUE(policy->admits(load(2, 0), request(100)));
  EXPECT_FALSE(policy->admits(load(3, 0), request(100)));
  EXPECT_FALSE(policy->admits(load(4, 0), request(100)));
}

TEST(Admission, BoundedLiveZeroBudgetMeansUnlimited) {
  const auto policy = AdmissionRegistry::global().build("bounded-live", {});
  EXPECT_TRUE(policy->admits(load(1 << 20, 0), request(100)));
}

TEST(Admission, BoundedMemoryChargesTheCandidateLayout) {
  AdmissionBudget budget;
  budget.max_resident_words = 1000;
  const auto policy = AdmissionRegistry::global().build("bounded-memory", budget);
  EXPECT_EQ(policy->name(), "bounded-memory");
  EXPECT_TRUE(policy->admits(load(5, 0), request(1000)));    // exactly fits
  EXPECT_TRUE(policy->admits(load(5, 600), request(400)));   // exactly fits
  EXPECT_FALSE(policy->admits(load(5, 600), request(401)));  // one word over
  EXPECT_FALSE(policy->admits(load(0, 0), request(1001)));   // too big alone
}

}  // namespace
}  // namespace ccs::session
