// Fixture: idiomatic deterministic simulator code; zero findings expected.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

// Serialized snapshot done right: every scalar initialized.
struct GoodSnapshot {
  std::vector<std::int64_t> counts;
  std::int64_t steps = 0;
  double rate = 0.0;
};

std::int64_t sum_ordered(const std::map<int, std::int64_t>& m) {
  std::int64_t sum = 0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

bool member(const std::unordered_map<int, int>& index, int key) {
  return index.find(key) != index.end();  // point lookup, no walk
}
